//! Hydrological discharge from land to ocean (Figure 1 of the paper):
//! steepest-descent flow routing plus a linear-reservoir cascade.
//!
//! Each land cell drains to its lowest-elevation neighbor; chains
//! terminate in ocean cells (river mouths) or in interior sinks (endorheic
//! basins, which accumulate — like the real Caspian). Runoff enters the
//! local reservoir; every step a fraction `dt/tau` flows downstream.

use icongrid::ops::CGrid;

/// The routing network over land cells (land-local indexing).
#[derive(Debug, Clone)]
pub struct RiverNetwork {
    /// For each land cell: `Downstream::Land(i)` (land-local index),
    /// `Downstream::Ocean(c)` (global grid cell of the river mouth), or
    /// `Downstream::Sink`.
    pub downstream: Vec<Downstream>,
    /// Topological order (upstream before downstream) for cascade sweeps.
    order: Vec<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Downstream {
    Land(u32),
    Ocean(u32),
    Sink,
}

impl RiverNetwork {
    /// Build from the grid, the set of land cells (global ids), and
    /// per-grid-cell elevation (0 over ocean).
    pub fn build<G: CGrid>(g: &G, land_cells: &[u32], elevation: &[f64]) -> RiverNetwork {
        let mut land_local = vec![u32::MAX; g.n_cells()];
        for (i, &c) in land_cells.iter().enumerate() {
            land_local[c as usize] = i as u32;
        }
        let mut downstream = Vec::with_capacity(land_cells.len());
        for &c in land_cells {
            let c = c as usize;
            let mut best: Option<(f64, u32)> = None;
            // Candidate receivers: edge neighbors.
            for i in 0..3 {
                let e = g.cell_edges(c)[i] as usize;
                let [c0, c1] = g.edge_cells(e);
                let n = if c0 as usize == c { c1 } else { c0 } as usize;
                if n == c {
                    continue;
                }
                let h = elevation[n];
                if h < elevation[c] && best.is_none_or(|(bh, _)| h < bh) {
                    best = Some((h, n as u32));
                }
            }
            downstream.push(match best {
                None => Downstream::Sink,
                Some((_, n)) => {
                    if land_local[n as usize] == u32::MAX {
                        Downstream::Ocean(n)
                    } else {
                        Downstream::Land(land_local[n as usize])
                    }
                }
            });
        }
        // Topological order by decreasing elevation (steepest descent is
        // acyclic in elevation).
        let mut order: Vec<u32> = (0..land_cells.len() as u32).collect();
        order.sort_by(|&a, &b| {
            let ha = elevation[land_cells[a as usize] as usize];
            let hb = elevation[land_cells[b as usize] as usize];
            hb.partial_cmp(&ha).unwrap()
        });
        RiverNetwork { downstream, order }
    }

    /// Advance the reservoir cascade one step.
    ///
    /// * `storage` — per-land-cell river water (m^3), updated in place;
    /// * `runoff_m3` — new runoff entering each cell's reservoir (m^3);
    /// * `discharge` — output: water delivered to each *global* grid cell
    ///   of a river mouth this step (m^3), accumulated into the slice.
    ///
    /// Returns the total water lost to interior sinks this step.
    pub fn route(
        &self,
        dt_over_tau: f64,
        storage: &mut [f64],
        runoff_m3: &[f64],
        discharge: &mut [f64],
    ) -> f64 {
        debug_assert_eq!(storage.len(), self.downstream.len());
        let frac = dt_over_tau.min(1.0);
        for (s, r) in storage.iter_mut().zip(runoff_m3) {
            *s += r;
        }
        let mut sink_total = 0.0;
        // Upstream-to-downstream sweep lets water travel through several
        // reaches per step without losing any.
        for &i in &self.order {
            let i = i as usize;
            let out = storage[i] * frac;
            storage[i] -= out;
            match self.downstream[i] {
                Downstream::Land(j) => storage[j as usize] += out,
                Downstream::Ocean(c) => discharge[c as usize] += out,
                Downstream::Sink => {
                    // Endorheic: water stays in the reservoir.
                    storage[i] += out;
                    sink_total += out;
                }
            }
        }
        sink_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icongrid::Grid;

    fn setup() -> (Grid, Vec<u32>, Vec<f64>, RiverNetwork) {
        let g = Grid::build(2, icongrid::EARTH_RADIUS_M);
        // Land = northern cap, elevation rising with latitude.
        let land: Vec<u32> = (0..g.n_cells as u32)
            .filter(|&c| g.cell_center[c as usize].z > 0.3)
            .collect();
        let elev: Vec<f64> = (0..g.n_cells)
            .map(|c| {
                let z = g.cell_center[c].z;
                if z > 0.3 {
                    (z - 0.3) * 3000.0 + 1.0
                } else {
                    0.0
                }
            })
            .collect();
        let net = RiverNetwork::build(&g, &land, &elev);
        (g, land, elev, net)
    }

    #[test]
    fn rivers_flow_downhill_to_the_ocean() {
        let (g, land, elev, net) = setup();
        let mut ocean_mouths = 0;
        for (i, d) in net.downstream.iter().enumerate() {
            match d {
                Downstream::Land(j) => {
                    let up = elev[land[i] as usize];
                    let dn = elev[land[*j as usize] as usize];
                    assert!(dn < up, "water flowed uphill");
                }
                Downstream::Ocean(c) => {
                    ocean_mouths += 1;
                    assert!(g.cell_center[*c as usize].z <= 0.3 + 0.05);
                }
                Downstream::Sink => {}
            }
        }
        assert!(ocean_mouths > 0, "some rivers must reach the sea");
    }

    #[test]
    fn routing_conserves_water() {
        let (g, land, _, net) = setup();
        let n = land.len();
        let mut storage = vec![0.0; n];
        let runoff: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let mut discharge = vec![0.0; g.n_cells];
        let mut sank = 0.0;
        for _ in 0..30 {
            sank += net.route(0.3, &mut storage, &runoff, &mut discharge);
        }
        let input: f64 = runoff.iter().sum::<f64>() * 30.0;
        let stored: f64 = storage.iter().sum();
        let out: f64 = discharge.iter().sum();
        // Sinks retain their water in storage, so storage + discharge
        // accounts for everything.
        assert!(
            ((stored + out) - input).abs() < 1e-9 * input,
            "in {input} vs stored {stored} + out {out} (sank {sank})"
        );
        assert!(out > 0.0);
    }

    #[test]
    fn steady_state_discharge_matches_inflow() {
        let (g, land, _, net) = setup();
        let n = land.len();
        let mut storage = vec![0.0; n];
        let runoff: Vec<f64> = vec![1.0; n];
        let mut last = 0.0;
        for it in 0..3000 {
            let mut discharge = vec![0.0; g.n_cells];
            net.route(0.5, &mut storage, &runoff, &mut discharge);
            last = discharge.iter().sum();
            if it > 2500 {
                break;
            }
        }
        // At steady state, out = in - (flux into still-filling sinks);
        // with this topology most water reaches the sea.
        assert!(last > 0.5 * n as f64, "steady discharge {last} of {n}");
    }

    #[test]
    fn empty_runoff_decays_storage_monotonically() {
        let (g, land, _, net) = setup();
        let n = land.len();
        let mut storage = vec![1.0; n];
        let runoff = vec![0.0; n];
        let mut discharge = vec![0.0; g.n_cells];
        let mut prev: f64 = storage.iter().sum();
        for _ in 0..10 {
            net.route(0.2, &mut storage, &runoff, &mut discharge);
            let cur: f64 = storage.iter().sum();
            assert!(cur <= prev + 1e-12);
            prev = cur;
        }
    }
}
