//! Land parameters: soil layering, hydrology, and the plant-functional-
//! type (PFT) table.

/// Number of soil levels (Table 2).
pub const N_SOIL: usize = 5;

/// Maximum number of plant functional types (Table 2: "up to 11").
pub const N_PFT: usize = 11;

/// One plant functional type's traits.
#[derive(Debug, Clone, Copy)]
pub struct PftTraits {
    pub name: &'static str,
    /// Light-use efficiency (kgC per J of absorbed PAR, scaled).
    pub lue: f64,
    /// Specific leaf area (m^2 leaf per kgC).
    pub sla: f64,
    /// Allocation fractions of NPP to leaf / wood / fine root / coarse
    /// root / reserve / fruit (sums to 1).
    pub alloc: [f64; 6],
    /// Leaf turnover e-folding time (s).
    pub tau_leaf: f64,
    /// Wood turnover e-folding time (s).
    pub tau_wood: f64,
    /// Cold phenology threshold (deg C): below this, leaves shed fast.
    pub t_cold: f64,
    /// Maintenance respiration coefficient at the reference temperature
    /// (1/s applied to live pools).
    pub resp_coef: f64,
}

const DAY: f64 = 86_400.0;
const YEAR: f64 = 365.0 * DAY;

/// The 11 JSBach-like PFTs.
pub const PFT_TABLE: [PftTraits; N_PFT] = [
    PftTraits { name: "tropical broadleaf evergreen", lue: 2.4e-9, sla: 18.0, alloc: [0.30, 0.25, 0.20, 0.10, 0.10, 0.05], tau_leaf: 1.2 * YEAR, tau_wood: 30.0 * YEAR, t_cold: 5.0, resp_coef: 3.0e-9 },
    PftTraits { name: "tropical broadleaf deciduous", lue: 2.2e-9, sla: 20.0, alloc: [0.32, 0.23, 0.20, 0.10, 0.10, 0.05], tau_leaf: 0.8 * YEAR, tau_wood: 25.0 * YEAR, t_cold: 8.0, resp_coef: 3.2e-9 },
    PftTraits { name: "extratropical evergreen", lue: 1.8e-9, sla: 10.0, alloc: [0.28, 0.30, 0.20, 0.10, 0.08, 0.04], tau_leaf: 3.0 * YEAR, tau_wood: 50.0 * YEAR, t_cold: -5.0, resp_coef: 2.2e-9 },
    PftTraits { name: "extratropical deciduous", lue: 1.9e-9, sla: 22.0, alloc: [0.34, 0.26, 0.18, 0.08, 0.10, 0.04], tau_leaf: 0.5 * YEAR, tau_wood: 40.0 * YEAR, t_cold: 0.0, resp_coef: 2.5e-9 },
    PftTraits { name: "boreal needleleaf evergreen", lue: 1.5e-9, sla: 8.0, alloc: [0.26, 0.30, 0.22, 0.10, 0.08, 0.04], tau_leaf: 4.0 * YEAR, tau_wood: 60.0 * YEAR, t_cold: -12.0, resp_coef: 1.8e-9 },
    PftTraits { name: "boreal deciduous", lue: 1.6e-9, sla: 20.0, alloc: [0.33, 0.25, 0.20, 0.08, 0.10, 0.04], tau_leaf: 0.45 * YEAR, tau_wood: 45.0 * YEAR, t_cold: -8.0, resp_coef: 2.0e-9 },
    PftTraits { name: "C3 grass", lue: 2.0e-9, sla: 28.0, alloc: [0.45, 0.0, 0.35, 0.0, 0.15, 0.05], tau_leaf: 0.6 * YEAR, tau_wood: 1.0 * YEAR, t_cold: -2.0, resp_coef: 3.5e-9 },
    PftTraits { name: "C4 grass", lue: 2.6e-9, sla: 30.0, alloc: [0.47, 0.0, 0.33, 0.0, 0.15, 0.05], tau_leaf: 0.5 * YEAR, tau_wood: 1.0 * YEAR, t_cold: 6.0, resp_coef: 3.8e-9 },
    PftTraits { name: "raingreen shrub", lue: 1.7e-9, sla: 14.0, alloc: [0.35, 0.20, 0.25, 0.05, 0.10, 0.05], tau_leaf: 0.7 * YEAR, tau_wood: 15.0 * YEAR, t_cold: 4.0, resp_coef: 2.6e-9 },
    PftTraits { name: "cold shrub", lue: 1.4e-9, sla: 12.0, alloc: [0.32, 0.22, 0.26, 0.05, 0.10, 0.05], tau_leaf: 0.9 * YEAR, tau_wood: 20.0 * YEAR, t_cold: -10.0, resp_coef: 2.0e-9 },
    PftTraits { name: "tundra", lue: 1.1e-9, sla: 16.0, alloc: [0.40, 0.05, 0.30, 0.05, 0.15, 0.05], tau_leaf: 0.6 * YEAR, tau_wood: 5.0 * YEAR, t_cold: -18.0, resp_coef: 1.6e-9 },
];

/// Static land parameters.
#[derive(Debug, Clone)]
pub struct LandParams {
    /// Time step (s) — the atmosphere's step (land runs on it, §5.1).
    pub dt: f64,
    /// Soil layer thicknesses (m), surface first.
    pub soil_dz: [f64; N_SOIL],
    /// Soil heat diffusivity (m^2/s).
    pub soil_kappa: f64,
    /// Volumetric field capacity (m water per m soil).
    pub field_capacity: f64,
    /// Surface-air <-> top-soil coupling time scale (s).
    pub tau_surface: f64,
    /// Linear-reservoir river time scale (s).
    pub tau_river: f64,
    /// Fraction of decayed litter humified (rest respired as CO2).
    pub humification: f64,
    /// Q10 of respiration.
    pub q10: f64,
    /// Reference temperature for respiration (deg C).
    pub t_resp_ref: f64,
    /// PAR fraction of shortwave radiation.
    pub par_fraction: f64,
    /// Canopy light extinction coefficient (Beer's law over LAI).
    pub k_ext: f64,
    /// Transpiration coefficient (kg water per kg C fixed, scaled).
    pub water_use: f64,
}

impl LandParams {
    pub fn new(dt: f64) -> LandParams {
        LandParams {
            dt,
            soil_dz: [0.065, 0.254, 0.913, 2.902, 5.7], // JSBach-like
            soil_kappa: 7.0e-7,
            field_capacity: 0.35,
            tau_surface: 6.0 * 3600.0,
            tau_river: 5.0 * DAY,
            humification: 0.3,
            q10: 1.8,
            t_resp_ref: 20.0,
            par_fraction: 0.5,
            k_ext: 0.5,
            water_use: 250.0,
        }
    }

    /// PFT cover fractions for a cell at sine-latitude `sinlat`
    /// (deterministic climatological zonation; sums to <= 1, the rest is
    /// bare ground).
    pub fn pft_fractions(&self, sinlat: f64) -> [f64; N_PFT] {
        let lat = sinlat.asin().to_degrees().abs();
        let mut f = [0.0; N_PFT];
        // Gaussian bands per biome.
        let band = |center: f64, width: f64| -> f64 {
            (-(lat - center) * (lat - center) / (2.0 * width * width)).exp()
        };
        f[0] = 0.55 * band(0.0, 12.0); // tropical evergreen
        f[1] = 0.25 * band(12.0, 8.0); // tropical deciduous
        f[2] = 0.30 * band(38.0, 8.0); // extratropical evergreen
        f[3] = 0.30 * band(45.0, 8.0); // extratropical deciduous
        f[4] = 0.40 * band(58.0, 7.0); // boreal needleleaf
        f[5] = 0.20 * band(62.0, 6.0); // boreal deciduous
        f[6] = 0.25 * band(40.0, 18.0); // C3 grass
        f[7] = 0.30 * band(15.0, 12.0); // C4 grass
        f[8] = 0.15 * band(22.0, 8.0); // raingreen shrub
        f[9] = 0.15 * band(55.0, 10.0); // cold shrub
        f[10] = 0.50 * band(72.0, 8.0); // tundra
        // Normalize if the sum exceeds 0.95 (keep some bare soil).
        let s: f64 = f.iter().sum();
        if s > 0.95 {
            for v in f.iter_mut() {
                *v *= 0.95 / s;
            }
        }
        f
    }

    pub fn soil_depth(&self) -> f64 {
        self.soil_dz.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pft_table_is_consistent() {
        for pft in &PFT_TABLE {
            let s: f64 = pft.alloc.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "{}: alloc sums to {s}", pft.name);
            assert!(pft.lue > 0.0 && pft.sla > 0.0);
            assert!(pft.tau_leaf < pft.tau_wood || pft.alloc[1] == 0.0);
        }
        assert_eq!(PFT_TABLE.len(), 11);
    }

    #[test]
    fn pft_zonation_is_sane() {
        let p = LandParams::new(600.0);
        let tropics = p.pft_fractions(0.0);
        let boreal = p.pft_fractions(60f64.to_radians().sin());
        let arctic = p.pft_fractions(75f64.to_radians().sin());
        // Tropical forest dominates the equator.
        assert!(tropics[0] > 0.4);
        assert!(tropics[4] < 0.01, "no boreal forest at the equator");
        // Boreal needleleaf peaks at high mid-latitudes.
        assert!(boreal[4] > 0.2);
        assert!(boreal[0] < 0.01);
        // Tundra at the top.
        assert!(arctic[10] > 0.2);
        // Cover never exceeds 1.
        for f in [tropics, boreal, arctic] {
            assert!(f.iter().sum::<f64>() <= 0.951);
            assert!(f.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn soil_column_spans_meters() {
        let p = LandParams::new(600.0);
        assert_eq!(p.soil_dz.len(), N_SOIL);
        assert!((p.soil_depth() - 9.834).abs() < 0.01);
        for k in 1..N_SOIL {
            assert!(p.soil_dz[k] > p.soil_dz[k - 1], "layers thicken downward");
        }
    }
}
