//! The coupled carbon cycle: track CO2 moving between atmosphere, land
//! biosphere, and ocean over a simulated day — the interaction that §8 of
//! the paper calls "for the first time, we simulate the impact of small
//! scales on the carbon flows, globally".
//!
//! Prints an hourly ledger of the three reservoirs, the land's
//! photosynthesis/respiration balance over the diurnal cycle, and the
//! air-sea exchange; ends with the conservation check.
//!
//! Run with: `cargo run --release --example carbon_cycle`

use icon_esm::esm_core::{CoupledEsm, EsmConfig};

fn main() {
    let mut cfg = EsmConfig::tiny();
    cfg.coupling_s = 3600.0;
    cfg.dt_atm = 300.0;
    cfg.dt_oce = 1200.0;
    let mut esm = CoupledEsm::new(cfg);

    let c0 = esm.carbon_budget();
    println!("=== coupled carbon cycle, one simulated day ===\n");
    println!(
        "initial reservoirs: atmosphere {:.4e} kgC, land {:.4e} kgC, ocean {:.4e} kgC",
        c0.atmosphere, c0.land, c0.ocean
    );
    println!("\n hour |   d_atm (kgC)  |  d_land (kgC)  | d_ocean (kgC)  | land NEE sign");
    println!("------+----------------+----------------+----------------+--------------");

    let mut prev = c0;
    for hour in 1..=24 {
        esm.run_windows(1, false).unwrap();
        let c = esm.carbon_budget();
        // Aggregate land NEE this hour: negative = biosphere uptake.
        let nee: f64 = (0..esm.land.n_land_cells())
            .map(|i| esm.land.state.nee[i] * esm.grid.cell_area[esm.land.cells[i] as usize])
            .sum();
        let tag = if nee < 0.0 {
            "uptake (day)"
        } else if nee > 0.0 {
            "release (night)"
        } else {
            "-"
        };
        println!(
            " {hour:>4} | {:+14.4e} | {:+14.4e} | {:+14.4e} | {tag}",
            c.atmosphere - prev.atmosphere,
            c.land - prev.land,
            c.ocean - prev.ocean,
        );
        prev = c;
    }

    let c1 = esm.carbon_budget();
    println!("\nfinal reservoirs:   atmosphere {:.4e}, land {:.4e}, ocean {:.4e}", c1.atmosphere, c1.land, c1.ocean);
    let drift = (c1.total() - c0.total()) / c0.total();
    println!("total carbon drift over the day: {drift:+.3e} (relative)");
    assert!(drift.abs() < 1e-4, "carbon must be conserved");

    // Where did the ocean carbon go vertically? (biological pump)
    let buried: f64 = (0..esm.grid.n_cells)
        .map(|c| esm.hamocc.sediment_c[c] * esm.grid.cell_area[c])
        .sum();
    println!("carbon buried in sediments: {buried:.3e} (kmol C)");
    println!(
        "accumulated air-sea exchange events: {} ocean cells active",
        (0..esm.grid.n_cells)
            .filter(|&c| esm.hamocc.co2_flux_acc[c] != 0.0)
            .count()
    );
    println!("\nconservation verified. done.");
}
