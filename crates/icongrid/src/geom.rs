//! Cartesian 3-vectors and spherical geometry on the unit sphere.
//!
//! All grid geometry is computed on the unit sphere and scaled by the planet
//! radius where dimensional quantities (lengths, areas) are needed.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A Cartesian 3-vector. Grid points live on the unit sphere.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Build a unit vector from geographic longitude/latitude (radians).
    #[inline]
    pub fn from_lonlat(lon: f64, lat: f64) -> Self {
        let (slat, clat) = lat.sin_cos();
        let (slon, clon) = lon.sin_cos();
        Vec3::new(clat * clon, clat * slon, slat)
    }

    /// Longitude in radians, in `(-pi, pi]`.
    #[inline]
    pub fn lon(&self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Latitude in radians, in `[-pi/2, pi/2]`.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.z.atan2((self.x * self.x + self.y * self.y).sqrt())
    }

    #[inline]
    pub fn dot(&self, o: &Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(&self, o: &Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn norm2(&self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm2().sqrt()
    }

    /// Normalize to unit length. Panics on the zero vector in debug builds.
    #[inline]
    pub fn normalized(&self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize zero vector");
        Vec3::new(self.x / n, self.y / n, self.z / n)
    }

    #[inline]
    pub fn scale(&self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Great-circle (geodesic) distance to another *unit* vector, on the
    /// unit sphere. Uses `atan2` for accuracy at small and large angles.
    #[inline]
    pub fn arc_distance(&self, o: &Vec3) -> f64 {
        let c = self.cross(o).norm();
        let d = self.dot(o);
        c.atan2(d)
    }

    /// Midpoint on the sphere between two unit vectors.
    #[inline]
    pub fn sphere_midpoint(&self, o: &Vec3) -> Vec3 {
        (*self + *o).normalized()
    }

    /// Component of `self` perpendicular to unit vector `n` (projection
    /// onto the tangent plane at `n`).
    #[inline]
    pub fn tangent_at(&self, n: &Vec3) -> Vec3 {
        *self - n.scale(self.dot(n))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        self.scale(s)
    }
}

/// Area of the spherical triangle with *unit-vector* corners `a`, `b`, `c`
/// on the unit sphere, via l'Huilier's theorem (numerically robust for the
/// small, nearly-equilateral triangles of refined icosahedral grids).
pub fn spherical_triangle_area(a: &Vec3, b: &Vec3, c: &Vec3) -> f64 {
    let sa = b.arc_distance(c);
    let sb = c.arc_distance(a);
    let sc = a.arc_distance(b);
    let s = 0.5 * (sa + sb + sc);
    let t = (s / 2.0).tan()
        * ((s - sa) / 2.0).tan()
        * ((s - sb) / 2.0).tan()
        * ((s - sc) / 2.0).tan();
    4.0 * t.max(0.0).sqrt().atan()
}

/// Circumcenter of a spherical triangle: the point equidistant from the
/// three corners, chosen on the same side of the sphere as the triangle.
///
/// ICON places scalar points at circumcenters so that the arc connecting
/// the centers of two adjacent triangles intersects their common edge at a
/// right angle — the orthogonality requirement of the C-grid staggering.
pub fn spherical_circumcenter(a: &Vec3, b: &Vec3, c: &Vec3) -> Vec3 {
    // The circumcenter of the planar triangle through a, b, c projected to
    // the sphere is equidistant (in arc length) from all three corners.
    let n = (*b - *a).cross(&(*c - *a));
    let nn = n.norm();
    debug_assert!(nn > 0.0, "degenerate triangle");
    let u = n.scale(1.0 / nn);
    // Orient towards the triangle's side of the sphere.
    let centroid = (*a + *b + *c).scale(1.0 / 3.0);
    if u.dot(&centroid) < 0.0 {
        -u
    } else {
        u
    }
}

/// Local east/north unit vectors of the tangent plane at unit vector `p`.
/// Degenerates gracefully at the poles (east is taken along +y there).
pub fn local_east_north(p: &Vec3) -> (Vec3, Vec3) {
    let zaxis = Vec3::new(0.0, 0.0, 1.0);
    let east = zaxis.cross(p);
    let east = if east.norm2() < 1e-24 {
        Vec3::new(0.0, 1.0, 0.0)
    } else {
        east.normalized()
    };
    let north = p.cross(&east).normalized();
    (east, north)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn lonlat_roundtrip() {
        for &(lon, lat) in &[(0.0, 0.0), (1.0, 0.5), (-2.5, -1.2), (3.0, 1.5)] {
            let v = Vec3::from_lonlat(lon, lat);
            assert!((v.norm() - 1.0).abs() < 1e-14);
            assert!((v.lon() - lon).abs() < 1e-12);
            assert!((v.lat() - lat).abs() < 1e-12);
        }
    }

    #[test]
    fn arc_distance_quarter_circle() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert!((a.arc_distance(&b) - PI / 2.0).abs() < 1e-14);
        assert!(a.arc_distance(&a) < 1e-14);
        assert!((a.arc_distance(&-a) - PI).abs() < 1e-12);
    }

    #[test]
    fn octant_area() {
        // One octant of the sphere is a spherical triangle of area 4*pi/8.
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        let c = Vec3::new(0.0, 0.0, 1.0);
        let area = spherical_triangle_area(&a, &b, &c);
        assert!((area - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn circumcenter_equidistant() {
        let a = Vec3::from_lonlat(0.1, 0.2);
        let b = Vec3::from_lonlat(0.25, 0.22);
        let c = Vec3::from_lonlat(0.18, 0.35);
        let cc = spherical_circumcenter(&a, &b, &c);
        let da = cc.arc_distance(&a);
        let db = cc.arc_distance(&b);
        let dc = cc.arc_distance(&c);
        assert!((da - db).abs() < 1e-12);
        assert!((da - dc).abs() < 1e-12);
        // Same hemisphere as the triangle.
        assert!(cc.dot(&a) > 0.0);
    }

    #[test]
    fn east_north_orthonormal() {
        let p = Vec3::from_lonlat(0.7, -0.3);
        let (e, n) = local_east_north(&p);
        assert!((e.norm() - 1.0).abs() < 1e-14);
        assert!((n.norm() - 1.0).abs() < 1e-14);
        assert!(e.dot(&n).abs() < 1e-14);
        assert!(e.dot(&p).abs() < 1e-14);
        assert!(n.dot(&p).abs() < 1e-14);
        // North points towards increasing latitude.
        let p2 = Vec3::from_lonlat(0.7, -0.3 + 1e-6);
        assert!((p2 - p).dot(&n) > 0.0);
    }

    #[test]
    fn east_north_at_pole() {
        let p = Vec3::new(0.0, 0.0, 1.0);
        let (e, n) = local_east_north(&p);
        assert!((e.norm() - 1.0).abs() < 1e-14);
        assert!(e.dot(&n).abs() < 1e-14);
    }
}
