//! Roofline parameters for the static cost model.
//!
//! The dataflow compiler's cost pass (`dace-mini::cost`) produces per-map
//! FLOP and byte counts; this module owns the *machine side* of the
//! evaluation: sustained bandwidth, the FP64 compute ceiling, and the
//! per-map launch overhead. Predicted time is the classic roofline
//!
//! ```text
//! t(map) = max(bytes / bw_sustained, flops / flops_peak) + t_launch
//! ```
//!
//! which for every climate kernel in the paper lands on the bandwidth
//! leg — "the final computations are not arithmetically intensive and
//! hence memory bandwidth limited". The balance point (flops per byte at
//! which the two legs meet) is what the `W0502` lint compares a kernel's
//! arithmetic intensity against.

use crate::{calib, chips};
use serde::Serialize;

/// Machine parameters a static cost vector is evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Roofline {
    pub name: &'static str,
    /// Peak DRAM bandwidth (bytes/s).
    pub peak_bw_bytes_s: f64,
    /// Sustained fraction of peak a tuned kernel reaches (calibrated).
    pub dram_eff: f64,
    /// Peak FP64 throughput (FLOP/s).
    pub peak_flops_s: f64,
    /// Fixed overhead charged per map launch (s).
    pub launch_s: f64,
}

impl Roofline {
    /// GH200 as seen by DaCe-generated kernels (50 % of peak DRAM).
    pub fn gh200_dace() -> Roofline {
        Roofline {
            name: "GH200 (DaCe)",
            peak_bw_bytes_s: chips::HOPPER.peak_bw_gbs * 1e9,
            dram_eff: calib::GPU_DRAM_EFF_DACE,
            peak_flops_s: chips::HOPPER.peak_fp64_gflops * 1e9,
            launch_s: calib::KERNEL_LAUNCH_S,
        }
    }

    /// GH200 as seen by the OpenACC baseline (36 % of peak DRAM).
    pub fn gh200_openacc() -> Roofline {
        Roofline {
            name: "GH200 (OpenACC)",
            peak_bw_bytes_s: chips::HOPPER.peak_bw_gbs * 1e9,
            dram_eff: calib::GPU_DRAM_EFF_OPENACC,
            peak_flops_s: chips::HOPPER.peak_fp64_gflops * 1e9,
            launch_s: calib::KERNEL_LAUNCH_S,
        }
    }

    /// Grace CPU die (no launch latency: host loops).
    pub fn grace() -> Roofline {
        Roofline {
            name: "Grace",
            peak_bw_bytes_s: chips::GRACE.peak_bw_gbs * 1e9,
            dram_eff: calib::CPU_EFF_GRACE,
            peak_flops_s: chips::GRACE.peak_fp64_gflops * 1e9,
            launch_s: 0.0,
        }
    }

    /// Bandwidth a tuned kernel actually sustains (bytes/s).
    pub fn sustained_bw_bytes_s(&self) -> f64 {
        self.peak_bw_bytes_s * self.dram_eff
    }

    /// Arithmetic intensity (FLOP/byte) at which the bandwidth and
    /// compute legs of the roofline meet, using *sustained* bandwidth.
    /// Kernels below this are memory-bound.
    pub fn balance_flops_per_byte(&self) -> f64 {
        self.peak_flops_s / self.sustained_bw_bytes_s()
    }

    /// Predicted execution time of one map: the binding roofline leg
    /// plus the launch overhead, floored at the empirical minimum kernel
    /// duration.
    pub fn map_time_s(&self, flops: f64, bytes: f64) -> f64 {
        let bw_leg = bytes / self.sustained_bw_bytes_s();
        let compute_leg = flops / self.peak_flops_s;
        bw_leg.max(compute_leg).max(calib::KERNEL_EXEC_FLOOR_S) + self.launch_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gh200_dace_sustains_half_of_peak() {
        let r = Roofline::gh200_dace();
        assert_eq!(r.sustained_bw_bytes_s(), 2048e9);
        // H100 FP64 vs 2 TB/s sustained: balance around 16-17 flop/byte.
        let b = r.balance_flops_per_byte();
        assert!(b > 10.0 && b < 25.0, "balance {b}");
    }

    #[test]
    fn map_time_is_bandwidth_bound_for_climate_intensity() {
        let r = Roofline::gh200_dace();
        // 0.1 flop/byte, 1 GiB moved: the bandwidth leg dominates.
        let bytes = 1e9;
        let t = r.map_time_s(0.1 * bytes, bytes);
        let bw_leg = bytes / r.sustained_bw_bytes_s();
        assert!((t - (bw_leg + r.launch_s)).abs() < 1e-12);
    }

    #[test]
    fn tiny_maps_pay_the_exec_floor_and_launch() {
        let r = Roofline::gh200_dace();
        let t = r.map_time_s(10.0, 80.0);
        assert!((t - (crate::calib::KERNEL_EXEC_FLOOR_S + r.launch_s)).abs() < 1e-15);
    }

    #[test]
    fn openacc_is_slower_than_dace_on_the_same_cost() {
        let dace = Roofline::gh200_dace();
        let acc = Roofline::gh200_openacc();
        let (f, b) = (1e9, 1e10);
        assert!(acc.map_time_s(f, b) > dace.map_time_s(f, b));
    }
}
