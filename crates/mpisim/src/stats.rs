//! Communication traffic accounting.
//!
//! Every send and collective is metered. The `machine` crate converts these
//! measured volumes into time on a modeled interconnect; benches report
//! them directly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, lock-free traffic counters for one [`World`](crate::World).
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Point-to-point messages sent.
    pub p2p_messages: AtomicU64,
    /// Point-to-point payload bytes sent.
    pub p2p_bytes: AtomicU64,
    /// Collective operations completed (counted once per operation, not
    /// per rank).
    pub collectives: AtomicU64,
    /// Payload bytes reduced/gathered per collective, summed over ranks.
    pub collective_bytes: AtomicU64,
}

impl TrafficStats {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record_send(&self, bytes: usize) {
        self.p2p_messages.fetch_add(1, Ordering::Relaxed);
        self.p2p_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_collective_rank(&self, bytes: usize) {
        self.collective_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_collective_op(&self) {
        self.collectives.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            p2p_messages: self.p2p_messages.load(Ordering::Relaxed),
            p2p_bytes: self.p2p_bytes.load(Ordering::Relaxed),
            collectives: self.collectives.load(Ordering::Relaxed),
            collective_bytes: self.collective_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the counters; subtract two snapshots to get the
/// traffic of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    pub p2p_messages: u64,
    pub p2p_bytes: u64,
    pub collectives: u64,
    pub collective_bytes: u64,
}

impl std::ops::Sub for TrafficSnapshot {
    type Output = TrafficSnapshot;
    fn sub(self, o: TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            p2p_messages: self.p2p_messages - o.p2p_messages,
            p2p_bytes: self.p2p_bytes - o.p2p_bytes,
            collectives: self.collectives - o.collectives,
            collective_bytes: self.collective_bytes - o.collective_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TrafficStats::new();
        s.record_send(100);
        s.record_send(28);
        s.record_collective_op();
        s.record_collective_rank(8);
        let snap = s.snapshot();
        assert_eq!(snap.p2p_messages, 2);
        assert_eq!(snap.p2p_bytes, 128);
        assert_eq!(snap.collectives, 1);
        assert_eq!(snap.collective_bytes, 8);
    }

    #[test]
    fn snapshot_difference() {
        let s = TrafficStats::new();
        s.record_send(10);
        let a = s.snapshot();
        s.record_send(20);
        let b = s.snapshot();
        let d = b - a;
        assert_eq!(d.p2p_messages, 1);
        assert_eq!(d.p2p_bytes, 20);
    }
}
