//! Rollback-replay resilience for the coupled driver.
//!
//! [`CoupledEsm::run_windows_resilient`] wraps the plain window loop in a
//! fault-absorbing state machine:
//!
//! ```text
//!           +--------- run 1 window ----------+
//!           v                                 |
//!   [STEP] ---> [GUARD] --ok--> checkpoint? --+--> done?
//!                  |                               |
//!                  | fail (comm fault, dead rank,  v
//!                  |       non-finite state)     [DONE]
//!                  v
//!              [ROLLBACK] -- restore newest intact generation
//!                  |         (falling back over corrupt ones)
//!                  +-------> replay from there; give up after
//!                            `max_retries_per_window` failures
//!                            of the same window
//! ```
//!
//! The **guard** is a genuinely distributed health check: `guard_ranks`
//! mpisim rank-threads each scan a shard of the snapshot for non-finite or
//! out-of-range values and report to rank 0 over fault-injectable
//! point-to-point messages with [`mpisim::Comm::recv_timeout`]; rank 0
//! broadcasts the verdict. A dropped partial, a corrupted payload, or a
//! killed rank therefore surfaces exactly like it would on a cluster — as
//! a timeout or checksum failure — and triggers rollback, not a hang.
//!
//! Because every model state variable lives in the snapshot (the restart
//! tests prove bit-exactness) and injected faults are one-shot, a replay
//! after rollback reproduces the fault-free trajectory bit for bit.

use crate::esm::CoupledEsm;
use crate::health::{HealthError, HealthEvent};
use crate::sdc::{self, QuiescenceReference, StateFaultPlan};
use coupler::{FluxError, QuarantineEvent};
use iosys::{
    CheckpointRing, FullPolicy, OutputPolicy, OutputRequest, OutputServer, RealFs, Reduction,
    RestartError, RetryPolicy, Snapshot, Storage,
};
use mpisim::{CommError, FaultPlan, World};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for the resilient driver.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Write a checkpoint generation every this many completed windows.
    pub checkpoint_every: u64,
    /// Shard files per checkpoint generation.
    pub n_files: usize,
    /// Staggered reader groups on restore.
    pub n_readers: usize,
    /// Checkpoint generations retained in the ring.
    pub keep_generations: usize,
    /// Rank-threads in the distributed blow-up guard (>= 2).
    pub guard_ranks: usize,
    /// Per-message receive deadline inside the guard.
    pub recv_timeout: Duration,
    /// Rollback attempts for one window before giving up.
    pub max_retries_per_window: u32,
    /// Blow-up threshold: any |value| above this fails the guard.
    pub max_abs: f64,
    /// Chaos hook: flip one byte in the first shard of these generation
    /// numbers right after they are written, simulating silent storage
    /// corruption that the next restore must detect and fall back over.
    pub corrupt_generations: Vec<u64>,
    /// Storage backend for checkpoints and diagnostics. `None`: the real
    /// file system. Inject a `FaultFs` here to chaos-test the I/O path.
    pub storage: Option<Arc<dyn Storage>>,
    /// Retry policy for checkpoint-generation writes.
    pub checkpoint_retry: RetryPolicy,
    /// Post per-variable mean diagnostics every this many completed
    /// windows (`0`: diagnostics off). Diagnostics are shed, never
    /// blocking and never fatal.
    pub diagnostics_every: u64,
    /// Queue depth of the diagnostics output server.
    pub output_queue: usize,
    /// Enable the SDC detector suite and audit every this many windows
    /// (`0`: off). When on, every completed window is additionally
    /// screened by quiescence checksums, an audit replay (re-execute the
    /// windows since the last verified state via the recorded graph and
    /// compare bitwise — exact dual-modular redundancy) runs on the
    /// audit schedule, before every checkpoint write (so the ring only
    /// ever holds verified states), and on any delta-plausibility
    /// suspicion.
    pub audit_every: u64,
    /// Delta-plausibility threshold: a coupling flux that jumps more
    /// than this fraction of its declared `fluxreg` span between
    /// verified states raises *suspicion*, which triggers an audit —
    /// never a detection by itself, so the exact audit keeps the
    /// false-positive count structurally zero.
    pub delta_frac: f64,
    /// In-state bit-flip injection plan (SDC chaos; see [`crate::sdc`]).
    pub sdc: Option<Arc<StateFaultPlan>>,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            checkpoint_every: 2,
            n_files: 3,
            n_readers: 2,
            keep_generations: 3,
            guard_ranks: 3,
            recv_timeout: Duration::from_millis(150),
            max_retries_per_window: 3,
            // Generous: bookkeeping accumulators (e.g. total water handed
            // to the ocean) legitimately reach 1e13+ on the tiny config; a
            // genuine blow-up overflows toward infinity well past this.
            max_abs: 1e30,
            corrupt_generations: Vec::new(),
            storage: None,
            checkpoint_retry: RetryPolicy::default(),
            diagnostics_every: 0,
            output_queue: 16,
            audit_every: 0,
            delta_frac: 0.9,
            sdc: None,
        }
    }
}

/// Failure of a resilient run that could not be absorbed.
#[derive(Debug)]
pub enum EsmError {
    /// Checkpoint write/read failed beyond repair (including every
    /// generation being corrupt).
    Restart(RestartError),
    /// A guard communication failed and retries were exhausted — kept for
    /// reporting inside [`EsmError::TooManyRetries`] chains.
    Comm { window: u64, error: CommError },
    /// The state went non-finite or out of range and replay reproduced it
    /// (a genuine numerical blow-up, not a transient fault).
    BlowUp { window: u64, var: String, value: f64 },
    /// One window kept failing after `max_retries_per_window` rollbacks.
    TooManyRetries {
        window: u64,
        attempts: u32,
        last: String,
    },
    /// A coupling exchange failed with a typed flux error: missing field,
    /// quarantine rejection, exhausted degraded-window budget.
    Flux { window: u64, error: FluxError },
    /// The failure detector declared a condition no local recovery can
    /// absorb (e.g. both component groups down at once).
    Health(HealthError),
}

impl std::fmt::Display for EsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EsmError::Restart(e) => write!(f, "restart failure: {e}"),
            EsmError::Comm { window, error } => {
                write!(f, "communication failure in window {window}: {error}")
            }
            EsmError::BlowUp { window, var, value } => {
                write!(f, "blow-up in window {window}: {var} = {value}")
            }
            EsmError::TooManyRetries {
                window,
                attempts,
                last,
            } => write!(
                f,
                "window {window} failed {attempts} times, giving up (last: {last})"
            ),
            EsmError::Flux { window, error } => {
                write!(f, "flux exchange failure in window {window}: {error}")
            }
            EsmError::Health(e) => write!(f, "health failure: {e}"),
        }
    }
}

impl std::error::Error for EsmError {}

impl From<RestartError> for EsmError {
    fn from(e: RestartError) -> EsmError {
        EsmError::Restart(e)
    }
}

impl From<HealthError> for EsmError {
    fn from(e: HealthError) -> EsmError {
        EsmError::Health(e)
    }
}

/// What a resilient run lived through.
#[derive(Debug, Clone, Default)]
pub struct ResilienceReport {
    /// Windows completed (equals the request on success).
    pub windows_run: u64,
    /// Checkpoint generations written (including the initial one).
    pub checkpoints_written: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Completed windows that had to be recomputed after rollbacks.
    pub replayed_windows: u64,
    /// Restores that had to fall back past a damaged newest generation.
    pub generation_fallbacks: u64,
    /// Human-readable descriptions of every absorbed failure.
    pub faults_absorbed: Vec<String>,
    /// Generation the run ended on.
    pub final_generation: u64,
    /// Coupling windows the healthy side ran on substituted (persisted)
    /// peer fluxes because its peer was suspected or down.
    pub degraded_windows: u64,
    /// The window numbers of those degraded windows, in order.
    pub degraded: Vec<u64>,
    /// Field-quarantine events recorded at the coupler boundary (NaN/Inf
    /// or out-of-bounds values caught before entering component state).
    pub quarantine_events: Vec<QuarantineEvent>,
    /// Supervision timeline: missed beats, suspicion, failure
    /// declarations, respawns, replay completions, recoveries.
    pub timeline: Vec<HealthEvent>,
    /// Localized rank respawns performed by the supervisor.
    pub respawns: u64,
    /// Checkpoint write attempts that failed transiently and were retried.
    pub checkpoint_retries: u64,
    /// Checkpoint generations that could not be written at all (the run
    /// continued on the previous generation — a recorded degraded event).
    pub checkpoint_failures: u64,
    /// Diagnostic records that reached disk.
    pub records_written: u64,
    /// Diagnostic samples shed under disk or queue pressure.
    pub records_shed: u64,
    /// Failed diagnostic appends that were retried.
    pub output_write_retries: u64,
    /// Storage errors seen on the diagnostics path (including retried).
    pub output_write_errors: u64,
    /// Coupled windows that ran as a record/replay recording pass
    /// (see [`crate::replay`]), re-records included.
    pub graph_recordings: u64,
    /// Coupled windows replayed against a recorded window graph.
    pub graph_replays: u64,
    /// Recorded window graphs discarded: shape/certification mismatches
    /// plus every restore (rollback-replay, rank respawn).
    pub graph_invalidations: u64,
    /// Recording passes that followed an invalidation.
    pub graph_rerecords: u64,
    /// In-state bit flips the SDC fault plan actually fired.
    pub sdc_injected: u64,
    /// SDC detections by the per-flux physics guard (bounds violation).
    pub sdc_detected_bounds: u64,
    /// SDC detections by the quiescence-checksum detector.
    pub sdc_detected_checksum: u64,
    /// SDC detections by the audit replay (bitwise DMR mismatch).
    pub sdc_detected_audit: u64,
    /// Detections with no outstanding injected flip to explain them.
    /// The checksum and audit detectors are exact, so chaos tests assert
    /// this stays zero.
    pub sdc_false_positives: u64,
    /// Audit replays performed (scheduled, pre-checkpoint, and
    /// suspicion-triggered).
    pub audit_replays: u64,
}

/// Why one guard round failed (internal; mapped onto report strings and
/// [`EsmError`]).
#[derive(Debug, Clone)]
enum GuardFail {
    Killed(usize),
    Comm(CommError),
    BlowUp { var_idx: usize, value: f64 },
}

impl std::fmt::Display for GuardFail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardFail::Killed(r) => write!(f, "rank {r} died"),
            GuardFail::Comm(e) => write!(f, "{e}"),
            GuardFail::BlowUp { var_idx, value } => {
                write!(f, "non-finite/out-of-range state (var #{var_idx} = {value})")
            }
        }
    }
}

/// Per-variable guard bounds: coupling fluxes in the lag state
/// (`pend_fast.*` / `pend_slow.*`) are screened against their declared
/// physical range from `coupler::fluxreg`; every other variable keeps
/// the global `max_abs` scalar as the final backstop.
fn guard_bounds(name: &str, max_abs: f64) -> (f64, f64) {
    name.strip_prefix("pend_fast.")
        .or_else(|| name.strip_prefix("pend_slow."))
        .and_then(coupler::fluxreg::bounds)
        .unwrap_or((-max_abs, max_abs))
}

/// Scan this rank's shard of the snapshot: returns `(flag, var_idx,
/// value)` where flag is 1.0 if a non-finite or out-of-range value was
/// found. `bounds` is indexed like `vars`.
fn scan_shard(
    vars: &[(String, Vec<f64>)],
    rank: usize,
    n_ranks: usize,
    bounds: &[(f64, f64)],
) -> [f64; 3] {
    for (i, (_, data)) in vars.iter().enumerate() {
        if i % n_ranks != rank {
            continue;
        }
        let (lo, hi) = bounds[i];
        for &v in data {
            if !v.is_finite() || v < lo || v > hi {
                return [1.0, i as f64, v];
            }
        }
    }
    [0.0, 0.0, 0.0]
}

/// One distributed guard round over `guard_ranks` mpisim rank-threads.
fn distributed_guard(
    snapshot: &Snapshot,
    window: u64,
    rcfg: &ResilienceConfig,
    plan: Option<&Arc<FaultPlan>>,
) -> Result<(), GuardFail> {
    let n = rcfg.guard_ranks.max(2);
    let vars = &snapshot.vars;
    let partial_tag = window * 2;
    let verdict_tag = window * 2 + 1;
    let timeout = rcfg.recv_timeout;
    let bounds_vec: Vec<(f64, f64)> = vars
        .iter()
        .map(|(name, _)| guard_bounds(name, rcfg.max_abs))
        .collect();
    let bounds = &bounds_vec;

    let body = move |comm: mpisim::Comm| -> Result<(), GuardFail> {
        let rank = comm.rank();
        // A killed rank dies before participating: it never sends its
        // partial and never answers — peers see timeouts.
        if let Some(plan) = plan {
            if plan.take_kill(rank, window) {
                return Err(GuardFail::Killed(rank));
            }
        }
        let mine = scan_shard(vars, rank, n, bounds);
        if rank == 0 {
            let mut worst = mine;
            let mut comm_err = None;
            for r in 1..n {
                match comm.recv_timeout(r, partial_tag, timeout) {
                    Ok(p) if p.len() == 3 => {
                        if p[0] != 0.0 && worst[0] == 0.0 {
                            worst = [p[0], p[1], p[2]];
                        }
                    }
                    Ok(_) => {
                        comm_err = Some(CommError::Corrupt {
                            src: r,
                            tag: partial_tag,
                            seq: 0,
                        });
                    }
                    Err(e) => comm_err = Some(e),
                }
            }
            let failed = comm_err.is_some() || worst[0] != 0.0;
            // Always broadcast a verdict, even on failure, so healthy
            // ranks exit promptly instead of waiting out their timeouts.
            for r in 1..n {
                comm.send(r, verdict_tag, &[if failed { 1.0 } else { 0.0 }]);
            }
            if let Some(e) = comm_err {
                return Err(GuardFail::Comm(e));
            }
            if worst[0] != 0.0 {
                return Err(GuardFail::BlowUp {
                    var_idx: worst[1] as usize,
                    value: worst[2],
                });
            }
            Ok(())
        } else {
            comm.send(0, partial_tag, &mine);
            let verdict = comm
                .recv_timeout(0, verdict_tag, timeout)
                .map_err(GuardFail::Comm)?;
            // A failure verdict is rank 0's error to report; this rank
            // merely acknowledges it.
            let _ = verdict;
            Ok(())
        }
    };

    let results = match plan {
        Some(plan) => World::run_with_faults(n, plan.clone(), body),
        None => World::run(n, body),
    };

    // Priority: a killed rank explains the timeouts it caused; a blow-up
    // explains an abort verdict; otherwise report the first comm error.
    let mut first_comm = None;
    for r in &results {
        if let Err(GuardFail::Killed(rank)) = r {
            return Err(GuardFail::Killed(*rank));
        }
        if let Err(GuardFail::BlowUp { .. }) = r {
            return Err(r.as_ref().unwrap_err().clone());
        }
        if first_comm.is_none() {
            if let Err(GuardFail::Comm(_)) = r {
                first_comm = Some(r.as_ref().unwrap_err().clone());
            }
        }
    }
    match first_comm {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// One window-level failure: a guard verdict or an SDC detection. All
/// variants share the rollback-replay path; they differ only in the
/// report counters they feed and the repair done before rolling back.
#[derive(Debug, Clone)]
enum WindowFault {
    Guard(GuardFail),
    /// Quiescence CRC mismatch in these static buffers (repaired from
    /// the pristine reference before the rollback).
    Checksum { buffers: Vec<&'static str> },
    /// Audit replay diverged from the primary execution at this var.
    Audit { var: String },
}

impl std::fmt::Display for WindowFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowFault::Guard(g) => write!(f, "{g}"),
            WindowFault::Checksum { buffers } => {
                let what: Vec<String> = buffers
                    .iter()
                    .map(|b| {
                        let side = match sdc::quiescent_side(b) {
                            crate::supervisor::Side::Fast => "fast",
                            crate::supervisor::Side::Slow => "slow",
                        };
                        format!("{b} ({side} side)")
                    })
                    .collect();
                write!(f, "quiescent checksum mismatch: {}", what.join(", "))
            }
            WindowFault::Audit { var } => {
                write!(f, "audit replay diverged at {var} ({})", side_of_var(var))
            }
        }
    }
}

/// Which component group owns a snapshot variable (localization in the
/// report strings).
fn side_of_var(name: &str) -> &'static str {
    if name.starts_with("atm.") || name.starts_with("land.") {
        "fast side"
    } else if name.starts_with("oce.") || name.starts_with("bgc.") {
        "slow side"
    } else {
        "coupler lag state"
    }
}

/// First variable whose raw bits differ between two aligned snapshots.
/// Bit comparison, not `==`: the detectors' containment contract is
/// bitwise, and NaN payloads must count as differences.
fn first_bitwise_mismatch(a: &Snapshot, b: &Snapshot) -> Option<String> {
    for ((name, x), (_, y)) in a.vars.iter().zip(&b.vars) {
        if x.len() != y.len()
            || x.iter().zip(y).any(|(p, q)| p.to_bits() != q.to_bits())
        {
            return Some(name.clone());
        }
    }
    None
}

/// Detector 1b: step-to-step delta plausibility. A coupling flux that
/// jumps more than `frac` of its declared physical span between
/// verified states is suspect even when both endpoints are in bounds
/// (an in-bounds flip in a high mantissa bit looks exactly like this).
/// Suspicion only *triggers an audit* — the exact check — so it can
/// never produce a false positive on its own.
fn delta_suspicion(prev: &Snapshot, cur: &Snapshot, frac: f64) -> Option<String> {
    if !(frac > 0.0 && frac.is_finite()) {
        return None;
    }
    for ((name, a), (_, b)) in prev.vars.iter().zip(&cur.vars) {
        let Some(flux) = name
            .strip_prefix("pend_fast.")
            .or_else(|| name.strip_prefix("pend_slow."))
        else {
            continue;
        };
        let Some(span) = coupler::fluxreg::span(flux) else {
            continue;
        };
        let limit = frac * span;
        if a.len() == b.len() && a.iter().zip(b).any(|(x, y)| (y - x).abs() > limit) {
            return Some(name.clone());
        }
    }
    None
}

/// Flip one byte in the first shard file of `generation` (chaos hook).
fn corrupt_generation_on_disk(dir: &Path, generation: u64) -> Result<(), RestartError> {
    let path = dir.join(format!("restart.g{generation:04}_000.esmr"));
    let mut bytes = std::fs::read(&path).map_err(RestartError::Io)?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).map_err(RestartError::Io)?;
    Ok(())
}

impl CoupledEsm {
    /// Run `n_windows` coupling windows with checkpointing, a distributed
    /// blow-up guard, and rollback-replay on any failure. Transient faults
    /// (from `plan` or real storage damage) are absorbed; persistent
    /// failures surface as a typed [`EsmError`]. The final state is
    /// bit-exact with a fault-free run of the same windows.
    pub fn run_windows_resilient(
        &mut self,
        n_windows: u64,
        concurrent: bool,
        dir: &Path,
        rcfg: &ResilienceConfig,
        plan: Option<Arc<FaultPlan>>,
    ) -> Result<ResilienceReport, EsmError> {
        let mut report = ResilienceReport::default();
        let w0 = self.windows_run();
        let graph0 = self.replay.stats;
        let storage = rcfg.storage.clone().unwrap_or_else(RealFs::shared);
        let mut ring =
            CheckpointRing::new_with(storage.clone(), dir, "restart", rcfg.keep_generations)?;
        ring.set_retry(rcfg.checkpoint_retry);

        // Diagnostics ride a shedding output server: they must never
        // block the integration or kill the run.
        let mut diag: Option<OutputServer> = if rcfg.diagnostics_every > 0 {
            match OutputServer::spawn_with(
                storage.clone(),
                dir.join("diag"),
                rcfg.output_queue,
                OutputPolicy {
                    on_full: FullPolicy::Shed,
                    ..OutputPolicy::default()
                },
            ) {
                Ok(srv) => Some(srv),
                Err(e) => {
                    report
                        .faults_absorbed
                        .push(format!("diagnostics disabled: {e}"));
                    None
                }
            }
        } else {
            None
        };
        // Highest window whose diagnostics were already posted, so replays
        // after a rollback do not produce duplicate records.
        let mut max_posted = 0u64;

        // Generation 1: the starting state, so the very first window can
        // roll back. A failed write is degraded, not fatal — the run just
        // has no rollback point until the next checkpoint lands.
        let mut newest_gen = 0u64;
        match ring.write(&self.snapshot(), rcfg.n_files) {
            Ok(g) => {
                newest_gen = g;
                report.checkpoints_written += 1;
                if rcfg.corrupt_generations.contains(&newest_gen) {
                    corrupt_generation_on_disk(dir, newest_gen)?;
                }
            }
            Err(e) => {
                report.checkpoint_failures += 1;
                report
                    .faults_absorbed
                    .push(format!("initial checkpoint write failed ({e})"));
            }
        }

        // SDC detector state (audit_every > 0). The quiescence reference
        // and the first verified snapshot are captured before any flip
        // can fire, so both are pristine by construction.
        let sdc_on = rcfg.audit_every > 0;
        let quiescence = sdc_on.then(|| QuiescenceReference::capture(self));
        let mut verified: Option<Snapshot> = sdc_on.then(|| self.snapshot());
        // Completed-window count `verified` corresponds to (audit span).
        let mut verified_at = 0u64;
        // Injected flips already explained by a detection + rollback.
        // A rollback restores a verified generation and repairs the
        // statics, so one detection neutralizes *every* outstanding flip.
        let mut sdc_attributed = 0u64;

        let mut done = 0u64;
        let mut attempts = 0u32;
        while done < n_windows {
            let window = done + 1;
            if let Some(p) = &rcfg.sdc {
                sdc::apply_due_flips(self, p, window);
            }
            self.run_windows(1, concurrent)
                .map_err(|error| EsmError::Flux { window, error })?;
            let snap = self.snapshot();

            // Detector 1: distributed physics guard (per-flux bounds +
            // global backstop), over fault-injectable messages.
            let mut fault: Option<WindowFault> = distributed_guard(&snap, window, rcfg, plan.as_ref())
                .err()
                .map(WindowFault::Guard);

            // Detector 2: quiescence checksums — exact for any flip in a
            // never-written buffer, which the audit replay cannot see
            // (both executions would read the same corrupted static).
            // Repair from the pristine copy first, so the rollback below
            // resumes on clean statics.
            if fault.is_none() {
                if let Some(q) = &quiescence {
                    let dirty = q.verify(self);
                    if !dirty.is_empty() {
                        for name in &dirty {
                            q.repair(self, name);
                        }
                        fault = Some(WindowFault::Checksum { buffers: dirty });
                    }
                }
            }

            // Detector 3: audit replay — exact dual-modular redundancy
            // over the bitwise-deterministic window graph. Runs on the
            // audit schedule, before a checkpoint lands (the ring must
            // only ever hold verified states), and on any
            // delta-plausibility suspicion. On a pass the re-execution
            // leaves the live state bitwise equal to `snap`, and `snap`
            // becomes the next verification baseline.
            let mut audit_passed = false;
            if fault.is_none() && sdc_on {
                if let Some(base) = &verified {
                    let checkpoint_due =
                        window.is_multiple_of(rcfg.checkpoint_every) || window == n_windows;
                    let scheduled = window.is_multiple_of(rcfg.audit_every);
                    let suspicion = delta_suspicion(base, &snap, rcfg.delta_frac);
                    if scheduled || checkpoint_due || suspicion.is_some() {
                        report.audit_replays += 1;
                        let span = window - verified_at;
                        self.restore_same_shape(base);
                        self.run_windows(span as usize, concurrent)
                            .map_err(|error| EsmError::Flux { window, error })?;
                        match first_bitwise_mismatch(&self.snapshot(), &snap) {
                            None => audit_passed = true,
                            Some(var) => fault = Some(WindowFault::Audit { var }),
                        }
                    }
                }
            }

            // Attribute detections to the fault plan. A detection with
            // outstanding injected flips is charged to them (the rollback
            // neutralizes all of them at once). A checksum or audit
            // detection *without* one would be a false positive of an
            // exact detector — counted, and asserted zero in the chaos
            // tests. An unexplained guard blow-up stays what it always
            // was: a genuine model failure.
            if let Some(f) = &fault {
                let injected = rcfg.sdc.as_ref().map(|p| p.injected()).unwrap_or(0);
                let outstanding = injected > sdc_attributed;
                match f {
                    WindowFault::Guard(GuardFail::BlowUp { .. }) if outstanding => {
                        report.sdc_detected_bounds += 1;
                        sdc_attributed = injected;
                    }
                    WindowFault::Guard(_) => {}
                    WindowFault::Checksum { .. } => {
                        if outstanding {
                            report.sdc_detected_checksum += 1;
                            sdc_attributed = injected;
                        } else {
                            report.sdc_false_positives += 1;
                        }
                    }
                    WindowFault::Audit { .. } => {
                        if outstanding {
                            report.sdc_detected_audit += 1;
                            sdc_attributed = injected;
                        } else {
                            report.sdc_false_positives += 1;
                        }
                    }
                }
            }

            match fault {
                None => {
                    done += 1;
                    attempts = 0;
                    if done.is_multiple_of(rcfg.checkpoint_every) || done == n_windows {
                        match ring.write(&snap, rcfg.n_files) {
                            Ok(g) => {
                                newest_gen = g;
                                report.checkpoints_written += 1;
                                if rcfg.corrupt_generations.contains(&newest_gen) {
                                    corrupt_generation_on_disk(dir, newest_gen)?;
                                }
                            }
                            Err(e) => {
                                // Degraded, not fatal: the ring still holds
                                // the previous intact generation, so a later
                                // rollback just falls back one further.
                                report.checkpoint_failures += 1;
                                report.faults_absorbed.push(format!(
                                    "window {done}: checkpoint write failed ({e}); \
                                     continuing on generation {newest_gen}"
                                ));
                            }
                        }
                    }
                    if rcfg.diagnostics_every > 0
                        && done > max_posted
                        && done.is_multiple_of(rcfg.diagnostics_every)
                    {
                        max_posted = done;
                        if let Some(srv) = &diag {
                            let means: Vec<f64> = snap
                                .vars
                                .iter()
                                .map(|(_, d)| {
                                    if d.is_empty() {
                                        0.0
                                    } else {
                                        d.iter().sum::<f64>() / d.len() as f64
                                    }
                                })
                                .collect();
                            if let Err(e) = srv.post(OutputRequest {
                                name: "window_means",
                                time_s: done as f64,
                                data: means,
                                reduction: Reduction::Instantaneous,
                            }) {
                                report
                                    .faults_absorbed
                                    .push(format!("window {done}: diagnostics lost ({e})"));
                                diag = None;
                            }
                        }
                    }
                    if audit_passed {
                        verified = Some(snap);
                        verified_at = done;
                    }
                }
                Some(fault) => {
                    report.rollbacks += 1;
                    report.faults_absorbed.push(format!("window {window}: {fault}"));
                    attempts += 1;
                    if attempts > rcfg.max_retries_per_window {
                        return Err(match fault {
                            WindowFault::Guard(GuardFail::BlowUp { var_idx, value }) => {
                                EsmError::BlowUp {
                                    window,
                                    var: snap
                                        .vars
                                        .get(var_idx)
                                        .map(|(n, _)| n.clone())
                                        .unwrap_or_else(|| format!("#{var_idx}")),
                                    value,
                                }
                            }
                            WindowFault::Guard(GuardFail::Comm(error)) => {
                                EsmError::Comm { window, error }
                            }
                            other => EsmError::TooManyRetries {
                                window,
                                attempts,
                                last: other.to_string(),
                            },
                        });
                    }
                    // Roll back to the newest generation that reads back
                    // intact; torn or bit-flipped generations are skipped.
                    let (g, good) = ring.read_latest_intact(rcfg.n_readers)?;
                    if g != newest_gen {
                        report.generation_fallbacks += 1;
                        newest_gen = g;
                    }
                    self.restore(&good);
                    let resumed = self.windows_run() - w0;
                    report.replayed_windows += done - resumed;
                    done = resumed;
                    // Checkpoint generations are audited before they are
                    // written, so the restored state is itself verified.
                    if sdc_on {
                        verified_at = done;
                        verified = Some(good);
                    }
                }
            }
        }
        report.windows_run = done;
        report.final_generation = newest_gen;
        report.checkpoint_retries = ring.io_retries();
        if let Some(p) = &rcfg.sdc {
            report.sdc_injected = p.injected();
        }
        let graph = self.replay.stats;
        report.graph_recordings = graph.recorded_windows - graph0.recorded_windows;
        report.graph_replays = graph.replayed_windows - graph0.replayed_windows;
        report.graph_invalidations = graph.invalidations - graph0.invalidations;
        report.graph_rerecords = graph.rerecords - graph0.rerecords;
        if let Some(srv) = diag {
            match srv.finish() {
                Ok(stats) => {
                    report.records_written = stats.records_written;
                    report.records_shed = stats.shed_queue_full + stats.shed_write_failure;
                    report.output_write_retries = stats.write_retries;
                    report.output_write_errors = stats.write_errors;
                }
                Err(e) => {
                    report
                        .faults_absorbed
                        .push(format!("diagnostics server died at shutdown ({e})"));
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EsmConfig;
    use iosys::restart::scratch_dir;

    fn quick_rcfg() -> ResilienceConfig {
        ResilienceConfig {
            guard_ranks: 3,
            recv_timeout: Duration::from_millis(60),
            ..ResilienceConfig::default()
        }
    }

    #[test]
    fn fault_free_resilient_run_matches_plain_run() {
        let cfg = EsmConfig::tiny();
        let dir = scratch_dir("res_plain");
        let mut a = CoupledEsm::new(cfg.clone());
        let report = a
            .run_windows_resilient(4, false, &dir, &quick_rcfg(), None)
            .unwrap();
        assert_eq!(report.windows_run, 4);
        assert_eq!(report.rollbacks, 0);
        // initial + after windows 2 and 4
        assert_eq!(report.checkpoints_written, 3);

        let mut b = CoupledEsm::new(cfg);
        b.run_windows(4, false).unwrap();
        assert_eq!(a.snapshot(), b.snapshot(), "resilient run must be bit-exact");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropped_guard_message_rolls_back_and_replays_bit_exact() {
        let cfg = EsmConfig::tiny();
        let dir = scratch_dir("res_drop");
        // The guard sends exactly one rank1 -> rank0 partial per round, so
        // the 2nd message on that edge is the window-2 health report.
        let plan = Arc::new(FaultPlan::new().inject(1, 0, 2, mpisim::FaultAction::Drop));
        let mut a = CoupledEsm::new(cfg.clone());
        let report = a
            .run_windows_resilient(3, false, &dir, &quick_rcfg(), Some(plan.clone()))
            .unwrap();
        assert_eq!(report.windows_run, 3);
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.replayed_windows, 1, "window 1 was redone");
        assert_eq!(plan.report().dropped, 1);

        let mut b = CoupledEsm::new(cfg);
        b.run_windows(3, false).unwrap();
        assert_eq!(a.snapshot(), b.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_checkpoint_writes_degrade_instead_of_killing_the_run() {
        use iosys::{FaultFs, StorageFault};

        let cfg = EsmConfig::tiny();
        let dir = scratch_dir("res_enospc");
        // The disk fills up immediately: every checkpoint write fails.
        let storage: Arc<dyn Storage> =
            Arc::new(FaultFs::new().fault(StorageFault::NoSpace { nth_write: 1 }));
        let rcfg = ResilienceConfig {
            storage: Some(storage),
            checkpoint_retry: RetryPolicy {
                attempts: 1,
                backoff: Duration::from_micros(100),
            },
            ..quick_rcfg()
        };
        let mut a = CoupledEsm::new(cfg.clone());
        let report = a.run_windows_resilient(4, false, &dir, &rcfg, None).unwrap();
        assert_eq!(report.windows_run, 4, "ENOSPC must not kill the run");
        assert_eq!(report.checkpoints_written, 0);
        assert_eq!(report.checkpoint_failures, 3, "every generation recorded as degraded");
        assert!(report.checkpoint_retries >= 3, "{}", report.checkpoint_retries);
        assert_eq!(report.faults_absorbed.len(), 3, "{:?}", report.faults_absorbed);

        let mut b = CoupledEsm::new(cfg);
        b.run_windows(4, false).unwrap();
        assert_eq!(a.snapshot(), b.snapshot(), "degraded run is still bit-exact");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diagnostics_are_posted_once_per_window_and_rolled_up() {
        let cfg = EsmConfig::tiny();
        let dir = scratch_dir("res_diag");
        let rcfg = ResilienceConfig {
            diagnostics_every: 1,
            ..quick_rcfg()
        };
        // One rollback (dropped guard partial in window 2) must not
        // duplicate diagnostic records for replayed windows.
        let plan = Arc::new(FaultPlan::new().inject(1, 0, 2, mpisim::FaultAction::Drop));
        let mut esm = CoupledEsm::new(cfg);
        let report = esm
            .run_windows_resilient(3, false, &dir, &rcfg, Some(plan))
            .unwrap();
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.records_written, 3, "one record per window, replays deduped");
        let recs = iosys::read_records(&dir.join("diag"), "window_means").unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2].0, 3.0, "stamped with the window number");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn guard_screens_lag_fluxes_against_their_declared_bounds() {
        // Satellite regression for the bounds consolidation: coupler lag
        // state is held to its fluxreg physical range, everything else
        // keeps the old global scalar as backstop.
        assert_eq!(guard_bounds("pend_slow.heat_flux", 1e30), (-5000.0, 5000.0));
        assert_eq!(guard_bounds("pend_fast.ice_conc", 1e30), (0.0, 1.0));
        assert_eq!(guard_bounds("oce.temp", 1e30), (-1e30, 1e30));
        assert_eq!(guard_bounds("pend_fast.no_such_flux", 1e30), (-1e30, 1e30));

        let rcfg = quick_rcfg();
        // 6 kW/m^2 is inside the 1e30 backstop that was the *only* check
        // before the consolidation, but outside the declared heat-flux
        // range — the per-flux guard must flag it.
        let bad = Snapshot {
            vars: vec![
                ("oce.temp".to_string(), vec![1.0e29]),
                ("pend_slow.heat_flux".to_string(), vec![0.0, 6.0e3]),
            ],
        };
        match distributed_guard(&bad, 1, &rcfg, None) {
            Err(GuardFail::BlowUp { var_idx: 1, value }) => assert_eq!(value, 6.0e3),
            other => panic!("expected per-flux bounds violation, got {other:?}"),
        }
        // Same shape, physically plausible flux: clean. The generic var
        // at 1e29 pins the old backstop behavior (below max_abs passes).
        let ok = Snapshot {
            vars: vec![
                ("oce.temp".to_string(), vec![1.0e29]),
                ("pend_slow.heat_flux".to_string(), vec![0.0, 4.0e3]),
            ],
        };
        distributed_guard(&ok, 2, &rcfg, None).unwrap();
        // And the backstop itself still fires past max_abs.
        let huge = Snapshot {
            vars: vec![("oce.temp".to_string(), vec![1.0e31])],
        };
        assert!(matches!(
            distributed_guard(&huge, 3, &rcfg, None),
            Err(GuardFail::BlowUp { var_idx: 0, .. })
        ));
    }

    #[test]
    fn delta_suspicion_scales_with_the_declared_span() {
        let mk = |v: f64| Snapshot {
            vars: vec![
                ("pend_slow.heat_flux".to_string(), vec![v]),
                ("oce.temp".to_string(), vec![v * 1e6]),
            ],
        };
        // heat_flux span is 10000; a jump of 9500 exceeds 0.9 * span.
        assert_eq!(
            delta_suspicion(&mk(0.0), &mk(9.5e3), 0.9),
            Some("pend_slow.heat_flux".to_string())
        );
        // The same jump is fine at frac = 1.0 (jump < span) — and
        // non-flux vars never raise suspicion however far they move.
        assert_eq!(delta_suspicion(&mk(0.0), &mk(9.5e3), 1.0), None);
        assert_eq!(delta_suspicion(&mk(0.0), &mk(4.0e3), 0.9), None);
    }

    #[test]
    fn genuine_blow_up_exhausts_retries_with_typed_error() {
        let cfg = EsmConfig::tiny();
        let dir = scratch_dir("res_blowup");
        let mut esm = CoupledEsm::new(cfg);
        // Poison the live state: every replay re-reads the same poisoned
        // initial checkpoint, so this cannot be absorbed. The water ledger
        // is pure bookkeeping, so the model runs but the guard must flag
        // the non-finite snapshot.
        esm.ocean_water_received_kg = f64::NAN;
        let rcfg = ResilienceConfig {
            max_retries_per_window: 2,
            ..quick_rcfg()
        };
        match esm.run_windows_resilient(2, false, &dir, &rcfg, None) {
            Err(EsmError::BlowUp { window: 1, value, .. }) => {
                assert!(!value.is_finite(), "guard must report the bad value");
            }
            other => panic!("expected blow-up error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
