//! Stencil-DSL mirrors of the atmosphere hot kernels, registered for
//! static dataflow verification.
//!
//! The Rust kernels in [`crate::dycore`] are the executable truth; these
//! DSL sources restate their *access structure* (which fields, through
//! which neighbor relations, at which level offsets) in the form the
//! `dace-mini` analyzer can prove things about. `esm-lint` parses and
//! verifies them on every CI run, so a stencil edit that introduces a
//! race, an out-of-bounds halo access, or a dead field is caught at lint
//! time even though the production implementation is hand-written Rust.
//!
//! This crate deliberately does NOT depend on `dace-mini`: the sources
//! and declarations are plain data; the lint driver (`crates/lint`)
//! assembles them into an analysis context.

/// DSL restatement of the atmosphere dynamical-core cell/edge/vertical
/// passes (divergence, kinetic-energy gather `z_ekinh`, Montgomery
/// gradient, vorticity-like edge terms, vertical derivative).
pub const DSL_SRC: &str = r#"
# Atmosphere dycore access structure (see atmo/src/dycore.rs).
kernel atm_cells over cells
  mass_div(p,k)  = geofac1(p) * mflux(edge(p,0),k) + geofac2(p) * mflux(edge(p,1),k) + geofac3(p) * mflux(edge(p,2),k);
  z_ekinh(p,k)   = ew1(p) * vn(edge(p,0),k) * vn(edge(p,0),k) + ew2(p) * vn(edge(p,1),k) * vn(edge(p,1),k) + ew3(p) * vn(edge(p,2),k) * vn(edge(p,2),k);
  delta_t(p,k)   = delta(p,k) - dt(p) * mass_div(p,k);
  montg(p,k)     = montg_s(p) + gk(p,k) * delta_t(p,k);
end

kernel atm_edges over edges
  grad_m(p,k)    = (montg(ecell(p,1),k) - montg(ecell(p,0),k)) * inv_dual(p);
  grad_e(p,k)    = (z_ekinh(ecell(p,1),k) - z_ekinh(ecell(p,0),k)) * inv_dual(p);
  vn_t(p,k)      = vn(p,k) - dt_e(p) * (grad_m(p,k) + grad_e(p,k) - fcor(p) * vt(p,k));
end

kernel atm_vertical over cells
  dtheta(p,k)    = theta(p,k+1) - theta(p,k-1);
  w_tend(p,k)    = dtheta(p,k) * inv_dz(p) + buoy(p,k);
end
"#;

/// Field declarations of [`DSL_SRC`]: `(name, domain, is_3d, io, unit)`
/// with `io` one of `"in"`, `"out"`, `"tmp"` and `unit` a physical unit
/// in `dace-mini` syntax (`"1"` for dimensionless). The lint driver
/// feeds the units to the dimensional-analysis pass, which proves every
/// statement of [`DSL_SRC`] dimensionally consistent.
pub fn dsl_fields() -> Vec<(&'static str, &'static str, bool, &'static str, &'static str)> {
    vec![
        ("mflux", "edges", true, "in", "kg m^-2 s^-1"),
        ("vn", "edges", true, "in", "m s^-1"),
        ("vt", "edges", true, "in", "m s^-1"),
        ("delta", "cells", true, "in", "1"),
        ("theta", "cells", true, "in", "K"),
        ("buoy", "cells", true, "in", "K m^-1"),
        ("gk", "cells", true, "in", "m^2 s^-2"),
        ("geofac1", "cells", false, "in", "m^2 kg^-1"),
        ("geofac2", "cells", false, "in", "m^2 kg^-1"),
        ("geofac3", "cells", false, "in", "m^2 kg^-1"),
        ("ew1", "cells", false, "in", "1"),
        ("ew2", "cells", false, "in", "1"),
        ("ew3", "cells", false, "in", "1"),
        ("dt", "cells", false, "in", "s"),
        ("montg_s", "cells", false, "in", "m^2 s^-2"),
        ("inv_dz", "cells", false, "in", "m^-1"),
        ("inv_dual", "edges", false, "in", "m^-1"),
        ("dt_e", "edges", false, "in", "s"),
        ("fcor", "edges", false, "in", "s^-1"),
        ("mass_div", "cells", true, "out", "s^-1"),
        ("z_ekinh", "cells", true, "out", "m^2 s^-2"),
        ("delta_t", "cells", true, "out", "1"),
        ("montg", "cells", true, "out", "m^2 s^-2"),
        ("grad_m", "edges", true, "out", "m s^-2"),
        ("grad_e", "edges", true, "out", "m s^-2"),
        ("vn_t", "edges", true, "out", "m s^-1"),
        ("dtheta", "cells", true, "out", "K"),
        ("w_tend", "cells", true, "out", "K m^-1"),
    ]
}

/// Neighbor relations used by [`DSL_SRC`]: `(name, source, target, arity)`.
pub fn dsl_relations() -> Vec<(&'static str, &'static str, &'static str, usize)> {
    vec![
        ("edge", "cells", "edges", 3),
        ("neighbor", "cells", "cells", 3),
        ("ecell", "edges", "cells", 2),
    ]
}

/// Vertical halo width the dycore guarantees (k±1 column derivative).
pub const DSL_HALO: i32 = 1;

/// Vertical extent assumed by the static cost model.
pub const DSL_NLEV: usize = 30;

/// Representative horizontal extents for the static cost model:
/// `(domain, entities)`. A 20k-cell icosahedral patch has 3/2 as many
/// edges as cells.
pub fn dsl_sizes() -> Vec<(&'static str, usize)> {
    vec![("cells", 20_480), ("edges", 30_720)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarations_cover_every_identifier_in_the_source() {
        // Cheap structural check without a parser dependency: every
        // `name(` occurrence in the DSL must be a declared field, a
        // declared relation, or the kernel header keywords.
        let declared: Vec<&str> = dsl_fields()
            .iter()
            .map(|(n, _, _, _, _)| *n)
            .chain(dsl_relations().iter().map(|(n, _, _, _)| *n))
            .collect();
        for line in DSL_SRC.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("kernel") || line == "end" {
                continue;
            }
            let mut ident = String::new();
            for ch in line.chars() {
                if ch.is_alphanumeric() || ch == '_' {
                    ident.push(ch);
                } else {
                    if ch == '(' && !ident.is_empty() && !ident.chars().next().unwrap().is_numeric() {
                        assert!(
                            declared.contains(&ident.as_str()),
                            "`{ident}` used in DSL but not declared"
                        );
                    }
                    ident.clear();
                }
            }
        }
    }
}
