//! Dense field containers for grid entities.
//!
//! Layout: **column-major** — all vertical levels of one horizontal entity
//! are contiguous (`data[entity * nlev + level]`). This is the layout ICON
//! uses on GPUs for column physics and implicit vertical solvers; the
//! horizontal operators iterate entity-outer/level-inner, touching memory
//! sequentially.

/// A 2-D (single level) field over `n` horizontal entities.
#[derive(Debug, Clone, PartialEq)]
pub struct Field2 {
    data: Vec<f64>,
}

impl Field2 {
    pub fn zeros(n: usize) -> Self {
        Field2 { data: vec![0.0; n] }
    }

    pub fn from_fn(n: usize, f: impl Fn(usize) -> f64) -> Self {
        Field2 {
            data: (0..n).map(f).collect(),
        }
    }

    pub fn from_vec(data: Vec<f64>) -> Self {
        Field2 { data }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Area-weighted global integral: `sum_i w_i * f_i`.
    pub fn weighted_sum(&self, weights: &[f64]) -> f64 {
        debug_assert_eq!(self.len(), weights.len());
        self.data.iter().zip(weights).map(|(f, w)| f * w).sum()
    }

    pub fn min(&self) -> f64 {
        self.data.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }
}

impl std::ops::Index<usize> for Field2 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Field2 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

/// A 3-D field: `n` horizontal entities times `nlev` vertical levels,
/// column-major (levels of one column contiguous).
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    data: Vec<f64>,
    n: usize,
    nlev: usize,
}

impl Field3 {
    pub fn zeros(n: usize, nlev: usize) -> Self {
        Field3 {
            data: vec![0.0; n * nlev],
            n,
            nlev,
        }
    }

    pub fn from_fn(n: usize, nlev: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * nlev);
        for i in 0..n {
            for k in 0..nlev {
                data.push(f(i, k));
            }
        }
        Field3 { data, n, nlev }
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn nlev(&self) -> usize {
        self.nlev
    }

    #[inline]
    pub fn at(&self, i: usize, k: usize) -> f64 {
        debug_assert!(i < self.n && k < self.nlev);
        self.data[i * self.nlev + k]
    }

    #[inline]
    pub fn at_mut(&mut self, i: usize, k: usize) -> &mut f64 {
        debug_assert!(i < self.n && k < self.nlev);
        &mut self.data[i * self.nlev + k]
    }

    #[inline]
    pub fn set(&mut self, i: usize, k: usize, v: f64) {
        self.data[i * self.nlev + k] = v;
    }

    /// The vertical column of entity `i`.
    #[inline]
    pub fn col(&self, i: usize) -> &[f64] {
        &self.data[i * self.nlev..(i + 1) * self.nlev]
    }

    #[inline]
    pub fn col_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.nlev..(i + 1) * self.nlev]
    }

    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Columns as parallel-iterable disjoint chunks (for rayon consumers:
    /// `field.columns_mut().par_iter_mut()` is done by callers via
    /// `par_chunks_mut`).
    #[inline]
    pub fn chunks(&self) -> std::slice::Chunks<'_, f64> {
        self.data.chunks(self.nlev)
    }

    #[inline]
    pub fn chunks_mut(&mut self) -> std::slice::ChunksMut<'_, f64> {
        self.data.chunks_mut(self.nlev)
    }

    /// Global integral with horizontal weights: `sum_{i,k} w_i f_{i,k}`.
    pub fn weighted_sum(&self, weights: &[f64]) -> f64 {
        debug_assert_eq!(self.n, weights.len());
        self.chunks()
            .zip(weights)
            .map(|(col, w)| w * col.iter().sum::<f64>())
            .sum()
    }

    /// Global integral with per-(entity,level) volume weights
    /// `w_i * dz_k`.
    pub fn volume_weighted_sum(&self, area: &[f64], dz: &[f64]) -> f64 {
        debug_assert_eq!(self.n, area.len());
        debug_assert_eq!(self.nlev, dz.len());
        self.chunks()
            .zip(area)
            .map(|(col, a)| a * col.iter().zip(dz).map(|(f, d)| f * d).sum::<f64>())
            .sum()
    }

    pub fn min(&self) -> f64 {
        self.data.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field2_basics() {
        let mut f = Field2::zeros(4);
        f[2] = 3.5;
        assert_eq!(f[2], 3.5);
        assert_eq!(f.len(), 4);
        assert_eq!(f.weighted_sum(&[1.0, 1.0, 2.0, 1.0]), 7.0);
        assert_eq!(f.max(), 3.5);
        assert_eq!(f.min(), 0.0);
    }

    #[test]
    fn field3_layout_is_column_major() {
        let f = Field3::from_fn(3, 4, |i, k| (i * 10 + k) as f64);
        assert_eq!(f.col(1), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(f.at(2, 3), 23.0);
        // Contiguity: column slices tile the backing store in order.
        let flat: Vec<f64> = f.chunks().flatten().cloned().collect();
        assert_eq!(flat, f.as_slice());
    }

    #[test]
    fn field3_integrals() {
        let f = Field3::from_fn(2, 2, |_, _| 2.0);
        assert_eq!(f.weighted_sum(&[1.0, 3.0]), 2.0 * 2.0 * 4.0);
        assert_eq!(f.volume_weighted_sum(&[1.0, 1.0], &[0.5, 1.5]), 2.0 * 2.0 * 2.0);
    }

    #[test]
    fn col_mut_writes_through() {
        let mut f = Field3::zeros(2, 3);
        f.col_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(f.at(1, 0), 1.0);
        assert_eq!(f.at(1, 2), 3.0);
        assert_eq!(f.at(0, 2), 0.0);
    }
}
