//! Property-based tests of the static cost model and the gather-hoist
//! metaprogram (ISSUE: static_analysis, the 8x metaprogram).
//!
//! Two families over randomly generated *legal* kernels (pointwise
//! writes, reads through a small access space so repeated gathers are
//! common):
//!
//! 1. **Semantic preservation**: `hoist_gathers` output — with the
//!    introduced transients store-elided — re-certifies under the
//!    declared context and executes bitwise-identically to the naive
//!    interpreter, sequentially and on the certified parallel path at
//!    pool widths 1 and 4.
//! 2. **Model exactness**: the executor's measured access counters
//!    (launches, index lookups, reads, stores) equal the static cost
//!    model's predictions, for both the naive and the compiled model —
//!    so the model can never under-predict the paper's 8x metric.

use dace_mini::analysis::{self, AnalysisContext, FieldIo};
use dace_mini::cost::{self, CostInputs, DomainSizes};
use dace_mini::exec::{compile, compile_certified, run_naive, FieldBuf};
use dace_mini::parser::parse;
use dace_mini::transforms::{fuse_maps, hoist_gathers, HoistOptions};
use dace_mini::{suite, DataContext, Sdfg};
use machine::Roofline;
use proptest::prelude::*;

const NLEV: usize = 4;
const N_CELLS: usize = 64;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const INPUTS_3D: [&str; 3] = ["i0", "i1", "i2"];
const INPUTS_2D: [&str; 1] = ["s0"];

/// A random access drawn from a deliberately small space (3 fields x
/// 3 points x 3 levels) so that repeated gathers — the hoist pass's
/// subject — occur in most generated kernels.
fn access(r: &mut Rng) -> String {
    let choice = r.pick(8);
    if choice == 0 {
        return format!("{}(p)", INPUTS_2D[r.pick(INPUTS_2D.len())]);
    }
    let f = INPUTS_3D[r.pick(INPUTS_3D.len())];
    let point = match r.pick(3) {
        0 => "p".to_string(),
        n => format!("neighbor(p,{})", n - 1),
    };
    let level = match r.pick(8) {
        0 => "k+1",
        1 => "k-1",
        _ => "k",
    };
    format!("{f}({point},{level})")
}

/// Generate a random legal kernel: statement `i` writes `oi(p,k)`.
fn legal_kernel(seed: u64) -> (String, usize) {
    let mut r = Rng::new(seed);
    let n_stmts = 2 + r.pick(3);
    let mut src = String::from("kernel gen over cells\n");
    for i in 0..n_stmts {
        let terms: Vec<String> = (0..(1 + r.pick(4))).map(|_| access(&mut r)).collect();
        src.push_str(&format!("  o{i}(p,k) = {};\n", terms.join(" + ")));
    }
    src.push_str("end\n");
    (src, n_stmts)
}

fn gen_ctx(n_stmts: usize) -> AnalysisContext {
    let mut ctx = AnalysisContext::new()
        .domain("cells")
        .relation("neighbor", "cells", "cells", 3)
        .with_halo(1)
        .with_nlev(NLEV);
    for f in INPUTS_3D {
        ctx = ctx.field(f, "cells", true, FieldIo::Input);
    }
    for f in INPUTS_2D {
        ctx = ctx.field(f, "cells", false, FieldIo::Input);
    }
    for i in 0..n_stmts {
        ctx = ctx.field(&format!("o{i}"), "cells", true, FieldIo::Output);
    }
    ctx
}

fn gen_data(n_stmts: usize, seed: u64) -> DataContext {
    let mut d = DataContext::new(NLEV);
    let mut r = Rng::new(seed ^ 0xD1F7);
    for f in INPUTS_3D {
        let mut buf = FieldBuf::zeros(N_CELLS, NLEV);
        for v in buf.data.iter_mut() {
            *v = (r.next() >> 11) as f64 / (1u64 << 53) as f64 + 0.25;
        }
        d.add(f, buf);
    }
    for f in INPUTS_2D {
        let mut buf = FieldBuf::zeros(N_CELLS, 1);
        for v in buf.data.iter_mut() {
            *v = (r.next() >> 11) as f64 / (1u64 << 53) as f64 + 0.25;
        }
        d.add(f, buf);
    }
    for i in 0..n_stmts {
        d.add(format!("o{i}"), FieldBuf::zeros(N_CELLS, NLEV));
    }
    d
}

fn set_width(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("shim build_global is infallible");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Family 1: hoisting + store elision preserves semantics bitwise,
    /// sequentially and in parallel at widths 1 and 4.
    #[test]
    fn hoisted_kernels_run_bitwise_identical_across_widths(seed in 0u64..1_000_000) {
        let (src, n_stmts) = legal_kernel(seed);
        let prog = parse(&src).unwrap();
        let sdfg = Sdfg::from_program("gen", &prog);
        let ctx = gen_ctx(n_stmts);

        let fused = fuse_maps(&sdfg);
        let (hoisted, report) = hoist_gathers(&fused, &HoistOptions::default());
        let hctx = report.declare(&ctx);
        let hreport = analysis::verify_sdfg(&hoisted, &hctx);
        prop_assert!(hreport.is_clean(), "hoisted kernel rejected:\n{src}\n{:?}",
            hreport.errors().collect::<Vec<_>>());
        prop_assert!(hreport.all_parallel_safe(), "{src}");

        let topo = suite::synthetic_topology(N_CELLS);
        let elided = report.transient_names();
        let mut d_naive = gen_data(n_stmts, seed);
        run_naive(&prog, &topo, &mut d_naive);

        let mut compiled = compile(&hoisted);
        compiled.elide_transient_stores(&elided);
        let mut d_seq = gen_data(n_stmts, seed);
        compiled.run(&topo, &mut d_seq);
        prop_assert_eq!(&d_naive, &d_seq, "hoisted/sequential diverged:\n{}", &src);

        for width in [1usize, 4] {
            set_width(width);
            let mut cp = compile_certified(&hoisted, &hreport);
            cp.elide_transient_stores(&elided);
            let mut d_par = gen_data(n_stmts, seed);
            cp.run(&topo, &mut d_par);
            prop_assert_eq!(&d_naive, &d_par,
                "hoisted/parallel diverged at width {}:\n{}", width, &src);
        }
    }

    /// Family 2: the static cost model's predicted counters equal the
    /// measured ones — naive model vs interpreter, compiled model vs
    /// bytecode executor on the fused + hoisted + store-elided graph.
    #[test]
    fn measured_counters_equal_static_predictions(seed in 0u64..1_000_000) {
        let (src, n_stmts) = legal_kernel(seed);
        let prog = parse(&src).unwrap();
        let sdfg = Sdfg::from_program("gen", &prog);
        let ctx = gen_ctx(n_stmts);
        let sizes = DomainSizes::new(NLEV).with("cells", N_CELLS);
        let roof = Roofline::gh200_dace();
        let topo = suite::synthetic_topology(N_CELLS);

        let mut d1 = gen_data(n_stmts, seed);
        let measured_naive = run_naive(&prog, &topo, &mut d1);
        let inputs = CostInputs { ctx: &ctx, sizes: &sizes, elided_stores: &[] };
        let pred_naive = cost::analyze_naive(&sdfg, &inputs, &roof);
        prop_assert_eq!(pred_naive.stats, measured_naive, "naive model diverged:\n{}", &src);

        let fused = fuse_maps(&sdfg);
        let (hoisted, report) = hoist_gathers(&fused, &HoistOptions::default());
        let elided = report.transient_names();
        let mut compiled = compile(&hoisted);
        compiled.elide_transient_stores(&elided);
        let mut d2 = gen_data(n_stmts, seed);
        let measured = compiled.run(&topo, &mut d2);
        let hctx = report.declare(&ctx);
        let hinputs = CostInputs { ctx: &hctx, sizes: &sizes, elided_stores: &elided };
        let pred = cost::analyze_compiled(&hoisted, &hinputs, &roof);
        prop_assert_eq!(pred.stats, measured, "compiled model diverged:\n{}", &src);

        // In particular the model can never under-count the lookups the
        // headline 8x ratio is built from.
        prop_assert!(pred.stats.index_lookups >= measured.index_lookups);
    }
}
