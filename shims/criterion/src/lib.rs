//! Minimal offline stand-in for `criterion` (see `shims/README.md`).
//!
//! Implements the benchmarking surface the workspace's benches use —
//! `Criterion::bench_function`, `benchmark_group` with `sample_size` /
//! `throughput`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — as a straightforward
//! wall-clock timer: warm-up, then `sample_size` samples of an
//! auto-calibrated iteration count, reporting min/median/mean and
//! derived throughput. No statistics beyond that, no HTML reports.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Hierarchical benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Per-iteration timer handle passed to the benchmark closure.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    target_sample_time: Duration,
}

impl Bencher<'_> {
    /// Time `routine`, auto-calibrating iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: run once to estimate cost, then pick an iteration
        // count that fills the per-sample time budget.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target_sample_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters as u32);
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean: Duration = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let min = sorted[0];
    let rate = |per: Duration| -> String {
        match throughput {
            Some(Throughput::Bytes(b)) => {
                let gibs = b as f64 / per.as_secs_f64() / (1u64 << 30) as f64;
                format!("  {gibs:8.2} GiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let me = n as f64 / per.as_secs_f64() / 1e6;
                format!("  {me:8.2} Melem/s")
            }
            None => String::new(),
        }
    };
    println!(
        "bench {name:<40} min {min:>10.3?}  median {median:>10.3?}  mean {mean:>10.3?}{}",
        rate(median)
    );
}

/// Group of related benchmarks sharing sample/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            target_sample_time: Duration::from_millis(10),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &samples, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        // CLI filtering/baselines are not supported by the shim; flags
        // passed by `cargo bench` are ignored.
        self
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.default_sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.default_sample_size,
            target_sample_time: Duration::from_millis(10),
        };
        f(&mut b);
        report(&name.to_string(), &samples, None);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(8 * 1024));
        group.bench_function(BenchmarkId::new("sum", 1024), |b| {
            let data = vec![1.0f64; 1024];
            b.iter(|| black_box(data.iter().sum::<f64>()));
        });
        group.finish();
    }

    #[test]
    fn harness_runs_end_to_end() {
        criterion_group!(benches, sample_bench);
        benches();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("write", 4).to_string(), "write/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
