//! Memlet extraction: per-tasklet read/write **access relations**.
//!
//! The verifier ([`crate::analysis`]) never looks at expression trees —
//! it reasons over the access relations extracted here, exactly like
//! DaCe's dataflow analysis reasons over memlets rather than tasklet
//! code. Every access is summarized as an affine relation over the map
//! parameters `(p, k)`:
//!
//! * the **point relation** is either the identity `p -> p` (injective,
//!   so per-iteration writes are disjoint) or an indirection
//!   `p -> table[relation](p, slot)` through a neighbor table (not
//!   provably injective — two map iterations may land on the same
//!   element);
//! * the **level relation** is affine `k -> k_coef * k + offset` with
//!   `k_coef ∈ {0, 1}`: `k` itself, constant-offset halo windows
//!   `k ± c`, fixed levels (`k_coef = 0`), and 2-D accesses (no level
//!   dimension at all).
//!
//! Each memlet keeps the source [`Span`] of the access it came from, so
//! every diagnostic built on top of it is clickable.

use crate::ast::{FieldAccess, LevelIndex, PointIndex};
use crate::loc::Span;
use crate::sdfg::{MapScope, Sdfg, State};
use std::fmt;

/// Read or write side of a memlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Affine vertical index relation `k -> k_coef * k + offset`.
///
/// `None`-like 2-D accesses are represented by [`LevelRel::Surface`];
/// `Surface` and `Affine { k_coef: 0, offset: 0 }` are deliberately
/// distinct: the former has no level dimension, the latter pins level 0
/// of a 3-D field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelRel {
    /// 2-D access (field has no vertical extent at this access).
    Surface,
    /// `k_coef * k + offset` with `k_coef ∈ {0, 1}`.
    Affine { k_coef: i32, offset: i32 },
}

impl LevelRel {
    pub fn from_index(li: LevelIndex) -> LevelRel {
        match li {
            LevelIndex::Surface => LevelRel::Surface,
            LevelIndex::K => LevelRel::Affine { k_coef: 1, offset: 0 },
            LevelIndex::KOffset(o) => LevelRel::Affine { k_coef: 1, offset: o },
            LevelIndex::Fixed(f) => LevelRel::Affine {
                k_coef: 0,
                offset: f as i32,
            },
        }
    }

    /// Does the accessed level depend on the loop level `k`?
    pub fn depends_on_k(&self) -> bool {
        matches!(self, LevelRel::Affine { k_coef: 1, .. })
    }

    /// Constant halo offset of a `k`-dependent access (0 for `k` itself).
    pub fn halo_offset(&self) -> i32 {
        match self {
            LevelRel::Affine { k_coef: 1, offset } => *offset,
            _ => 0,
        }
    }
}

impl fmt::Display for LevelRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelRel::Surface => write!(f, "·"),
            LevelRel::Affine { k_coef: 1, offset: 0 } => write!(f, "k"),
            LevelRel::Affine { k_coef: 1, offset } if *offset > 0 => write!(f, "k+{offset}"),
            LevelRel::Affine { k_coef: 1, offset } => write!(f, "k{offset}"),
            LevelRel::Affine { offset, .. } => write!(f, "{offset}"),
        }
    }
}

/// Horizontal (point) index relation over the map parameter `p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointRel {
    /// Identity `p -> p`: injective, iterations touch disjoint points.
    Identity,
    /// Indirection through a neighbor table: `p -> relation[p, slot]`.
    /// Not provably injective across iterations.
    Indirect { relation: String, slot: usize },
}

impl PointRel {
    pub fn from_index(pi: &PointIndex) -> PointRel {
        match pi {
            PointIndex::Own => PointRel::Identity,
            PointIndex::Lookup { relation, slot } => PointRel::Indirect {
                relation: relation.clone(),
                slot: *slot,
            },
        }
    }

    pub fn is_injective(&self) -> bool {
        matches!(self, PointRel::Identity)
    }
}

impl fmt::Display for PointRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointRel::Identity => write!(f, "p"),
            PointRel::Indirect { relation, slot } => write!(f, "{relation}(p,{slot})"),
        }
    }
}

/// One extracted access relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Memlet {
    pub field: String,
    pub kind: AccessKind,
    pub point: PointRel,
    pub level: LevelRel,
    /// Index of the tasklet inside the map scope this memlet belongs to.
    pub tasklet: usize,
    pub span: Span,
}

impl Memlet {
    fn from_access(a: &FieldAccess, kind: AccessKind, tasklet: usize) -> Memlet {
        Memlet {
            field: a.field.clone(),
            kind,
            point: PointRel::from_index(&a.point),
            level: LevelRel::from_index(a.level),
            tasklet,
            span: a.span,
        }
    }
}

impl fmt::Display for Memlet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let arrow = match self.kind {
            AccessKind::Read => "<-",
            AccessKind::Write => "->",
        };
        write!(f, "{} {arrow} [{}, {}]", self.field, self.point, self.level)
    }
}

/// All access relations of one map scope (one SDFG state).
#[derive(Debug, Clone, PartialEq)]
pub struct StateMemlets {
    pub label: String,
    pub domain: String,
    pub over_levels: bool,
    pub writes: Vec<Memlet>,
    pub reads: Vec<Memlet>,
    pub span: Span,
}

impl StateMemlets {
    /// Is `field` written anywhere in this scope?
    pub fn writes_field(&self, field: &str) -> bool {
        self.writes.iter().any(|m| m.field == field)
    }

    /// All writes to `field`.
    pub fn writes_to<'a>(&'a self, field: &str) -> impl Iterator<Item = &'a Memlet> {
        let field = field.to_string();
        self.writes.iter().filter(move |m| m.field == field)
    }

    /// All reads of `field`.
    pub fn reads_of<'a>(&'a self, field: &str) -> impl Iterator<Item = &'a Memlet> {
        let field = field.to_string();
        self.reads.iter().filter(move |m| m.field == field)
    }

    /// Is the write of tasklet `t` an accumulation into its own target
    /// (`acc = acc ⊕ expr` — the target also read at the *same* access
    /// relation within the same tasklet)? These are the reduction
    /// candidates the race check flags separately.
    pub fn is_accumulation(&self, t: usize) -> bool {
        let Some(w) = self.writes.iter().find(|m| m.tasklet == t) else {
            return false;
        };
        self.reads.iter().any(|r| {
            r.tasklet == t && r.field == w.field && r.point == w.point && r.level == w.level
        })
    }
}

/// Extract the access relations of a map scope.
pub fn scope_memlets(label: &str, map: &MapScope, span: Span) -> StateMemlets {
    let mut writes = Vec::new();
    let mut reads = Vec::new();
    for (ti, t) in map.tasklets.iter().enumerate() {
        writes.push(Memlet::from_access(&t.write, AccessKind::Write, ti));
        for r in &t.reads {
            reads.push(Memlet::from_access(r, AccessKind::Read, ti));
        }
    }
    StateMemlets {
        label: label.to_string(),
        domain: map.domain.clone(),
        over_levels: map.over_levels,
        writes,
        reads,
        span,
    }
}

/// Extract the access relations of one SDFG state.
pub fn state_memlets(state: &State) -> StateMemlets {
    scope_memlets(&state.label, &state.map, state.span)
}

/// Extract the access relations of every state in graph order.
pub fn sdfg_memlets(sdfg: &Sdfg) -> Vec<StateMemlets> {
    sdfg.states.iter().map(state_memlets).collect()
}

/// What one execution of a program does to a field's *pre-existing*
/// contents — the write-set fact the SDC fault domain uses to classify
/// a bit flip that happened before the execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldFate {
    /// No memlet mentions the field: the execution can neither spread
    /// nor overwrite a flip. Exactly the buffers the quiescence
    /// checksums own.
    Untouched,
    /// The first access in program order is a full overwrite (identity
    /// point relation, whole-level coverage) and every read in that
    /// state provably sees the fresh value: a pre-existing flip is dead
    /// on arrival — no detector needs to fire.
    OverwrittenBeforeRead,
    /// The field's pre-existing contents can reach downstream state:
    /// a flip must be caught by the audit replay (or be bit-identical
    /// dead by value, which the audit's bitwise compare also proves).
    Live,
}

/// Conservative fate of `field`'s pre-existing contents across the
/// extracted states, in program order.
///
/// Soundness: `OverwrittenBeforeRead` is claimed only when the first
/// state mentioning the field (a) opens with a write at the identity
/// point relation covering the whole level extent (`Surface` for 2-D
/// fields, `k` itself for 3-D), (b) has no write before that one, and
/// (c) every read of the field in that state comes from a strictly
/// later tasklet at the *same* full identity relation — within one map
/// iteration tasklets execute in order, so such reads see the fresh
/// value at every `(p, k)`. Anything else (accumulations, halo or
/// fixed-level reads, indirections, partial writes) degrades to
/// `Live`, never the other way.
pub fn field_fate(states: &[StateMemlets], field: &str) -> FieldFate {
    let full = |m: &Memlet| {
        m.point == PointRel::Identity
            && matches!(
                m.level,
                LevelRel::Surface | LevelRel::Affine { k_coef: 1, offset: 0 }
            )
    };
    for st in states {
        let reads: Vec<&Memlet> = st.reads_of(field).collect();
        let writes: Vec<&Memlet> = st.writes_to(field).collect();
        if reads.is_empty() && writes.is_empty() {
            continue;
        }
        let first_full_write = writes.iter().filter(|w| full(w)).map(|w| w.tasklet).min();
        return match first_full_write {
            Some(t0)
                if writes.iter().all(|w| w.tasklet >= t0)
                    && reads.iter().all(|r| r.tasklet > t0 && full(r)) =>
            {
                FieldFate::OverwrittenBeforeRead
            }
            _ => FieldFate::Live,
        };
    }
    FieldFate::Untouched
}

/// Fate of each named field under one execution of `sdfg`.
pub fn field_fates(sdfg: &Sdfg, fields: &[&str]) -> Vec<(String, FieldFate)> {
    let states = sdfg_memlets(sdfg);
    fields
        .iter()
        .map(|f| (f.to_string(), field_fate(&states, f)))
        .collect()
}

/// Tasklet writes whose expressions reference the loop level `k` (used
/// by fusion legality: a level-independent surface write may re-execute
/// per level without changing its value; a level-dependent one may not).
pub fn tasklet_is_level_dependent(state: &StateMemlets, t: usize) -> bool {
    state
        .reads
        .iter()
        .any(|r| r.tasklet == t && r.level.depends_on_k())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sdfg::Sdfg;
    use crate::transforms::fuse_maps;

    fn memlets_of(src: &str) -> Vec<StateMemlets> {
        sdfg_memlets(&Sdfg::from_program("t", &parse(src).unwrap()))
    }

    #[test]
    fn extracts_identity_and_indirect_point_relations() {
        let m = memlets_of("kernel t over cells o(p,k) = a(p,k) + b(edge(p,2),k); end");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].writes.len(), 1);
        assert_eq!(m[0].writes[0].point, PointRel::Identity);
        assert!(m[0].writes[0].point.is_injective());
        assert_eq!(m[0].reads.len(), 2);
        assert_eq!(
            m[0].reads[1].point,
            PointRel::Indirect {
                relation: "edge".into(),
                slot: 2
            }
        );
        assert!(!m[0].reads[1].point.is_injective());
    }

    #[test]
    fn affine_levels_cover_negative_offsets_and_fixed() {
        let m = memlets_of("kernel t over cells o(p,k) = a(p,k-3) + a(p,k+2) + a(p,7) + s(p); end");
        let r = &m[0].reads;
        assert_eq!(r[0].level, LevelRel::Affine { k_coef: 1, offset: -3 });
        assert_eq!(r[0].level.halo_offset(), -3);
        assert_eq!(r[1].level, LevelRel::Affine { k_coef: 1, offset: 2 });
        assert_eq!(r[2].level, LevelRel::Affine { k_coef: 0, offset: 7 });
        assert!(!r[2].level.depends_on_k());
        assert_eq!(r[3].level, LevelRel::Surface);
        assert_eq!(format!("{}", r[0]), "a <- [p, k-3]");
        assert_eq!(format!("{}", r[2]), "a <- [p, 7]");
    }

    #[test]
    fn nested_entity_level_maps_mark_level_dependence() {
        // The implicit (entity × level) nest: a surface-only statement
        // inside a 3-D kernel still lowers to an over_levels map, but its
        // tasklet is level-independent.
        let m = memlets_of(
            r#"
            kernel t over cells
              s(p) = w(p) * 2;
              o(p,k) = s(p) + a(p,k);
            end
        "#,
        );
        assert!(m[0].over_levels, "kernel uses levels, every state does");
        assert!(!tasklet_is_level_dependent(&m[0], 0));
        let fused = sdfg_memlets(&fuse_maps(&Sdfg::from_program(
            "t",
            &parse(
                r#"
                kernel t over cells
                  s(p) = w(p) * 2;
                  o(p,k) = s(p) + a(p,k);
                end
            "#,
            )
            .unwrap(),
        )));
        assert_eq!(fused.len(), 1, "surface write fuses into the 3-D map");
        assert!(!tasklet_is_level_dependent(&fused[0], 0));
        assert!(tasklet_is_level_dependent(&fused[0], 1));
    }

    #[test]
    fn reduction_accumulators_are_detected() {
        let m = memlets_of(
            r#"
            kernel t over cells
              acc(p) = acc(p) + q(p,k);
              o(p,k) = q(p,k) * 2;
            end
        "#,
        );
        assert!(m[0].is_accumulation(0), "acc = acc + q is an accumulation");
        assert!(!m[1].is_accumulation(0));
    }

    #[test]
    fn accumulator_at_shifted_level_is_not_an_accumulation() {
        // acc(p,k) = acc(p,k-1) + ... reads a *different* element of the
        // target: a scan, not a pointwise accumulation.
        let m = memlets_of("kernel t over cells acc(p,k) = acc(p,k-1) + q(p,k); end");
        assert!(!m[0].is_accumulation(0));
    }

    #[test]
    fn multi_statement_tasklets_aggregate_after_fusion() {
        let sdfg = Sdfg::from_program(
            "t",
            &parse(
                r#"
                kernel t over cells
                  x(p,k) = a(p,k) * 2;
                  y(p,k) = x(p,k) + b(edge(p,0),k);
                  z(p,k) = y(p,k) - x(p,k);
                end
            "#,
            )
            .unwrap(),
        );
        let fused = fuse_maps(&sdfg);
        assert_eq!(fused.states.len(), 1);
        let m = state_memlets(&fused.states[0]);
        assert_eq!(m.writes.len(), 3);
        assert_eq!(m.writes.iter().map(|w| w.tasklet).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(m.reads.iter().filter(|r| r.tasklet == 2).count(), 2);
        assert!(m.writes_field("y"));
        assert_eq!(m.reads_of("x").count(), 2);
        assert_eq!(m.writes_to("z").count(), 1);
        // Spans survive fusion: every memlet still points at its source.
        assert!(m.writes.iter().all(|w| !w.span.is_synthetic()));
    }

    #[test]
    fn field_fates_classify_the_sdc_write_set() {
        let m = memlets_of(
            r#"
            kernel t over cells
              tmp(p,k) = inp(p,k) * 2;
              out(p,k) = tmp(p,k) + frc(p,k);
            end
        "#,
        );
        // `tmp` is fully overwritten at the identity relation before its
        // only read (a later tasklet, same relation): a pre-existing
        // flip in it is provably dead.
        assert_eq!(field_fate(&m, "tmp"), FieldFate::OverwrittenBeforeRead);
        assert_eq!(field_fate(&m, "out"), FieldFate::OverwrittenBeforeRead);
        // Inputs are read, never written: live.
        assert_eq!(field_fate(&m, "inp"), FieldFate::Live);
        assert_eq!(field_fate(&m, "frc"), FieldFate::Live);
        // Never mentioned at all: the quiescence checksums own it.
        assert_eq!(field_fate(&m, "orography"), FieldFate::Untouched);
    }

    #[test]
    fn field_fates_degrade_to_live_conservatively() {
        // Accumulation: the write reads its own pre-existing value.
        let acc = memlets_of("kernel t over cells a(p) = a(p) + q(p,k); end");
        assert_eq!(field_fate(&acc, "a"), FieldFate::Live);
        // Scan: the write's own tasklet reads the field at k-1, so some
        // pre-existing element may be seen before it is overwritten.
        let scan = memlets_of("kernel t over cells x(p,k) = x(p,k-1) + q(p,k); end");
        assert_eq!(field_fate(&scan, "x"), FieldFate::Live);
        // Fixed-level write: only one level overwritten, the rest of the
        // field's pre-existing contents survive.
        let part = memlets_of("kernel t over cells z(p,3) = q(p,3); end");
        assert_eq!(field_fate(&part, "z"), FieldFate::Live);
        // Read in a *later* state only: the overwrite still dominates.
        let two = memlets_of(
            r#"
            kernel t over cells
              x(p,k) = q(p,k);
            end
            kernel u over cells
              y(p,k) = x(p,k) * 2;
            end
        "#,
        );
        assert_eq!(field_fate(&two, "x"), FieldFate::OverwrittenBeforeRead);
    }

    #[test]
    fn memlet_spans_point_at_the_access() {
        let m = memlets_of("kernel t over cells\n  o(p,k) = a(p,k+1);\nend");
        assert_eq!(m[0].writes[0].span.line, 2);
        assert_eq!(m[0].writes[0].span.col, 3);
        assert_eq!(m[0].reads[0].span.col, 12);
    }
}
