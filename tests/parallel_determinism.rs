//! End-to-end determinism sweep for the work-stealing rayon shim (ISSUE 2).
//!
//! The pool's contract is *deterministic-for-results*: task boundaries
//! derive from iterator lengths only and reductions combine partials in
//! task-index order, so a run at any pool width is bitwise identical to
//! the sequential run. This test drives the full coupled model — both
//! coupling modes — at widths 1, 2, 4, 8 and asserts:
//!
//! * model state snapshots are bit-equal,
//! * carbon and water budget ledgers are bit-equal (`f64::to_bits`),
//! * the `.esmr` checkpoint shards written from each run are
//!   byte-identical on disk.
//!
//! The pool width is process-global, so both tests serialize on
//! [`WIDTH_LOCK`].

use esm_core::{CoupledEsm, EsmConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

static WIDTH_LOCK: Mutex<()> = Mutex::new(());

const WIDTHS: [usize; 4] = [1, 2, 4, 8];
const WINDOWS: usize = 3;
const CHECKPOINT_SHARDS: usize = 3;

fn set_width(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("shim build_global is infallible");
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esm_pardet_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Everything we compare across widths, with floats captured as raw bits.
struct RunFingerprint {
    snapshot: iosys::Snapshot,
    carbon_bits: [u64; 4],
    water_bits: [u64; 3],
    shard_bytes: Vec<Vec<u8>>,
}

fn run_and_fingerprint(threads: usize, concurrent: bool, tag: &str) -> RunFingerprint {
    set_width(threads);
    let mut esm = CoupledEsm::new(EsmConfig::tiny());
    esm.run_windows(WINDOWS, concurrent).unwrap();

    let snapshot = esm.snapshot();
    let carbon = esm.carbon_budget();
    let water = esm.water_budget();

    let dir = scratch(&format!("{tag}_{threads}"));
    let shards = iosys::write_checkpoint(&dir, "sweep", &snapshot, CHECKPOINT_SHARDS)
        .expect("write checkpoint");
    let shard_bytes = shards
        .iter()
        .map(|p| fs::read(p).expect("read checkpoint shard"))
        .collect();
    fs::remove_dir_all(&dir).ok();

    RunFingerprint {
        snapshot,
        carbon_bits: [
            carbon.atmosphere.to_bits(),
            carbon.land.to_bits(),
            carbon.ocean.to_bits(),
            carbon.total().to_bits(),
        ],
        water_bits: [
            water.atmosphere.to_bits(),
            water.land.to_bits(),
            water.ocean_received.to_bits(),
        ],
        shard_bytes,
    }
}

fn assert_fingerprints_match(reference: &RunFingerprint, got: &RunFingerprint, label: &str) {
    assert!(
        got.snapshot == reference.snapshot,
        "{label}: model snapshot diverged from the width-1 run"
    );
    assert_eq!(
        got.carbon_bits, reference.carbon_bits,
        "{label}: carbon ledger bits diverged"
    );
    assert_eq!(
        got.water_bits, reference.water_bits,
        "{label}: water ledger bits diverged"
    );
    assert_eq!(
        got.shard_bytes.len(),
        reference.shard_bytes.len(),
        "{label}: checkpoint shard count diverged"
    );
    for (i, (a, b)) in got
        .shard_bytes
        .iter()
        .zip(&reference.shard_bytes)
        .enumerate()
    {
        assert!(
            a == b,
            "{label}: checkpoint shard {i} bytes diverged ({} vs {} bytes)",
            a.len(),
            b.len()
        );
    }
}

#[test]
fn sequential_coupling_is_bitwise_identical_across_pool_widths() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let reference = run_and_fingerprint(WIDTHS[0], false, "seq");
    for &threads in &WIDTHS[1..] {
        let got = run_and_fingerprint(threads, false, "seq");
        assert_fingerprints_match(&reference, &got, &format!("sequential @ {threads} threads"));
    }
}

#[test]
fn concurrent_coupling_is_bitwise_identical_across_pool_widths() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    // Reference is the *sequential* coupling at width 1: concurrent runs at
    // every width must reproduce it bitwise, so this also re-checks the
    // serial/concurrent equivalence under a live pool.
    let reference = run_and_fingerprint(1, false, "conc_ref");
    for &threads in &WIDTHS {
        let got = run_and_fingerprint(threads, true, "conc");
        assert_fingerprints_match(&reference, &got, &format!("concurrent @ {threads} threads"));
    }
}

// ---------------------------------------------------------------------------
// Supervised driver (ISSUE 4): a degraded-then-recovered run must carry the
// same determinism contract as the plain drivers — bitwise identical
// snapshots, budget ledgers, and checkpoint shards across pool widths.
// ---------------------------------------------------------------------------

use esm_core::{HealthConfig, SupervisorConfig};
use mpisim::FaultPlan;
use std::sync::Arc;
use std::time::Duration;

/// Widths the supervised sweep runs at. Smaller than [`WIDTHS`] because
/// every run pays real heartbeat deadlines in wall-clock time.
const SUPERVISED_WIDTHS: [usize; 2] = [1, 4];

fn supervised_fingerprint(threads: usize) -> RunFingerprint {
    set_width(threads);
    let dir = scratch(&format!("sup_{threads}"));
    let scfg = SupervisorConfig {
        health: HealthConfig {
            beat_timeout: Duration::from_millis(50),
            hang_hold: Duration::from_millis(75),
            suspicion_threshold: 2,
        },
        ..SupervisorConfig::default()
    };
    // Ocean group killed at window 3: the fast side degrades one window,
    // the slow side respawns from its ring and both replay.
    let plan = Arc::new(FaultPlan::new().kill_rank(2, 3));
    let mut esm = CoupledEsm::new(EsmConfig::tiny());
    let report = esm
        .run_windows_supervised(6, &dir.join("sup"), &scfg, Some(plan))
        .expect("single kill is absorbable");
    assert_eq!(report.respawns, 1, "@{threads}: {:?}", report.timeline);
    assert!(report.degraded_windows >= 1, "@{threads}");

    let snapshot = esm.snapshot();
    let carbon = esm.carbon_budget();
    let water = esm.water_budget();
    let shards = iosys::write_checkpoint(&dir, "supsweep", &snapshot, CHECKPOINT_SHARDS)
        .expect("write checkpoint");
    let shard_bytes = shards
        .iter()
        .map(|p| fs::read(p).expect("read checkpoint shard"))
        .collect();
    fs::remove_dir_all(&dir).ok();

    RunFingerprint {
        snapshot,
        carbon_bits: [
            carbon.atmosphere.to_bits(),
            carbon.land.to_bits(),
            carbon.ocean.to_bits(),
            carbon.total().to_bits(),
        ],
        water_bits: [
            water.atmosphere.to_bits(),
            water.land.to_bits(),
            water.ocean_received.to_bits(),
        ],
        shard_bytes,
    }
}

#[test]
fn supervised_recovery_is_bitwise_identical_across_pool_widths() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let reference = supervised_fingerprint(SUPERVISED_WIDTHS[0]);
    for &threads in &SUPERVISED_WIDTHS[1..] {
        let got = supervised_fingerprint(threads);
        assert_fingerprints_match(&reference, &got, &format!("supervised @ {threads} threads"));
    }
}
