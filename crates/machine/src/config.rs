//! Earth-system model configurations (Table 2 of the paper): grid sizes,
//! vertical levels, prognostic variable counts, time steps, and the
//! resulting degrees of freedom.

use serde::Serialize;

/// Earth-system components (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Component {
    Atmosphere,
    Land,
    Vegetation,
    OceanSeaIce,
    Biogeochemistry,
}

impl Component {
    pub const ALL: [Component; 5] = [
        Component::Atmosphere,
        Component::Land,
        Component::Vegetation,
        Component::OceanSeaIce,
        Component::Biogeochemistry,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Component::Atmosphere => "Atmosphere",
            Component::Land => "Land",
            Component::Vegetation => "Vegetation",
            Component::OceanSeaIce => "Ocean & sea-ice",
            Component::Biogeochemistry => "Biogeochemistry in ocean",
        }
    }
}

/// One row of Table 2: per-component cell counts, levels, and prognostic
/// variables. "Velocity components normal to the triangle edges are
/// counted as 1.5 prognostic variables" (Table 2 caption), hence the
/// fractional counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ComponentShape {
    pub cells: f64,
    pub levels: f64,
    pub vars: f64,
}

impl ComponentShape {
    pub fn dof(&self) -> f64 {
        self.cells * self.levels * self.vars
    }
}

/// A full model configuration (both Table 2 configurations, or any other
/// `R2B(k)` resolution for sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GridConfig {
    pub name: &'static str,
    /// Nominal horizontal grid spacing (km).
    pub dx_km: f64,
    /// ICON refinement level `k` of `R2B(k)`.
    pub r2b: u32,
    pub atm_cells: f64,
    pub land_cells: f64,
    pub oce_cells: f64,
    pub atm_levels: f64,
    pub soil_levels: f64,
    pub pft_levels: f64,
    pub oce_levels: f64,
    /// Atmosphere (and land) time step (s).
    pub dt_atm_s: f64,
    /// Ocean (and biogeochemistry) time step (s).
    pub dt_oce_s: f64,
    /// Coupling interval between {atmosphere, land} and {ocean, BGC} (s);
    /// the paper exchanges energy, water, and carbon every 10 minutes.
    pub coupling_s: f64,
}

/// Earth's land fraction used to split cells (Table 2: 0.98e8 of 3.36e8
/// cells are land at 1.25 km, i.e. ~29 %).
pub const LAND_FRACTION: f64 = 0.2917;

impl GridConfig {
    /// The 10 km development configuration (Table 2, upper block).
    pub fn km10() -> GridConfig {
        GridConfig::at_r2b("10 km development", 8, 75.0, 600.0)
    }

    /// The 1.25 km at-scale configuration (Table 2, lower block).
    pub fn km1p25() -> GridConfig {
        GridConfig::at_r2b("1.25 km production", 11, 10.0, 60.0)
    }

    /// An arbitrary `R2B(k)` configuration with explicit time steps.
    pub fn at_r2b(name: &'static str, k: u32, dt_atm_s: f64, dt_oce_s: f64) -> GridConfig {
        let cells = icon_cells(k);
        GridConfig {
            name,
            dx_km: nominal_dx_km(k),
            r2b: k,
            atm_cells: cells,
            land_cells: (cells * LAND_FRACTION).round(),
            oce_cells: (cells * (1.0 - LAND_FRACTION)).round(),
            atm_levels: 90.0,
            soil_levels: 5.0,
            pft_levels: 11.0,
            oce_levels: 72.0,
            dt_atm_s,
            dt_oce_s,
            coupling_s: 600.0,
        }
    }

    /// A resolution sweep member with time steps scaled linearly with
    /// `dx` from the 1.25 km anchors (advective CFL).
    pub fn swept(k: u32) -> GridConfig {
        let scale = nominal_dx_km(k) / 1.25;
        GridConfig::at_r2b("sweep", k, 10.0 * scale, 60.0 * scale)
    }

    /// Per-component shapes, Table 2 layout. Prognostic variable counts
    /// from the table: atmosphere 12.5 (incl. 1.5 for edge-normal
    /// velocity and tracers H2O/CO2/O3), land 4 physical state variables
    /// on 5 soil levels, vegetation 22 (21 carbon pools + LAI) on up to 11
    /// plant functional types, ocean 5, biogeochemistry 19.
    pub fn shapes(&self) -> Vec<(Component, ComponentShape)> {
        vec![
            (
                Component::Atmosphere,
                ComponentShape {
                    cells: self.atm_cells,
                    levels: self.atm_levels,
                    vars: 12.5,
                },
            ),
            (
                Component::Land,
                ComponentShape {
                    cells: self.land_cells,
                    levels: self.soil_levels,
                    vars: 4.0,
                },
            ),
            (
                Component::Vegetation,
                ComponentShape {
                    cells: self.land_cells,
                    levels: self.pft_levels,
                    vars: 22.0,
                },
            ),
            (
                Component::OceanSeaIce,
                ComponentShape {
                    cells: self.oce_cells,
                    levels: self.oce_levels,
                    vars: 5.0,
                },
            ),
            (
                Component::Biogeochemistry,
                ComponentShape {
                    cells: self.oce_cells,
                    levels: self.oce_levels,
                    vars: 19.0,
                },
            ),
        ]
    }

    /// Total physical-spatial degrees of freedom of the configuration.
    pub fn total_dof(&self) -> f64 {
        self.shapes().iter().map(|(_, s)| s.dof()).sum()
    }

    /// Main memory needed to store the prognostic state in double
    /// precision (bytes). The paper: ~8 TiB for the 1.25 km configuration.
    pub fn state_bytes(&self) -> f64 {
        self.total_dof() * 8.0
    }

    /// Atmosphere steps per coupling window.
    pub fn atm_steps_per_coupling(&self) -> f64 {
        self.coupling_s / self.dt_atm_s
    }

    /// Ocean steps per coupling window.
    pub fn oce_steps_per_coupling(&self) -> f64 {
        self.coupling_s / self.dt_oce_s
    }
}

/// ICON `R2B(k)` cell count as f64.
pub fn icon_cells(k: u32) -> f64 {
    80.0 * 4f64.powi(k as i32)
}

/// Nominal resolution in km (sqrt mean cell area on Earth).
pub fn nominal_dx_km(k: u32) -> f64 {
    let r = 6.371e6;
    let area = 4.0 * std::f64::consts::PI * r * r / icon_cells(k);
    area.sqrt() / 1000.0
}

/// Rescaled temporal compression tau* of Table 1: the expected tau had the
/// run used dx = 1.25 km on the same resource,
/// `tau* = (1.25 / dx)^3 * tau`.
pub fn tau_star(dx_km: f64, tau: f64) -> f64 {
    (1.25f64 / dx_km).powi(3) * tau
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_cell_counts() {
        let c10 = GridConfig::km10();
        let c1 = GridConfig::km1p25();
        // Table 2: 0.05e8 / 3.36e8 atmosphere cells.
        assert_eq!(c10.atm_cells, 5_242_880.0);
        assert_eq!(c1.atm_cells, 335_544_320.0);
        // Land 0.015e8 / 0.98e8, ocean 0.037e8 / 2.38e8 (+-2 %).
        assert!((c1.land_cells / 0.98e8 - 1.0).abs() < 0.02, "{}", c1.land_cells);
        assert!((c1.oce_cells / 2.38e8 - 1.0).abs() < 0.02, "{}", c1.oce_cells);
        assert!((c10.land_cells / 0.015e8 - 1.0).abs() < 0.03);
        assert!((c10.oce_cells / 0.037e8 - 1.0).abs() < 0.02);
    }

    #[test]
    fn table2_degrees_of_freedom() {
        // Paper: 1.2e10 at 10 km, 7.9e11 at 1.25 km.
        let dof10 = GridConfig::km10().total_dof();
        let dof1 = GridConfig::km1p25().total_dof();
        assert!(
            (dof10 / 1.2e10 - 1.0).abs() < 0.08,
            "10 km dof {dof10:.3e}"
        );
        assert!(
            (dof1 / 7.9e11 - 1.0).abs() < 0.05,
            "1.25 km dof {dof1:.3e}"
        );
    }

    #[test]
    fn state_fits_the_claimed_8_tib() {
        // "Storing those degrees of freedom alone requires 8 TiB".
        let bytes = GridConfig::km1p25().state_bytes();
        let tib = bytes / (1u64 << 40) as f64;
        assert!((5.0..9.0).contains(&tib), "state {tib} TiB");
    }

    #[test]
    fn timesteps_match_table2() {
        let c10 = GridConfig::km10();
        let c1 = GridConfig::km1p25();
        assert_eq!(c10.dt_atm_s, 75.0);
        assert_eq!(c10.dt_oce_s, 600.0);
        assert_eq!(c1.dt_atm_s, 10.0);
        assert_eq!(c1.dt_oce_s, 60.0);
        assert_eq!(c1.atm_steps_per_coupling(), 60.0);
        assert_eq!(c1.oce_steps_per_coupling(), 10.0);
    }

    #[test]
    fn tau_star_matches_table1() {
        // SCREAM: dx 3.25, tau 458 -> tau* 26. NICAM: dx 3.5, tau 365 -> 17.
        assert!((tau_star(3.25, 458.0) - 26.0).abs() < 1.5);
        assert!((tau_star(3.5, 365.0) - 17.0).abs() < 1.0);
        // ICON at native 1.25 km: unchanged.
        assert_eq!(tau_star(1.25, 69.0), 69.0);
    }

    #[test]
    fn nominal_resolutions() {
        assert!((nominal_dx_km(8) - 9.9).abs() < 0.4);
        assert!((nominal_dx_km(11) - 1.24).abs() < 0.05);
    }
}
