//! Asynchronous output server.
//!
//! The model thread posts fields to a bounded channel and keeps
//! integrating; a server thread applies the requested reduction
//! (instantaneous values or running time means) and writes records to
//! disk. Mirrors ICON's asynchronous scheme (§6.4): "Disk I/O takes place
//! concurrently to the model integration … I/O does not appreciably
//! impact tau."

use crossbeam::channel::{bounded, Sender};
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::thread::JoinHandle;

/// How the server reduces a stream of samples per variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// Write every posted sample.
    Instantaneous,
    /// Accumulate and write the time mean on flush.
    TimeMean,
}

/// One posted field sample.
#[derive(Debug)]
pub struct OutputRequest {
    pub name: &'static str,
    pub time_s: f64,
    pub data: Vec<f64>,
    pub reduction: Reduction,
}

enum Msg {
    Sample(OutputRequest),
    Flush,
    Shutdown,
}

/// Handle owned by the model side.
pub struct OutputServer {
    tx: Sender<Msg>,
    handle: Option<JoinHandle<std::io::Result<u64>>>,
    pub dir: PathBuf,
}

impl OutputServer {
    /// Spawn a server writing to `dir`. `queue` bounds the in-flight
    /// samples (back-pressure if the disk cannot keep up).
    pub fn spawn(dir: PathBuf, queue: usize) -> std::io::Result<OutputServer> {
        fs::create_dir_all(&dir)?;
        let (tx, rx) = bounded::<Msg>(queue.max(1));
        let server_dir = dir.clone();
        let handle = std::thread::spawn(move || -> std::io::Result<u64> {
            let mut means: HashMap<&'static str, (Vec<f64>, u64)> = HashMap::new();
            let mut records: u64 = 0;
            let write_record =
                |name: &str, time_s: f64, data: &[f64]| -> std::io::Result<()> {
                    let path = server_dir.join(format!("{name}.rec"));
                    let mut w = BufWriter::new(
                        File::options().create(true).append(true).open(path)?,
                    );
                    w.write_all(&time_s.to_le_bytes())?;
                    w.write_all(&(data.len() as u64).to_le_bytes())?;
                    let mut buf = Vec::with_capacity(data.len() * 8);
                    for v in data {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                    w.write_all(&buf)?;
                    w.flush()
                };
            let mut last_time = 0.0;
            for msg in rx.iter() {
                match msg {
                    Msg::Sample(s) => {
                        last_time = s.time_s;
                        match s.reduction {
                            Reduction::Instantaneous => {
                                write_record(s.name, s.time_s, &s.data)?;
                                records += 1;
                            }
                            Reduction::TimeMean => {
                                let e = means
                                    .entry(s.name)
                                    .or_insert_with(|| (vec![0.0; s.data.len()], 0));
                                for (a, b) in e.0.iter_mut().zip(&s.data) {
                                    *a += b;
                                }
                                e.1 += 1;
                            }
                        }
                    }
                    Msg::Flush | Msg::Shutdown => {
                        for (name, (acc, n)) in means.drain() {
                            if n > 0 {
                                let mean: Vec<f64> =
                                    acc.iter().map(|v| v / n as f64).collect();
                                write_record(name, last_time, &mean)?;
                                records += 1;
                            }
                        }
                        if matches!(msg, Msg::Shutdown) {
                            break;
                        }
                    }
                }
            }
            Ok(records)
        });
        Ok(OutputServer {
            tx,
            handle: Some(handle),
            dir,
        })
    }

    /// Post a sample (blocks only when the queue is full).
    pub fn post(&self, req: OutputRequest) {
        self.tx.send(Msg::Sample(req)).expect("server alive");
    }

    /// Flush pending time means to disk.
    pub fn flush(&self) {
        self.tx.send(Msg::Flush).expect("server alive");
    }

    /// Shut down and return the number of records written.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.tx.send(Msg::Shutdown).expect("server alive");
        self.handle
            .take()
            .expect("finish called once")
            .join()
            .expect("server panicked")
    }
}

impl Drop for OutputServer {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = h.join();
        }
    }
}

/// Read back all records of a variable: `(time, data)` pairs.
pub fn read_records(dir: &std::path::Path, name: &str) -> std::io::Result<Vec<(f64, Vec<f64>)>> {
    let path = dir.join(format!("{name}.rec"));
    let bytes = fs::read(path)?;
    let mut out = Vec::new();
    let mut off = 0;
    while off + 16 <= bytes.len() {
        let time = f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap()) as usize;
        off += 16;
        let data: Vec<f64> = bytes[off..off + len * 8]
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
            .collect();
        off += len * 8;
        out.push((time, data));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restart::scratch_dir;

    #[test]
    fn instantaneous_records_roundtrip() {
        let dir = scratch_dir("out_inst");
        let srv = OutputServer::spawn(dir.clone(), 8).unwrap();
        for step in 0..5 {
            srv.post(OutputRequest {
                name: "sst",
                time_s: step as f64 * 600.0,
                data: vec![step as f64; 10],
                reduction: Reduction::Instantaneous,
            });
        }
        let n = srv.finish().unwrap();
        assert_eq!(n, 5);
        let recs = read_records(&dir, "sst").unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[3].0, 1800.0);
        assert_eq!(recs[3].1, vec![3.0; 10]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn time_mean_reduces_before_writing() {
        let dir = scratch_dir("out_mean");
        let srv = OutputServer::spawn(dir.clone(), 8).unwrap();
        for step in 0..4 {
            srv.post(OutputRequest {
                name: "precip",
                time_s: step as f64,
                data: vec![step as f64, 2.0 * step as f64],
                reduction: Reduction::TimeMean,
            });
        }
        let n = srv.finish().unwrap();
        assert_eq!(n, 1, "one mean record");
        let recs = read_records(&dir, "precip").unwrap();
        assert_eq!(recs.len(), 1);
        // Mean of 0..=3 is 1.5.
        assert_eq!(recs[0].1, vec![1.5, 3.0]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_thread_is_not_blocked_by_io() {
        // Posting is asynchronous: many posts complete quickly while the
        // server drains concurrently.
        let dir = scratch_dir("out_async");
        let srv = OutputServer::spawn(dir.clone(), 64).unwrap();
        let t0 = std::time::Instant::now();
        for step in 0..50 {
            srv.post(OutputRequest {
                name: "field",
                time_s: step as f64,
                data: vec![0.5; 4096],
                reduction: Reduction::Instantaneous,
            });
        }
        let post_time = t0.elapsed();
        let n = srv.finish().unwrap();
        assert_eq!(n, 50);
        // All records landed even though posting returned fast.
        let recs = read_records(&dir, "field").unwrap();
        assert_eq!(recs.len(), 50);
        assert!(post_time.as_secs_f64() < 5.0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_emits_partial_means() {
        let dir = scratch_dir("out_flush");
        let srv = OutputServer::spawn(dir.clone(), 8).unwrap();
        srv.post(OutputRequest {
            name: "x",
            time_s: 0.0,
            data: vec![2.0],
            reduction: Reduction::TimeMean,
        });
        srv.flush();
        srv.post(OutputRequest {
            name: "x",
            time_s: 1.0,
            data: vec![6.0],
            reduction: Reduction::TimeMean,
        });
        let n = srv.finish().unwrap();
        assert_eq!(n, 2);
        let recs = read_records(&dir, "x").unwrap();
        assert_eq!(recs[0].1, vec![2.0]);
        assert_eq!(recs[1].1, vec![6.0]);
        fs::remove_dir_all(&dir).ok();
    }
}
