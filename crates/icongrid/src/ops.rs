//! Discrete C-grid operators shared by the atmosphere and ocean dynamical
//! cores.
//!
//! All operators are defined against the [`CGrid`] trait so they run
//! unchanged on the global [`Grid`](crate::Grid) and on per-rank
//! [`SubGrid`](crate::SubGrid)s. Horizontal loops are parallelized with
//! rayon over entity columns (the per-entity work is independent, so the
//! parallel results are bitwise identical to the sequential ones).

use crate::field::Field3;
use crate::geom::Vec3;
use crate::grid::Grid;
use rayon::prelude::*;

/// The topology/geometry interface required by the discrete operators.
pub trait CGrid: Sync {
    fn n_cells(&self) -> usize;
    fn n_edges(&self) -> usize;
    fn n_vertices(&self) -> usize;
    fn cell_edges(&self, c: usize) -> [u32; 3];
    fn cell_edge_sign(&self, c: usize) -> [f64; 3];
    fn cell_area(&self, c: usize) -> f64;
    fn cell_center(&self, c: usize) -> Vec3;
    fn edge_cells(&self, e: usize) -> [u32; 2];
    fn edge_vertices(&self, e: usize) -> [u32; 2];
    fn edge_length(&self, e: usize) -> f64;
    fn dual_edge_length(&self, e: usize) -> f64;
    fn edge_normal(&self, e: usize) -> Vec3;
    fn edge_tangent(&self, e: usize) -> Vec3;
    fn edge_coriolis(&self, e: usize) -> f64;
    fn vertex_edges(&self, v: usize) -> [u32; 6];
    fn vertex_edge_sign(&self, v: usize) -> [f64; 6];
    fn vertex_dual_area(&self, v: usize) -> f64;
    fn vertex_coriolis(&self, v: usize) -> f64;
}

impl CGrid for Grid {
    #[inline]
    fn n_cells(&self) -> usize {
        self.n_cells
    }
    #[inline]
    fn n_edges(&self) -> usize {
        self.n_edges
    }
    #[inline]
    fn n_vertices(&self) -> usize {
        self.n_vertices
    }
    #[inline]
    fn cell_edges(&self, c: usize) -> [u32; 3] {
        self.cell_edges[c]
    }
    #[inline]
    fn cell_edge_sign(&self, c: usize) -> [f64; 3] {
        self.cell_edge_sign[c]
    }
    #[inline]
    fn cell_area(&self, c: usize) -> f64 {
        self.cell_area[c]
    }
    #[inline]
    fn cell_center(&self, c: usize) -> Vec3 {
        self.cell_center[c]
    }
    #[inline]
    fn edge_cells(&self, e: usize) -> [u32; 2] {
        self.edge_cells[e]
    }
    #[inline]
    fn edge_vertices(&self, e: usize) -> [u32; 2] {
        self.edge_vertices[e]
    }
    #[inline]
    fn edge_length(&self, e: usize) -> f64 {
        self.edge_length[e]
    }
    #[inline]
    fn dual_edge_length(&self, e: usize) -> f64 {
        self.dual_edge_length[e]
    }
    #[inline]
    fn edge_normal(&self, e: usize) -> Vec3 {
        self.edge_normal[e]
    }
    #[inline]
    fn edge_tangent(&self, e: usize) -> Vec3 {
        self.edge_tangent[e]
    }
    #[inline]
    fn edge_coriolis(&self, e: usize) -> f64 {
        self.edge_coriolis[e]
    }
    #[inline]
    fn vertex_edges(&self, v: usize) -> [u32; 6] {
        self.vertex_edges[v]
    }
    #[inline]
    fn vertex_edge_sign(&self, v: usize) -> [f64; 6] {
        self.vertex_edge_sign[v]
    }
    #[inline]
    fn vertex_dual_area(&self, v: usize) -> f64 {
        self.vertex_dual_area[v]
    }
    #[inline]
    fn vertex_coriolis(&self, v: usize) -> f64 {
        self.vertex_coriolis[v]
    }
}

/// Divergence at cells of a normal-velocity (or normal-flux) edge field:
/// `div[c] = (1/A_c) * sum_e sign(c,e) * vn[e] * l_e`.
pub fn divergence<G: CGrid>(g: &G, vn: &Field3, out: &mut Field3) {
    let nlev = vn.nlev();
    debug_assert_eq!(out.nlev(), nlev);
    debug_assert_eq!(vn.n(), g.n_edges());
    debug_assert_eq!(out.n(), g.n_cells());
    out.as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(c, col)| {
            let edges = g.cell_edges(c);
            let signs = g.cell_edge_sign(c);
            let inv_a = 1.0 / g.cell_area(c);
            let e0 = vn.col(edges[0] as usize);
            let e1 = vn.col(edges[1] as usize);
            let e2 = vn.col(edges[2] as usize);
            let w0 = signs[0] * g.edge_length(edges[0] as usize) * inv_a;
            let w1 = signs[1] * g.edge_length(edges[1] as usize) * inv_a;
            let w2 = signs[2] * g.edge_length(edges[2] as usize) * inv_a;
            for k in 0..nlev {
                col[k] = w0 * e0[k] + w1 * e1[k] + w2 * e2[k];
            }
        });
}

/// Normal gradient at edges of a cell scalar:
/// `grad[e] = (s[c1] - s[c0]) / d_e` (positive along the edge normal,
/// which points from cell 0 to cell 1).
pub fn gradient<G: CGrid>(g: &G, s: &Field3, out: &mut Field3) {
    let nlev = s.nlev();
    debug_assert_eq!(s.n(), g.n_cells());
    debug_assert_eq!(out.n(), g.n_edges());
    out.as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(e, col)| {
            let [c0, c1] = g.edge_cells(e);
            let inv_d = 1.0 / g.dual_edge_length(e);
            let s0 = s.col(c0 as usize);
            let s1 = s.col(c1 as usize);
            for k in 0..nlev {
                col[k] = (s1[k] - s0[k]) * inv_d;
            }
        });
}

/// Relative vorticity at vertices: circulation around the dual cell divided
/// by the dual area, `zeta[v] = (1/A_v) * sum_e sign(v,e) * vn[e] * d_e`.
pub fn vorticity<G: CGrid>(g: &G, vn: &Field3, out: &mut Field3) {
    let nlev = vn.nlev();
    debug_assert_eq!(out.n(), g.n_vertices());
    out.as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(v, col)| {
            col.fill(0.0);
            let edges = g.vertex_edges(v);
            let signs = g.vertex_edge_sign(v);
            let inv_a = 1.0 / g.vertex_dual_area(v);
            for (slot, &e) in edges.iter().enumerate() {
                if e == u32::MAX {
                    continue;
                }
                let w = signs[slot] * g.dual_edge_length(e as usize) * inv_a;
                let ve = vn.col(e as usize);
                for k in 0..nlev {
                    col[k] += w * ve[k];
                }
            }
        });
}

/// Horizontal kinetic energy at cells from edge normal velocities, the
/// `z_ekinh` kernel of ICON's dynamical core (the paper's DaCe case study):
/// `K[c] = (1/A_c) * sum_e (l_e * d_e / 4) * vn[e]^2 ~ |V|^2 / 2`.
pub fn kinetic_energy<G: CGrid>(g: &G, vn: &Field3, out: &mut Field3) {
    let nlev = vn.nlev();
    debug_assert_eq!(out.n(), g.n_cells());
    out.as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(c, col)| {
            let edges = g.cell_edges(c);
            let inv_a = 1.0 / g.cell_area(c);
            let mut w = [0.0f64; 3];
            for i in 0..3 {
                let e = edges[i] as usize;
                w[i] = 0.25 * g.edge_length(e) * g.dual_edge_length(e) * inv_a;
            }
            let e0 = vn.col(edges[0] as usize);
            let e1 = vn.col(edges[1] as usize);
            let e2 = vn.col(edges[2] as usize);
            for k in 0..nlev {
                col[k] = w[0] * e0[k] * e0[k] + w[1] * e1[k] * e1[k] + w[2] * e2[k] * e2[k];
            }
        });
}

/// Arithmetic interpolation of a cell scalar to edges.
pub fn cells_to_edges<G: CGrid>(g: &G, s: &Field3, out: &mut Field3) {
    let nlev = s.nlev();
    debug_assert_eq!(out.n(), g.n_edges());
    out.as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(e, col)| {
            let [c0, c1] = g.edge_cells(e);
            let s0 = s.col(c0 as usize);
            let s1 = s.col(c1 as usize);
            for k in 0..nlev {
                col[k] = 0.5 * (s0[k] + s1[k]);
            }
        });
}

/// Reconstruct the full tangent-plane velocity vector at each cell center
/// from the normal components on the cell's three edges, by least squares
/// (`min_V sum_e (V . n_e - vn_e)^2`, regularized along the radial
/// direction where the solution is unconstrained).
pub fn reconstruct_cell_vectors<G: CGrid>(
    g: &G,
    vn: &Field3,
    out: &mut [Field3; 3],
) {
    let nlev = vn.nlev();
    let n_cells = g.n_cells();
    debug_assert!(out.iter().all(|f| f.n() == n_cells && f.nlev() == nlev));
    // Split the three output components so each parallel task owns one
    // cell's column in each.
    let [ox, oy, oz] = out;
    let (ox, oy, oz) = (ox.as_mut_slice(), oy.as_mut_slice(), oz.as_mut_slice());
    ox.par_chunks_mut(nlev)
        .zip(oy.par_chunks_mut(nlev))
        .zip(oz.par_chunks_mut(nlev))
        .enumerate()
        .for_each(|(c, ((cx, cy), cz))| {
            let edges = g.cell_edges(c);
            let r = g.cell_center(c);
            // M = sum n n^T + r r^T (the radial rank-1 term regularizes).
            let mut m = [[0.0f64; 3]; 3];
            let ns: Vec<Vec3> = edges.iter().map(|&e| g.edge_normal(e as usize)).collect();
            for n in &ns {
                accumulate_outer(&mut m, n);
            }
            accumulate_outer(&mut m, &r);
            let minv = invert3(&m);
            for k in 0..nlev {
                let mut rhs = Vec3::ZERO;
                for (i, n) in ns.iter().enumerate() {
                    rhs += n.scale(vn.at(edges[i] as usize, k));
                }
                let v = mat_vec(&minv, &rhs);
                cx[k] = v.x;
                cy[k] = v.y;
                cz[k] = v.z;
            }
        });
}

#[inline]
fn accumulate_outer(m: &mut [[f64; 3]; 3], v: &Vec3) {
    let a = [v.x, v.y, v.z];
    for i in 0..3 {
        for j in 0..3 {
            m[i][j] += a[i] * a[j];
        }
    }
}

#[inline]
fn invert3(m: &[[f64; 3]; 3]) -> [[f64; 3]; 3] {
    let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    debug_assert!(det.abs() > 1e-30, "singular reconstruction matrix");
    let inv_det = 1.0 / det;
    let mut r = [[0.0f64; 3]; 3];
    r[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
    r[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
    r[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
    r[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
    r[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
    r[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
    r[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
    r[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
    r[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
    r
}

#[inline]
fn mat_vec(m: &[[f64; 3]; 3], v: &Vec3) -> Vec3 {
    Vec3::new(
        m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
        m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
        m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
    )
}

/// Tangential velocity at edges: average of the reconstructed full vectors
/// of the two adjacent cells, projected on the edge tangent.
pub fn tangential_velocity<G: CGrid>(g: &G, cell_vec: &[Field3; 3], out: &mut Field3) {
    let nlev = out.nlev();
    debug_assert_eq!(out.n(), g.n_edges());
    let [vx, vy, vz] = cell_vec;
    out.as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(e, col)| {
            let [c0, c1] = g.edge_cells(e);
            let t = g.edge_tangent(e);
            let (c0, c1) = (c0 as usize, c1 as usize);
            for (k, ck) in col.iter_mut().enumerate().take(nlev) {
                let v = Vec3::new(
                    0.5 * (vx.at(c0, k) + vx.at(c1, k)),
                    0.5 * (vy.at(c0, k) + vy.at(c1, k)),
                    0.5 * (vz.at(c0, k) + vz.at(c1, k)),
                );
                *ck = v.dot(&t);
            }
        });
}

/// First-order upwind flux divergence of a cell tracer `q` advected by the
/// edge normal velocity `vn` (per unit area):
/// `out[c] = (1/A_c) * sum_e sign(c,e) * l_e * vn[e] * q_upwind(e)`.
///
/// The upwind value is `q[c0]` when `vn >= 0` (flow from cell 0 to cell 1)
/// and `q[c1]` otherwise. Monotone and positivity-preserving under CFL.
pub fn flux_divergence_upwind<G: CGrid>(g: &G, vn: &Field3, q: &Field3, out: &mut Field3) {
    let nlev = vn.nlev();
    debug_assert_eq!(out.n(), g.n_cells());
    out.as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(c, col)| {
            let edges = g.cell_edges(c);
            let signs = g.cell_edge_sign(c);
            let inv_a = 1.0 / g.cell_area(c);
            col.fill(0.0);
            for i in 0..3 {
                let e = edges[i] as usize;
                let [c0, c1] = g.edge_cells(e);
                let w = signs[i] * g.edge_length(e) * inv_a;
                let q0 = q.col(c0 as usize);
                let q1 = q.col(c1 as usize);
                let ve = vn.col(e);
                for k in 0..nlev {
                    let qup = if ve[k] >= 0.0 { q0[k] } else { q1[k] };
                    col[k] += w * ve[k] * qup;
                }
            }
        });
}

/// Scalar Laplacian at cells (divergence of the edge-normal gradient) —
/// used for horizontal diffusion. `out[c] = div(grad s)[c]`.
pub fn laplacian<G: CGrid>(g: &G, s: &Field3, scratch_edges: &mut Field3, out: &mut Field3) {
    gradient(g, s, scratch_edges);
    divergence(g, scratch_edges, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::local_east_north;
    use crate::Grid;

    fn grid() -> Grid {
        Grid::build(3, crate::EARTH_RADIUS_M)
    }

    /// Set edge normal velocities from an analytic tangent vector field.
    fn edge_field_from(g: &Grid, f: impl Fn(&Vec3) -> Vec3, nlev: usize) -> Field3 {
        Field3::from_fn(g.n_edges, nlev, |e, _| {
            f(&g.edge_midpoint[e]).dot(&g.edge_normal[e])
        })
    }

    #[test]
    fn divergence_of_solid_body_rotation_is_zero() {
        // V = Omega x r is divergence-free.
        let g = grid();
        let axis = Vec3::new(0.3, -0.2, 0.9).normalized();
        let vn = edge_field_from(&g, |p| axis.cross(p).scale(g.radius * 1e-5), 2);
        let mut div = Field3::zeros(g.n_cells, 2);
        divergence(&g, &vn, &mut div);
        // Scale: velocity ~ 60 m/s over cells of ~600 km: relative div small.
        let vmax = 2.0 * g.radius * 1e-5;
        let lmin = g.min_dual_edge_m();
        for c in 0..g.n_cells {
            assert!(
                div.at(c, 0).abs() < 0.05 * vmax / lmin,
                "cell {c}: div {}",
                div.at(c, 0)
            );
        }
    }

    #[test]
    fn gauss_theorem_divergence_integrates_to_zero() {
        // Area integral of the divergence of any edge field vanishes on the
        // closed sphere (telescoping fluxes) -- to rounding.
        let g = grid();
        let vn = Field3::from_fn(g.n_edges, 1, |e, _| ((e * 2654435761) % 1000) as f64 - 500.0);
        let mut div = Field3::zeros(g.n_cells, 1);
        divergence(&g, &vn, &mut div);
        let integral = div.weighted_sum(&g.cell_area);
        let scale: f64 = vn
            .as_slice()
            .iter()
            .enumerate()
            .map(|(e, v)| (v * g.edge_length[e % g.n_edges]).abs())
            .sum();
        assert!(integral.abs() < 1e-9 * scale, "integral {integral}");
    }

    #[test]
    fn gradient_of_constant_is_zero() {
        let g = grid();
        let s = Field3::from_fn(g.n_cells, 3, |_, _| 42.0);
        let mut grad = Field3::zeros(g.n_edges, 3);
        gradient(&g, &s, &mut grad);
        assert!(grad.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_points_uphill() {
        // s = z (latitude-like): gradient normal component should match the
        // analytic tangential gradient direction.
        let g = grid();
        let s = Field3::from_fn(g.n_cells, 1, |c, _| g.cell_center[c].z);
        let mut grad = Field3::zeros(g.n_edges, 1);
        gradient(&g, &s, &mut grad);
        for e in 0..g.n_edges {
            let m = g.edge_midpoint[e];
            // grad(z) on the sphere = north * cos(lat) / R
            let (_, north) = local_east_north(&m);
            let analytic = north.scale(m.lat().cos() / g.radius).dot(&g.edge_normal[e]);
            let got = grad.at(e, 0);
            assert!(
                (got - analytic).abs() < 0.1 * (1.0 / g.radius) + 0.05 * analytic.abs(),
                "edge {e}: got {got}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn vorticity_of_solid_body_rotation() {
        // V = W x r has vorticity 2*W.r_hat (i.e. 2W at the axis pole).
        let g = grid();
        let w = 1e-5;
        let axis = Vec3::new(0.0, 0.0, 1.0);
        let vn = edge_field_from(&g, |p| axis.cross(p).scale(g.radius * w), 1);
        let mut zeta = Field3::zeros(g.n_vertices, 1);
        vorticity(&g, &vn, &mut zeta);
        for v in 0..g.n_vertices {
            let analytic = 2.0 * w * g.vertex_pos[v].z;
            // Barycentric (rather than Voronoi) dual areas give ~15 % error
            // at the 12 pentagon vertices, much less at hexagons.
            assert!(
                (zeta.at(v, 0) - analytic).abs() < 0.16 * 2.0 * w,
                "vertex {v}: {} vs {analytic}",
                zeta.at(v, 0)
            );
        }
        // Global circulation-weighted mean is exact (Stokes on the sphere).
        let mut num = 0.0;
        let mut den = 0.0;
        for v in 0..g.n_vertices {
            num += zeta.at(v, 0) * g.vertex_dual_area[v];
            den += g.vertex_dual_area[v];
        }
        assert!((num / den).abs() < 1e-18);
    }

    #[test]
    fn kinetic_energy_of_solid_body_flow() {
        // K ~ |V|^2/2 for the locally uniform solid-body flow V = a x r.
        let g = grid();
        let speed = 10.0;
        let axis = Vec3::new(1.0, 0.0, 0.0).scale(speed);
        let vn = edge_field_from(&g, |p| axis.cross(p), 1);
        let mut ke = Field3::zeros(g.n_cells, 1);
        kinetic_energy(&g, &vn, &mut ke);
        for c in 0..g.n_cells {
            let p = g.cell_center[c];
            let analytic = 0.5 * axis.cross(&p).norm2();
            assert!(
                (ke.at(c, 0) - analytic).abs() < 0.2 * (0.5 * speed * speed),
                "cell {c}: K={} vs {analytic}",
                ke.at(c, 0)
            );
        }
    }

    #[test]
    fn kinetic_energy_weights_sum_to_cell_area() {
        // sum_e l_e*d_e/4 == A_c on an orthogonal C-grid (up to spherical
        // discretization error).
        let g = grid();
        for c in 0..g.n_cells {
            let w: f64 = g.cell_edges[c]
                .iter()
                .map(|&e| 0.25 * g.edge_length[e as usize] * g.dual_edge_length[e as usize])
                .sum();
            assert!(
                (w / g.cell_area[c] - 1.0).abs() < 0.12,
                "cell {c}: weight sum ratio {}",
                w / g.cell_area[c]
            );
        }
    }

    #[test]
    fn reconstruction_recovers_uniform_field() {
        let g = grid();
        // A smooth tangent field: V = a x r for fixed a (solid body).
        let a = Vec3::new(0.1, 0.7, 0.3);
        let vn = edge_field_from(&g, |p| a.cross(p), 1);
        let mut out = [
            Field3::zeros(g.n_cells, 1),
            Field3::zeros(g.n_cells, 1),
            Field3::zeros(g.n_cells, 1),
        ];
        reconstruct_cell_vectors(&g, &vn, &mut out);
        for c in 0..g.n_cells {
            let p = g.cell_center[c];
            let analytic = a.cross(&p);
            let got = Vec3::new(out[0].at(c, 0), out[1].at(c, 0), out[2].at(c, 0));
            assert!(
                (got - analytic).norm() < 0.08 * a.norm(),
                "cell {c}: {got:?} vs {analytic:?}"
            );
        }
    }

    #[test]
    fn tangential_velocity_of_solid_body() {
        let g = grid();
        let a = Vec3::new(0.0, 0.0, 1.0);
        let vn = edge_field_from(&g, |p| a.cross(p), 1);
        let mut cv = [
            Field3::zeros(g.n_cells, 1),
            Field3::zeros(g.n_cells, 1),
            Field3::zeros(g.n_cells, 1),
        ];
        reconstruct_cell_vectors(&g, &vn, &mut cv);
        let mut vt = Field3::zeros(g.n_edges, 1);
        tangential_velocity(&g, &cv, &mut vt);
        for e in 0..g.n_edges {
            let analytic = a.cross(&g.edge_midpoint[e]).dot(&g.edge_tangent[e]);
            assert!(
                (vt.at(e, 0) - analytic).abs() < 0.08,
                "edge {e}: {} vs {analytic}",
                vt.at(e, 0)
            );
        }
    }

    #[test]
    fn upwind_advection_conserves_tracer_mass() {
        let g = grid();
        let axis = Vec3::new(0.2, 0.3, 0.9).normalized();
        let vn = edge_field_from(&g, |p| axis.cross(p).scale(20.0), 1);
        let q = Field3::from_fn(g.n_cells, 1, |c, _| 1.0 + g.cell_center[c].x);
        let mut tend = Field3::zeros(g.n_cells, 1);
        flux_divergence_upwind(&g, &vn, &q, &mut tend);
        // sum_c A_c * tend_c == 0 (every edge flux appears twice, opposite).
        let total = tend.weighted_sum(&g.cell_area);
        let scale: f64 = q.weighted_sum(&g.cell_area);
        assert!(total.abs() < 1e-10 * scale.abs());
    }

    #[test]
    fn laplacian_of_linear_z_is_smooth() {
        // Laplacian of the first spherical harmonic z: lap(Y1) = -2/R^2 * Y1.
        let g = grid();
        let s = Field3::from_fn(g.n_cells, 1, |c, _| g.cell_center[c].z);
        let mut scratch = Field3::zeros(g.n_edges, 1);
        let mut lap = Field3::zeros(g.n_cells, 1);
        laplacian(&g, &s, &mut scratch, &mut lap);
        let k = -2.0 / (g.radius * g.radius);
        for c in 0..g.n_cells {
            let analytic = k * g.cell_center[c].z;
            assert!(
                (lap.at(c, 0) - analytic).abs() < 0.4 * k.abs(),
                "cell {c}: {} vs {analytic}",
                lap.at(c, 0)
            );
        }
    }
}
