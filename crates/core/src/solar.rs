//! Diurnal insolation forcing (equinoctial orbit: no seasonal cycle,
//! documented substitution — the paper initializes on 1 January 2020 with
//! full orbital geometry).

use icongrid::geom::Vec3;

/// Solar constant (W/m^2).
pub const SOLAR_CONSTANT: f64 = 1361.0;

/// Clear-sky shortwave transmission.
pub const TRANSMISSION: f64 = 0.75;

/// Downward shortwave at the surface for a unit-sphere position `p` at
/// simulated time `t` (s). Declination 0 (equinox): the subsolar point
/// circles the equator once per day starting at longitude 0.
pub fn sw_down(p: &Vec3, time_s: f64) -> f64 {
    let lon = p.y.atan2(p.x);
    let lat = p.z.asin();
    let hour_angle = 2.0 * std::f64::consts::PI * (time_s / 86_400.0) - lon;
    let cos_zenith = lat.cos() * hour_angle.cos();
    SOLAR_CONSTANT * TRANSMISSION * cos_zenith.max(0.0)
}

/// Daily-mean shortwave at latitude (radians), equinox: `S T cos(lat)/pi`.
pub fn sw_daily_mean(lat: f64) -> f64 {
    SOLAR_CONSTANT * TRANSMISSION * lat.cos() / std::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn night_side_is_dark() {
        // Subsolar longitude at t=0 is 0; the antipode is dark.
        let p = Vec3::from_lonlat(PI, 0.0);
        assert_eq!(sw_down(&p, 0.0), 0.0);
        // Subsolar point gets the full transmitted beam.
        let s = Vec3::from_lonlat(0.0, 0.0);
        assert!((sw_down(&s, 0.0) - SOLAR_CONSTANT * TRANSMISSION).abs() < 1e-9);
    }

    #[test]
    fn diurnal_cycle_returns_after_a_day() {
        let p = Vec3::from_lonlat(1.0, 0.4);
        let a = sw_down(&p, 10_000.0);
        let b = sw_down(&p, 10_000.0 + 86_400.0);
        assert!((a - b).abs() < 1e-9);
        // And differs at other hours.
        let c = sw_down(&p, 10_000.0 + 43_200.0);
        assert_ne!(a > 0.0, c > 0.0, "day and night alternate");
    }

    #[test]
    fn poles_get_grazing_light() {
        let pole = Vec3::from_lonlat(0.0, PI / 2.0 - 1e-6);
        for frac in [0.0, 0.25, 0.5, 0.75] {
            assert!(sw_down(&pole, frac * 86_400.0) < 1.0);
        }
    }

    #[test]
    fn numerical_daily_mean_matches_analytic() {
        let lat = 0.7;
        let p = Vec3::from_lonlat(0.3, lat);
        let n = 4800;
        let mean = (0..n)
            .map(|i| sw_down(&p, i as f64 * 86_400.0 / n as f64))
            .sum::<f64>()
            / n as f64;
        let analytic = sw_daily_mean(lat);
        assert!(
            (mean / analytic - 1.0).abs() < 1e-3,
            "{mean} vs {analytic}"
        );
    }
}
