//! Virtual file-system layer: every file operation the I/O path performs
//! goes through the [`Storage`] trait, so the checkpoint and output code
//! can run against the real file system ([`RealFs`]) or a seeded
//! fault-injecting backend ([`FaultFs`]) — the storage analog of
//! `mpisim::FaultPlan`.
//!
//! ## Fault model
//!
//! [`FaultFs`] wraps the real file system and injects faults from a
//! deterministic plan ([`StorageFault`], mirroring `mpisim`'s one-shot
//! planned faults):
//!
//! * **transient `EIO`** — the *n*-th write-class op fails once, cleanly
//!   (nothing reaches disk); a retry sails through;
//! * **persistent `ENOSPC`** — from the *n*-th write-class op on, every
//!   write fails with "no space left on device";
//! * **torn writes** — the *n*-th write-class op persists only the first
//!   `keep` bytes, then fails (a partially-flushed page at process death);
//! * **fsync lies** — the *n*-th fsync-class op returns `Ok` without
//!   making anything durable (a volatile write cache), observable only
//!   via [`FaultFs::simulate_power_loss`];
//! * **rename failures** — the *n*-th rename fails with `EIO`;
//! * **read failures** — the *n*-th read-class op fails once with `EIO`;
//! * **crash points** — after the *k*-th operation of any kind, every
//!   subsequent op fails ([`FaultFs::crash_after`]), simulating process
//!   death at an arbitrary point in the op stream. The op counter
//!   ([`FaultFs::ops`]) and log ([`FaultFs::op_log`]) let a harness
//!   *enumerate* every crash point in an I/O sequence.
//!
//! ## Durability model
//!
//! `FaultFs` additionally tracks what a power loss would destroy, with
//! deliberately pessimistic POSIX crash semantics:
//!
//! * file **content** is durable up to the length at the last honest
//!   `fsync` of that file (`0` for never-synced writes);
//! * a **directory entry** (a freshly created or renamed name) is durable
//!   only after an honest `fsync_dir` of its parent directory;
//! * files that existed before `FaultFs` first touched them are fully
//!   durable; `remove` is treated as immediately durable.
//!
//! [`FaultFs::simulate_power_loss`] applies the model to the real
//! directory tree: non-durable entries are deleted and surviving files
//! are truncated to their durable length. A recovery path that survives
//! this pessimistic model survives any real crash ordering.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Every file operation the I/O path performs. Object-safe so drivers can
/// hold an `Arc<dyn Storage>` chosen at run time.
pub trait Storage: Send + Sync + std::fmt::Debug {
    /// Create `dir` and any missing ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Create (or truncate) `path` and write `bytes`. Not durable until
    /// [`Storage::fsync`].
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Append `bytes` to `path`, creating it if missing.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flush `path`'s content to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Flush `dir`'s entries (creations, renames) to stable storage.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to` (same directory in practice).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Read the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// All *file* paths directly inside `dir`, sorted.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Remove the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The real file system. `fsync`/`fsync_dir` map to `File::sync_all` on
/// the opened file or directory handle.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl RealFs {
    /// A shareable trait object of the real backend.
    pub fn shared() -> Arc<dyn Storage> {
        Arc::new(RealFs)
    }
}

impl Storage for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(bytes)?;
        f.flush()
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = File::options().create(true).append(true).open(path)?;
        f.write_all(bytes)?;
        f.flush()
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directories open read-only; sync_all flushes the entries.
        File::open(dir)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .map(|e| e.path())
            .collect();
        out.sort();
        Ok(out)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// Kind of one storage operation, for the op log and fault matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    CreateDirAll,
    Write,
    Append,
    Fsync,
    FsyncDir,
    Rename,
    Read,
    List,
    Remove,
}

impl OpKind {
    /// Write-class ops are the ones `ENOSPC`, torn writes, and transient
    /// write errors target.
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::Write | OpKind::Append)
    }

    /// Fsync-class ops are the ones fsync lies target.
    pub fn is_fsync(self) -> bool {
        matches!(self, OpKind::Fsync | OpKind::FsyncDir)
    }

    /// Read-class ops are the ones read failures target.
    pub fn is_read(self) -> bool {
        matches!(self, OpKind::Read | OpKind::List)
    }
}

/// One recorded operation: global 1-based index, kind, and path(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    pub index: u64,
    pub kind: OpKind,
    pub path: PathBuf,
    /// Destination of a rename; `None` for every other kind.
    pub dest: Option<PathBuf>,
}

/// One planned storage fault. All `nth` counters are 1-based and count
/// *matching* operations (write-class, fsync-class, rename, read-class).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageFault {
    /// The `nth` write-class op fails once with `EIO`; nothing is written.
    TransientIo { nth_write: u64 },
    /// From the `nth` write-class op on, every write fails with `ENOSPC`.
    NoSpace { nth_write: u64 },
    /// The `nth` write-class op persists only the first `keep` bytes,
    /// then fails with `EIO`.
    TornWrite { nth_write: u64, keep: usize },
    /// The `nth` fsync-class op returns `Ok` without making anything
    /// durable.
    FsyncLie { nth_fsync: u64 },
    /// The `nth` rename fails once with `EIO`.
    RenameFail { nth_rename: u64 },
    /// The `nth` read-class op fails once with `EIO`.
    ReadFail { nth_read: u64 },
}

/// Counters of storage faults actually injected, for post-run assertions
/// (the analog of `mpisim::FaultReport`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageFaultReport {
    pub transient_io: u64,
    pub no_space: u64,
    pub torn_writes: u64,
    pub fsync_lies: u64,
    pub rename_failures: u64,
    pub read_failures: u64,
    /// Operations refused because the crash point had been reached.
    pub crashed_ops: u64,
}

impl StorageFaultReport {
    /// Faults injected, not counting post-crash refusals.
    pub fn total(&self) -> u64 {
        self.transient_io
            + self.no_space
            + self.torn_writes
            + self.fsync_lies
            + self.rename_failures
            + self.read_failures
    }
}

/// Durability tracking of one file the `FaultFs` has touched.
#[derive(Debug, Clone)]
struct FileDurability {
    /// Content bytes guaranteed on media (length at the last honest fsync).
    durable_len: u64,
    /// Current content length.
    cur_len: u64,
    /// Whether the directory entry would survive power loss.
    entry_durable: bool,
}

#[derive(Debug, Default)]
struct FaultState {
    ops: u64,
    writes: u64,
    fsyncs: u64,
    renames: u64,
    reads: u64,
    faults: Vec<StorageFault>,
    crash_after: Option<u64>,
    no_space: bool,
    log: Vec<OpRecord>,
    report: StorageFaultReport,
    files: HashMap<PathBuf, FileDurability>,
}

/// Seeded fault-injecting [`Storage`] backend over the real file system.
pub struct FaultFs {
    inner: RealFs,
    state: Mutex<FaultState>,
}

// Manual impl: the shim `parking_lot::Mutex` has no `Debug`.
impl std::fmt::Debug for FaultFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("FaultFs")
            .field("ops", &st.ops)
            .field("pending", &st.faults)
            .field("crash_after", &st.crash_after)
            .field("report", &st.report)
            .finish()
    }
}

impl Default for FaultFs {
    fn default() -> FaultFs {
        FaultFs::new()
    }
}

fn eio(context: &str) -> io::Error {
    io::Error::other(format!("injected I/O error: {context}"))
}

fn enospc() -> io::Error {
    // Raw ENOSPC so callers see the real error kind ("No space left on
    // device") rather than a synthetic message.
    io::Error::from_raw_os_error(28)
}

fn crashed() -> io::Error {
    io::Error::other("simulated crash: storage unreachable")
}

impl FaultFs {
    /// A fault-free `FaultFs` — still counts and logs every op, so a
    /// probe run can enumerate crash points.
    pub fn new() -> FaultFs {
        FaultFs {
            inner: RealFs,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Deterministically generate `n_faults` *transient* faults from
    /// `seed` (torn writes, one-shot write errors, fsync lies, rename
    /// failures — never `ENOSPC` or crashes, which are persistent and
    /// scheduled explicitly). The same seed always yields the same plan.
    pub fn seeded(seed: u64, n_faults: usize) -> FaultFs {
        let plan = FaultFs::new();
        let mut rng = Splitmix64::new(seed);
        {
            let mut st = plan.state.lock();
            for _ in 0..n_faults {
                let nth = 1 + rng.next() % 20;
                let fault = match rng.next() % 4 {
                    0 => StorageFault::TransientIo { nth_write: nth },
                    1 => StorageFault::TornWrite {
                        nth_write: nth,
                        keep: (rng.next() % 64) as usize,
                    },
                    2 => StorageFault::FsyncLie { nth_fsync: nth },
                    _ => StorageFault::RenameFail { nth_rename: nth },
                };
                st.faults.push(fault);
            }
        }
        plan
    }

    /// Add one explicit fault (builder style).
    pub fn fault(self, fault: StorageFault) -> FaultFs {
        self.state.lock().faults.push(fault);
        self
    }

    /// Crash after the `k`-th operation: ops `1..=k` proceed (subject to
    /// other faults), every later op fails. `k = 0` means storage is dead
    /// from the first op.
    pub fn crash_after(self, k: u64) -> FaultFs {
        self.state.lock().crash_after = Some(k);
        self
    }

    /// Reschedule (or clear) the crash point on a live instance.
    pub fn set_crash_after(&self, k: Option<u64>) {
        self.state.lock().crash_after = k;
    }

    /// Total operations attempted so far (including refused ones).
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// The full operation log.
    pub fn op_log(&self) -> Vec<OpRecord> {
        self.state.lock().log.clone()
    }

    /// What has been injected so far.
    pub fn report(&self) -> StorageFaultReport {
        self.state.lock().report.clone()
    }

    /// The faults still pending (not yet fired).
    pub fn pending(&self) -> Vec<StorageFault> {
        self.state.lock().faults.clone()
    }

    /// Apply the durability model to the real directory tree: delete
    /// every file whose directory entry was never made durable, truncate
    /// every surviving tracked file to its durable content length, and
    /// reset the tracking (the disk now *is* the durable state). Returns
    /// the number of files removed and truncated.
    pub fn simulate_power_loss(&self) -> io::Result<(usize, usize)> {
        let files: Vec<(PathBuf, FileDurability)> = {
            let mut st = self.state.lock();
            let drained = st.files.drain().collect();
            drained
        };
        let (mut removed, mut truncated) = (0, 0);
        for (path, d) in files {
            if !path.exists() {
                continue;
            }
            if !d.entry_durable {
                fs::remove_file(&path)?;
                removed += 1;
            } else if d.durable_len < d.cur_len {
                let f = File::options().write(true).open(&path)?;
                f.set_len(d.durable_len)?;
                f.sync_all()?;
                truncated += 1;
            }
        }
        Ok((removed, truncated))
    }

    /// Record an op attempt; `Err` if the crash point has been reached.
    fn begin(&self, st: &mut FaultState, kind: OpKind, path: &Path, dest: Option<&Path>) -> io::Result<()> {
        st.ops += 1;
        st.log.push(OpRecord {
            index: st.ops,
            kind,
            path: path.to_path_buf(),
            dest: dest.map(Path::to_path_buf),
        });
        if let Some(k) = st.crash_after {
            if st.ops > k {
                st.report.crashed_ops += 1;
                return Err(crashed());
            }
        }
        Ok(())
    }

    /// Consume the first pending fault matched by `pick`.
    fn take<F: Fn(&StorageFault) -> bool>(st: &mut FaultState, pick: F) -> Option<StorageFault> {
        let idx = st.faults.iter().position(pick)?;
        Some(st.faults.remove(idx))
    }

    /// Fault gate for a write-class op. Returns the byte budget: `None`
    /// for a full write, `Some(keep)` for a torn one (caller persists
    /// `keep` bytes then reports `EIO`).
    fn write_gate(&self, st: &mut FaultState, path: &Path) -> io::Result<Option<usize>> {
        st.writes += 1;
        let nth = st.writes;
        if st.no_space {
            st.report.no_space += 1;
            return Err(enospc());
        }
        if Self::take(st, |f| matches!(f, StorageFault::NoSpace { nth_write } if *nth_write <= nth))
            .is_some()
        {
            st.no_space = true;
            st.report.no_space += 1;
            return Err(enospc());
        }
        if Self::take(st, |f| matches!(f, StorageFault::TransientIo { nth_write } if *nth_write == nth))
            .is_some()
        {
            st.report.transient_io += 1;
            return Err(eio(&format!("transient write failure on {}", path.display())));
        }
        if let Some(StorageFault::TornWrite { keep, .. }) =
            Self::take(st, |f| matches!(f, StorageFault::TornWrite { nth_write, .. } if *nth_write == nth))
        {
            st.report.torn_writes += 1;
            return Ok(Some(keep));
        }
        Ok(None)
    }

    /// True if this fsync-class op should lie (report success, sync
    /// nothing).
    fn fsync_lies(&self, st: &mut FaultState) -> bool {
        st.fsyncs += 1;
        let nth = st.fsyncs;
        if Self::take(st, |f| matches!(f, StorageFault::FsyncLie { nth_fsync } if *nth_fsync == nth))
            .is_some()
        {
            st.report.fsync_lies += 1;
            true
        } else {
            false
        }
    }

    fn read_gate(&self, st: &mut FaultState, path: &Path) -> io::Result<()> {
        st.reads += 1;
        let nth = st.reads;
        if Self::take(st, |f| matches!(f, StorageFault::ReadFail { nth_read } if *nth_read == nth))
            .is_some()
        {
            st.report.read_failures += 1;
            return Err(eio(&format!("transient read failure on {}", path.display())));
        }
        Ok(())
    }

    /// Current tracked state of `path`, adopting pre-existing files as
    /// fully durable.
    fn track(st: &mut FaultState, path: &Path) -> FileDurability {
        if let Some(d) = st.files.get(path) {
            return d.clone();
        }
        let len = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let existed = path.exists();
        let d = FileDurability {
            durable_len: if existed { len } else { 0 },
            cur_len: len,
            entry_durable: existed,
        };
        st.files.insert(path.to_path_buf(), d.clone());
        d
    }
}

impl Storage for FaultFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        self.begin(&mut st, OpKind::CreateDirAll, dir, None)?;
        drop(st);
        // Directory creation is treated as durable: the interesting crash
        // surface is files and their entries, not mkdir.
        self.inner.create_dir_all(dir)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock();
        self.begin(&mut st, OpKind::Write, path, None)?;
        let torn = self.write_gate(&mut st, path)?;
        let mut d = Self::track(&mut st, path);
        match torn {
            Some(keep) => {
                let keep = keep.min(bytes.len());
                self.inner.write(path, &bytes[..keep])?;
                d.cur_len = keep as u64;
                d.durable_len = 0;
                st.files.insert(path.to_path_buf(), d);
                Err(eio(&format!(
                    "torn write on {} ({} of {} bytes persisted)",
                    path.display(),
                    keep,
                    bytes.len()
                )))
            }
            None => {
                self.inner.write(path, bytes)?;
                // An overwrite rewrites the content in the cache: nothing
                // of the new content is durable until the next fsync.
                d.cur_len = bytes.len() as u64;
                d.durable_len = 0;
                st.files.insert(path.to_path_buf(), d);
                Ok(())
            }
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock();
        self.begin(&mut st, OpKind::Append, path, None)?;
        let torn = self.write_gate(&mut st, path)?;
        let mut d = Self::track(&mut st, path);
        match torn {
            Some(keep) => {
                let keep = keep.min(bytes.len());
                self.inner.append(path, &bytes[..keep])?;
                d.cur_len += keep as u64;
                st.files.insert(path.to_path_buf(), d);
                Err(eio(&format!(
                    "torn append on {} ({} of {} bytes persisted)",
                    path.display(),
                    keep,
                    bytes.len()
                )))
            }
            None => {
                self.inner.append(path, bytes)?;
                d.cur_len += bytes.len() as u64;
                st.files.insert(path.to_path_buf(), d);
                Ok(())
            }
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        self.begin(&mut st, OpKind::Fsync, path, None)?;
        if self.fsync_lies(&mut st) {
            return Ok(());
        }
        let mut d = Self::track(&mut st, path);
        d.durable_len = d.cur_len;
        st.files.insert(path.to_path_buf(), d);
        drop(st);
        self.inner.fsync(path)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        self.begin(&mut st, OpKind::FsyncDir, dir, None)?;
        if self.fsync_lies(&mut st) {
            return Ok(());
        }
        for (path, d) in st.files.iter_mut() {
            if path.parent() == Some(dir) {
                d.entry_durable = true;
            }
        }
        drop(st);
        self.inner.fsync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        self.begin(&mut st, OpKind::Rename, from, Some(to))?;
        st.renames += 1;
        let nth = st.renames;
        if Self::take(&mut st, |f| matches!(f, StorageFault::RenameFail { nth_rename } if *nth_rename == nth))
            .is_some()
        {
            st.report.rename_failures += 1;
            return Err(eio(&format!(
                "rename failure {} -> {}",
                from.display(),
                to.display()
            )));
        }
        let d = Self::track(&mut st, from);
        self.inner.rename(from, to)?;
        st.files.remove(from);
        st.files.insert(
            to.to_path_buf(),
            FileDurability {
                durable_len: d.durable_len,
                cur_len: d.cur_len,
                // The new name is a fresh directory entry: volatile until
                // the parent directory is fsynced.
                entry_durable: false,
            },
        );
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = self.state.lock();
        self.begin(&mut st, OpKind::Read, path, None)?;
        self.read_gate(&mut st, path)?;
        drop(st);
        self.inner.read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut st = self.state.lock();
        self.begin(&mut st, OpKind::List, dir, None)?;
        self.read_gate(&mut st, dir)?;
        drop(st);
        self.inner.list(dir)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        self.begin(&mut st, OpKind::Remove, path, None)?;
        st.files.remove(path);
        drop(st);
        self.inner.remove(path)
    }
}

/// Small deterministic RNG for seeded plans (same generator as
/// `mpisim::FaultPlan`).
struct Splitmix64 {
    state: u64,
}

impl Splitmix64 {
    fn new(seed: u64) -> Splitmix64 {
        Splitmix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restart::scratch_dir;

    #[test]
    fn realfs_roundtrip_and_list() {
        let dir = scratch_dir("vfs_real");
        let s = RealFs;
        s.create_dir_all(&dir).unwrap();
        s.write(&dir.join("a.bin"), b"hello").unwrap();
        s.append(&dir.join("a.bin"), b" world").unwrap();
        s.fsync(&dir.join("a.bin")).unwrap();
        s.fsync_dir(&dir).unwrap();
        assert_eq!(s.read(&dir.join("a.bin")).unwrap(), b"hello world");
        s.rename(&dir.join("a.bin"), &dir.join("b.bin")).unwrap();
        assert_eq!(s.list(&dir).unwrap(), vec![dir.join("b.bin")]);
        s.remove(&dir.join("b.bin")).unwrap();
        assert!(s.list(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_seed_same_plan() {
        let a = FaultFs::seeded(42, 8);
        let b = FaultFs::seeded(42, 8);
        assert_eq!(a.pending(), b.pending());
        let c = FaultFs::seeded(43, 8);
        assert_ne!(a.pending(), c.pending());
    }

    #[test]
    fn transient_write_fault_fires_once() {
        let dir = scratch_dir("vfs_transient");
        let s = FaultFs::new().fault(StorageFault::TransientIo { nth_write: 1 });
        s.create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        assert!(s.write(&p, b"data").is_err(), "first write fails");
        assert!(!p.exists(), "a transient failure writes nothing");
        s.write(&p, b"data").unwrap();
        assert_eq!(s.read(&p).unwrap(), b"data");
        assert_eq!(s.report().transient_io, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_is_persistent() {
        let dir = scratch_dir("vfs_enospc");
        let s = FaultFs::new().fault(StorageFault::NoSpace { nth_write: 2 });
        s.create_dir_all(&dir).unwrap();
        s.write(&dir.join("a"), b"ok").unwrap();
        for i in 0..3 {
            let err = s.write(&dir.join("b"), b"fails").unwrap_err();
            assert_eq!(err.raw_os_error(), Some(28), "attempt {i}: {err}");
        }
        assert_eq!(s.report().no_space, 3);
        // Reads keep working under ENOSPC.
        assert_eq!(s.read(&dir.join("a")).unwrap(), b"ok");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_persists_a_prefix() {
        let dir = scratch_dir("vfs_torn");
        let s = FaultFs::new().fault(StorageFault::TornWrite { nth_write: 1, keep: 3 });
        s.create_dir_all(&dir).unwrap();
        let p = dir.join("t.bin");
        assert!(s.write(&p, b"abcdef").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"abc", "exactly `keep` bytes persisted");
        assert_eq!(s.report().torn_writes, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_point_kills_all_later_ops() {
        let dir = scratch_dir("vfs_crash");
        let s = FaultFs::new().crash_after(2);
        s.create_dir_all(&dir).unwrap(); // op 1
        s.write(&dir.join("a"), b"x").unwrap(); // op 2
        assert!(s.write(&dir.join("b"), b"y").is_err()); // op 3: dead
        assert!(s.read(&dir.join("a")).is_err()); // op 4: dead
        assert_eq!(s.report().crashed_ops, 2);
        assert_eq!(s.ops(), 4, "refused ops are still counted");
        s.set_crash_after(None);
        assert_eq!(s.read(&dir.join("a")).unwrap(), b"x");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn op_log_records_kinds_and_paths() {
        let dir = scratch_dir("vfs_log");
        let s = FaultFs::new();
        s.create_dir_all(&dir).unwrap();
        s.write(&dir.join("a"), b"1").unwrap();
        s.rename(&dir.join("a"), &dir.join("b")).unwrap();
        s.fsync_dir(&dir).unwrap();
        let log = s.op_log();
        let kinds: Vec<OpKind> = log.iter().map(|o| o.kind).collect();
        assert_eq!(
            kinds,
            vec![OpKind::CreateDirAll, OpKind::Write, OpKind::Rename, OpKind::FsyncDir]
        );
        assert_eq!(log[2].dest.as_deref(), Some(dir.join("b").as_path()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn power_loss_drops_unsynced_content_and_volatile_entries() {
        let dir = scratch_dir("vfs_power");
        let s = FaultFs::new();
        s.create_dir_all(&dir).unwrap();

        // Fully durable: write + fsync + dir fsync.
        s.write(&dir.join("durable"), b"keep me").unwrap();
        s.fsync(&dir.join("durable")).unwrap();
        // Entry made durable by the dir fsync, but the appended tail is
        // never synced: truncated back on power loss.
        s.write(&dir.join("partial"), b"12345").unwrap();
        s.fsync(&dir.join("partial")).unwrap();
        s.fsync_dir(&dir).unwrap();
        s.append(&dir.join("partial"), b"6789").unwrap();
        // Created after the dir fsync: content synced but the entry is
        // volatile, so the whole file vanishes.
        s.write(&dir.join("volatile"), b"bye").unwrap();
        s.fsync(&dir.join("volatile")).unwrap();

        s.simulate_power_loss().unwrap();
        assert_eq!(fs::read(dir.join("durable")).unwrap(), b"keep me");
        assert_eq!(fs::read(dir.join("partial")).unwrap(), b"12345", "unsynced tail truncated");
        assert!(!dir.join("volatile").exists(), "volatile entry lost");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_lie_leaves_content_volatile() {
        let dir = scratch_dir("vfs_lie");
        let s = FaultFs::new().fault(StorageFault::FsyncLie { nth_fsync: 1 });
        s.create_dir_all(&dir).unwrap();
        s.write(&dir.join("f"), b"abcdef").unwrap();
        s.fsync(&dir.join("f")).unwrap(); // lies
        s.fsync_dir(&dir).unwrap(); // honest: entry durable
        assert_eq!(s.report().fsync_lies, 1);
        s.simulate_power_loss().unwrap();
        assert_eq!(
            fs::metadata(dir.join("f")).unwrap().len(),
            0,
            "the lying fsync made nothing durable"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rename_entry_is_volatile_until_dir_fsync() {
        let dir = scratch_dir("vfs_rename");
        let s = FaultFs::new();
        s.create_dir_all(&dir).unwrap();
        s.write(&dir.join("t.tmp"), b"payload").unwrap();
        s.fsync(&dir.join("t.tmp")).unwrap();
        s.rename(&dir.join("t.tmp"), &dir.join("final")).unwrap();
        // No fsync_dir: the renamed entry does not survive power loss.
        s.simulate_power_loss().unwrap();
        assert!(!dir.join("final").exists(), "rename without dir fsync is lost");

        // Same sequence with the dir fsync: survives with full content.
        s.write(&dir.join("t.tmp"), b"payload").unwrap();
        s.fsync(&dir.join("t.tmp")).unwrap();
        s.rename(&dir.join("t.tmp"), &dir.join("final")).unwrap();
        s.fsync_dir(&dir).unwrap();
        s.simulate_power_loss().unwrap();
        assert_eq!(fs::read(dir.join("final")).unwrap(), b"payload");
        fs::remove_dir_all(&dir).ok();
    }
}
