//! YAC-style coupler: conservative remapping between icosahedral grids,
//! the coupling schedule, and the concurrent component-execution harness
//! with coupling-wait accounting.
//!
//! §5.1 of the paper: "Only energy, water and carbon are exchanged between
//! the atmosphere and the ocean at a coupling timestep every 10 simulated
//! minutes through the coupler YAC"; §6.3: "Included in timings is the
//! coupling time, i.e., the amount of time atmosphere/land have to wait
//! for ocean/sea-ice/biogeochemistry components and vice versa."
//!
//! Pieces:
//! * [`remap`] — first-order conservative remapping between `R2B(k)` grids
//!   of different refinement (exact, using the subdivision-tree child
//!   ordering);
//! * [`clock`] — coupling schedule arithmetic for the two time steps;
//! * [`exchange`] — named flux bundles plus a channel-based concurrent
//!   window runner that measures each side's coupling wait.

pub mod clock;
pub mod exchange;
pub mod fluxreg;
pub mod quarantine;
pub mod remap;

pub use clock::{ClockError, CouplingClock};
pub use dace_mini::units::ConservedClass;
pub use fluxreg::FluxDecl;
pub use exchange::{
    run_concurrent_windows, CouplerStats, Endpoint, FluxError, FluxSet, PersistenceFallback,
};
pub use quarantine::{FieldBounds, QuarantineEvent, QuarantineGate, RepairPolicy};
pub use remap::Remapper;
