//! Field-exchange abstraction.
//!
//! Component models (atmosphere, ocean, …) are written against this trait
//! so the same stepping code runs serially on a global [`Grid`](crate::Grid)
//! (no-op exchange) and distributed on per-rank [`SubGrid`](crate::SubGrid)s
//! (halo exchange through `mpisim`). A third use is instrumentation:
//! wrappers can count exchanges to drive the machine model.

use crate::field::{Field2, Field3};

/// Fills halo entities of distributed fields from their owners, and
/// provides the global reductions the solvers need.
pub trait Exchange {
    /// Make halo *cell* columns current.
    fn cells3(&self, field: &mut Field3);
    /// Make halo *edge* columns current.
    fn edges3(&self, field: &mut Field3);
    /// Make halo cells of a 2-D field current.
    fn cells2(&self, field: &mut Field2);
    /// Make halo edges of a 2-D field current.
    fn edges2(&self, field: &mut Field2);
    /// Global sum across ranks (returns `x` unchanged in serial runs).
    fn sum(&self, x: f64) -> f64;
    /// Global max across ranks.
    fn max(&self, x: f64) -> f64;
    /// Exchange several cell fields in one aggregated message.
    fn cells3_many(&self, fields: &mut [&mut Field3]) {
        for f in fields {
            self.cells3(f);
        }
    }
}

/// The serial exchange: single domain, nothing to do.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoExchange;

impl Exchange for NoExchange {
    fn cells3(&self, _field: &mut Field3) {}
    fn edges3(&self, _field: &mut Field3) {}
    fn cells2(&self, _field: &mut Field2) {}
    fn edges2(&self, _field: &mut Field2) {}
    fn sum(&self, x: f64) -> f64 {
        x
    }
    fn max(&self, x: f64) -> f64 {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_exchange_is_identity() {
        let x = NoExchange;
        let mut f = Field3::from_fn(4, 2, |i, k| (i + k) as f64);
        let before = f.clone();
        x.cells3(&mut f);
        x.edges3(&mut f);
        assert_eq!(f, before);
        assert_eq!(x.sum(3.5), 3.5);
        assert_eq!(x.max(-1.0), -1.0);
    }
}
