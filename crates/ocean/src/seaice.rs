//! Thermodynamic (0-layer, Semtner-style) sea ice.
//!
//! Ice grows when the surface layer would cool below freezing — the excess
//! heat deficit freezes water — and melts when heat is available. The
//! latent heat of fusion closes the energy budget; brine rejection and
//! meltwater close the salt budget.

use crate::params::{OceanParams, CP_OCEAN, L_FUSION, RHO0, RHO_ICE, T_FREEZE};

/// Result of the per-cell ice thermodynamics update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IceUpdate {
    /// New surface-layer temperature (deg C).
    pub t_surface: f64,
    /// New ice thickness (m).
    pub ice_thickness: f64,
    /// Freshwater flux into the ocean from melt (m of water per step,
    /// negative when freezing extracts water).
    pub freshwater_m: f64,
    /// Salt flux into the surface layer (psu * m, brine rejection > 0).
    pub salt_flux_psu_m: f64,
}

/// Sea-ice salinity retained in the ice (psu); the rest is rejected brine.
pub const ICE_SALINITY: f64 = 5.0;

/// Update one cell's ice state given the surface-layer temperature after
/// all other heat fluxes were applied. `dz0` is the surface layer
/// thickness, `s0` its salinity.
pub fn update_ice(p: &OceanParams, t0: f64, s0: f64, ice: f64, dz0: f64) -> IceUpdate {
    let _ = p;
    let heat_capacity = RHO0 * CP_OCEAN * dz0; // J/m^2 per K
    if t0 < T_FREEZE {
        // Freeze: bring the layer back to T_FREEZE; the energy deficit
        // forms ice.
        let deficit_j = heat_capacity * (T_FREEZE - t0);
        let new_ice_m = deficit_j / (RHO_ICE * L_FUSION);
        let water_removed = new_ice_m * RHO_ICE / RHO0;
        IceUpdate {
            t_surface: T_FREEZE,
            ice_thickness: ice + new_ice_m,
            freshwater_m: -water_removed,
            // Brine rejection: ice keeps ICE_SALINITY, the difference goes
            // into the surface layer.
            salt_flux_psu_m: (s0 - ICE_SALINITY).max(0.0) * water_removed,
        }
    } else if ice > 0.0 && t0 > T_FREEZE {
        // Melt with available heat above freezing.
        let avail_j = heat_capacity * (t0 - T_FREEZE);
        let melt_m = (avail_j / (RHO_ICE * L_FUSION)).min(ice);
        let used_j = melt_m * RHO_ICE * L_FUSION;
        let water_added = melt_m * RHO_ICE / RHO0;
        IceUpdate {
            t_surface: t0 - used_j / heat_capacity,
            ice_thickness: ice - melt_m,
            freshwater_m: water_added,
            salt_flux_psu_m: -(s0 - ICE_SALINITY).max(0.0) * water_added,
        }
    } else {
        IceUpdate {
            t_surface: t0,
            ice_thickness: ice,
            freshwater_m: 0.0,
            salt_flux_psu_m: 0.0,
        }
    }
}

/// Ice concentration diagnostic from thickness (saturating ramp).
pub fn ice_concentration(thickness: f64) -> f64 {
    (thickness / 0.5).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> OceanParams {
        OceanParams::new(6, 600.0)
    }

    #[test]
    fn supercooled_water_freezes() {
        let u = update_ice(&p(), -3.0, 34.0, 0.0, 12.0);
        assert_eq!(u.t_surface, T_FREEZE);
        assert!(u.ice_thickness > 0.0);
        assert!(u.freshwater_m < 0.0, "freezing removes water");
        assert!(u.salt_flux_psu_m > 0.0, "brine rejection");
    }

    #[test]
    fn warm_water_melts_ice() {
        let u = update_ice(&p(), 2.0, 34.0, 0.3, 12.0);
        assert!(u.ice_thickness < 0.3);
        assert!(u.t_surface < 2.0, "melting consumes heat");
        assert!(u.t_surface >= T_FREEZE);
        assert!(u.freshwater_m > 0.0);
        assert!(u.salt_flux_psu_m < 0.0, "meltwater freshens");
    }

    #[test]
    fn melt_limited_by_available_ice() {
        let u = update_ice(&p(), 20.0, 34.0, 0.01, 12.0);
        assert_eq!(u.ice_thickness, 0.0);
        // Only the heat for 1 cm of ice was used.
        assert!(u.t_surface > 15.0);
    }

    #[test]
    fn energy_is_conserved_through_freeze_melt_cycle() {
        let params = p();
        let dz0 = 12.0;
        let heat_capacity = RHO0 * CP_OCEAN * dz0;
        // Freeze from -3 C, then warm the layer by the same energy: ice
        // should melt back to (nearly) zero and temperature return.
        let f = update_ice(&params, -3.0, 34.0, 0.0, dz0);
        let energy_stored = f.ice_thickness * RHO_ICE * L_FUSION;
        let t_after_heating = f.t_surface + energy_stored / heat_capacity;
        let m = update_ice(&params, t_after_heating, 34.0, f.ice_thickness, dz0);
        assert!(m.ice_thickness.abs() < 1e-12, "ice left: {}", m.ice_thickness);
        assert!((m.t_surface - T_FREEZE).abs() < 1e-9);
        // Freshwater fluxes cancel.
        assert!((f.freshwater_m + m.freshwater_m).abs() < 1e-12);
    }

    #[test]
    fn no_ice_no_change() {
        let u = update_ice(&p(), 10.0, 35.0, 0.0, 12.0);
        assert_eq!(u.t_surface, 10.0);
        assert_eq!(u.ice_thickness, 0.0);
        assert_eq!(u.freshwater_m, 0.0);
    }

    #[test]
    fn concentration_ramp() {
        assert_eq!(ice_concentration(0.0), 0.0);
        assert!(ice_concentration(0.25) > 0.0 && ice_concentration(0.25) < 1.0);
        assert_eq!(ice_concentration(2.0), 1.0);
    }
}
