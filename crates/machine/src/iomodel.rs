//! Restart-I/O throughput model (§6.4 and §7 of the paper).
//!
//! ICON's synchronous multi-file checkpointing lets a configurable subset
//! of ranks collect variables and write one file each; reading is
//! staggered over a (different) subset of ranks. The paper reports, for
//! the 1.25 km configuration on 8000 superchips with up to 2579 I/O
//! processes: restart sizes of 9265.50 GiB (atmosphere) and 7030.91 GiB
//! (ocean), a staggered read rate of 615.61 GiB/s and a write rate of
//! 198.19 GiB/s.
//!
//! The file-system model: each I/O process sustains a per-stream
//! bandwidth; the aggregate is capped by the parallel file system, with
//! writes paying an allocation/commit penalty.

use crate::config::GridConfig;

/// 3-D variables in the atmosphere restart: 12.5 prognostic (Table 2)
/// plus tracers' second time level, tendencies, physics state — 41
/// three-dimensional fields total, plus a few dozen surface fields.
pub const ATM_RESTART_VARS_3D: f64 = 41.0;
pub const ATM_RESTART_VARS_2D: f64 = 11.0;

/// Ocean restart: 5 prognostic x 2 time levels, 19 BGC x 2 time levels,
/// plus diagnostics = 55 three-dimensional fields, and sea-ice/surface
/// fields.
pub const OCE_RESTART_VARS_3D: f64 = 55.0;
pub const OCE_RESTART_VARS_2D: f64 = 5.0;

/// Per-I/O-process sustained stream bandwidth (GiB/s).
pub const STREAM_BW_GIBS: f64 = 0.25;

/// Aggregate parallel-file-system read cap (GiB/s).
pub const FS_READ_CAP_GIBS: f64 = 620.0;

/// Aggregate write cap (GiB/s): writes pay allocation and commit costs.
pub const FS_WRITE_CAP_GIBS: f64 = 200.0;

/// Efficiency of staggered reading (phase-shifted opens avoid metadata
/// contention; the paper's staggering makes reads near the cap).
pub const STAGGER_EFF: f64 = 0.993;

/// Restart sizes in GiB for a configuration.
pub fn restart_sizes_gib(cfg: &GridConfig) -> (f64, f64) {
    let gib = (1u64 << 30) as f64;
    let atm = (cfg.atm_cells * cfg.atm_levels * ATM_RESTART_VARS_3D
        + cfg.atm_cells * ATM_RESTART_VARS_2D)
        * 8.0
        / gib;
    let oce = (cfg.oce_cells * cfg.oce_levels * OCE_RESTART_VARS_3D
        + cfg.oce_cells * OCE_RESTART_VARS_2D)
        * 8.0
        / gib;
    (atm, oce)
}

/// Aggregate read rate with `n_procs` staggered reader processes (GiB/s).
pub fn read_rate_gibs(n_procs: u32) -> f64 {
    (n_procs as f64 * STREAM_BW_GIBS).min(FS_READ_CAP_GIBS) * STAGGER_EFF
}

/// Aggregate write rate with `n_procs` writer processes (GiB/s).
pub fn write_rate_gibs(n_procs: u32) -> f64 {
    (n_procs as f64 * STREAM_BW_GIBS).min(FS_WRITE_CAP_GIBS)
}

/// Seconds to write both restart files with `n_procs` writers.
pub fn checkpoint_time_s(cfg: &GridConfig, n_procs: u32) -> f64 {
    let (atm, oce) = restart_sizes_gib(cfg);
    (atm + oce) / write_rate_gibs(n_procs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_sizes_match_paper() {
        let (atm, oce) = restart_sizes_gib(&GridConfig::km1p25());
        assert!(
            (atm / 9265.50 - 1.0).abs() < 0.02,
            "atmosphere restart {atm:.2} GiB, paper 9265.50"
        );
        assert!(
            (oce / 7030.91 - 1.0).abs() < 0.02,
            "ocean restart {oce:.2} GiB, paper 7030.91"
        );
    }

    #[test]
    fn rates_match_paper_at_2579_procs() {
        let read = read_rate_gibs(2579);
        let write = write_rate_gibs(2579);
        assert!(
            (read / 615.61 - 1.0).abs() < 0.02,
            "read {read:.2} GiB/s, paper 615.61"
        );
        assert!(
            (write / 198.19 - 1.0).abs() < 0.02,
            "write {write:.2} GiB/s, paper 198.19"
        );
    }

    #[test]
    fn rates_scale_then_saturate() {
        assert!(read_rate_gibs(100) < read_rate_gibs(1000));
        assert_eq!(read_rate_gibs(10_000), read_rate_gibs(100_000));
        assert!(write_rate_gibs(4000) <= FS_WRITE_CAP_GIBS);
    }

    #[test]
    fn checkpoint_time_reasonable_at_hero_scale() {
        // ~16.3 TiB at ~198 GiB/s: around 80 s.
        let t = checkpoint_time_s(&GridConfig::km1p25(), 2579);
        assert!((60.0..120.0).contains(&t), "checkpoint {t:.0}s");
    }
}
