//! The base icosahedron: 12 vertices, 30 edges, 20 triangular faces.
//!
//! ICON's grid hierarchy starts from the icosahedron oriented with one
//! vertex at each pole; the remaining ten vertices lie on two latitude
//! circles at `±atan(1/2)`.

use crate::geom::Vec3;

/// A triangle mesh on the unit sphere: shared vertices plus faces given as
/// vertex index triples (counter-clockwise seen from outside).
#[derive(Debug, Clone)]
pub struct TriMesh {
    pub vertices: Vec<Vec3>,
    pub faces: Vec<[u32; 3]>,
}

impl TriMesh {
    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }

    pub fn n_faces(&self) -> usize {
        self.faces.len()
    }

    /// Number of unique edges (Euler: E = V + F - 2 for a closed surface of
    /// genus zero).
    pub fn n_edges(&self) -> usize {
        self.n_vertices() + self.n_faces() - 2
    }
}

/// Construct the unit icosahedron in the ICON orientation: north pole
/// vertex, a northern pentagon ring at latitude `atan(1/2)`, a southern ring
/// at `-atan(1/2)` offset by 36 degrees, and the south pole vertex.
pub fn icosahedron() -> TriMesh {
    use std::f64::consts::PI;
    let lat_ring = 0.5f64.atan(); // ~26.565 degrees
    let mut vertices = Vec::with_capacity(12);
    vertices.push(Vec3::new(0.0, 0.0, 1.0)); // 0: north pole
    for i in 0..5 {
        // 1..=5: northern ring
        let lon = 2.0 * PI * i as f64 / 5.0;
        vertices.push(Vec3::from_lonlat(lon, lat_ring));
    }
    for i in 0..5 {
        // 6..=10: southern ring, offset half a sector
        let lon = 2.0 * PI * (i as f64 + 0.5) / 5.0;
        vertices.push(Vec3::from_lonlat(lon, -lat_ring));
    }
    vertices.push(Vec3::new(0.0, 0.0, -1.0)); // 11: south pole

    let mut faces = Vec::with_capacity(20);
    for i in 0..5u32 {
        let j = (i + 1) % 5;
        let (ni, nj) = (1 + i, 1 + j); // northern ring
        let (si, sj) = (6 + i, 6 + j); // southern ring
        faces.push([0, ni, nj]); // polar cap north
        faces.push([ni, si, nj]); // upper mid-band
        faces.push([nj, si, sj]); // lower mid-band
        faces.push([11, sj, si]); // polar cap south
    }
    TriMesh { vertices, faces }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::spherical_triangle_area;
    use std::collections::HashSet;
    use std::f64::consts::PI;

    #[test]
    fn counts() {
        let m = icosahedron();
        assert_eq!(m.n_vertices(), 12);
        assert_eq!(m.n_faces(), 20);
        assert_eq!(m.n_edges(), 30);
    }

    #[test]
    fn faces_cover_sphere() {
        let m = icosahedron();
        let total: f64 = m
            .faces
            .iter()
            .map(|f| {
                spherical_triangle_area(
                    &m.vertices[f[0] as usize],
                    &m.vertices[f[1] as usize],
                    &m.vertices[f[2] as usize],
                )
            })
            .sum();
        assert!((total - 4.0 * PI).abs() < 1e-10, "total area {total}");
    }

    #[test]
    fn faces_consistent_winding() {
        // Counter-clockwise from outside: (b-a) x (c-a) points outward.
        let m = icosahedron();
        for f in &m.faces {
            let a = m.vertices[f[0] as usize];
            let b = m.vertices[f[1] as usize];
            let c = m.vertices[f[2] as usize];
            let n = (b - a).cross(&(c - a));
            let centroid = (a + b + c).scale(1.0 / 3.0);
            assert!(n.dot(&centroid) > 0.0, "face {f:?} wound clockwise");
        }
    }

    #[test]
    fn every_edge_shared_by_two_faces() {
        let m = icosahedron();
        let mut count = std::collections::HashMap::new();
        for f in &m.faces {
            for k in 0..3 {
                let a = f[k];
                let b = f[(k + 1) % 3];
                let key = (a.min(b), a.max(b));
                *count.entry(key).or_insert(0u32) += 1;
            }
        }
        assert_eq!(count.len(), 30);
        assert!(count.values().all(|&c| c == 2));
    }

    #[test]
    fn vertices_distinct_and_unit() {
        let m = icosahedron();
        let mut seen = HashSet::new();
        for v in &m.vertices {
            assert!((v.norm() - 1.0).abs() < 1e-14);
            let key = (
                (v.x * 1e9).round() as i64,
                (v.y * 1e9).round() as i64,
                (v.z * 1e9).round() as i64,
            );
            assert!(seen.insert(key), "duplicate vertex {v:?}");
        }
    }
}
