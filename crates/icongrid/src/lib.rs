//! Icosahedral-triangular C-grid substrate for ICON-ESM-RS.
//!
//! This crate reproduces the grid family used by ICON ([Giorgetta et al.
//! 2018]): a spherical icosahedron refined by one root division (`R2`) and
//! `k` recursive edge bisections (`B`*k*), carrying prognostic variables on a
//! staggered Arakawa C-grid (scalars at triangle circumcenters, normal
//! velocities at edge midpoints, vorticity at vertices of the hexagonal dual
//! mesh).
//!
//! Provided here:
//!
//! * [`geom`] — 3-vector and spherical geometry primitives,
//! * [`icosahedron`] — the base solid,
//! * [`refine`] — recursive bisection preserving a space-filling-curve cell
//!   order (children of a triangle are emitted consecutively),
//! * [`grid`] — the assembled [`Grid`](grid::Grid) with full topology and
//!   C-grid geometry (circumcenters, primal/dual edge lengths, orientation
//!   signs),
//! * [`vertical`] — hybrid sigma-height atmosphere levels (SLEVE-like) and
//!   stretched ocean depth levels,
//! * [`mask`] — deterministic synthetic Earth-like land–sea masks
//!   (substitute for observed topography, see DESIGN.md),
//! * [`field`] — dense column-major field containers,
//! * [`ops`] — discrete C-grid operators (divergence, gradient, curl,
//!   kinetic-energy gather, vector reconstruction),
//! * [`decomp`] — space-filling-curve domain decomposition with
//!   vertex-ring halos and precomputed exchange lists,
//! * [`subgrid`] — per-rank local grids with local numbering.

pub mod column;
pub mod decomp;
pub mod exchange;
pub mod field;
pub mod geom;
pub mod grid;
pub mod icosahedron;
pub mod mask;
pub mod ops;
pub mod refine;
pub mod subgrid;
pub mod vertical;

pub use decomp::Decomposition;
pub use exchange::{Exchange, NoExchange};
pub use field::{Field2, Field3};
pub use geom::Vec3;
pub use grid::Grid;
pub use mask::LandSeaMask;
pub use subgrid::SubGrid;
pub use vertical::{OceanLevels, VerticalGrid};

/// Mean Earth radius in metres, as used by ICON.
pub const EARTH_RADIUS_M: f64 = 6.371e6;

/// Number of cells of an ICON `R2B(k)` grid: `20 * 2^2 * 4^k`.
///
/// Matches Table 2 of the paper: `R2B8` = 5 242 880 cells (10 km nominal),
/// `R2B11` = 335 544 320 cells (1.25 km nominal).
pub const fn r2b_cell_count(k: u32) -> u64 {
    80 * 4u64.pow(k)
}

/// Nominal resolution (km) of an `R2B(k)` grid: sqrt of the mean cell area.
pub fn r2b_nominal_resolution_km(k: u32) -> f64 {
    let area_m2 = 4.0 * std::f64::consts::PI * EARTH_RADIUS_M * EARTH_RADIUS_M;
    (area_m2 / r2b_cell_count(k) as f64).sqrt() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r2b_cell_counts_match_table2() {
        assert_eq!(r2b_cell_count(8), 5_242_880); // 10 km config: 0.05e8 cells
        assert_eq!(r2b_cell_count(11), 335_544_320); // 1.25 km config: 3.36e8 cells
    }

    #[test]
    fn r2b_nominal_resolutions() {
        // Table 2 calls R2B8 "10 km" and R2B11 "1.25 km"; the sqrt-mean-area
        // definition gives values close to those labels.
        let r8 = r2b_nominal_resolution_km(8);
        let r11 = r2b_nominal_resolution_km(11);
        assert!((r8 - 9.9).abs() < 0.4, "R2B8 => {r8} km");
        assert!((r11 - 1.24).abs() < 0.05, "R2B11 => {r11} km");
        // Each bisection halves the nominal resolution.
        assert!((r8 / r2b_nominal_resolution_km(9) - 2.0).abs() < 1e-12);
    }
}
