//! Distributed ocean: the barotropic CG solver runs its dot products as
//! real cross-rank allreduces, so the trajectory matches the serial run to
//! solver tolerance (not bitwise: reduction order differs), and the global
//! communication volume scales with iteration count — the §5.1 bottleneck
//! characteristic.

use icongrid::{Decomposition, Field2, Grid, NoExchange, SubGrid};
use mpisim::{RankExchange, World};
use ocean::BarotropicSolver;
use std::sync::Arc;

fn rhs_field(g: &Grid) -> Field2 {
    Field2::from_fn(g.n_cells, |c| {
        g.cell_area[c] * (g.cell_center[c].x + 0.4 * g.cell_center[c].z)
    })
}

#[test]
fn distributed_cg_matches_serial_to_tolerance() {
    let grid = Grid::build(2, icongrid::EARTH_RADIUS_M);
    let depths = vec![3000.0; grid.n_cells];
    let wet = vec![true; grid.n_cells];

    // Serial reference.
    let mut serial = BarotropicSolver::new(&grid, 600.0, &depths, wet.clone(), 1e-11, 500);
    let rhs = rhs_field(&grid);
    let mut eta_ref = Field2::zeros(grid.n_cells);
    let stats = serial.solve(&grid, &NoExchange, &rhs, &mut eta_ref, grid.n_cells);
    assert!(stats.converged);

    let np = 3;
    let decomp = Decomposition::new(&grid, np);
    let subs: Vec<Arc<SubGrid>> = (0..np)
        .map(|p| Arc::new(SubGrid::build(&grid, &decomp, p)))
        .collect();
    let eta_ref = Arc::new(eta_ref);

    let (_, traffic) = World::run_with_stats(np, |comm| {
        let sub = subs[comm.rank()].clone();
        let x = RankExchange::new(&comm, &sub, 50);
        let depths_l = vec![3000.0; sub.n_cells];
        let wet_l = vec![true; sub.n_cells];
        let mut solver =
            BarotropicSolver::new(sub.as_ref(), 600.0, &depths_l, wet_l, 1e-11, 500);
        let rhs_l = Field2::from_fn(sub.n_cells, |lc| {
            let gc = sub.cell_l2g[lc] as usize;
            grid.cell_area[gc] * (grid.cell_center[gc].x + 0.4 * grid.cell_center[gc].z)
        });
        let mut eta = Field2::zeros(sub.n_cells);
        let st = solver.solve(sub.as_ref(), &x, &rhs_l, &mut eta, sub.n_owned_cells);
        assert!(st.converged, "distributed CG failed: {st:?}");
        for lc in 0..sub.n_owned_cells {
            let gc = sub.cell_l2g[lc] as usize;
            assert!(
                (eta[lc] - eta_ref[gc]).abs() < 1e-7,
                "cell {gc}: {} vs {}",
                eta[lc],
                eta_ref[gc]
            );
        }
        st.iterations
    });

    // Every iteration performed global reductions (3 dots) and a halo
    // exchange: the collective count must reflect that.
    assert!(
        traffic.collectives > 10,
        "CG must be dominated by global communication, saw {} collectives",
        traffic.collectives
    );
    assert!(traffic.p2p_messages > 0, "halo exchanges must flow");
}

#[test]
fn solver_communication_grows_with_iterations() {
    // Stiffer system (deeper ocean / longer dt) -> more CG iterations ->
    // more allreduces: the scaling-limiting behaviour of §7.
    let grid = Grid::build(2, icongrid::EARTH_RADIUS_M);
    let wet = vec![true; grid.n_cells];
    let count_collectives = |depth: f64| -> u64 {
        let decomp = Decomposition::new(&grid, 2);
        let subs: Vec<Arc<SubGrid>> = (0..2)
            .map(|p| Arc::new(SubGrid::build(&grid, &decomp, p)))
            .collect();
        let wet = wet.clone();
        let grid = &grid;
        let (_, traffic) = World::run_with_stats(2, |comm| {
            let sub = subs[comm.rank()].clone();
            let x = RankExchange::new(&comm, &sub, 9);
            let depths_l = vec![depth; sub.n_cells];
            let wet_l = vec![true; sub.n_cells];
            let mut solver =
                BarotropicSolver::new(sub.as_ref(), 600.0, &depths_l, wet_l, 1e-10, 800);
            let rhs_l = Field2::from_fn(sub.n_cells, |lc| {
                let gc = sub.cell_l2g[lc] as usize;
                grid.cell_area[gc] * grid.cell_center[gc].y
            });
            let mut eta = Field2::zeros(sub.n_cells);
            let st = solver.solve(sub.as_ref(), &x, &rhs_l, &mut eta, sub.n_owned_cells);
            assert!(st.converged);
        });
        let _ = wet;
        traffic.collectives
    };
    let shallow = count_collectives(100.0);
    let deep = count_collectives(6000.0);
    assert!(
        deep > shallow,
        "deeper ocean should need more global communication: {shallow} vs {deep}"
    );
}
