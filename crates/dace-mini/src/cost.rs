//! Static performance analysis of certified SDFGs.
//!
//! Walks a graph and computes, per map scope and per program, a **cost
//! vector**: FLOPs, bytes moved (split into direct and indirect
//! accesses), integer neighbor-table lookups per point, and a working-set
//! estimate — then evaluates it against a [`machine::Roofline`] to
//! predict execution time and arithmetic intensity.
//!
//! Two execution models are provided, each replicating its backend's
//! counting *exactly* (tests assert predicted counters equal the
//! measured [`ExecStats`] bit for bit):
//!
//! * [`analyze_naive`] — the OpenACC-style baseline (`exec::run_naive`):
//!   one launch per tasklet, every access re-resolved and re-loaded at
//!   every (point, level) evaluation.
//! * [`analyze_compiled`] — the DaCe-style backend (`exec::compile`):
//!   one launch per state, unique `(relation, slot)` lookups once per
//!   point, loads collapsed by `(field, point, level)`, pointwise reads
//!   of freshly-written values forwarded with zero traffic, and stores
//!   of hoisted transients elided.
//!
//! On top of the cost vectors sit the perf diagnostics surfaced by
//! `esm-lint` ([`perf_diagnostics`]: `W0501` redundant indirect gather,
//! `W0502` below-roofline intensity with a suggested transform) and the
//! regression gate against a checked-in baseline ([`check_regression`]:
//! `E0503`).

use crate::analysis::{AnalysisContext, DiagCode, Diagnostic};
use crate::ast::{FieldAccess, LevelIndex, PointIndex};
use crate::exec::ExecStats;
use crate::memlet::LevelRel;
use crate::sdfg::{Sdfg, State};
use machine::Roofline;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Bytes per field element (FP64).
pub const ELEM_BYTES: f64 = 8.0;
/// Bytes per neighbor-table entry (u32).
pub const LOOKUP_BYTES: f64 = 4.0;
/// Predicted time may grow by this fraction before `E0503` fires; the
/// lookup count is gated exactly.
pub const TIME_REGRESSION_TOLERANCE: f64 = 0.05;

/// Concrete extents the static counts are scaled by: entity count per
/// domain plus the vertical extent. Deliberately *not* the full
/// `TopologyContext` — the cost model never needs the tables themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSizes {
    sizes: BTreeMap<String, usize>,
    pub nlev: usize,
}

impl DomainSizes {
    pub fn new(nlev: usize) -> DomainSizes {
        DomainSizes {
            sizes: BTreeMap::new(),
            nlev: nlev.max(1),
        }
    }

    pub fn with(mut self, domain: &str, n: usize) -> DomainSizes {
        self.sizes.insert(domain.to_string(), n);
        self
    }

    pub fn size(&self, domain: &str) -> usize {
        *self
            .sizes
            .get(domain)
            .unwrap_or_else(|| panic!("no size declared for domain '{domain}'"))
    }
}

/// Everything `analyze_*` needs besides the graph.
#[derive(Debug, Clone, Copy)]
pub struct CostInputs<'a> {
    /// Field shapes (for the working-set estimate).
    pub ctx: &'a AnalysisContext,
    pub sizes: &'a DomainSizes,
    /// Fields whose stores the executor elides (hoisted transients, see
    /// `CompiledSdfg::elide_transient_stores`); ignored by the naive
    /// model, which has no elision.
    pub elided_stores: &'a [String],
}

/// Cost vector of one map scope (state), already scaled by the domain
/// size and level count.
#[derive(Debug, Clone, PartialEq)]
pub struct StateCost {
    pub label: String,
    pub domain: String,
    pub entities: usize,
    /// Level multiplicity of the scope (1 or nlev).
    pub levels: usize,
    /// Integer neighbor-table lookups per point — §5.2's headline
    /// quantity. Per-access for the naive model, unique
    /// `(relation, slot)` for the compiled model.
    pub lookups_per_point: usize,
    /// Gather accesses beyond the first per `(field, relation, slot,
    /// level)` — the redundancy `hoist_gathers` removes.
    pub redundant_gathers: usize,
    pub flops: f64,
    /// Bytes moved through direct (own-point) accesses, stores included.
    pub direct_bytes: f64,
    /// Bytes moved through indirect (gathered) accesses.
    pub indirect_bytes: f64,
    /// Bytes of neighbor-table reads.
    pub lookup_bytes: f64,
    /// Distinct field storage touched by the scope.
    pub working_set_bytes: f64,
    /// Predicted executor counters for this scope.
    pub stats: ExecStats,
    pub predicted_time_s: f64,
    /// FLOP per byte moved.
    pub intensity: f64,
}

impl StateCost {
    pub fn bytes(&self) -> f64 {
        self.direct_bytes + self.indirect_bytes + self.lookup_bytes
    }
}

/// Cost vector of a whole program under one execution model.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramCost {
    pub name: String,
    /// "naive" or "compiled".
    pub model: &'static str,
    pub states: Vec<StateCost>,
    /// Sum of per-state per-point lookup counts.
    pub lookups_per_point: usize,
    pub redundant_gathers: usize,
    pub flops: f64,
    pub bytes: f64,
    pub working_set_bytes: f64,
    /// Predicted executor counters for the whole run.
    pub stats: ExecStats,
    pub predicted_time_s: f64,
    pub intensity: f64,
}

fn gather_key(a: &FieldAccess) -> Option<(String, String, usize, LevelIndex)> {
    match &a.point {
        PointIndex::Lookup { relation, slot } => {
            Some((a.field.clone(), relation.clone(), *slot, a.level))
        }
        PointIndex::Own => None,
    }
}

/// Gather accesses beyond the first per `(field, relation, slot, level)`
/// in one scope.
fn count_redundant_gathers(st: &State) -> usize {
    let mut seen: HashSet<(String, String, usize, LevelIndex)> = HashSet::new();
    let mut redundant = 0;
    for t in &st.map.tasklets {
        for a in t.code.accesses() {
            if let Some(key) = gather_key(a) {
                if !seen.insert(key) {
                    redundant += 1;
                }
            }
        }
    }
    redundant
}

/// Distinct field storage touched by a scope, from declared shapes.
/// Fields absent from the context (e.g. transients on a graph analyzed
/// before `HoistReport::declare`) fall back to the scope's own domain and
/// the level-dependence of their accesses; store-elided transients never
/// reach memory and are excluded.
fn working_set(st: &State, inputs: &CostInputs) -> f64 {
    let mut level_dep: HashMap<&str, bool> = HashMap::new();
    for t in &st.map.tasklets {
        for a in t.code.accesses().into_iter().chain([&t.write]) {
            let dep = matches!(a.level, LevelIndex::K | LevelIndex::KOffset(_));
            *level_dep.entry(a.field.as_str()).or_insert(false) |= dep;
        }
    }
    let mut bytes = 0.0;
    for (field, dep) in level_dep {
        if inputs.elided_stores.iter().any(|f| f == field) {
            continue;
        }
        let (domain, is_3d) = match inputs.ctx.fields.get(field) {
            Some(shape) => (shape.domain.as_str(), shape.is_3d),
            None => (st.map.domain.as_str(), dep),
        };
        let levels = if is_3d { inputs.sizes.nlev } else { 1 };
        bytes += (inputs.sizes.size(domain) * levels) as f64 * ELEM_BYTES;
    }
    bytes
}

fn finish_state(mut sc: StateCost, roof: &Roofline, launches_in_state: u64) -> StateCost {
    // One roofline evaluation per launch: the naive model pays the
    // launch overhead per tasklet, the compiled model once per state.
    let per_launch_flops = sc.flops / launches_in_state as f64;
    let per_launch_bytes = sc.bytes() / launches_in_state as f64;
    sc.predicted_time_s =
        roof.map_time_s(per_launch_flops, per_launch_bytes) * launches_in_state as f64;
    sc.intensity = if sc.bytes() > 0.0 { sc.flops / sc.bytes() } else { 0.0 };
    sc
}

fn finish_program(name: &str, model: &'static str, states: Vec<StateCost>) -> ProgramCost {
    let mut total = ProgramCost {
        name: name.to_string(),
        model,
        lookups_per_point: 0,
        redundant_gathers: 0,
        flops: 0.0,
        bytes: 0.0,
        working_set_bytes: 0.0,
        stats: ExecStats::default(),
        predicted_time_s: 0.0,
        intensity: 0.0,
        states,
    };
    for sc in &total.states {
        total.lookups_per_point += sc.lookups_per_point;
        total.redundant_gathers += sc.redundant_gathers;
        total.flops += sc.flops;
        total.bytes += sc.bytes();
        total.working_set_bytes += sc.working_set_bytes;
        total.stats.map_launches += sc.stats.map_launches;
        total.stats.dispatched_tasks += sc.stats.dispatched_tasks;
        total.stats.index_lookups += sc.stats.index_lookups;
        total.stats.field_reads += sc.stats.field_reads;
        total.stats.field_stores += sc.stats.field_stores;
        total.predicted_time_s += sc.predicted_time_s;
    }
    total.intensity = if total.bytes > 0.0 { total.flops / total.bytes } else { 0.0 };
    total
}

/// Cost of the graph under the naive (OpenACC-style) execution model:
/// one launch per tasklet, full re-resolution at every evaluation.
/// Predicted counters equal `exec::run_naive` on `sdfg.to_program()`
/// exactly.
pub fn analyze_naive(sdfg: &Sdfg, inputs: &CostInputs, roof: &Roofline) -> ProgramCost {
    let nlev = inputs.sizes.nlev;
    let states = sdfg
        .states
        .iter()
        .map(|st| {
            let n = inputs.sizes.size(&st.map.domain) as u64;
            let mut sc = StateCost {
                label: st.label.clone(),
                domain: st.map.domain.clone(),
                entities: n as usize,
                levels: if st.map.over_levels { nlev } else { 1 },
                lookups_per_point: 0,
                redundant_gathers: count_redundant_gathers(st),
                flops: 0.0,
                direct_bytes: 0.0,
                indirect_bytes: 0.0,
                lookup_bytes: 0.0,
                working_set_bytes: working_set(st, inputs),
                stats: ExecStats::default(),
                predicted_time_s: 0.0,
                intensity: 0.0,
            };
            for t in &st.map.tasklets {
                // `run_naive` decides the level extent per statement.
                let levels = if t.code.uses_levels() || t.write.level != LevelIndex::Surface {
                    nlev as u64
                } else {
                    1
                };
                let evals = n * levels;
                sc.stats.map_launches += 1;
                sc.stats.dispatched_tasks += 1;
                sc.flops += (t.code.flops() as u64 * evals) as f64;
                sc.stats.field_stores += evals;
                sc.direct_bytes += evals as f64 * ELEM_BYTES; // the store
                for a in t.code.accesses() {
                    sc.stats.field_reads += evals;
                    match a.point {
                        PointIndex::Own => sc.direct_bytes += evals as f64 * ELEM_BYTES,
                        PointIndex::Lookup { .. } => {
                            sc.lookups_per_point += 1;
                            sc.stats.index_lookups += evals;
                            sc.indirect_bytes += evals as f64 * ELEM_BYTES;
                            sc.lookup_bytes += evals as f64 * LOOKUP_BYTES;
                        }
                    }
                }
            }
            let launches = sc.stats.map_launches;
            finish_state(sc, roof, launches)
        })
        .collect();
    finish_program(&sdfg.name, "naive", states)
}

/// Cost of the graph under the compiled (DaCe-style) execution model:
/// replicates `exec::compile`'s lookup dedup, load collapsing, and
/// forwarding walk, so predicted counters equal the measured run exactly
/// (pass the hoisted transients as `elided_stores` when the compiled
/// graph had `elide_transient_stores` applied).
pub fn analyze_compiled(sdfg: &Sdfg, inputs: &CostInputs, roof: &Roofline) -> ProgramCost {
    let nlev = inputs.sizes.nlev;
    let states = sdfg
        .states
        .iter()
        .map(|st| {
            let n = inputs.sizes.size(&st.map.domain) as u64;
            let levels = if st.map.over_levels { nlev as u64 } else { 1 };
            let mut sc = StateCost {
                label: st.label.clone(),
                domain: st.map.domain.clone(),
                entities: n as usize,
                levels: levels as usize,
                lookups_per_point: 0,
                redundant_gathers: count_redundant_gathers(st),
                flops: 0.0,
                direct_bytes: 0.0,
                indirect_bytes: 0.0,
                lookup_bytes: 0.0,
                working_set_bytes: working_set(st, inputs),
                stats: ExecStats { map_launches: 1, dispatched_tasks: 1, ..ExecStats::default() },
                predicted_time_s: 0.0,
                intensity: 0.0,
            };

            // Replicate the compile() walk: unique (relation, slot)
            // lookups, loads collapsed by (field, point, level),
            // pointwise reads of written (field, level) forwarded.
            let mut idx: Vec<(String, usize)> = Vec::new();
            let mut loads: Vec<(String, PointIndex, LevelIndex)> = Vec::new();
            let mut written: HashSet<(String, LevelIndex)> = HashSet::new();
            for t in &st.map.tasklets {
                let evals = n * levels;
                sc.flops += (t.code.flops() as u64 * evals) as f64;
                for a in t.code.accesses() {
                    if a.point == PointIndex::Own
                        && written.contains(&(a.field.clone(), a.level))
                    {
                        continue; // forwarded: no memory traffic
                    }
                    if let PointIndex::Lookup { relation, slot } = &a.point {
                        if !idx.iter().any(|(r, s)| r == relation && s == slot) {
                            idx.push((relation.clone(), *slot));
                        }
                    }
                    let slot = (a.field.clone(), a.point.clone(), a.level);
                    if !loads.contains(&slot) {
                        loads.push(slot);
                    }
                }
                written.insert((t.write.field.clone(), t.write.level));
                if !inputs.elided_stores.contains(&t.write.field) {
                    sc.stats.field_stores += evals;
                    sc.direct_bytes += evals as f64 * ELEM_BYTES;
                }
            }
            sc.lookups_per_point = idx.len();
            sc.stats.index_lookups = idx.len() as u64 * n;
            sc.lookup_bytes = sc.stats.index_lookups as f64 * LOOKUP_BYTES;
            for (_, point, level) in &loads {
                // Level-independent loads are hoisted out of the level
                // loop: once per point. Level-dependent: per (point, k).
                let level_dependent = matches!(level, LevelIndex::K | LevelIndex::KOffset(_));
                let reads = if level_dependent { n * levels } else { n };
                sc.stats.field_reads += reads;
                match point {
                    PointIndex::Own => sc.direct_bytes += reads as f64 * ELEM_BYTES,
                    PointIndex::Lookup { .. } => sc.indirect_bytes += reads as f64 * ELEM_BYTES,
                }
            }
            finish_state(sc, roof, 1)
        })
        .collect();
    finish_program(&sdfg.name, "compiled", states)
}

// ------------------------------------------------------------------
// Perf diagnostics (W0501, W0502)
// ------------------------------------------------------------------

/// Scan a graph for performance findings:
///
/// * `W0501` — one per gather repeated within a map body, anchored at
///   its second occurrence;
/// * `W0502` — one per scope whose (compiled-model) arithmetic intensity
///   sits below the machine balance point *while redundant gathers
///   remain*: memory-bound with a known remedy. Scopes that are merely
///   memory-bound (every climate kernel) are not flagged.
pub fn perf_diagnostics(sdfg: &Sdfg, inputs: &CostInputs, roof: &Roofline) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let cost = analyze_compiled(sdfg, inputs, roof);
    for (st, sc) in sdfg.states.iter().zip(&cost.states) {
        type GatherCount = ((String, String, usize, LevelIndex), usize, crate::loc::Span);
        let mut counts: Vec<GatherCount> = Vec::new();
        for t in &st.map.tasklets {
            for a in t.code.accesses() {
                if let Some(key) = gather_key(a) {
                    match counts.iter_mut().find(|(k, _, _)| *k == key) {
                        Some((_, count, span)) => {
                            *count += 1;
                            if *count == 2 {
                                *span = a.span; // anchor at the 2nd occurrence
                            }
                        }
                        None => counts.push((key, 1, a.span)),
                    }
                }
            }
        }
        for ((field, rel, slot, level), count, span) in counts {
            if count >= 2 {
                diags.push(Diagnostic::new(
                    DiagCode::RedundantGather,
                    format!(
                        "indirect gather `{field}[{rel}(p,{slot}), {}]` is loaded {count}x \
                         in one map body; `hoist_gathers` would materialize it once",
                        LevelRel::from_index(level)
                    ),
                    span,
                    &st.label,
                ));
            }
        }
        if sc.redundant_gathers > 0 && sc.intensity < roof.balance_flops_per_byte() {
            diags.push(Diagnostic::new(
                DiagCode::BelowRoofline,
                format!(
                    "arithmetic intensity {:.3} FLOP/B is below the machine balance \
                     ({:.1} FLOP/B on {}): memory-bound with {} redundant gather(s) — \
                     apply `hoist_gathers`",
                    sc.intensity,
                    roof.balance_flops_per_byte(),
                    roof.name,
                    sc.redundant_gathers
                ),
                st.span,
                &st.label,
            ));
        }
    }
    diags
}

// ------------------------------------------------------------------
// Cost-regression gate (E0503)
// ------------------------------------------------------------------

/// One line of the checked-in cost baseline (`results/cost_baseline.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    pub name: String,
    /// Per-point lookup count of the optimized graph (gated exactly).
    pub lookups_per_point: usize,
    /// Predicted time of the optimized graph (gated with
    /// [`TIME_REGRESSION_TOLERANCE`]).
    pub predicted_time_s: f64,
}

/// Compare a current optimized-graph cost against its baseline entry.
/// Returns `E0503` diagnostics on regression; empty when within bounds.
pub fn check_regression(current: &ProgramCost, base: &BaselineEntry) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if current.lookups_per_point > base.lookups_per_point {
        diags.push(Diagnostic::new(
            DiagCode::CostRegression,
            format!(
                "per-point index lookups regressed: {} now vs {} in the baseline",
                current.lookups_per_point, base.lookups_per_point
            ),
            crate::loc::Span::synthetic(),
            &base.name,
        ));
    }
    let limit = base.predicted_time_s * (1.0 + TIME_REGRESSION_TOLERANCE);
    if current.predicted_time_s > limit {
        diags.push(Diagnostic::new(
            DiagCode::CostRegression,
            format!(
                "predicted time regressed: {:.3} ms now vs {:.3} ms baseline (+{:.0}% tolerance)",
                current.predicted_time_s * 1e3,
                base.predicted_time_s * 1e3,
                TIME_REGRESSION_TOLERANCE * 100.0
            ),
            crate::loc::Span::synthetic(),
            &base.name,
        ));
    }
    diags
}

// ------------------------------------------------------------------
// Dispatch prediction for graph replay
// ------------------------------------------------------------------

/// Host dispatch decisions per window under the certified eager path vs
/// a recorded [`crate::graph::ExecGraph`] replay — the CPU analog of the
/// paper's CUDA-graph launch-latency elimination (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPrediction {
    /// Dispatches paid by `compile_certified` + eager execution: one per
    /// sequential state, one per `rayon` task of a parallel state.
    pub eager: u64,
    /// Dispatches paid by a recorded-graph replay: one for the graph
    /// launch itself plus one per node the analysis left unfrozen
    /// (`Certification::Sequential`).
    pub replay: u64,
}

impl DispatchPrediction {
    /// Dispatch decisions a replay eliminates per window.
    pub fn eliminated(&self) -> u64 {
        self.eager.saturating_sub(self.replay)
    }

    /// Eager-to-replay dispatch ratio (the paper's ≥8x claim analog).
    pub fn factor(&self) -> f64 {
        self.eager as f64 / self.replay.max(1) as f64
    }
}

/// Predict the dispatch counts of one window of `sdfg` under its
/// certification `report`, both eager and replayed. Built by compiling
/// the graph exactly as [`crate::graph::ExecGraph::record`] does and
/// replicating the two executors' dispatch accounting, so the prediction
/// equals the measured [`ExecStats::dispatched_tasks`] bit for bit
/// (asserted by the graph-replay tests and bench figure).
pub fn predict_dispatch(
    sdfg: &Sdfg,
    report: &crate::analysis::AnalysisReport,
    sizes: &DomainSizes,
) -> DispatchPrediction {
    let compiled = crate::exec::compile_certified(sdfg, report);
    let mut eager = 0u64;
    let mut replay = 1u64; // the graph launch itself
    for (i, cs) in compiled.states.iter().enumerate() {
        if cs.parallel {
            eager += rayon::task_count(sizes.size(&cs.domain)) as u64;
        } else {
            eager += 1;
            if report.cert(i) == crate::analysis::Certification::Sequential {
                replay += 1; // unfrozen node: dispatched eagerly on replay
            }
        }
    }
    DispatchPrediction { eager, replay }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FieldIo;
    use crate::parser::parse;
    use crate::sdfg::Sdfg;

    const EKINH: &str = r#"
        kernel z_ekinh over cells
          ekin(p,k) = w1(p) * kin(edge(p,0), k)
                    + w2(p) * kin(edge(p,1), k)
                    + w3(p) * kin(edge(p,2), k);
          out(p,k)  = ekin(p,k) * w1(p) + kin(edge(p,0), k);
        end
    "#;

    fn ekinh_ctx() -> AnalysisContext {
        let mut ctx = AnalysisContext::new()
            .domain("cells")
            .relation("edge", "cells", "cells", 3);
        for w in ["w1", "w2", "w3"] {
            ctx = ctx.field(w, "cells", false, FieldIo::Input);
        }
        ctx.field("kin", "cells", true, FieldIo::Input)
            .field("ekin", "cells", true, FieldIo::Output)
            .field("out", "cells", true, FieldIo::Output)
    }

    fn ekinh_setup() -> (Sdfg, DomainSizes, AnalysisContext, Roofline) {
        let sdfg = Sdfg::from_program("ekinh", &parse(EKINH).unwrap());
        let sizes = DomainSizes::new(4).with("cells", 100);
        (sdfg, sizes, ekinh_ctx(), Roofline::gh200_dace())
    }

    #[test]
    fn naive_counts_match_the_naive_executor_rules() {
        let (sdfg, sizes, ctx, roof) = ekinh_setup();
        let inputs = CostInputs { ctx: &ctx, sizes: &sizes, elided_stores: &[] };
        let cost = analyze_naive(&sdfg, &inputs, &roof);
        // Statement 1: 6 reads (3 gathers), statement 2: 3 reads (1 gather),
        // each over 100 points x 4 levels.
        assert_eq!(cost.lookups_per_point, 4);
        assert_eq!(cost.stats.map_launches, 2);
        assert_eq!(cost.stats.index_lookups, 4 * 400);
        assert_eq!(cost.stats.field_reads, 9 * 400);
        assert_eq!(cost.stats.field_stores, 2 * 400);
        assert!(cost.intensity < 1.0, "climate kernels are memory-bound");
    }

    #[test]
    fn compiled_counts_dedup_and_forward() {
        let (sdfg, sizes, ctx, roof) = ekinh_setup();
        let fused = crate::transforms::fuse_maps(&sdfg);
        assert_eq!(fused.states.len(), 1);
        let inputs = CostInputs { ctx: &ctx, sizes: &sizes, elided_stores: &[] };
        let cost = analyze_compiled(&fused, &inputs, &roof);
        // Unique (edge,0..2) resolved once per point; kin(edge(p,0),k)
        // collapses across the two tasklets; ekin(p,k) is forwarded.
        assert_eq!(cost.lookups_per_point, 3);
        assert_eq!(cost.stats.index_lookups, 3 * 100);
        // Loads: 3 surface weights once/point + 3 gathered kin per
        // (point, level); stores: 2 tasklets per (point, level).
        assert_eq!(cost.stats.field_reads, 3 * 100 + 3 * 400);
        assert_eq!(cost.stats.field_stores, 2 * 400);
        assert_eq!(cost.redundant_gathers, 1, "kin(edge(p,0),k) repeats");
    }

    #[test]
    fn working_set_uses_declared_shapes() {
        let (sdfg, sizes, ctx, roof) = ekinh_setup();
        let inputs = CostInputs { ctx: &ctx, sizes: &sizes, elided_stores: &[] };
        let cost = analyze_naive(&sdfg, &inputs, &roof);
        // State 0 touches w1,w2,w3 (2-D) + kin,ekin (3-D):
        let s0 = &cost.states[0];
        assert_eq!(s0.working_set_bytes, (3 * 100 + 2 * 400) as f64 * ELEM_BYTES);
    }

    #[test]
    fn naive_predicts_slower_than_compiled() {
        let (sdfg, sizes, ctx, roof) = ekinh_setup();
        let inputs = CostInputs { ctx: &ctx, sizes: &sizes, elided_stores: &[] };
        let naive = analyze_naive(&sdfg, &inputs, &roof);
        let fused = crate::transforms::fuse_maps(&sdfg);
        let compiled = analyze_compiled(&fused, &inputs, &roof);
        assert!(naive.predicted_time_s > compiled.predicted_time_s);
        assert!(naive.bytes > compiled.bytes);
    }

    #[test]
    fn redundant_gather_fires_w0501_and_w0502() {
        let (sdfg, sizes, ctx, roof) = ekinh_setup();
        let fused = crate::transforms::fuse_maps(&sdfg);
        let inputs = CostInputs { ctx: &ctx, sizes: &sizes, elided_stores: &[] };
        let diags = perf_diagnostics(&fused, &inputs, &roof);
        let w0501: Vec<_> = diags.iter().filter(|d| d.code == DiagCode::RedundantGather).collect();
        assert_eq!(w0501.len(), 1);
        assert!(w0501[0].message.contains("kin[edge(p,0), k]"), "{}", w0501[0].message);
        assert!(!w0501[0].span.is_synthetic(), "anchored at the repeat");
        assert!(diags.iter().any(|d| d.code == DiagCode::BelowRoofline));
    }

    #[test]
    fn clean_graphs_produce_no_perf_diagnostics() {
        let src = "kernel t over cells out(p,k) = kin(edge(p,0),k) + w1(p); end";
        let sdfg = Sdfg::from_program("t", &parse(src).unwrap());
        let (_, sizes, ctx, roof) = ekinh_setup();
        let inputs = CostInputs { ctx: &ctx, sizes: &sizes, elided_stores: &[] };
        assert!(perf_diagnostics(&sdfg, &inputs, &roof).is_empty());
    }

    #[test]
    fn regression_gate_fires_on_worse_numbers_only() {
        let (sdfg, sizes, ctx, roof) = ekinh_setup();
        let inputs = CostInputs { ctx: &ctx, sizes: &sizes, elided_stores: &[] };
        let cost = analyze_compiled(&sdfg, &inputs, &roof);
        let good = BaselineEntry {
            name: "ekinh".into(),
            lookups_per_point: cost.lookups_per_point,
            predicted_time_s: cost.predicted_time_s,
        };
        assert!(check_regression(&cost, &good).is_empty());

        let tight = BaselineEntry {
            name: "ekinh".into(),
            lookups_per_point: cost.lookups_per_point - 1,
            predicted_time_s: cost.predicted_time_s / 2.0,
        };
        let diags = check_regression(&cost, &tight);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == DiagCode::CostRegression));
        assert!(diags[0].message.contains("lookups regressed"));
    }
}
