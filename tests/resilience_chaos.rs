//! Chaos test for the resilience layer: a coupled run survives dropped and
//! duplicated guard messages, a rank killed mid-window, AND a checkpoint
//! generation silently corrupted on disk — and still finishes bit-exact
//! with a fault-free run.
//!
//! Both scenarios run at every pool width in [`THREAD_COUNTS`]: rollback
//! and replay must compose with the work-stealing rayon shim, whose
//! determinism contract makes the replayed windows bitwise identical at
//! any width. The width is process-global, so tests serialize on
//! [`WIDTH_LOCK`].
//!
//! Fault schedule (guard traffic is one partial per non-zero rank per
//! window on edge `(r, 0)`, one verdict per rank on edge `(0, r)`):
//!
//! | window | fault                                   | effect            |
//! |--------|-----------------------------------------|-------------------|
//! | 1      | duplicate rank2 -> rank0 partial        | absorbed by dedup |
//! | 2      | delay rank0 -> rank1 verdict by 5 ms    | absorbed (rides   |
//! |        |                                         | out backoff)      |
//! | 3      | drop rank1 -> rank0 partial             | rollback          |
//! | 5      | kill rank 2 before it reports           | rollback, and the |
//! |        | (+ generation 3 corrupted on disk)      | newest checkpoint |
//! |        |                                         | is damaged, so    |
//! |        |                                         | restore falls back|
//! |        |                                         | a generation      |

use esm_core::{CoupledEsm, EsmConfig, ResilienceConfig};
use mpisim::{FaultAction, FaultPlan};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Pool widths every chaos scenario is repeated at.
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Serializes tests that reconfigure the process-global pool width.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn set_width(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("shim build_global is infallible");
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("esm_chaos_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn chaos_full_schedule_at(threads: usize) {
    let cfg = EsmConfig::tiny();
    let dir = scratch(&format!("full_t{threads}"));

    let plan = Arc::new(
        FaultPlan::new()
            .inject(2, 0, 1, FaultAction::Duplicate)
            .inject(0, 1, 2, FaultAction::Delay(Duration::from_millis(5)))
            .inject(1, 0, 3, FaultAction::Drop)
            .kill_rank(2, 5),
    );
    let rcfg = ResilienceConfig {
        checkpoint_every: 2,
        guard_ranks: 3,
        recv_timeout: Duration::from_millis(80),
        // Generations: 1 = initial, 2 = after window 2, 3 = after window 4.
        // Corrupting 3 forces the window-5 rollback to fall back to 2 and
        // replay windows 3-4 as well.
        corrupt_generations: vec![3],
        ..ResilienceConfig::default()
    };

    let mut chaotic = CoupledEsm::new(cfg.clone());
    let report = chaotic
        .run_windows_resilient(6, false, &dir, &rcfg, Some(plan.clone()))
        .expect("every fault in the plan is absorbable");

    // The run completed and absorbed exactly the planned disruptions.
    assert_eq!(report.windows_run, 6);
    assert_eq!(report.rollbacks, 2, "drop at window 3, kill at window 5");
    assert_eq!(
        report.generation_fallbacks, 1,
        "generation 3 was corrupt, restore fell back to generation 2"
    );
    assert_eq!(
        report.replayed_windows, 2,
        "windows 3-4 were recomputed after falling back to generation 2"
    );
    assert_eq!(report.faults_absorbed.len(), 2, "{:?}", report.faults_absorbed);

    // The recorded window graph composes with rollback-replay: every
    // rollback restores an earlier trajectory, which must invalidate the
    // frozen graph (never replay stale buffers across a restore) and
    // re-record on the next window.
    assert_eq!(
        report.graph_invalidations, report.rollbacks,
        "each rollback's restore invalidates the recorded graph"
    );
    assert_eq!(
        report.graph_rerecords, report.rollbacks,
        "each invalidation is answered by exactly one re-record"
    );
    assert_eq!(
        report.graph_recordings,
        1 + report.rollbacks,
        "window 0 records, plus one re-record per rollback"
    );
    assert!(
        report.graph_replays >= report.windows_run - report.graph_recordings,
        "committed windows that did not record must have replayed: {:?}",
        (report.graph_replays, report.graph_recordings)
    );

    // Every planned fault actually fired (the tolerated ones too).
    let fired = plan.report();
    assert_eq!(fired.dropped, 1);
    assert_eq!(fired.duplicated, 1);
    assert_eq!(fired.delayed, 1);
    assert_eq!(fired.killed, 1);
    assert!(plan.pending().is_empty(), "no fault was left unfired");

    // The headline guarantee: bit-exact with a fault-free run.
    let mut clean = CoupledEsm::new(cfg);
    clean.run_windows(6, false).unwrap();
    assert_eq!(
        chaotic.snapshot(),
        clean.snapshot(),
        "chaotic run at {threads} threads must end bit-exact with the fault-free run"
    );

    // Atomic writes: no temp files survive, and the ring's final state is
    // fully readable.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_run_survives_drops_kills_and_corrupt_checkpoints_bit_exact() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    for threads in THREAD_COUNTS {
        set_width(threads);
        chaos_full_schedule_at(threads);
    }
}

fn fault_storm_at(threads: usize) {
    // A randomized (but seeded, hence reproducible) storm of 6 message
    // faults across the 3 guard ranks. Whatever the storm does, the driver
    // must either absorb it completely — finishing bit-exact — or give up
    // with a typed error. It must never panic or return corrupted state.
    let cfg = EsmConfig::tiny();
    for seed in [7u64, 19, 23] {
        let dir = scratch(&format!("storm{seed}_t{threads}"));
        let plan = Arc::new(FaultPlan::seeded(seed, 3, 6));
        let rcfg = ResilienceConfig {
            checkpoint_every: 2,
            guard_ranks: 3,
            recv_timeout: Duration::from_millis(80),
            ..ResilienceConfig::default()
        };
        let mut chaotic = CoupledEsm::new(cfg.clone());
        match chaotic.run_windows_resilient(4, false, &dir, &rcfg, Some(plan)) {
            Ok(report) => {
                assert_eq!(report.windows_run, 4);
                let mut clean = CoupledEsm::new(cfg.clone());
                clean.run_windows(4, false).unwrap();
                assert_eq!(
                    chaotic.snapshot(),
                    clean.snapshot(),
                    "seed {seed} at {threads} threads"
                );
            }
            Err(e) => {
                // Typed failure is acceptable for a hostile storm; silent
                // corruption or a panic is not.
                eprintln!("seed {seed} at {threads} threads: gave up with typed error: {e}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn seeded_fault_storm_is_either_absorbed_or_typed() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    for threads in THREAD_COUNTS {
        set_width(threads);
        fault_storm_at(threads);
    }
}

// ---------------------------------------------------------------------------
// Supervised-driver chaos (ISSUE 4): health monitoring, degraded-mode
// coupling, and localized rank recovery under kills, hangs, and corrupted
// fluxes — at every pool width, bit-exact against the fault-free run.
// ---------------------------------------------------------------------------

use esm_core::{HealthConfig, RepairPolicy, SupervisorConfig};

/// Supervision tuning used by every supervised chaos scenario: fast
/// heartbeat deadlines so a hung rank is detected in tens of
/// milliseconds, and the default suspicion threshold of two missed beats.
fn quick_scfg() -> SupervisorConfig {
    SupervisorConfig {
        health: HealthConfig {
            beat_timeout: Duration::from_millis(50),
            hang_hold: Duration::from_millis(75),
            suspicion_threshold: 2,
        },
        ..SupervisorConfig::default()
    }
}

/// Budget ledgers as raw bits: the supervised recovery must reproduce the
/// conservation accounting exactly, not only the prognostic state.
fn budget_bits(esm: &CoupledEsm) -> [u64; 7] {
    let c = esm.carbon_budget();
    let w = esm.water_budget();
    [
        c.atmosphere.to_bits(),
        c.land.to_bits(),
        c.ocean.to_bits(),
        c.total().to_bits(),
        w.atmosphere.to_bits(),
        w.land.to_bits(),
        w.ocean_received.to_bits(),
    ]
}

fn assert_matches_fault_free(chaotic: &CoupledEsm, windows: usize, label: &str) {
    let mut clean = CoupledEsm::new(EsmConfig::tiny());
    clean.run_windows(windows, false).unwrap();
    assert_eq!(
        chaotic.snapshot(),
        clean.snapshot(),
        "{label}: supervised run must end bit-exact with the fault-free run"
    );
    assert_eq!(
        budget_bits(chaotic),
        budget_bits(&clean),
        "{label}: budget ledger bits diverged from the fault-free run"
    );
}

/// Ocean (slow group, heartbeat rank 2) killed or hung mid-window: the
/// atmosphere degrades onto persisted fluxes, the slow side respawns from
/// its own checkpoint ring, both sides replay, and the final snapshot and
/// budget ledgers are bitwise identical to a fault-free run.
fn supervised_ocean_fault_at(threads: usize, mode: &str) {
    let windows = 8;
    let dir = scratch(&format!("sup_{mode}_t{threads}"));
    let plan = Arc::new(match mode {
        "kill" => FaultPlan::new().kill_rank(2, 3),
        "hang" => FaultPlan::new().hang(2, 3),
        other => panic!("unknown mode {other}"),
    });

    let mut chaotic = CoupledEsm::new(EsmConfig::tiny());
    let report = chaotic
        .run_windows_supervised(windows as u64, &dir, &quick_scfg(), Some(plan))
        .expect("a single slow-side fault is absorbable");

    let label = format!("{mode} @ {threads} threads");
    // Kill at window 3 + threshold 2: window 4 runs degraded, the respawn
    // at window 5 replays from the window-2 checkpoints.
    assert_eq!(report.degraded, vec![4], "{label}: {:?}", report.timeline);
    assert_eq!(report.respawns, 1, "{label}");
    assert!(report.replayed_windows >= 2, "{label}");
    use esm_core::HealthEventKind as K;
    for want in ["Failed", "Respawned", "Recovered"] {
        assert!(
            report.timeline.iter().any(|e| matches!(
                (want, &e.kind),
                ("Failed", K::Failed)
                    | ("Respawned", K::Respawned { .. })
                    | ("Recovered", K::Recovered)
            )),
            "{label}: no {want} event on the timeline: {:?}",
            report.timeline
        );
    }

    // Rank recovery under a recorded graph: the respawn restores each
    // side as it rolls back, and a fast window re-records between the two
    // restores — so one respawn costs two invalidations, each answered by
    // exactly one re-record, and the run stays bit-exact (checked below).
    assert_eq!(
        report.graph_invalidations, 2,
        "{label}: both restores of the respawn invalidate the recorded graph"
    );
    assert_eq!(
        report.graph_rerecords, report.graph_invalidations,
        "{label}: every invalidation is answered by a re-record"
    );
    assert_eq!(
        report.graph_recordings,
        1 + report.graph_rerecords,
        "{label}: window 0 plus the post-restore re-records"
    );
    assert!(report.graph_replays >= 2, "{label}");

    assert_matches_fault_free(&chaotic, windows, &label);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn supervised_ocean_kill_and_hang_recover_bit_exact() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    for threads in THREAD_COUNTS {
        set_width(threads);
        for mode in ["kill", "hang"] {
            supervised_ocean_fault_at(threads, mode);
        }
    }
}

/// A NaN injected into an exchanged flux is quarantined by the gate —
/// clamped deterministically, recorded on the report, and bitwise
/// reproducible across pool widths (the repair is part of the model's
/// deterministic history, so two widths agree with *each other*).
#[test]
fn supervised_corrupt_flux_is_quarantined_and_width_reproducible() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    let mut reference: Option<iosys::Snapshot> = None;
    for threads in THREAD_COUNTS {
        set_width(threads);
        let dir = scratch(&format!("sup_corrupt_t{threads}"));
        let scfg = SupervisorConfig {
            corrupt_flux: vec![(2, "sst")],
            policy: RepairPolicy::ClampToBounds,
            ..quick_scfg()
        };
        let mut esm = CoupledEsm::new(EsmConfig::tiny());
        let report = esm
            .run_windows_supervised(5, &dir, &scfg, None)
            .expect("clamped corruption is absorbable");
        assert_eq!(report.quarantine_events.len(), 1);
        let ev = &report.quarantine_events[0];
        assert_eq!((ev.window, ev.field.as_str(), ev.action), (2, "sst", "clamped"));
        // The quarantine held: nothing non-finite ever reached a component.
        let snap = esm.snapshot();
        for (name, data) in &snap.vars {
            assert!(
                data.iter().all(|v| v.is_finite()),
                "non-finite state in {name} at {threads} threads"
            );
        }
        match &reference {
            None => reference = Some(snap),
            Some(r) => assert_eq!(
                &snap, r,
                "clamped run at {threads} threads diverged from width-{} run",
                THREAD_COUNTS[0]
            ),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// CI chaos-matrix entry point: `CHAOS_MODE` ∈ {kill, hang, corrupt-flux}
/// and `CHAOS_SEED` (any u64) pick one supervised fault scenario; the run
/// must absorb it and stay bit-exact at every pool width. Defaults (no
/// env) exercise `kill` with seed 1 so the test is meaningful locally.
#[test]
fn chaos_matrix_from_env() {
    let mode = std::env::var("CHAOS_MODE").unwrap_or_else(|_| "kill".to_string());
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let _guard = WIDTH_LOCK.lock().unwrap();
    let windows = 8;
    // Fault lands mid-run, early enough that detection + respawn complete
    // within the window budget at the default suspicion threshold.
    let fault_window = 1 + seed % 4;

    let mut reference: Option<iosys::Snapshot> = None;
    for threads in THREAD_COUNTS {
        set_width(threads);
        let dir = scratch(&format!("matrix_{mode}_{seed}_t{threads}"));
        let mut scfg = quick_scfg();
        let plan = match mode.as_str() {
            "kill" => Some(Arc::new(FaultPlan::new().kill_rank(2, fault_window))),
            "hang" => Some(Arc::new(FaultPlan::new().hang(2, fault_window))),
            "corrupt-flux" => {
                scfg.corrupt_flux = vec![(fault_window, "sst")];
                None
            }
            other => panic!("CHAOS_MODE must be kill|hang|corrupt-flux, got {other}"),
        };

        let mut esm = CoupledEsm::new(EsmConfig::tiny());
        let report = esm
            .run_windows_supervised(windows as u64, &dir, &scfg, plan)
            .unwrap_or_else(|e| panic!("{mode}/seed {seed} at {threads} threads: {e}"));
        assert_eq!(report.windows_run, windows as u64);

        let label = format!("{mode}/seed {seed} @ {threads} threads");
        if mode == "corrupt-flux" {
            assert!(!report.quarantine_events.is_empty(), "{label}");
            // A clamped repair is deterministic history, not a fault the
            // supervisor can undo: assert cross-width identity instead.
            let snap = esm.snapshot();
            match &reference {
                None => reference = Some(snap),
                Some(r) => assert_eq!(&snap, r, "{label}: diverged across widths"),
            }
        } else {
            assert_eq!(report.respawns, 1, "{label}: {:?}", report.timeline);
            assert!(
                report.graph_invalidations >= 1,
                "{label}: a respawn must invalidate the recorded window graph"
            );
            assert_eq!(report.graph_rerecords, report.graph_invalidations, "{label}");
            assert_matches_fault_free(&esm, windows, &label);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
