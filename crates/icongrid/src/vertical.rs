//! Vertical grids: terrain-following hybrid sigma-height levels for the
//! atmosphere (a SLEVE-like generalization, Leuenberger et al. 2010) and
//! stretched depth levels for the ocean.

/// Atmospheric vertical grid. `nlev` full (mass) levels bounded by
/// `nlev + 1` half (interface) levels; index 0 is the model top, index
/// `nlev - 1` the lowest layer, as in ICON.
#[derive(Debug, Clone)]
pub struct VerticalGrid {
    pub nlev: usize,
    /// Height of the model top above mean sea level (m).
    pub top_height: f64,
    /// Nominal (flat-terrain) interface heights, `nlev + 1` entries,
    /// decreasing from `top_height` to 0.
    pub z_interface: Vec<f64>,
    /// Nominal full-level heights (midpoints), `nlev` entries.
    pub z_full: Vec<f64>,
    /// Layer thicknesses (m), `nlev` entries.
    pub dz: Vec<f64>,
    /// SLEVE decay scale for terrain influence (m).
    pub decay_scale: f64,
}

impl VerticalGrid {
    /// The 90-level grid of the paper's configurations (Table 2): top at
    /// 75 km, layer thickness stretching smoothly from ~20 m near the
    /// surface to ~4 km near the top (cubic stretching, as commonly used
    /// for km-scale ICON setups).
    pub fn icon_90() -> Self {
        Self::stretched(90, 75_000.0, 20.0)
    }

    /// Build a stretched grid: `nlev` layers, model top `top_height`,
    /// lowest layer thickness `dz_bottom`. Interfaces follow
    /// `z(s) = top * s^p` with `p` chosen so the lowest layer has the
    /// requested thickness.
    pub fn stretched(nlev: usize, top_height: f64, dz_bottom: f64) -> Self {
        assert!(nlev >= 2);
        // Solve top * (1/nlev)^p = dz_bottom for p.
        let p = (dz_bottom / top_height).ln() / (1.0 / nlev as f64).ln();
        let mut z_interface = Vec::with_capacity(nlev + 1);
        for k in 0..=nlev {
            // k = 0 at the top, k = nlev at the surface.
            let s = 1.0 - k as f64 / nlev as f64;
            z_interface.push(top_height * s.powf(p));
        }
        let z_full: Vec<f64> = (0..nlev)
            .map(|k| 0.5 * (z_interface[k] + z_interface[k + 1]))
            .collect();
        let dz: Vec<f64> = (0..nlev)
            .map(|k| z_interface[k] - z_interface[k + 1])
            .collect();
        VerticalGrid {
            nlev,
            top_height,
            z_interface,
            z_full,
            dz,
            decay_scale: 8_000.0,
        }
    }

    /// Terrain-following interface height above a surface elevation `h_s`:
    /// the terrain signal decays exponentially with nominal height so that
    /// upper levels are flat (SLEVE-like single-scale decay).
    pub fn z_interface_over(&self, k: usize, h_s: f64) -> f64 {
        let z = self.z_interface[k];
        z + h_s * (-z / self.decay_scale).exp() * (1.0 - z / self.top_height).max(0.0)
    }

    /// Total column depth (m) over flat terrain.
    pub fn column_depth(&self) -> f64 {
        self.top_height
    }
}

/// Ocean depth levels: `nlev` layers with thickness stretching geometrically
/// from the surface value downward, as in ICON-O configurations.
#[derive(Debug, Clone)]
pub struct OceanLevels {
    pub nlev: usize,
    /// Interface depths (m, positive down), `nlev + 1` entries starting at 0.
    pub depth_interface: Vec<f64>,
    /// Mid-layer depths (m), `nlev` entries.
    pub depth_full: Vec<f64>,
    /// Layer thicknesses (m).
    pub dz: Vec<f64>,
}

impl OceanLevels {
    /// The 72-level grid of the paper's configurations (Table 2): surface
    /// layer ~12 m thickening to a total depth of ~6000 m.
    pub fn icon_72() -> Self {
        Self::stretched(72, 12.0, 6000.0)
    }

    /// Build `nlev` layers; the first has thickness `dz_surface` and
    /// thicknesses grow geometrically so the column reaches `total_depth`.
    pub fn stretched(nlev: usize, dz_surface: f64, total_depth: f64) -> Self {
        assert!(nlev >= 2);
        assert!(total_depth > dz_surface * nlev as f64);
        // Find growth ratio r with dz0 * (r^n - 1)/(r - 1) = total via bisection.
        let n = nlev as f64;
        let (mut lo, mut hi): (f64, f64) = (1.0 + 1e-9, 2.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let depth = dz_surface * (mid.powf(n) - 1.0) / (mid - 1.0);
            if depth < total_depth {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let r = 0.5 * (lo + hi);
        let mut depth_interface = Vec::with_capacity(nlev + 1);
        depth_interface.push(0.0);
        let mut dz = Vec::with_capacity(nlev);
        let mut t = dz_surface;
        for _ in 0..nlev {
            dz.push(t);
            depth_interface.push(depth_interface.last().unwrap() + t);
            t *= r;
        }
        let depth_full: Vec<f64> = (0..nlev)
            .map(|k| 0.5 * (depth_interface[k] + depth_interface[k + 1]))
            .collect();
        OceanLevels {
            nlev,
            depth_interface,
            depth_full,
            dz,
        }
    }

    pub fn total_depth(&self) -> f64 {
        *self.depth_interface.last().unwrap()
    }

    /// Number of active (wet) layers above the sea floor at depth
    /// `bathymetry` (m, positive down).
    pub fn active_levels(&self, bathymetry: f64) -> usize {
        self.depth_interface
            .iter()
            .skip(1)
            .take_while(|&&d| d <= bathymetry)
            .count()
            .max(1)
            .min(self.nlev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icon90_shape() {
        let v = VerticalGrid::icon_90();
        assert_eq!(v.nlev, 90);
        assert_eq!(v.z_interface.len(), 91);
        assert!((v.z_interface[0] - 75_000.0).abs() < 1e-9);
        assert!(v.z_interface[90].abs() < 1e-9);
        // Lowest layer ~20 m, monotone decreasing interfaces.
        assert!((v.dz[89] - 20.0).abs() < 1.0, "dz bottom {}", v.dz[89]);
        for k in 0..90 {
            assert!(v.z_interface[k] > v.z_interface[k + 1]);
            assert!(v.dz[k] > 0.0);
        }
        // Thickness sums to the column depth.
        let total: f64 = v.dz.iter().sum();
        assert!((total - 75_000.0).abs() < 1e-6);
    }

    #[test]
    fn terrain_following_reaches_surface_and_flattens() {
        let v = VerticalGrid::icon_90();
        let h_s = 2000.0;
        // Lowest interface sits on the terrain.
        assert!((v.z_interface_over(90, h_s) - h_s).abs() < 1e-9);
        // Top interface is unperturbed.
        assert!((v.z_interface_over(0, h_s) - 75_000.0).abs() < 1e-6);
        // Monotone in between.
        for k in 0..90 {
            assert!(v.z_interface_over(k, h_s) > v.z_interface_over(k + 1, h_s));
        }
    }

    #[test]
    fn ocean72_shape() {
        let o = OceanLevels::icon_72();
        assert_eq!(o.nlev, 72);
        assert!((o.dz[0] - 12.0).abs() < 1e-9);
        assert!((o.total_depth() - 6000.0).abs() < 1.0);
        for k in 1..72 {
            assert!(o.dz[k] > o.dz[k - 1], "thickness must grow with depth");
        }
    }

    #[test]
    fn active_levels_clamps() {
        let o = OceanLevels::icon_72();
        assert_eq!(o.active_levels(1e9), 72);
        assert_eq!(o.active_levels(0.0), 1);
        let mid = o.depth_interface[36];
        assert_eq!(o.active_levels(mid + 0.1), 36);
    }
}
