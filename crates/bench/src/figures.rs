//! One function per table/figure of the paper. Each returns a
//! `serde_json::Value` (written to `results/`) and prints a readable
//! rendition.

use dace_mini::{exec, loc, sdfg::Sdfg, suite, transforms};
use machine::config::{tau_star, GridConfig};
use machine::cost::{Mapping, ThroughputModel};
use machine::graphs::land_sequence;
use machine::iomodel;
use machine::power::matched_tau_power_ratio;
use machine::systems;
use serde_json::{json, Value};

/// Table 1: state-of-the-art comparison with tau and tau*.
pub fn table1() -> Value {
    // Literature rows from the paper; "this work" computed by our model.
    let model = ThroughputModel::new(systems::JUPITER, GridConfig::km1p25(), Mapping::paper());
    let ours = model.scaling_point(20_480).tau;
    let rows = vec![
        ("SCREAM", 3.25, "A L - - - -", "~87% Frontier GPU", 458.0),
        ("ICON (atm-oce)", 1.25, "A L - O - -", "~95% Lumi GPU", 69.0),
        ("NICAM", 3.5, "A L - - - -", "~26% Fugaku CPU", 365.0),
        ("this work (modeled)", 1.25, "A L V O B C", "~85% JUPITER GPU", ours),
    ];
    println!("\n== Table 1: km-scale climate simulations ==");
    println!("{:<22} {:>6} {:>13} {:>20} {:>8} {:>8}", "model", "dx/km", "components", "resource", "tau", "tau*");
    let mut out = Vec::new();
    for (name, dx, comp, res, tau) in rows {
        let ts = tau_star(dx, tau);
        println!("{name:<22} {dx:>6.2} {comp:>13} {res:>20} {tau:>8.1} {ts:>8.1}");
        out.push(json!({"model": name, "dx_km": dx, "components": comp,
                        "resource": res, "tau": tau, "tau_star": ts}));
    }
    json!({ "rows": out, "paper_this_work_tau": 145.7 })
}

/// Table 2: grid configurations and degrees of freedom.
pub fn table2() -> Value {
    println!("\n== Table 2: model configurations ==");
    let mut out = Vec::new();
    for cfg in [GridConfig::km10(), GridConfig::km1p25()] {
        println!(
            "-- {} (dx = {:.2} km, {:.3e} deg. of freedom, state {:.1} TiB) --",
            cfg.name,
            cfg.dx_km,
            cfg.total_dof(),
            cfg.state_bytes() / (1u64 << 40) as f64
        );
        println!("{:<28} {:>12} {:>7} {:>6} {:>9}", "component", "cells", "levels", "vars", "dt/s");
        let mut comps = Vec::new();
        for (c, s) in cfg.shapes() {
            let dt = match c {
                machine::config::Component::OceanSeaIce
                | machine::config::Component::Biogeochemistry => cfg.dt_oce_s,
                _ => cfg.dt_atm_s,
            };
            println!(
                "{:<28} {:>12.3e} {:>7} {:>6} {:>9}",
                c.label(),
                s.cells,
                s.levels,
                s.vars,
                dt
            );
            comps.push(json!({"component": c.label(), "cells": s.cells,
                              "levels": s.levels, "vars": s.vars, "dof": s.dof(), "dt_s": dt}));
        }
        out.push(json!({"name": cfg.name, "dx_km": cfg.dx_km,
                        "total_dof": cfg.total_dof(), "components": comps}));
    }
    json!({ "configs": out, "paper_dof": {"km10": 1.2e10, "km1p25": 7.9e11} })
}

/// Table 3: the systems.
pub fn table3() -> Value {
    println!("\n== Table 3: systems ==");
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>20} {:>16}",
        "system", "nodes", "chips/node", "superchips", "interconnect", "superchip TDP"
    );
    let mut rows = Vec::new();
    for s in systems::table3_systems() {
        println!(
            "{:<10} {:>7} {:>12} {:>12} {:>20} {:>14} W",
            s.name,
            s.n_nodes,
            s.chips_per_node,
            s.total_chips(),
            s.network.name,
            s.chip.shared_tdp_w.unwrap_or(0.0)
        );
        rows.push(json!({"name": s.name, "nodes": s.n_nodes,
                         "superchips": s.total_chips(),
                         "interconnect": s.network.name,
                         "tdp_w": s.chip.shared_tdp_w}));
    }
    json!({ "systems": rows })
}

/// Figure 2: 10 km coupled strong scaling on Levante CPU vs GPU (left)
/// and the energy-efficiency comparison (right).
pub fn fig2() -> Value {
    let cfg = GridConfig::km10();
    let gpu = ThroughputModel::new(systems::LEVANTE_GPU, cfg, Mapping::all_gpu());
    let cpu = ThroughputModel::new(systems::LEVANTE_CPU, cfg, Mapping::all_cpu());
    // GH200 reference curve (the text's "tau ~ 798 on 40 GH200 nodes").
    let gh = ThroughputModel::new(systems::JUPITER, cfg, Mapping::paper());

    println!("\n== Figure 2 (left): 10 km coupled strong scaling ==");
    println!("{:<24} {:>7} {:>9}", "curve", "nodes", "tau");
    let mut series = Vec::new();
    for (label, model, node_counts, chips_per_node) in [
        ("Levante GPU (A100)", &gpu, vec![5u32, 10, 20, 40, 80], 4u32),
        ("Levante CPU (2x7763)", &cpu, vec![50, 100, 200, 400, 800, 1600], 1),
        ("GH200 reference", &gh, vec![5, 10, 20, 40, 80], 4),
    ] {
        let mut pts = Vec::new();
        for &n in &node_counts {
            let tau = model.scaling_point(n * chips_per_node).tau;
            println!("{label:<24} {n:>7} {tau:>9.1}");
            pts.push(json!({"nodes": n, "tau": tau}));
        }
        series.push(json!({"label": label, "points": pts}));
    }

    println!("\n== Figure 2 (right): energy at matched time-to-solution ==");
    let (gkw, ckw, ratio) =
        matched_tau_power_ratio(&gpu, &cpu, 64).expect("CPU partition reaches the target");
    println!("GPU power: {gkw:>8.1} kW");
    println!("CPU power: {ckw:>8.1} kW");
    println!("ratio:     {ratio:>8.2}x  (paper: 4.4x)");
    json!({ "left": series,
            "right": {"gpu_kw": gkw, "cpu_kw": ckw, "ratio": ratio, "paper_ratio": 4.4} })
}

/// Figure 4: strong scaling of the 1.25 km full ESM (left, with the 10 km
/// weak-scaling reference) and of the 10 km ESM on Alps + JEDI (right).
pub fn fig4() -> Value {
    println!("\n== Figure 4 (left): 1.25 km full Earth system ==");
    println!("{:<18} {:>8} {:>9} {:>14}", "system", "chips", "tau", "paper anchor");
    let cfg = GridConfig::km1p25();
    let anchors = [
        (2048u32, Some(32.7)),
        (4096, Some(59.5)),
        (8192, None),
        (16_384, None),
        (20_480, Some(145.7)),
    ];
    let mut left = Vec::new();
    for (system, pts) in [
        (&systems::JUPITER, anchors.as_slice()),
        (&systems::ALPS, &[(2048, None), (4096, None), (8192, Some(91.8))]),
    ] {
        let model = ThroughputModel::new(*system, cfg, Mapping::paper());
        let mut series = Vec::new();
        for &(chips, anchor) in pts {
            let tau = model.scaling_point(chips).tau;
            let a = anchor.map(|v| format!("{v}")).unwrap_or_else(|| "-".into());
            println!("{:<18} {chips:>8} {tau:>9.1} {a:>14}", system.name);
            series.push(json!({"chips": chips, "tau": tau, "paper": anchor}));
        }
        left.push(json!({"system": system.name, "points": series}));
    }
    // Gray reference: 10 km grid, 1.25 km time step, 64x fewer chips.
    println!("-- 10 km reference with the 1.25 km time step (gray curve) --");
    let ref_cfg = GridConfig::at_r2b("10 km @ 10 s", 8, 10.0, 60.0);
    let ref_model = ThroughputModel::new(systems::ALPS, ref_cfg, Mapping::paper());
    let mut gray = Vec::new();
    for chips in [32u32, 64, 128, 256, 384] {
        let tau = ref_model.scaling_point(chips).tau;
        println!("{:<18} {chips:>8} {tau:>9.1} {:>14}", "10km@10s (ref)", if chips == 384 { "~167" } else { "-" });
        gray.push(json!({"chips": chips, "tau": tau}));
    }
    // Weak-scaling efficiency: equal load per chip (10 km on 32 chips vs
    // 1.25 km on 2048), both on Alps as in the paper's experiment.
    let t_small = ref_model.scaling_point(32).tau;
    let alps_big = ThroughputModel::new(systems::ALPS, cfg, Mapping::paper());
    let t_big = alps_big.scaling_point(2048).tau;
    let weak_eff = t_big / t_small;
    println!("weak-scaling efficiency across 64x problem growth: {:.0}% (paper: ~90%)", weak_eff * 100.0);

    println!("\n== Figure 4 (right): 10 km Earth system on Alps and JEDI ==");
    println!("{:<10} {:>8} {:>9}", "system", "chips", "tau");
    let cfg10 = GridConfig::km10();
    let mut right = Vec::new();
    for (system, max_chips) in [(&systems::JEDI, 192u32), (&systems::ALPS, 512)] {
        let model = ThroughputModel::new(*system, cfg10, Mapping::paper());
        let mut series = Vec::new();
        let mut chips = 32u32;
        while chips <= max_chips {
            let pt = model.scaling_point(chips);
            println!("{:<10} {chips:>8} {:>9.1}", system.name, pt.tau);
            series.push(json!({"chips": chips, "tau": pt.tau,
                               "cells_per_gpu": pt.atm_cells_per_chip}));
            chips *= 2;
        }
        right.push(json!({"system": system.name, "points": series}));
    }
    let flat = ThroughputModel::new(systems::ALPS, cfg10, Mapping::paper());
    let c512 = flat.scaling_point(512);
    println!(
        "at 512 chips: {:.0} cells/GPU — \"too little to fully utilize the GPU\" (paper: ~10800)",
        c512.atm_cells_per_chip
    );
    json!({ "left": left, "gray_reference": gray, "weak_scaling_efficiency": weak_eff,
            "right": right })
}

/// §5.2 figures: OpenACC vs DaCe dynamical-core runtime (modeled at the
/// 10 km setup + measured on the real mini-kernels) and sustained memory
/// bandwidth.
pub fn dace() -> Value {
    println!("\n== Section 5.2: DaCe vs OpenACC dynamical core (10 km setup) ==");
    println!("{:<8} {:>16} {:>16} {:>9}", "chips", "OpenACC ms/step", "DaCe ms/step", "speedup");
    let cfg = GridConfig::km10();
    let mut modeled = Vec::new();
    for chips in [16u32, 32, 64, 128] {
        // Dynamical core = 45 % of the atmosphere traffic.
        let cells = cfg.atm_cells / chips as f64;
        let traffic = cells * cfg.atm_levels * machine::calib::ATM_BYTES_PER_DOF_STEP * 0.45;
        let bw = systems::GH200_PEAK_BW_GBS * 1e9;
        let t_acc = traffic / (bw * machine::calib::GPU_DRAM_EFF_OPENACC) * 1e3;
        let t_dace = traffic / (bw * machine::calib::GPU_DRAM_EFF_DACE) * 1e3;
        println!("{chips:<8} {t_acc:>16.2} {t_dace:>16.2} {:>9.2}", t_acc / t_dace);
        modeled.push(json!({"chips": chips, "openacc_ms": t_acc, "dace_ms": t_dace}));
    }

    println!("\n-- measured on the real mini-dycore kernels (this machine) --");
    let prog = suite::dycore_program();
    let topo = suite::synthetic_topology(20_000);
    let nlev = 30;
    let mut d1 = suite::synthetic_data(&topo, nlev, 7);
    let mut d2 = d1.clone();
    let t0 = std::time::Instant::now();
    let naive_stats = exec::run_naive(&prog, &topo, &mut d1);
    let t_naive = t0.elapsed().as_secs_f64();
    let (opt, report) = transforms::gh200_pipeline(&Sdfg::from_program("dycore", &prog));
    let compiled = exec::compile(&opt);
    let t0 = std::time::Instant::now();
    let opt_stats = compiled.run(&topo, &mut d2);
    let t_opt = t0.elapsed().as_secs_f64();
    assert_eq!(d1, d2, "backends must agree");
    println!(
        "naive: {:.1} ms, compiled: {:.1} ms, speedup {:.2}x; index lookups {} -> {} per point ({:.1}x, paper 8x)",
        t_naive * 1e3,
        t_opt * 1e3,
        t_naive / t_opt,
        report.lookups_before,
        report.lookups_after,
        report.reduction_factor()
    );

    println!("\n== Section 5.2: sustained memory bandwidth ==");
    println!("{:<26} {:>14} {:>12}", "configuration", "per-GPU GiB/s", "fraction");
    let mut bw_rows = Vec::new();
    for (label, eff) in [
        ("OpenACC dycore", machine::calib::GPU_DRAM_EFF_OPENACC),
        ("DaCe dycore", machine::calib::GPU_DRAM_EFF_DACE),
        ("application average", machine::calib::GPU_DRAM_EFF_AVG),
    ] {
        let bw = systems::GH200_PEAK_BW_GBS * eff;
        println!("{label:<26} {bw:>14.0} {eff:>11.0}%", eff = eff * 100.0);
        bw_rows.push(json!({"config": label, "per_gpu_gbs": bw, "fraction": eff}));
    }
    let hero_pib = 8192.0 * systems::GH200_PEAK_BW_GBS * machine::calib::GPU_DRAM_EFF_DACE
        / (1024.0 * 1024.0);
    println!("aggregate at the 8192-chip hero run: {hero_pib:.1} PiB/s (paper: >15 PiB/s, ~50% peak)");

    json!({ "modeled": modeled,
            "measured": {"naive_ms": t_naive*1e3, "compiled_ms": t_opt*1e3,
                          "speedup": t_naive/t_opt,
                          "lookups_before": report.lookups_before,
                          "lookups_after": report.lookups_after,
                          "naive_index_lookups": naive_stats.index_lookups,
                          "compiled_index_lookups": opt_stats.index_lookups},
            "bandwidth": bw_rows, "hero_aggregate_pib_s": hero_pib })
}

/// §5.2 LoC inventory (2728 -> ~1400 lines story).
pub fn loc_inventory() -> Value {
    println!("\n== Section 5.2: source-line inventory ==");
    let clean = suite::DYCORE_SRC;
    let legacy = loc::annotate_legacy(clean);
    let rep = loc::count(&legacy);
    let clean_lines = loc::nonempty_lines(clean);
    println!("clean (parsed) source lines : {clean_lines}");
    println!("legacy annotated total      : {}", rep.total());
    for (label, n, frac, paper) in [
        ("OpenACC pragmas", rep.openacc, rep.fraction(loc::LineClass::OpenAcc), 0.20),
        ("other directives", rep.other_directive, rep.fraction(loc::LineClass::OtherDirective), 0.12),
        ("duplicated loops", rep.duplicated, rep.fraction(loc::LineClass::Duplicated), 0.06),
    ] {
        println!("{label:<28}: {n:>4} ({:>4.0}%, paper {:.0}%)", frac * 100.0, paper * 100.0);
    }
    println!(
        "clean / annotated ratio     : {:.0}% (paper: 1400/2728 = 51%)",
        100.0 * clean_lines as f64 / rep.total() as f64
    );
    json!({ "clean_lines": clean_lines, "annotated_lines": rep.total(),
            "openacc": rep.openacc, "other_directives": rep.other_directive,
            "duplicated": rep.duplicated,
            "paper": {"clean": 1400, "annotated": 2728} })
}

/// §5.1: the land/vegetation CUDA-graph speedup (8-10x).
pub fn cudagraphs() -> Value {
    println!("\n== Section 5.1: CUDA graphs for the land model ==");
    println!("{:<28} {:>12} {:>14} {:>12} {:>9}", "configuration", "cells/chip", "no graphs ms", "graphs ms", "speedup");
    let mut rows = Vec::new();
    for (label, land_cells, chips) in [
        ("10 km on 128 chips", 1.5e6, 128.0),
        ("10 km on 512 chips", 1.5e6, 512.0),
        ("1.25 km on 8192 chips", 0.98e8, 8192.0),
        ("1.25 km on 20480 chips", 0.98e8, 20_480.0),
    ] {
        let local = land_cells / chips;
        let seq = land_sequence(local, systems::GH200_PEAK_BW_GBS);
        let t_no = seq.time_individual_launches() * 1e3;
        let t_yes = seq.time_graph_replay() * 1e3;
        println!(
            "{label:<28} {local:>12.0} {t_no:>14.2} {t_yes:>12.2} {:>8.1}x",
            seq.graph_speedup()
        );
        rows.push(json!({"config": label, "cells_per_chip": local,
                          "no_graphs_ms": t_no, "graphs_ms": t_yes,
                          "speedup": seq.graph_speedup()}));
    }

    // Measured structure from the real land model.
    use icongrid::Grid;
    use land::{kernels::LaunchMode, LandModel, LandParams};
    use std::sync::Arc;
    let g = Arc::new(Grid::build(3, icongrid::EARTH_RADIUS_M));
    let land_cells: Vec<u32> = (0..g.n_cells as u32)
        .filter(|&c| g.cell_center[c as usize].x > 0.0)
        .collect();
    let elev: Vec<f64> = (0..g.n_cells)
        .map(|c| g.cell_center[c].x.max(0.0) * 1000.0)
        .collect();
    let mut m = LandModel::new(g, LandParams::new(600.0), land_cells, &elev, LaunchMode::Graph);
    for _ in 0..3 {
        m.step();
    }
    println!(
        "\nreal mini-JSBach: {} small kernels per step recorded, {} graph replays after 3 steps",
        m.recorder.kernels_per_step(),
        m.recorder.graph_replays
    );
    json!({ "modeled": rows,
            "measured_kernels_per_step": m.recorder.kernels_per_step(),
            "paper_speedup_range": [8.0, 10.0] })
}

/// §5.1 on the CPU: replayable execution graphs for the coupled step.
///
/// Three layers of the same optimization, measured for real:
/// * the dace-mini dycore frozen into an [`dace_mini::ExecGraph`], with
///   the static cost model's dispatch prediction asserted against the
///   measured `ExecStats`;
/// * the land model's kernel launches, individual vs graph replay;
/// * the full `CoupledEsm` window record/replay, bitwise-checked against
///   the eager driver.
pub fn graph_replay() -> Value {
    use dace_mini::{cost, exec, suite, transforms, ExecGraph, Sdfg};
    println!("\n== Graph replay: recorded execution graphs for the coupled step ==");

    // --- dace-mini dycore: freeze the certified pipeline. ---
    let prog = suite::dycore_program();
    let sdfg = Sdfg::from_program("dycore", &prog);
    let (opt, report, hoist) =
        transforms::gh200_certified_pipeline(&sdfg, &suite::suite_context());
    assert!(report.is_clean(), "dycore must certify");
    let topo = suite::synthetic_topology(2_000);
    let mut data = suite::synthetic_data(&topo, 10, 42);
    let mut ex = exec::compile_certified(&opt, &report);
    ex.elide_transient_stores(&hoist.transient_names());
    let (mut graph, eager) = ExecGraph::record_compiled("dycore", ex, &report, &topo, &mut data);
    let replay = graph.replay(&topo, &mut data).expect("shapes unchanged");
    let sizes = cost::DomainSizes::new(10)
        .with("cells", topo.domain_size("cells"))
        .with("edges", topo.domain_size("edges"));
    let pred = cost::predict_dispatch(&opt, &report, &sizes);
    assert_eq!(pred.eager, eager.dispatched_tasks, "cost model: eager dispatch exact");
    assert_eq!(pred.replay, replay.dispatched_tasks, "cost model: replay dispatch exact");
    println!(
        "dycore: {} dispatches eager -> {} on replay ({:.1}x, {} frozen / {} unfrozen nodes, \
         cost model exact)",
        eager.dispatched_tasks,
        replay.dispatched_tasks,
        pred.factor(),
        graph.n_frozen(),
        graph.n_unfrozen()
    );

    // --- land model: individual launches vs graph replay. ---
    use icongrid::Grid;
    use land::{kernels::LaunchMode, LandModel, LandParams};
    use std::sync::Arc;
    let steps = 4u64;
    let mut per_mode = Vec::new();
    for mode in [LaunchMode::Individual, LaunchMode::Graph] {
        let g = Arc::new(Grid::build(3, icongrid::EARTH_RADIUS_M));
        let land_cells: Vec<u32> = (0..g.n_cells as u32)
            .filter(|&c| g.cell_center[c as usize].x > 0.0)
            .collect();
        let elev: Vec<f64> = (0..g.n_cells)
            .map(|c| g.cell_center[c].x.max(0.0) * 1000.0)
            .collect();
        let mut m = LandModel::new(g, LandParams::new(600.0), land_cells, &elev, mode);
        for _ in 0..steps {
            m.step();
        }
        per_mode.push((mode, m.recorder.kernel_launches, m.recorder.graph_replays));
    }
    let eager_per_step = per_mode[0].1 / steps;
    // Replay dispatch: one graph launch per replayed step.
    let replay_per_step = 1u64;
    println!(
        "land: {eager_per_step} kernel launches per step individually -> \
         {replay_per_step} graph launch on replay ({}x)",
        eager_per_step / replay_per_step
    );

    // --- full coupled driver: record window 0, replay 1..N, bit-exact. ---
    let windows = 4;
    let mut recorded = esm_core::CoupledEsm::new(esm_core::EsmConfig::tiny());
    recorded.run_windows(windows, false).unwrap();
    let mut eager_esm = esm_core::CoupledEsm::new(esm_core::EsmConfig::tiny());
    eager_esm.replay.cfg.enabled = false;
    eager_esm.run_windows(windows, false).unwrap();
    assert!(
        recorded.snapshot() == eager_esm.snapshot(),
        "replayed coupled windows must be bitwise identical to eager"
    );
    let stats = recorded.replay.stats;
    println!(
        "coupled driver: {} recorded, {} replayed, {} arena allocations, bitwise equal to eager",
        stats.recorded_windows,
        stats.replayed_windows,
        recorded.replay.arena_allocations()
    );

    json!({
        "dycore": {
            "eager_dispatched_tasks": eager.dispatched_tasks,
            "replay_dispatched_tasks": replay.dispatched_tasks,
            "predicted_eager": pred.eager,
            "predicted_replay": pred.replay,
            "predicted_eliminated": pred.eliminated(),
            "dispatch_factor": pred.factor(),
            "frozen_nodes": graph.n_frozen(),
            "unfrozen_nodes": graph.n_unfrozen(),
            "cost_model_exact": true,
        },
        "land": {
            "steps": steps,
            "eager_launches_per_step": eager_per_step,
            "replay_launches_per_step": replay_per_step,
            "graph_replays": per_mode[1].2,
            "dispatch_factor": eager_per_step as f64 / replay_per_step as f64,
        },
        "coupled": {
            "windows": windows,
            "recorded_windows": stats.recorded_windows,
            "replayed_windows": stats.replayed_windows,
            "invalidations": stats.invalidations,
            "arena_allocations": recorded.replay.arena_allocations(),
            "bitwise_equal_to_eager": true,
        },
        "paper_speedup_range": [8.0, 10.0],
    })
}

/// §7 I/O: restart sizes and staggered read/write rates.
pub fn io() -> Value {
    println!("\n== Section 7: restart I/O at the 1.25 km scale (modeled) ==");
    let cfg = GridConfig::km1p25();
    let (atm_gib, oce_gib) = iomodel::restart_sizes_gib(&cfg);
    println!("atmosphere restart: {atm_gib:>9.2} GiB (paper: 9265.50)");
    println!("ocean restart:      {oce_gib:>9.2} GiB (paper: 7030.91)");
    println!("\n{:<12} {:>14} {:>14}", "io procs", "read GiB/s", "write GiB/s");
    let mut sweep = Vec::new();
    for procs in [128u32, 512, 1024, 2048, 2579, 4096] {
        let r = iomodel::read_rate_gibs(procs);
        let w = iomodel::write_rate_gibs(procs);
        println!("{procs:<12} {r:>14.2} {w:>14.2}");
        sweep.push(json!({"procs": procs, "read_gibs": r, "write_gibs": w}));
    }
    println!("(paper at 2579 procs: read 615.61, write 198.19 GiB/s)");
    println!(
        "checkpoint time at hero scale: {:.0} s",
        iomodel::checkpoint_time_s(&cfg, 2579)
    );

    // Real multi-file restart measurement at laptop scale.
    use iosys::{read_checkpoint, write_checkpoint, Snapshot};
    let dir = iosys::restart::scratch_dir("figures_io");
    let mut snap = Snapshot::new();
    for i in 0..24 {
        snap.push(format!("var{i:02}"), vec![i as f64; 250_000]).unwrap();
    }
    let bytes = snap.payload_bytes() as f64;
    let t0 = std::time::Instant::now();
    write_checkpoint(&dir, "restart", &snap, 4).unwrap();
    let w_s = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let back = read_checkpoint(&dir, "restart", 3).unwrap();
    let r_s = t0.elapsed().as_secs_f64();
    assert_eq!(back, snap);
    std::fs::remove_dir_all(&dir).ok();
    let (wr, rd) = (bytes / w_s / 1e9, bytes / r_s / 1e9);
    println!("\nreal mini-restart ({:.0} MB, 4 files): write {wr:.2} GB/s, read {rd:.2} GB/s, bit-exact", bytes / 1e6);

    json!({ "atm_restart_gib": atm_gib, "oce_restart_gib": oce_gib,
            "paper": {"atm": 9265.50, "oce": 7030.91, "read": 615.61, "write": 198.19},
            "rate_sweep": sweep,
            "mini_measured": {"write_gbs": wr, "read_gbs": rd} })
}

/// §4: the practical tau limit as resolution is dialed back (X1).
pub fn tau_limits() -> Value {
    println!("\n== Section 4: practical limits of coarsening (X1) ==");
    println!("{:<8} {:>8} {:>8} {:>10} {:>8}", "dx/km", "r2b", "chips", "cells/GPU", "tau");
    let mut rows = Vec::new();
    for k in [6u32, 7, 8, 9, 10, 11] {
        let cfg = GridConfig::swept(k);
        let model = ThroughputModel::new(systems::JUPITER, cfg, Mapping::paper());
        // Smallest chip count that still keeps >= ~30k cells per GPU (a
        // full GPU's worth of work), floored by memory.
        let by_work = (cfg.atm_cells / 32_768.0).ceil() as u32;
        let chips = by_work.max(model.min_chips_by_memory()).max(2);
        let pt = model.scaling_point(chips);
        println!(
            "{:<8.2} {k:>8} {chips:>8} {:>10.0} {:>8.0}",
            cfg.dx_km, pt.atm_cells_per_chip, pt.tau
        );
        rows.push(json!({"dx_km": cfg.dx_km, "r2b": k, "chips": chips, "tau": pt.tau}));
    }
    println!("(paper: practical limit tau ~ 3192 at dx = 40 km on ~2.5 nodes)");
    json!({ "rows": rows, "paper_limit": {"dx_km": 40.0, "tau": 3192.0} })
}

/// Mapping ablation (X2): what the heterogeneous mapping buys.
pub fn mapping() -> Value {
    println!("\n== Ablation: component-to-device mapping (1.25 km, JUPITER) ==");
    println!("{:<46} {:>8} {:>8} {:>8}", "mapping", "2048", "8192", "20480");
    let cfg = GridConfig::km1p25();
    let mut rows = Vec::new();
    for (label, m) in [
        ("paper: atm+land GPU, ocean+BGC CPU", Mapping::paper()),
        ("all GPU (ocean competes for the GPUs)", Mapping::all_gpu()),
        ("paper + DaCe dycore", {
            let mut m = Mapping::paper();
            m.dace_dycore = true;
            m
        }),
        ("paper without CUDA graphs (land)", {
            let mut m = Mapping::paper();
            m.land_graphs = false;
            m
        }),
    ] {
        let model = ThroughputModel::new(systems::JUPITER, cfg, m);
        let taus: Vec<f64> = [2048u32, 8192, 20_480]
            .iter()
            .map(|&p| model.scaling_point(p).tau)
            .collect();
        println!("{label:<46} {:>8.1} {:>8.1} {:>8.1}", taus[0], taus[1], taus[2]);
        rows.push(json!({"mapping": label, "tau_2048": taus[0],
                          "tau_8192": taus[1], "tau_20480": taus[2]}));
    }
    json!({ "rows": rows })
}

/// Supervised-resilience artifact: a chaos run (ocean group killed
/// mid-window, plus one corrupted flux field) driven by
/// `run_windows_supervised`, with the resulting [`esm_core::ResilienceReport`]
/// — degraded windows, quarantine events, respawns, and the
/// suspicion/recovery timeline — surfaced as JSON.
pub fn resilience() -> Value {
    use esm_core::{CoupledEsm, EsmConfig, HealthConfig, SupervisorConfig};
    use mpisim::FaultPlan;
    use std::sync::Arc;
    use std::time::Duration;

    println!("\n== Resilience: supervised chaos runs (tiny config) ==");
    let scfg = SupervisorConfig {
        health: HealthConfig {
            beat_timeout: Duration::from_millis(50),
            hang_hold: Duration::from_millis(75),
            suspicion_threshold: 2,
        },
        ..SupervisorConfig::default()
    };
    let scratch = |tag: &str| {
        let d = std::env::temp_dir().join(format!("esm_bench_res_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    };
    let report_json = |r: &esm_core::ResilienceReport| {
        json!({
            "windows_run": r.windows_run,
            "degraded_windows": r.degraded_windows,
            "degraded": r.degraded,
            "respawns": r.respawns,
            "replayed_windows": r.replayed_windows,
            "checkpoints_written": r.checkpoints_written,
            "generation_fallbacks": r.generation_fallbacks,
            "quarantine_events": r.quarantine_events.iter().map(|e| json!({
                "window": e.window, "field": e.field, "bad_values": e.bad_values,
                "first_index": e.first_index, "action": e.action,
            })).collect::<Vec<_>>(),
            "timeline": r.timeline.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
        })
    };

    // Scenario 1: ocean+BGC group killed at window 3 — degrade, respawn,
    // replay, and finish bit-exact with the fault-free run.
    let dir = scratch("kill");
    let plan = Arc::new(FaultPlan::new().kill_rank(2, 3));
    let mut chaotic = CoupledEsm::new(EsmConfig::tiny());
    let kill_report = chaotic
        .run_windows_supervised(8, &dir, &scfg, Some(plan))
        .expect("a single kill is absorbable");
    std::fs::remove_dir_all(&dir).ok();
    let mut clean = CoupledEsm::new(EsmConfig::tiny());
    clean.run_windows(8, false).unwrap();
    let bitwise = chaotic.snapshot() == clean.snapshot();
    println!(
        "kill@3: {} degraded, {} respawn(s), {} replayed, bit-exact with fault-free: {bitwise}",
        kill_report.degraded_windows, kill_report.respawns, kill_report.replayed_windows
    );
    for e in &kill_report.timeline {
        println!("  {e}");
    }

    // Scenario 2: a NaN injected into an exchanged flux field is clamped
    // by the quarantine gate and recorded; no component ever sees it.
    let dir = scratch("corrupt");
    let ccfg = SupervisorConfig { corrupt_flux: vec![(2, "sst")], ..scfg.clone() };
    let mut corrupted = CoupledEsm::new(EsmConfig::tiny());
    let corrupt_report = corrupted
        .run_windows_supervised(5, &dir, &ccfg, None)
        .expect("a clamped corruption is absorbable");
    std::fs::remove_dir_all(&dir).ok();
    let state_finite = corrupted
        .snapshot()
        .vars
        .iter()
        .all(|(_, data)| data.iter().all(|v| v.is_finite()));
    for e in &corrupt_report.quarantine_events {
        println!(
            "quarantine: window {} field {} ({} bad): {}",
            e.window, e.field, e.bad_values, e.action
        );
    }

    json!({
        "kill": report_json(&kill_report),
        "kill_bitwise_identical_to_fault_free": bitwise,
        "corrupt_flux": report_json(&corrupt_report),
        "corrupt_state_all_finite": state_finite,
    })
}

/// Storage-fault artifact (DESIGN.md §11): a seeded `FaultFs` chaos run
/// of the resilient driver — every checkpoint retry, output heal, and
/// shed visible on the report, end state bit-exact — plus the size of the
/// crash-point space one checkpoint generation exposes (what
/// `tests/storage_crash.rs` enumerates exhaustively).
pub fn storage() -> Value {
    use esm_core::{CoupledEsm, EsmConfig, ResilienceConfig};
    use iosys::{CheckpointRing, FaultFs, RetryPolicy, Snapshot, Storage};
    use std::sync::Arc;
    use std::time::Duration;

    println!("\n== Storage faults: seeded chaos through the resilient driver ==");
    let windows = 4u64;
    let mut rows = Vec::new();
    for seed in [3u64, 11, 42] {
        let dir = iosys::restart::scratch_dir(&format!("figures_storage_{seed}"));
        let ffs = Arc::new(FaultFs::seeded(seed, 6));
        let rcfg = ResilienceConfig {
            checkpoint_every: 1,
            diagnostics_every: 1,
            storage: Some(ffs.clone() as Arc<dyn Storage>),
            checkpoint_retry: RetryPolicy { attempts: 4, backoff: Duration::from_millis(1) },
            ..ResilienceConfig::default()
        };
        let mut chaotic = CoupledEsm::new(EsmConfig::tiny());
        let report = chaotic
            .run_windows_resilient(windows, false, &dir, &rcfg, None)
            .expect("seeded storage faults are absorbable");
        std::fs::remove_dir_all(&dir).ok();
        let mut clean = CoupledEsm::new(EsmConfig::tiny());
        clean.run_windows(windows as usize, false).unwrap();
        let bitwise = chaotic.snapshot() == clean.snapshot();
        let fired = ffs.report();
        println!(
            "seed {seed}: {} fault(s) fired, {} ckpt retries, {} ckpt failures, \
             {} output errors, {} shed, bit-exact: {bitwise}",
            fired.total(),
            report.checkpoint_retries,
            report.checkpoint_failures,
            report.output_write_errors,
            report.records_shed
        );
        rows.push(json!({
            "seed": seed,
            "faults_fired": fired.total(),
            "checkpoint_retries": report.checkpoint_retries,
            "checkpoint_failures": report.checkpoint_failures,
            "output_write_errors": report.output_write_errors,
            "records_written": report.records_written,
            "records_shed": report.records_shed,
            "bitwise_identical_to_fault_free": bitwise,
        }));
    }

    // Crash-point space of one generation write: every op on this log is
    // a distinct "the machine died here" scenario the harness replays.
    let dir = iosys::restart::scratch_dir("figures_storage_probe");
    let ffs = Arc::new(FaultFs::new());
    let mut snap = Snapshot::new();
    snap.push("a", vec![1.0; 64]).unwrap();
    snap.push("b", vec![2.0; 64]).unwrap();
    let mut ring = CheckpointRing::new_with(ffs.clone() as Arc<dyn Storage>, &dir, "restart", 3)
        .expect("open probe ring");
    ring.write(&snap, 2).expect("probe generation");
    let crash_points = ffs.ops();
    std::fs::remove_dir_all(&dir).ok();
    println!("one 2-shard generation write = {crash_points} enumerable crash points");

    json!({ "seeded_runs": rows, "crash_points_per_generation": crash_points })
}

/// Run everything; returns (name, value) pairs.
/// Static cost model vs the machine: predicted roofline times for the
/// mini-dycore (naive vs fused+hoisted execution) next to measured wall
/// time on this host, plus the per-state predicted breakdown. The
/// predicted access *counters* are asserted equal to the executors'
/// measured ones — the roofline time is a GH200 model, so against this
/// host only the naive/optimized *ratio* is comparable.
pub fn cost_roofline() -> Value {
    println!("\n== Static cost model: predicted vs measured (mini-dycore, 20k cells) ==");
    let prog = suite::dycore_program();
    let sdfg = Sdfg::from_program("dycore", &prog);
    let ctx = suite::suite_context();
    let topo = suite::synthetic_topology(20_000);
    let nlev = 30;
    let sizes = dace_mini::cost::DomainSizes::new(nlev)
        .with("cells", topo.domain_size("cells"))
        .with("edges", topo.domain_size("edges"));
    let roof = machine::Roofline::gh200_dace();

    let inputs = dace_mini::cost::CostInputs {
        ctx: &ctx,
        sizes: &sizes,
        elided_stores: &[],
    };
    let naive_cost = dace_mini::cost::analyze_naive(&sdfg, &inputs, &roof);
    let mut d1 = suite::synthetic_data(&topo, nlev, 7);
    let mut d2 = d1.clone();
    let t0 = std::time::Instant::now();
    let naive_stats = exec::run_naive(&prog, &topo, &mut d1);
    let t_naive = t0.elapsed().as_secs_f64();
    assert_eq!(naive_cost.stats, naive_stats, "naive cost model must be exact");

    let (hoisted, report) = transforms::gh200_hoisted_pipeline(&sdfg);
    let elided = report.transient_names();
    let mut compiled = exec::compile(&hoisted);
    compiled.elide_transient_stores(&elided);
    let t0 = std::time::Instant::now();
    let opt_stats = compiled.run(&topo, &mut d2);
    let t_opt = t0.elapsed().as_secs_f64();
    assert_eq!(d1, d2, "hoisted execution must agree bitwise with naive");
    let hctx = report.declare(&ctx);
    let hinputs = dace_mini::cost::CostInputs {
        ctx: &hctx,
        sizes: &sizes,
        elided_stores: &elided,
    };
    let opt_cost = dace_mini::cost::analyze_compiled(&hoisted, &hinputs, &roof);
    assert_eq!(opt_cost.stats, opt_stats, "compiled cost model must be exact");

    println!("{:<26} {:>9} {:>11} {:>9} {:>12}", "state", "lkups/pt", "bytes/pt", "AI [f/B]", "pred [ms]");
    let mut state_rows = Vec::new();
    let points = (topo.domain_size("cells") * nlev) as f64;
    for s in &opt_cost.states {
        let label: String = s.label.chars().take(24).collect();
        println!(
            "{label:<26} {:>9} {:>11.1} {:>9.3} {:>12.4}",
            s.lookups_per_point,
            s.bytes() / points,
            s.intensity,
            s.predicted_time_s * 1e3
        );
        state_rows.push(json!({"label": s.label, "lookups_per_point": s.lookups_per_point,
                               "flops": s.flops, "bytes": s.bytes(),
                               "intensity": s.intensity,
                               "predicted_time_s": s.predicted_time_s}));
    }
    let pred_ratio = naive_cost.predicted_time_s / opt_cost.predicted_time_s;
    let meas_ratio = t_naive / t_opt;
    println!(
        "predicted ({}): naive {:.3} ms -> optimized {:.3} ms ({:.2}x); measured here: {:.1} ms -> {:.1} ms ({:.2}x)",
        roof.name,
        naive_cost.predicted_time_s * 1e3,
        opt_cost.predicted_time_s * 1e3,
        pred_ratio,
        t_naive * 1e3,
        t_opt * 1e3,
        meas_ratio
    );
    println!(
        "index lookups per point: {} -> {} ({:.2}x, paper 8x)",
        report.lookups_before,
        report.lookups_after,
        report.reduction_factor()
    );

    json!({
        "machine": roof.name,
        "cells": topo.domain_size("cells"),
        "nlev": nlev,
        "lookups_before": report.lookups_before,
        "lookups_after": report.lookups_after,
        "reduction_factor": report.reduction_factor(),
        "naive": {"predicted_s": naive_cost.predicted_time_s, "measured_s": t_naive,
                   "index_lookups": naive_stats.index_lookups,
                   "field_reads": naive_stats.field_reads},
        "optimized": {"predicted_s": opt_cost.predicted_time_s, "measured_s": t_opt,
                       "index_lookups": opt_stats.index_lookups,
                       "field_reads": opt_stats.field_reads},
        "predicted_speedup": pred_ratio,
        "measured_speedup": meas_ratio,
        "states": state_rows,
    })
}

/// SDC artifact (DESIGN.md §14): seeded in-state bit flips of every
/// class — insidious mantissa, exponent, quiescent-static — driven
/// through the resilient loop with all three detectors armed, plus a
/// fault-free control. Every chaotic row must end bitwise identical to
/// the fault-free run; the control must fire zero detectors.
pub fn sdc() -> Value {
    use esm_core::sdc::{SdcMode, StateFaultPlan};
    use esm_core::{CoupledEsm, EsmConfig, ResilienceConfig};
    use std::sync::Arc;

    println!("\n== SDC: seeded bit-flip chaos through the detector stack (tiny config) ==");
    let windows = 6u64;
    let scratch = |tag: &str| {
        let d = std::env::temp_dir().join(format!("esm_bench_sdc_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    };

    let mut clean = CoupledEsm::new(EsmConfig::tiny());
    clean.run_windows(windows as usize, false).unwrap();
    let clean_snap = clean.snapshot();

    let run = |tag: &str, plan: Option<Arc<StateFaultPlan>>| {
        let dir = scratch(tag);
        let rcfg = ResilienceConfig {
            audit_every: 2,
            sdc: plan.clone(),
            ..ResilienceConfig::default()
        };
        let mut esm = CoupledEsm::new(EsmConfig::tiny());
        let report = esm
            .run_windows_resilient(windows, false, &dir, &rcfg, None)
            .expect("an injected flip is absorbable");
        std::fs::remove_dir_all(&dir).ok();
        let bitwise = esm.snapshot() == clean_snap;
        let detections = report.sdc_detected_bounds
            + report.sdc_detected_checksum
            + report.sdc_detected_audit;
        println!(
            "{tag:>14}: {} injected, {} detected (bounds {} / checksum {} / audit {}), \
             {} audits, {} rollback(s), {} false positive(s), bitwise fault-free: {bitwise}",
            report.sdc_injected,
            detections,
            report.sdc_detected_bounds,
            report.sdc_detected_checksum,
            report.sdc_detected_audit,
            report.audit_replays,
            report.rollbacks,
            report.sdc_false_positives,
        );
        let injections: Vec<Value> = plan
            .map(|p| {
                p.injections()
                    .iter()
                    .map(|i| {
                        json!({
                            "window": i.window, "buffer": i.buffer, "elem": i.elem,
                            "bit": i.bit, "quiescent": i.quiescent,
                            "before_bits": format!("{:#018x}", i.before_bits),
                            "after_bits": format!("{:#018x}", i.after_bits),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        json!({
            "injected": report.sdc_injected,
            "detected_bounds": report.sdc_detected_bounds,
            "detected_checksum": report.sdc_detected_checksum,
            "detected_audit": report.sdc_detected_audit,
            "false_positives": report.sdc_false_positives,
            "audit_replays": report.audit_replays,
            "rollbacks": report.rollbacks,
            "faults_absorbed": report.faults_absorbed,
            "injections": injections,
            "bitwise_identical_to_fault_free": bitwise,
        })
    };

    let control = run("fault-free", None);
    let mut rows = Vec::new();
    for mode in [SdcMode::Mantissa, SdcMode::Exponent, SdcMode::Quiescent] {
        for seed in [1u64, 2] {
            let tag = format!("{mode:?}/{seed}").to_ascii_lowercase();
            let plan = Arc::new(StateFaultPlan::seeded(seed, mode, 1, windows - 2));
            let row = run(&tag, Some(plan));
            rows.push(json!({
                "mode": format!("{mode:?}").to_ascii_lowercase(),
                "seed": seed,
                "report": row,
            }));
        }
    }

    json!({
        "windows": windows,
        "audit_every": 2,
        "fault_free_control": control,
        "chaos": rows,
    })
}

pub fn all() -> Vec<(&'static str, Value)> {
    vec![
        ("table1", table1()),
        ("table2", table2()),
        ("table3", table3()),
        ("fig2", fig2()),
        ("fig4", fig4()),
        ("dace", dace()),
        ("loc", loc_inventory()),
        ("cudagraphs", cudagraphs()),
        ("graph_replay", graph_replay()),
        ("io", io()),
        ("tau_limits", tau_limits()),
        ("mapping", mapping()),
        ("resilience", resilience()),
        ("storage", storage()),
        ("sdc", sdc()),
        ("cost_roofline", cost_roofline()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_generates_valid_json() {
        for (name, v) in [
            ("table1", table1()),
            ("table2", table2()),
            ("table3", table3()),
            ("tau_limits", tau_limits()),
            ("mapping", mapping()),
        ] {
            assert!(v.is_object(), "{name} must produce an object");
        }
    }

    #[test]
    fn table1_this_work_matches_paper_within_band() {
        let v = table1();
        let rows = v["rows"].as_array().unwrap();
        let ours = rows.last().unwrap()["tau"].as_f64().unwrap();
        assert!((ours / 145.7 - 1.0).abs() < 0.10, "tau {ours}");
        // tau* equals tau at native 1.25 km.
        assert_eq!(
            rows.last().unwrap()["tau"].as_f64().unwrap(),
            rows.last().unwrap()["tau_star"].as_f64().unwrap()
        );
    }

    #[test]
    fn fig2_energy_ratio_near_4p4() {
        let v = fig2();
        let ratio = v["right"]["ratio"].as_f64().unwrap();
        assert!((ratio / 4.4 - 1.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn fig4_scaling_is_monotone_and_anchored() {
        let v = fig4();
        for system in v["left"].as_array().unwrap() {
            let pts = system["points"].as_array().unwrap();
            let taus: Vec<f64> = pts.iter().map(|p| p["tau"].as_f64().unwrap()).collect();
            for w in taus.windows(2) {
                assert!(w[1] > w[0], "tau must grow with chips");
            }
            for p in pts {
                if let Some(anchor) = p["paper"].as_f64() {
                    let tau = p["tau"].as_f64().unwrap();
                    assert!(
                        (tau / anchor - 1.0).abs() < 0.10,
                        "anchor {anchor} vs {tau}"
                    );
                }
            }
        }
        let eff = v["weak_scaling_efficiency"].as_f64().unwrap();
        assert!((0.75..1.02).contains(&eff), "weak scaling {eff}");
    }

    #[test]
    fn cudagraph_speedups_in_paper_range() {
        let v = cudagraphs();
        for row in v["modeled"].as_array().unwrap() {
            let s = row["speedup"].as_f64().unwrap();
            assert!((7.0..11.0).contains(&s), "speedup {s} out of 8-10x band");
        }
        assert!(v["measured_kernels_per_step"].as_u64().unwrap() > 200);
    }

    #[test]
    fn io_matches_paper_numbers() {
        let v = io();
        assert!((v["atm_restart_gib"].as_f64().unwrap() / 9265.50 - 1.0).abs() < 0.02);
        assert!((v["oce_restart_gib"].as_f64().unwrap() / 7030.91 - 1.0).abs() < 0.02);
    }
}
