//! Field quarantine at the coupler boundary.
//!
//! Every flux set crossing between component groups passes through a
//! [`QuarantineGate`]: each field is screened for NaN/Inf and — when the
//! producing component declared a physical range ([`FieldBounds`]) — for
//! range violations. A bad value never propagates into the peer
//! component's state; what happens instead is the gate's
//! [`RepairPolicy`]:
//!
//! * `Reject` — abort the exchange with a typed [`FluxError`];
//! * `ClampToBounds` — clamp finite out-of-range values to the declared
//!   range, replace non-finite values by the range midpoint (both
//!   deterministic, so a repaired run is still bitwise reproducible);
//! * `PersistLast` — replace the whole offending field with its last
//!   valid version. **Determinism caveat**: the substituted values depend
//!   on *when* the fault hit, so a `PersistLast`-repaired run is
//!   reproducible given the same fault schedule but not bitwise identical
//!   to a fault-free run.
//!
//! Every intervention is recorded as a [`QuarantineEvent`] for the
//! resilience report.

use crate::exchange::{FluxError, FluxSet};
use std::collections::HashMap;

/// Declared physical range of one exchanged flux field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldBounds {
    pub name: &'static str,
    pub min: f64,
    pub max: f64,
}

/// What the gate does to a field that fails validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairPolicy {
    /// Abort the exchange with a typed error.
    Reject,
    /// Clamp to the declared range (midpoint for non-finite values).
    #[default]
    ClampToBounds,
    /// Substitute the field's last valid version.
    PersistLast,
}

impl RepairPolicy {
    fn action(&self) -> &'static str {
        match self {
            RepairPolicy::Reject => "rejected",
            RepairPolicy::ClampToBounds => "clamped",
            RepairPolicy::PersistLast => "persisted",
        }
    }
}

/// One quarantine intervention: a field failed validation and was
/// repaired (or the run was rejected).
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEvent {
    pub window: u64,
    pub field: String,
    /// How many entries of the field violated the validators.
    pub bad_values: usize,
    /// Index and value of the first violation, for diagnostics.
    pub first_index: usize,
    pub first_value: f64,
    /// `"rejected"`, `"clamped"`, or `"persisted"`.
    pub action: &'static str,
}

/// The quarantine gate: per-field bounds, a repair policy, and the
/// last-valid cache that backs `PersistLast`.
#[derive(Debug, Clone)]
pub struct QuarantineGate {
    bounds: Vec<FieldBounds>,
    policy: RepairPolicy,
    last_valid: HashMap<String, Vec<f64>>,
    events: Vec<QuarantineEvent>,
}

impl QuarantineGate {
    pub fn new(policy: RepairPolicy) -> QuarantineGate {
        QuarantineGate {
            bounds: Vec::new(),
            policy,
            last_valid: HashMap::new(),
            events: Vec::new(),
        }
    }

    /// Declare the physical range of one field. Fields without declared
    /// bounds are still screened for NaN/Inf.
    pub fn declare(&mut self, bounds: FieldBounds) {
        self.bounds.retain(|b| b.name != bounds.name);
        self.bounds.push(bounds);
    }

    /// Declare many ranges at once from `(name, min, max)` tuples — the
    /// form the component crates export without depending on this crate.
    pub fn declare_all(&mut self, decls: &[(&'static str, f64, f64)]) {
        for &(name, min, max) in decls {
            self.declare(FieldBounds { name, min, max });
        }
    }

    pub fn policy(&self) -> RepairPolicy {
        self.policy
    }

    pub fn declared_bounds(&self) -> &[FieldBounds] {
        &self.bounds
    }

    /// Interventions recorded so far, in order.
    pub fn events(&self) -> &[QuarantineEvent] {
        &self.events
    }

    fn bounds_for(&self, name: &str) -> (f64, f64) {
        self.bounds
            .iter()
            .find(|b| b.name == name)
            .map(|b| (b.min, b.max))
            .unwrap_or((f64::NEG_INFINITY, f64::INFINITY))
    }

    /// Screen (and, policy permitting, repair) every field of `fluxes` in
    /// place. `record` suppresses event logging during deterministic
    /// replay, where the same repair recurs by construction and must not
    /// be double-counted. Returns how many fields were quarantined.
    pub fn screen(
        &mut self,
        window: u64,
        fluxes: &mut FluxSet,
        record: bool,
    ) -> Result<usize, FluxError> {
        let mut quarantined = 0;
        for (name, data) in fluxes.fields.iter_mut() {
            let (lo, hi) = self.bounds_for(name);
            let mut bad = 0usize;
            let mut first: Option<(usize, f64)> = None;
            for (i, &v) in data.iter().enumerate() {
                if !v.is_finite() || v < lo || v > hi {
                    bad += 1;
                    if first.is_none() {
                        first = Some((i, v));
                    }
                }
            }
            let Some((first_index, first_value)) = first else {
                if self.policy == RepairPolicy::PersistLast {
                    self.last_valid.insert(name.to_string(), data.clone());
                }
                continue;
            };
            quarantined += 1;
            if record {
                self.events.push(QuarantineEvent {
                    window,
                    field: name.to_string(),
                    bad_values: bad,
                    first_index,
                    first_value,
                    action: self.policy.action(),
                });
            }
            match self.policy {
                RepairPolicy::Reject => {
                    return Err(if first_value.is_finite() {
                        FluxError::OutOfBounds {
                            field: name.to_string(),
                            index: first_index,
                            value: first_value,
                            min: lo,
                            max: hi,
                        }
                    } else {
                        FluxError::NonFinite {
                            field: name.to_string(),
                            index: first_index,
                            value: first_value,
                        }
                    });
                }
                RepairPolicy::ClampToBounds => {
                    let mid = midpoint(lo, hi);
                    for v in data.iter_mut() {
                        if !v.is_finite() {
                            *v = mid;
                        } else if *v < lo {
                            *v = lo;
                        } else if *v > hi {
                            *v = hi;
                        }
                    }
                }
                RepairPolicy::PersistLast => {
                    match self.last_valid.get(*name) {
                        Some(prev) if prev.len() == data.len() => {
                            data.copy_from_slice(prev);
                        }
                        _ => {
                            return Err(FluxError::NoLastValid {
                                field: name.to_string(),
                            })
                        }
                    }
                }
            }
        }
        Ok(quarantined)
    }
}

/// Deterministic stand-in for a non-finite value under `ClampToBounds`:
/// the midpoint of the declared range, or 0 clamped into a half-open
/// range when a bound is infinite.
fn midpoint(lo: f64, hi: f64) -> f64 {
    if lo.is_finite() && hi.is_finite() {
        0.5 * (lo + hi)
    } else {
        0.0f64.clamp(
            if lo.is_finite() { lo } else { f64::MIN },
            if hi.is_finite() { hi } else { f64::MAX },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fluxes(v: Vec<f64>) -> FluxSet {
        let mut f = FluxSet::new();
        f.insert("sst", v);
        f
    }

    fn sst_gate(policy: RepairPolicy) -> QuarantineGate {
        let mut g = QuarantineGate::new(policy);
        g.declare(FieldBounds {
            name: "sst",
            min: -5.0,
            max: 45.0,
        });
        g
    }

    #[test]
    fn clean_fields_pass_untouched() {
        let mut g = sst_gate(RepairPolicy::Reject);
        let mut f = fluxes(vec![10.0, -2.0, 44.0]);
        let before = f.clone();
        assert_eq!(g.screen(1, &mut f, true).unwrap(), 0);
        assert_eq!(f, before);
        assert!(g.events().is_empty());
    }

    #[test]
    fn reject_surfaces_typed_errors() {
        let mut g = sst_gate(RepairPolicy::Reject);
        let mut f = fluxes(vec![10.0, f64::NAN]);
        assert!(matches!(
            g.screen(1, &mut f, true),
            Err(FluxError::NonFinite { index: 1, .. })
        ));
        let mut g = sst_gate(RepairPolicy::Reject);
        let mut f = fluxes(vec![10.0, 99.0]);
        match g.screen(2, &mut f, true) {
            Err(FluxError::OutOfBounds {
                index: 1,
                value,
                min,
                max,
                ..
            }) => {
                assert_eq!((value, min, max), (99.0, -5.0, 45.0));
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn clamp_repairs_deterministically_and_records() {
        let mut g = sst_gate(RepairPolicy::ClampToBounds);
        let mut f = fluxes(vec![10.0, f64::INFINITY, -80.0, 99.0]);
        assert_eq!(g.screen(3, &mut f, true).unwrap(), 1);
        // NaN/Inf -> midpoint 20, -80 -> -5, 99 -> 45.
        assert_eq!(f.get("sst").unwrap(), &[10.0, 20.0, -5.0, 45.0]);
        let ev = &g.events()[0];
        assert_eq!((ev.window, ev.bad_values, ev.first_index), (3, 3, 1));
        assert_eq!(ev.action, "clamped");
        assert!(f.get("sst").unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn undeclared_fields_are_still_screened_for_nonfinite() {
        let mut g = QuarantineGate::new(RepairPolicy::ClampToBounds);
        let mut f = FluxSet::new();
        f.insert("mystery", vec![1.0, f64::NAN]);
        assert_eq!(g.screen(1, &mut f, true).unwrap(), 1);
        // Midpoint of an unbounded range is the neutral 0.
        assert_eq!(f.get("mystery").unwrap(), &[1.0, 0.0]);
    }

    #[test]
    fn persist_last_substitutes_previous_field() {
        let mut g = sst_gate(RepairPolicy::PersistLast);
        // No history yet: nothing to persist.
        let mut f = fluxes(vec![f64::NAN]);
        assert!(matches!(
            g.screen(1, &mut f, true),
            Err(FluxError::NoLastValid { .. })
        ));
        let mut g = sst_gate(RepairPolicy::PersistLast);
        let mut good = fluxes(vec![10.0, 11.0]);
        g.screen(1, &mut good, true).unwrap();
        let mut bad = fluxes(vec![f64::NAN, 12.0]);
        assert_eq!(g.screen(2, &mut bad, true).unwrap(), 1);
        assert_eq!(bad.get("sst").unwrap(), &[10.0, 11.0]);
        assert_eq!(g.events()[0].action, "persisted");
    }

    #[test]
    fn replay_screening_does_not_double_count_events() {
        let mut g = sst_gate(RepairPolicy::ClampToBounds);
        let mut f = fluxes(vec![99.0]);
        g.screen(1, &mut f, true).unwrap();
        let mut f2 = fluxes(vec![99.0]);
        g.screen(1, &mut f2, false).unwrap();
        assert_eq!(g.events().len(), 1, "replay repairs must not re-record");
        assert_eq!(f, f2, "replay repair must be bitwise identical");
    }
}
