//! Thread-scaling bench for the deterministic rayon pool (ISSUE 2).
//!
//! Runs the same coupled configuration at a sweep of pool widths, checks
//! the runs are **bitwise identical** (the shim's determinism contract),
//! and writes wall time / speedup / tau / pool utilization per width to
//! `results/parallel_scaling.json`.
//!
//! Not a criterion bench: the pool width is process-global state that must
//! be swept in a fixed order, and the artifact is a JSON file, so this is
//! a plain `harness = false` main.
//!
//! Environment knobs (all optional):
//! * `SCALING_WINDOWS`  — timed coupling windows per width (default 6)
//! * `SCALING_THREADS`  — comma-separated widths (default `1,2,4`)
//! * `SCALING_BISECT`   — grid bisections (default 4, the demo grid)

use esm_core::{CoupledEsm, EsmConfig};
use serde::Serialize;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct WidthResult {
    threads: usize,
    wall_s: f64,
    speedup_vs_1: f64,
    tau: f64,
    atm_land_utilization: f64,
    ocean_bgc_utilization: f64,
    bitwise_equal_to_width_1: bool,
}

#[derive(Serialize)]
struct ScalingReport {
    /// Hardware threads the host actually has. Speedup beyond this number
    /// of pool threads is not physically possible; a 1-core CI runner will
    /// legitimately report ~1.0 across the sweep.
    host_threads: usize,
    grid_bisections: u32,
    cells: usize,
    windows: usize,
    widths: Vec<WidthResult>,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn set_width(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("shim build_global is infallible");
}

fn main() {
    // `cargo bench` passes harness flags; ignore them.
    let windows = env_usize("SCALING_WINDOWS", 6);
    let bisect = env_usize("SCALING_BISECT", 4) as u32;
    let widths: Vec<usize> = std::env::var("SCALING_THREADS")
        .unwrap_or_else(|_| "1,2,4".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    assert!(
        !widths.is_empty() && widths.windows(2).all(|w| w[1] > w[0]),
        "SCALING_THREADS must be strictly increasing so the figure's \
         speedup-vs-width curve is well-defined: {widths:?}"
    );

    let mut cfg = EsmConfig::demo();
    cfg.bisections = bisect;

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut reference: Option<iosys::Snapshot> = None;
    let mut wall_1 = None;
    let mut results = Vec::new();
    let mut cells = 0;

    for &threads in &widths {
        set_width(threads);
        let mut esm = CoupledEsm::new(cfg.clone());
        cells = esm.grid.n_cells;
        // One warm-up window outside the timed span.
        esm.run_windows(1, false).unwrap();
        let t0 = Instant::now();
        esm.run_windows(windows, false).unwrap();
        let wall = t0.elapsed().as_secs_f64();

        let snap = esm.snapshot();
        let bitwise = match &reference {
            None => {
                reference = Some(snap);
                true
            }
            Some(r) => *r == snap,
        };
        assert!(
            bitwise,
            "run at {threads} threads diverged bitwise from width 1"
        );

        if threads == 1 || wall_1.is_none() {
            wall_1.get_or_insert(wall);
        }
        let speedup = wall_1.map(|w1| w1 / wall).unwrap_or(1.0);
        println!(
            "threads={threads:2}  wall={wall:8.3}s  speedup={speedup:5.2}x  \
             tau={:9.1}  util(atm)={:4.2} util(oce)={:4.2}",
            esm.timers.tau(),
            esm.timers.atm_land_utilization(),
            esm.timers.ocean_bgc_utilization(),
        );
        results.push(WidthResult {
            threads,
            wall_s: wall,
            speedup_vs_1: speedup,
            tau: esm.timers.tau(),
            atm_land_utilization: esm.timers.atm_land_utilization(),
            ocean_bgc_utilization: esm.timers.ocean_bgc_utilization(),
            bitwise_equal_to_width_1: bitwise,
        });
    }

    // `cells` was captured from the swept runs themselves — rebuilding a
    // whole CoupledEsm here just to read the grid size was pure waste.
    let report = ScalingReport {
        host_threads,
        grid_bisections: cfg.bisections,
        cells,
        windows,
        widths: results,
    };

    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&out_dir).expect("create results dir");
    let path = out_dir.join("parallel_scaling.json");
    fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write parallel_scaling.json");
    println!("wrote {}", path.display());
}
