//! The `esm-lint` driver: static dataflow verification of every kernel
//! suite registered in the workspace.
//!
//! For each target (the dace-mini dycore suite, the atmosphere DSL
//! mirror, the land DSL mirror) the driver parses the DSL source, lowers
//! it to an SDFG, runs [`dace_mini::analysis::verify_sdfg`] on both the
//! unfused graph and the `gh200_pipeline` output, and renders every
//! diagnostic rustc-style (code, message, source snippet with carets) so
//! a CI failure points at the offending access. It then runs the
//! deliberately-broken negative fixtures and fails if any expected
//! finding goes undetected — the lint gate proves both "the kernels are
//! clean" and "the analyzer still catches what it must".

use dace_mini::analysis::{
    fusion_legality, verify_sdfg, AnalysisContext, Certification, Diagnostic, FieldIo, Severity,
};
use dace_mini::loc::render_snippet;
use dace_mini::parser::parse;
use dace_mini::transforms::gh200_pipeline;
use dace_mini::{suite, Sdfg};
use std::fmt::Write as _;

/// One lintable kernel suite.
pub struct LintTarget {
    pub name: &'static str,
    pub source: String,
    pub sdfg: Sdfg,
    pub ctx: AnalysisContext,
}

fn ctx_from_tables(
    fields: &[(&str, &str, bool, &str)],
    relations: &[(&str, &str, &str, usize)],
    halo: i32,
) -> AnalysisContext {
    let mut ctx = AnalysisContext::new().with_halo(halo);
    for (_, domain, _, _) in fields {
        ctx = ctx.domain(domain);
    }
    for (name, source, target, arity) in relations {
        ctx = ctx.domain(source).domain(target).relation(name, source, target, *arity);
    }
    for (name, domain, is3d, io) in fields {
        let io = match *io {
            "in" => FieldIo::Input,
            "out" => FieldIo::Output,
            _ => FieldIo::Intermediate,
        };
        ctx = ctx.field(name, domain, *is3d, io);
    }
    ctx
}

/// All registered targets. Adding a component here puts its kernels
/// under the CI lint gate.
pub fn builtin_targets() -> Vec<LintTarget> {
    let mut targets = Vec::new();

    targets.push(LintTarget {
        name: "dycore-suite",
        source: suite::DYCORE_SRC.to_string(),
        sdfg: Sdfg::from_program("dycore", &suite::dycore_program()),
        ctx: suite::suite_context(),
    });

    let atmo_prog = parse(atmo::dsl::DSL_SRC).expect("atmo DSL parses");
    targets.push(LintTarget {
        name: "atmo-dsl",
        source: atmo::dsl::DSL_SRC.to_string(),
        sdfg: Sdfg::from_program("atmo", &atmo_prog),
        ctx: ctx_from_tables(&atmo::dsl::dsl_fields(), &atmo::dsl::dsl_relations(), atmo::dsl::DSL_HALO),
    });

    let land_prog = parse(land::dsl::DSL_SRC).expect("land DSL parses");
    targets.push(LintTarget {
        name: "land-dsl",
        source: land::dsl::DSL_SRC.to_string(),
        sdfg: Sdfg::from_program("land", &land_prog),
        ctx: ctx_from_tables(&land::dsl::dsl_fields(), &land::dsl::dsl_relations(), land::dsl::DSL_HALO),
    });

    targets
}

/// Render one diagnostic rustc-style into `out`.
pub fn render_diagnostic(out: &mut String, target: &LintTarget, d: &Diagnostic) {
    let code = d.code.code();
    let sev = match d.severity() {
        Severity::Error => "error",
        Severity::Warning => "warning",
    };
    let _ = writeln!(out, "{sev}[{code}]: {} (state `{}`)", d.message, d.state);
    if !d.span.is_synthetic() && !target.source.is_empty() {
        let _ = writeln!(out, "{}", render_snippet(target.name, &target.source, d.span));
    }
}

/// Outcome of a full lint run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LintSummary {
    pub targets: usize,
    pub errors: usize,
    pub warnings: usize,
    pub states_total: usize,
    pub states_parallel_safe: usize,
    /// Fixture-harness failures (an expected finding went undetected, or
    /// a fixture produced no error at all).
    pub fixture_failures: Vec<String>,
}

impl LintSummary {
    pub fn clean(&self) -> bool {
        self.errors == 0 && self.fixture_failures.is_empty()
    }
}

/// Verify every builtin target (unfused and after the GH200 pipeline)
/// and exercise the negative fixtures. Human-readable report goes into
/// `out`; the summary decides the exit code.
pub fn run_lint(out: &mut String) -> LintSummary {
    let mut summary = LintSummary::default();

    for target in builtin_targets() {
        summary.targets += 1;
        let (fused, _) = gh200_pipeline(&target.sdfg);
        for (phase, graph) in [("source", &target.sdfg), ("gh200", &fused)] {
            let report = verify_sdfg(graph, &target.ctx);
            let n_err = report.errors().count();
            let n_warn = report.warnings().count();
            summary.errors += n_err;
            summary.warnings += n_warn;
            if phase == "source" {
                summary.states_total += report.states.len();
                summary.states_parallel_safe += report
                    .states
                    .iter()
                    .filter(|s| s.cert == Certification::ParallelSafe)
                    .count();
            }
            let _ = writeln!(
                out,
                "  [{phase:>6}] {}: {} states, {} ParallelSafe, {n_err} errors, {n_warn} warnings",
                target.name,
                report.states.len(),
                report
                    .states
                    .iter()
                    .filter(|s| s.cert == Certification::ParallelSafe)
                    .count(),
            );
            for d in &report.diagnostics {
                render_diagnostic(out, &target, d);
            }
        }
    }

    run_fixtures(out, &mut summary);
    summary
}

/// Run the deliberately-broken fixtures: every expected code must be
/// produced. A fixture that passes the verifier (or refuses with the
/// wrong code) is an analyzer regression and fails the lint run.
fn run_fixtures(out: &mut String, summary: &mut LintSummary) {
    let _ = writeln!(out, "  negative fixtures:");
    for f in dace_mini::fixtures::verifier_fixtures() {
        let report = verify_sdfg(&f.sdfg, &f.ctx);
        let mut missing = Vec::new();
        for code in &f.expect {
            if !report.diagnostics.iter().any(|d| d.code == *code) {
                missing.push(code.code());
            }
        }
        if missing.is_empty() {
            let codes: Vec<&str> = f.expect.iter().map(|c| c.code()).collect();
            let _ = writeln!(out, "    {:<28} rejected as expected ({})", f.name, codes.join(", "));
        } else {
            summary
                .fixture_failures
                .push(format!("{}: expected {} not reported", f.name, missing.join(", ")));
            let _ = writeln!(out, "    {:<28} MISSED {}", f.name, missing.join(", "));
        }
    }
    for f in dace_mini::fixtures::fusion_fixtures() {
        let (i, j) = f.pair;
        match fusion_legality(&f.sdfg.states[i], &f.sdfg.states[j]) {
            Err(d) if d.code == f.expect => {
                let _ = writeln!(
                    out,
                    "    {:<28} fusion refused as expected ({})",
                    f.name,
                    d.code.code()
                );
            }
            Err(d) => {
                summary.fixture_failures.push(format!(
                    "{}: refused with {} instead of {}",
                    f.name,
                    d.code.code(),
                    f.expect.code()
                ));
                let _ = writeln!(out, "    {:<28} WRONG CODE {}", f.name, d.code.code());
            }
            Ok(()) => {
                summary
                    .fixture_failures
                    .push(format!("{}: illegal fusion was accepted", f.name));
                let _ = writeln!(out, "    {:<28} ACCEPTED (analyzer regression)", f.name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_targets_lint_clean() {
        let mut out = String::new();
        let summary = run_lint(&mut out);
        assert!(summary.clean(), "lint must pass on the shipped kernels:\n{out}");
        assert_eq!(summary.targets, 3);
        assert!(summary.states_parallel_safe > 0);
    }

    #[test]
    fn suite_states_all_certify() {
        let targets = builtin_targets();
        let suite = &targets[0];
        let report = verify_sdfg(&suite.sdfg, &suite.ctx);
        assert!(report.all_parallel_safe());
    }

    #[test]
    fn a_seeded_bug_fails_the_lint() {
        // Sanity check of the gate itself: corrupt one target context and
        // the run must go red.
        let targets = builtin_targets();
        let t = &targets[0];
        let mut ctx = t.ctx.clone();
        ctx.halo = 0; // the vertical kernel's k±1 is now out of bounds
        let report = verify_sdfg(&t.sdfg, &ctx);
        assert!(!report.is_clean());
    }
}
