//! Flux bundles and the concurrent window runner.
//!
//! The heterogeneous mapping of §5.1 runs {atmosphere, land} and {ocean,
//! sea ice, BGC} *concurrently* — on GPUs and CPUs of the same superchips
//! in the paper, on separate threads here — synchronizing only at coupling
//! windows. The runner measures each side's **coupling wait**, the §6.3
//! metric that must stay near zero for the expensive side when the load
//! balance is right.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::time::Instant;

/// A named bundle of per-cell fields exchanged at a coupling event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FluxSet {
    pub fields: Vec<(&'static str, Vec<f64>)>,
}

impl FluxSet {
    pub fn new() -> FluxSet {
        FluxSet::default()
    }

    pub fn insert(&mut self, name: &'static str, data: Vec<f64>) {
        debug_assert!(
            self.get(name).is_none(),
            "duplicate coupling field {name}"
        );
        self.fields.push((name, data));
    }

    pub fn get(&self, name: &str) -> Option<&[f64]> {
        self.fields
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| d.as_slice())
    }

    /// Field lookup that panics with a useful message (coupling contracts
    /// are static).
    pub fn expect(&self, name: &str) -> &[f64] {
        self.get(name)
            .unwrap_or_else(|| panic!("missing coupling field '{name}'"))
    }
}

/// Wait-time accounting of one side of the coupling.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CouplerStats {
    /// Seconds this side spent blocked waiting for its peer.
    pub wait_s: f64,
    /// Completed coupling exchanges.
    pub exchanges: u64,
}

/// Bidirectional coupling endpoint.
pub struct Endpoint {
    tx: Sender<FluxSet>,
    rx: Receiver<FluxSet>,
    pub stats: CouplerStats,
}

impl Endpoint {
    /// Send this side's fluxes (non-blocking; capacity 1 pipeline).
    pub fn send(&mut self, fluxes: FluxSet) {
        self.tx.send(fluxes).expect("peer alive");
    }

    /// Receive the peer's fluxes, accounting blocked time as coupling
    /// wait.
    pub fn recv(&mut self) -> FluxSet {
        let t0 = Instant::now();
        let f = self.rx.recv().expect("peer alive");
        self.stats.wait_s += t0.elapsed().as_secs_f64();
        self.stats.exchanges += 1;
        f
    }
}

/// Create a connected pair of coupling endpoints.
pub fn endpoint_pair() -> (Endpoint, Endpoint) {
    let (tx_a, rx_b) = bounded(1);
    let (tx_b, rx_a) = bounded(1);
    (
        Endpoint {
            tx: tx_a,
            rx: rx_a,
            stats: CouplerStats::default(),
        },
        Endpoint {
            tx: tx_b,
            rx: rx_b,
            stats: CouplerStats::default(),
        },
    )
}

/// Run `windows` coupling windows with the two component groups executing
/// concurrently (scoped threads, so the closures may mutably borrow the
/// component models). Each closure receives the peer's fluxes for its
/// window and returns its own fluxes for the next exchange. Returns the
/// wait statistics `(fast_side, slow_side)`.
pub fn run_concurrent_windows<Fa, Fo>(
    windows: usize,
    initial_to_fast: FluxSet,
    initial_to_slow: FluxSet,
    mut fast_window: Fa,
    mut slow_window: Fo,
) -> (CouplerStats, CouplerStats)
where
    Fa: FnMut(usize, &FluxSet) -> FluxSet + Send,
    Fo: FnMut(usize, &FluxSet) -> FluxSet + Send,
{
    let (mut end_fast, mut end_slow) = endpoint_pair();
    std::thread::scope(|s| {
        let slow_handle = s.spawn(move || {
            let mut incoming = initial_to_slow;
            for w in 0..windows {
                let out = slow_window(w, &incoming);
                // The last window's output has no consumer (the peer may
                // already have exited) — the caller keeps it via its
                // closure state.
                if w + 1 < windows {
                    end_slow.send(out);
                    incoming = end_slow.recv();
                }
            }
            end_slow.stats
        });
        let mut incoming = initial_to_fast;
        for w in 0..windows {
            let out = fast_window(w, &incoming);
            if w + 1 < windows {
                end_fast.send(out);
                incoming = end_fast.recv();
            }
        }
        let slow_stats = slow_handle.join().expect("slow side panicked");
        (end_fast.stats, slow_stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fluxset_roundtrip() {
        let mut f = FluxSet::new();
        f.insert("sst", vec![1.0, 2.0]);
        f.insert("co2", vec![3.0]);
        assert_eq!(f.expect("sst"), &[1.0, 2.0]);
        assert_eq!(f.get("nope"), None);
    }

    #[test]
    #[should_panic(expected = "missing coupling field")]
    fn expect_panics_on_missing() {
        FluxSet::new().expect("sst");
    }

    #[test]
    fn endpoints_exchange_both_ways() {
        let (mut a, mut b) = endpoint_pair();
        let mut fa = FluxSet::new();
        fa.insert("x", vec![1.0]);
        a.send(fa.clone());
        let got = b.recv();
        assert_eq!(got, fa);
        let mut fb = FluxSet::new();
        fb.insert("y", vec![2.0]);
        b.send(fb.clone());
        assert_eq!(a.recv(), fb);
        assert_eq!(a.stats.exchanges, 1);
        assert_eq!(b.stats.exchanges, 1);
    }

    #[test]
    fn concurrent_windows_pipeline_and_measure_waits() {
        // Slow side sleeps; the fast side's wait should absorb most of the
        // imbalance while the slow side barely waits.
        let windows = 4;
        let (fast_stats, slow_stats) = run_concurrent_windows(
            windows,
            FluxSet::new(),
            FluxSet::new(),
            |w, incoming| {
                if w > 0 {
                    assert_eq!(incoming.expect("slow")[0], (w - 1) as f64);
                }
                let mut out = FluxSet::new();
                out.insert("fast", vec![w as f64]);
                out
            },
            |w, incoming| {
                if w > 0 {
                    assert_eq!(incoming.expect("fast")[0], (w - 1) as f64);
                }
                std::thread::sleep(Duration::from_millis(30));
                let mut out = FluxSet::new();
                out.insert("slow", vec![w as f64]);
                out
            },
        );
        assert_eq!(fast_stats.exchanges, (windows - 1) as u64);
        assert_eq!(slow_stats.exchanges, (windows - 1) as u64);
        assert!(
            fast_stats.wait_s > 0.05,
            "fast side should wait for the sleeper: {fast_stats:?}"
        );
        assert!(
            slow_stats.wait_s < 0.02,
            "slow side should barely wait: {slow_stats:?}"
        );
    }

    #[test]
    fn balanced_sides_wait_little() {
        let (fast, slow) = run_concurrent_windows(
            5,
            FluxSet::new(),
            FluxSet::new(),
            |_, _| {
                std::thread::sleep(Duration::from_millis(5));
                FluxSet::new()
            },
            |_, _| {
                std::thread::sleep(Duration::from_millis(5));
                FluxSet::new()
            },
        );
        assert!(fast.wait_s < 0.05);
        assert!(slow.wait_s < 0.05);
    }
}
