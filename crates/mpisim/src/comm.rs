//! Ranks, communicators, point-to-point messaging, and communicator
//! splitting.

use crate::collective::{combine_max, combine_min, combine_sum, CollectiveCtx};
use crate::fault::{msg_checksum, CommError, FaultAction, FaultPlan};
use crate::stats::TrafficStats;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A point-to-point message. Payloads are `f64` vectors — every field and
/// flux in the model is `f64`, and the traffic meter charges 8 bytes per
/// element, matching the double-precision claim of the paper. Each message
/// carries a per-edge sequence number (receiver-side deduplication of
/// injected duplicates) and an FNV checksum (detection of corruption).
#[derive(Debug)]
struct Message {
    src: usize,
    tag: u64,
    seq: u64,
    checksum: u64,
    data: Vec<f64>,
}

/// Shared state of a world: one collective context per communicator
/// (created lazily on `split`), the traffic meter, per-edge sequence
/// counters, and the optional fault plan.
struct WorldShared {
    stats: Arc<TrafficStats>,
    /// Communicator registry: `(parent namespace, split series, color) ->
    /// context`.
    split_ctx: Mutex<HashMap<(u64, u64, i64), Arc<CollectiveCtx>>>,
    /// Next sequence number per (src, dst) world-rank edge.
    seq: Mutex<HashMap<(usize, usize), u64>>,
    faults: Option<Arc<FaultPlan>>,
}

impl WorldShared {
    fn next_seq(&self, src: usize, dst: usize) -> u64 {
        let mut seqs = self.seq.lock();
        let s = seqs.entry((src, dst)).or_insert(0);
        *s += 1;
        *s
    }
}

/// An SPMD world: `n` ranks running concurrently on threads.
pub struct World;

impl World {
    /// Run `f` on `n` ranks and collect each rank's result, ordered by
    /// rank. Panics in any rank propagate.
    pub fn run<T: Send>(n: usize, f: impl Fn(Comm) -> T + Sync) -> Vec<T> {
        Self::run_with_stats(n, f).0
    }

    /// Like [`World::run`] but also returns the traffic totals.
    pub fn run_with_stats<T: Send>(
        n: usize,
        f: impl Fn(Comm) -> T + Sync,
    ) -> (Vec<T>, crate::TrafficSnapshot) {
        Self::run_full(n, None, f)
    }

    /// Run `f` on `n` ranks with `plan`'s faults injected into the
    /// point-to-point layer. The plan is shared: its edge counters and
    /// one-shot faults persist across successive worlds run with it.
    pub fn run_with_faults<T: Send>(
        n: usize,
        plan: Arc<FaultPlan>,
        f: impl Fn(Comm) -> T + Sync,
    ) -> Vec<T> {
        Self::run_full(n, Some(plan), f).0
    }

    fn run_full<T: Send>(
        n: usize,
        faults: Option<Arc<FaultPlan>>,
        f: impl Fn(Comm) -> T + Sync,
    ) -> (Vec<T>, crate::TrafficSnapshot) {
        assert!(n >= 1);
        let stats = Arc::new(TrafficStats::new());
        let shared = Arc::new(WorldShared {
            stats: stats.clone(),
            split_ctx: Mutex::new(HashMap::new()),
            seq: Mutex::new(HashMap::new()),
            faults,
        });
        let world_ctx = Arc::new(CollectiveCtx::new(n));

        let mut senders: Vec<Sender<Message>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Message>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }

        // Keep every mailbox alive until all ranks finish: a rank may
        // legally send to a peer that has already returned (the message is
        // simply never consumed, as with buffered MPI sends at finalize).
        let keepalive: Vec<Receiver<Message>> = receivers.clone();
        let results = std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let senders = senders.clone();
                    let ctx = world_ctx.clone();
                    let shared = shared.clone();
                    s.spawn(move || {
                        let comm = Comm {
                            rank,
                            size: senders.len(),
                            group: (0..senders.len()).collect(),
                            tag_ns: 0,
                            senders,
                            rx: Arc::new(rx),
                            pending: Arc::new(RefCellSend(RefCell::new(Mailbox::default()))),
                            ctx,
                            shared,
                            split_counter: Arc::new(Mutex::new(1)),
                        };
                        f(comm)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        });
        drop(keepalive);
        let snap = stats.snapshot();
        (results, snap)
    }
}

/// Per-rank receive-side state: out-of-order arrivals plus the set of
/// `(src, seq)` pairs already delivered, for duplicate suppression.
#[derive(Default)]
struct Mailbox {
    pending: VecDeque<Message>,
    delivered: HashSet<(usize, u64)>,
}

/// `RefCell` wrapper that is `Send` (each rank's pending queue is only ever
/// touched by its own thread; the `Arc` exists so `Comm` can be cloned into
/// sub-communicators on the same thread).
struct RefCellSend(RefCell<Mailbox>);
// SAFETY: every `Comm` (and every sub-communicator derived from it) lives
// on the thread that `World::run` spawned for the rank; the queue is never
// shared across threads.
unsafe impl Send for RefCellSend {}
unsafe impl Sync for RefCellSend {}

/// A communicator: the world communicator, or a subgroup created by
/// [`Comm::split`]. Rank numbers are local to the communicator.
pub struct Comm {
    rank: usize,
    size: usize,
    /// World ranks of the group members, indexed by local rank.
    group: Vec<usize>,
    /// Tag namespace distinguishing communicators sharing mailboxes.
    tag_ns: u64,
    senders: Vec<Sender<Message>>,
    rx: Arc<Receiver<Message>>,
    pending: Arc<RefCellSend>,
    ctx: Arc<CollectiveCtx>,
    shared: Arc<WorldShared>,
    split_counter: Arc<Mutex<u64>>,
}

impl Comm {
    /// Rank within this communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The world rank of local rank `r`.
    #[inline]
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.group[r]
    }

    /// Traffic meter of the world.
    pub fn stats(&self) -> &TrafficStats {
        &self.shared.stats
    }

    /// Non-blocking send of an `f64` payload to local rank `dst` with a
    /// user `tag` (buffered, like MPI eager sends). If the world carries a
    /// fault plan, the message may be dropped, delayed, duplicated, or
    /// bit-flipped here.
    pub fn send(&self, dst: usize, tag: u64, data: &[f64]) {
        let world_dst = self.group[dst];
        let world_src = self.group[self.rank];
        let tag = self.tag_ns ^ tag;
        let seq = self.shared.next_seq(world_src, world_dst);
        let mut data = data.to_vec();
        // Checksum covers the payload as sent; a bit flip below happens
        // *after* checksumming, so the receiver sees the mismatch.
        let checksum = msg_checksum(tag, seq, &data);
        let mut copies = 1;
        if let Some(plan) = &self.shared.faults {
            match plan.take_action(world_src, world_dst) {
                None => {}
                Some(FaultAction::Drop) => return,
                Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                Some(FaultAction::Duplicate) => copies = 2,
                Some(FaultAction::BitFlip { bit }) if !data.is_empty() => {
                    let i = (bit / 64) % data.len();
                    data[i] = f64::from_bits(data[i].to_bits() ^ (1u64 << (bit % 64)));
                }
                Some(FaultAction::BitFlip { .. }) => {}
            }
        }
        self.shared.stats.record_send(data.len() * 8);
        for _ in 0..copies {
            self.senders[world_dst]
                .send(Message {
                    src: world_src,
                    tag,
                    seq,
                    checksum,
                    data: data.clone(),
                })
                .expect("receiver alive for the world's lifetime");
        }
    }

    /// Blocking receive of the next message from local rank `src` with
    /// `tag`. Out-of-order arrivals (other sources/tags) are buffered.
    /// Panics on corruption or disconnect — use [`Comm::recv_timeout`] in
    /// fault-aware code.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f64> {
        self.recv_inner(self.group[src], self.tag_ns ^ tag, None)
            .unwrap_or_else(|e| panic!("recv failed: {e}"))
    }

    /// Receive with a deadline and typed errors. Waits in exponentially
    /// growing slices (bounded backoff) until `timeout` has elapsed, then
    /// reports [`CommError::Timeout`]. Injected duplicates are suppressed
    /// by sequence number; corrupted payloads surface as
    /// [`CommError::Corrupt`].
    pub fn recv_timeout(&self, src: usize, tag: u64, timeout: Duration) -> Result<Vec<f64>, CommError> {
        self.recv_inner(self.group[src], self.tag_ns ^ tag, Some(timeout))
    }

    /// Deliver a matched message: `None` if it is a duplicate to skip,
    /// `Some(Err)` if its checksum fails, `Some(Ok)` with the payload.
    fn deliver(&self, msg: Message) -> Option<Result<Vec<f64>, CommError>> {
        let mut mbox = self.pending.0.borrow_mut();
        if !mbox.delivered.insert((msg.src, msg.seq)) {
            return None; // duplicate of an already-delivered message
        }
        if msg_checksum(msg.tag, msg.seq, &msg.data) != msg.checksum {
            return Some(Err(CommError::Corrupt {
                src: msg.src,
                tag: msg.tag,
                seq: msg.seq,
            }));
        }
        Some(Ok(msg.data))
    }

    fn recv_inner(
        &self,
        world_src: usize,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<Vec<f64>, CommError> {
        // Drain matches already sitting in the pending buffer.
        loop {
            let msg = {
                let mut mbox = self.pending.0.borrow_mut();
                match mbox
                    .pending
                    .iter()
                    .position(|m| m.src == world_src && m.tag == tag)
                {
                    Some(pos) => mbox.pending.remove(pos).unwrap(),
                    None => break,
                }
            };
            if let Some(outcome) = self.deliver(msg) {
                return outcome;
            }
        }

        let deadline = timeout.map(|t| Instant::now() + t);
        let start = Instant::now();
        let mut slice = Duration::from_millis(1);
        let mut attempts = 0u32;
        loop {
            let received = match deadline {
                None => self.rx.recv().map_err(|_| CommError::Disconnected {
                    src: world_src,
                    tag,
                }),
                Some(deadline) => {
                    attempts += 1;
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(CommError::Timeout {
                            src: world_src,
                            tag,
                            waited: start.elapsed(),
                            attempts,
                        });
                    }
                    match self.rx.recv_timeout(slice.min(deadline - now)) {
                        Ok(m) => Ok(m),
                        Err(RecvTimeoutError::Timeout) => {
                            // Bounded exponential backoff: wait a little
                            // longer each round, capped per slice.
                            slice = (slice * 2).min(Duration::from_millis(16));
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => Err(CommError::Disconnected {
                            src: world_src,
                            tag,
                        }),
                    }
                }
            };
            let msg = received?;
            if msg.src == world_src && msg.tag == tag {
                match self.deliver(msg) {
                    Some(outcome) => return outcome,
                    None => continue, // duplicate — keep waiting
                }
            } else {
                self.pending.0.borrow_mut().pending.push_back(msg);
            }
        }
    }

    /// Barrier across the communicator.
    pub fn barrier(&self) {
        self.record_collective(0);
        self.ctx.barrier();
    }

    /// Sum-allreduce of a scalar.
    pub fn allreduce_sum(&self, x: f64) -> f64 {
        self.allreduce_sum_vec(&[x])[0]
    }

    /// Element-wise sum-allreduce of a vector.
    pub fn allreduce_sum_vec(&self, xs: &[f64]) -> Vec<f64> {
        self.record_collective(xs.len() * 8);
        self.ctx.reduce(xs, combine_sum)
    }

    /// Max-allreduce of a scalar.
    pub fn allreduce_max(&self, x: f64) -> f64 {
        self.record_collective(8);
        self.ctx.reduce(&[x], combine_max)[0]
    }

    /// Min-allreduce of a scalar.
    pub fn allreduce_min(&self, x: f64) -> f64 {
        self.record_collective(8);
        self.ctx.reduce(&[x], combine_min)[0]
    }

    /// Gather a scalar from every rank (result indexed by local rank).
    pub fn allgather(&self, x: f64) -> Vec<f64> {
        self.record_collective(8);
        self.ctx.allgather(self.rank, x)
    }

    fn record_collective(&self, bytes: usize) {
        self.shared.stats.record_collective_rank(bytes);
        if self.rank == 0 {
            self.shared.stats.record_collective_op();
        }
    }

    /// Split the communicator by `color` (collective over this
    /// communicator). Returns a sub-communicator containing the ranks that
    /// passed the same color, ordered by parent rank. Mirrors
    /// `MPI_Comm_split` (every rank must participate; distinct colors give
    /// disjoint groups).
    pub fn split(&self, color: i64) -> Comm {
        // Unique series id for this split call, agreed by doing the
        // increment inside a collective-ordered critical section.
        let series = {
            let mut c = self.split_counter.lock();
            *c += 1;
            *c
        };
        // All ranks see their own increments; use the max so everyone
        // agrees even if other splits happened on sibling communicators.
        let series = self.allreduce_max(series as f64) as u64;
        {
            let mut c = self.split_counter.lock();
            *c = (*c).max(series);
        }

        let colors = self.allgather(color as f64);
        let members: Vec<usize> = (0..self.size)
            .filter(|&r| colors[r] as i64 == color)
            .collect();
        let my_new_rank = members
            .iter()
            .position(|&r| r == self.rank)
            .expect("self in own color group");
        let group: Vec<usize> = members.iter().map(|&r| self.group[r]).collect();

        let ctx = {
            let mut reg = self.shared.split_ctx.lock();
            reg.entry((self.tag_ns, series, color))
                .or_insert_with(|| Arc::new(CollectiveCtx::new(members.len())))
                .clone()
        };
        // Namespace tags by (parent namespace, series, color) so messages
        // on different communicators between the same pair of threads
        // cannot collide.
        let tag_ns = self
            .tag_ns
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(series << 24)
            .wrapping_add((color as u64) << 4)
            | 1 << 63;

        Comm {
            rank: my_new_rank,
            size: members.len(),
            group,
            tag_ns,
            senders: self.senders.clone(),
            rx: self.rx.clone(),
            pending: self.pending.clone(),
            ctx,
            shared: self.shared.clone(),
            split_counter: self.split_counter.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = World::run(5, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, &[comm.rank() as f64]);
            comm.recv(prev, 7)[0]
        });
        assert_eq!(results, vec![4.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0]);
                comm.send(1, 2, &[2.0]);
                0.0
            } else {
                // Receive in reverse tag order.
                let b = comm.recv(0, 2)[0];
                let a = comm.recv(0, 1)[0];
                a * 10.0 + b
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn allreduce_and_gather() {
        let results = World::run(6, |comm| {
            let s = comm.allreduce_sum(comm.rank() as f64);
            let mx = comm.allreduce_max(comm.rank() as f64);
            let mn = comm.allreduce_min(comm.rank() as f64);
            let g = comm.allgather((comm.rank() * 2) as f64);
            (s, mx, mn, g)
        });
        for (s, mx, mn, g) in results {
            assert_eq!(s, 15.0);
            assert_eq!(mx, 5.0);
            assert_eq!(mn, 0.0);
            assert_eq!(g, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        }
    }

    #[test]
    fn traffic_is_metered() {
        let (_, snap) = World::run_with_stats(3, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[0.0; 10]);
            }
            if comm.rank() == 1 {
                comm.recv(0, 0);
            }
            comm.barrier();
        });
        assert_eq!(snap.p2p_messages, 1);
        assert_eq!(snap.p2p_bytes, 80);
        assert_eq!(snap.collectives, 1);
    }

    #[test]
    fn split_groups_work_independently() {
        // 6 ranks split into even/odd groups; each group sums its ranks.
        let results = World::run(6, |comm| {
            let color = (comm.rank() % 2) as i64;
            let sub = comm.split(color);
            let group_sum = sub.allreduce_sum(comm.rank() as f64);
            // p2p within the subgroup: local rank 0 sends to local rank 1.
            if sub.rank() == 0 {
                sub.send(1, 9, &[group_sum]);
            }
            let got = if sub.rank() == 1 {
                sub.recv(0, 9)[0]
            } else {
                -1.0
            };
            (sub.rank(), sub.size(), group_sum, got)
        });
        // Even group = world ranks {0,2,4} sum 6; odd = {1,3,5} sum 9.
        for (wr, (sr, ss, sum, got)) in results.iter().enumerate() {
            assert_eq!(*ss, 3);
            let expect = if wr % 2 == 0 { 6.0 } else { 9.0 };
            assert_eq!(*sum, expect);
            assert_eq!(*sr, wr / 2);
            if *sr == 1 {
                assert_eq!(*got, expect);
            }
        }
    }

    #[test]
    fn world_and_sub_communicators_do_not_cross_talk() {
        let results = World::run(4, |comm| {
            let sub = comm.split((comm.rank() / 2) as i64);
            // Same (thread pair, tag) on world and sub communicators.
            if comm.rank() == 0 {
                comm.send(1, 5, &[100.0]); // world: 0 -> 1
            }
            if sub.rank() == 0 {
                sub.send(1, 5, &[200.0]); // sub group {0,1}: 0 -> 1 (world 1)
            }
            if comm.rank() == 1 {
                let w = comm.recv(0, 5)[0];
                let s = sub.recv(0, 5)[0];
                (w, s)
            } else {
                (0.0, 0.0)
            }
        });
        assert_eq!(results[1], (100.0, 200.0));
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn rank_panics_propagate() {
        World::run(2, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn dropped_message_times_out_with_backoff() {
        let plan = Arc::new(FaultPlan::new().inject(0, 1, 1, FaultAction::Drop));
        let results = World::run_with_faults(2, plan.clone(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, &[42.0]);
                Ok(vec![])
            } else {
                comm.recv_timeout(0, 3, Duration::from_millis(30))
            }
        });
        match &results[1] {
            Err(CommError::Timeout { src: 0, attempts, waited, .. }) => {
                assert!(*attempts > 1, "expected multiple backoff attempts");
                assert!(*waited >= Duration::from_millis(30));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(plan.report().dropped, 1);
    }

    #[test]
    fn delayed_message_rides_through_within_budget() {
        let plan = Arc::new(FaultPlan::new().inject(
            0,
            1,
            1,
            FaultAction::Delay(Duration::from_millis(10)),
        ));
        let results = World::run_with_faults(2, plan.clone(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, &[7.0]);
                Ok(vec![])
            } else {
                comm.recv_timeout(0, 3, Duration::from_millis(500))
            }
        });
        assert_eq!(results[1], Ok(vec![7.0]));
        assert_eq!(plan.report().delayed, 1);
    }

    #[test]
    fn duplicates_are_delivered_exactly_once() {
        let plan = Arc::new(FaultPlan::new().inject(0, 1, 1, FaultAction::Duplicate));
        let results = World::run_with_faults(2, plan.clone(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, &[1.0]);
                comm.send(1, 3, &[2.0]);
                (vec![], vec![])
            } else {
                // The duplicate of the first message must not shadow the
                // second: sequence-number dedup skips it.
                let a = comm.recv(0, 3);
                let b = comm.recv(0, 3);
                (a, b)
            }
        });
        assert_eq!(results[1], (vec![1.0], vec![2.0]));
        assert_eq!(plan.report().duplicated, 1);
    }

    #[test]
    fn bit_flip_is_caught_by_checksum() {
        let plan = Arc::new(FaultPlan::new().inject(0, 1, 1, FaultAction::BitFlip { bit: 77 }));
        let results = World::run_with_faults(2, plan.clone(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, &[1.0, 2.0, 3.0]);
                Ok(vec![])
            } else {
                comm.recv_timeout(0, 3, Duration::from_millis(200))
            }
        });
        assert!(
            matches!(results[1], Err(CommError::Corrupt { src: 0, seq: 1, .. })),
            "expected corruption, got {:?}",
            results[1]
        );
        assert_eq!(plan.report().bit_flipped, 1);
    }

    #[test]
    fn faultless_plan_is_transparent() {
        let plan = Arc::new(FaultPlan::seeded(99, 4, 0));
        let results = World::run_with_faults(4, plan, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, &[comm.rank() as f64]);
            comm.recv_timeout(prev, 7, Duration::from_secs(5)).unwrap()[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }
}
