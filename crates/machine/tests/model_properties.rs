//! Consistency properties of the machine model beyond the paper anchors.

use machine::config::GridConfig;
use machine::cost::{Device, Mapping, ThroughputModel};
use machine::systems;
use proptest::prelude::*;

#[test]
fn energy_equals_power_times_time() {
    let m = ThroughputModel::new(systems::JUPITER, GridConfig::km1p25(), Mapping::paper());
    for chips in [2048u32, 8192, 20_480] {
        let p = m.scaling_point(chips);
        let wall_per_day = 86_400.0 / p.tau;
        let expect_mj = p.power_kw * 1e3 * wall_per_day / 1e6;
        assert!(
            (p.energy_mj_per_sim_day / expect_mj - 1.0).abs() < 1e-12,
            "chips {chips}"
        );
    }
}

#[test]
fn bgc_on_gpu_pays_the_transfer_tax() {
    // §5.1: concurrent GPU HAMOCC must exchange large 3-D fields with the
    // ocean every step, so splitting BGC off the CPU-resident ocean is
    // slower there.
    let cfg = GridConfig::km1p25();
    let mut split = Mapping::paper();
    split.bgc = Device::Gpu; // ocean stays on CPU
    let paper = ThroughputModel::new(systems::JUPITER, cfg, Mapping::paper());
    let mixed = ThroughputModel::new(systems::JUPITER, cfg, split);
    // The ocean window still hides behind the atmosphere in both cases;
    // compare the slow side's step time directly.
    let a = paper.oce_step_s(8192);
    let b = mixed.oce_step_s(8192);
    assert!(b != a, "mapping must matter for the slow side");
}

#[test]
fn all_cpu_mapping_is_far_slower_at_scale() {
    let cfg = GridConfig::km1p25();
    let gpu = ThroughputModel::new(systems::JUPITER, cfg, Mapping::paper())
        .scaling_point(8192)
        .tau;
    let cpu = ThroughputModel::new(systems::JUPITER, cfg, Mapping::all_cpu())
        .scaling_point(8192)
        .tau;
    // The Grace CPUs are genuinely strong (the paper's point!), but the
    // Hopper side still wins clearly on the memory-bound atmosphere.
    assert!(gpu > 1.5 * cpu, "GPU {gpu:.1} vs CPU-only {cpu:.1}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// tau grows monotonically with chips for any resolution in the
    /// family, and never exceeds the perfect-scaling bound from the
    /// smallest count.
    #[test]
    fn strong_scaling_is_monotone_and_subideal(k in 6u32..12) {
        let cfg = GridConfig::swept(k);
        let m = ThroughputModel::new(systems::JUPITER, cfg, Mapping::paper());
        let base_chips = 64u32.max((cfg.atm_cells / 200_000.0) as u32);
        let base = m.scaling_point(base_chips);
        let mut prev = base.tau;
        for mult in [2u32, 4, 8] {
            let pt = m.scaling_point(base_chips * mult);
            prop_assert!(pt.tau > prev, "tau must grow");
            prop_assert!(
                pt.tau <= base.tau * mult as f64 * 1.001,
                "super-ideal scaling: {} vs bound {}",
                pt.tau,
                base.tau * mult as f64
            );
            prev = pt.tau;
        }
    }

    /// Power never exceeds nodes x node-power, and the shared-TDP cap
    /// holds for every CPU load level.
    #[test]
    fn power_respects_tdp(busy in 0.0f64..1.0) {
        let (cpu_w, gpu_w) = machine::power::superchip_power_split(&systems::JUPITER, busy);
        prop_assert!(cpu_w + gpu_w <= 680.0 + 1e-9, "TDP violated: {} + {}", cpu_w, gpu_w);
        prop_assert!(cpu_w >= 0.0 && gpu_w >= 0.0);
    }

    /// Halving the resolution (one r2b level) roughly halves tau at equal
    /// per-chip load (the dt scales with dx, cells x4, chips x4).
    #[test]
    fn resolution_scaling_matches_cfl(k in 7u32..11) {
        let coarse = GridConfig::swept(k);
        let fine = GridConfig::swept(k + 1);
        let mc = ThroughputModel::new(systems::JUPITER, coarse, Mapping::paper());
        let mf = ThroughputModel::new(systems::JUPITER, fine, Mapping::paper());
        let chips = 256u32;
        let tau_c = mc.scaling_point(chips).tau;
        let tau_f = mf.scaling_point(chips * 4).tau;
        let ratio = tau_c / tau_f;
        prop_assert!((1.7..2.3).contains(&ratio), "ratio {}", ratio);
    }
}
