//! Asynchronous output server with a self-healing record path.
//!
//! The model thread posts fields to a bounded channel and keeps
//! integrating; a server thread applies the requested reduction
//! (instantaneous values or running time means) and writes records to
//! disk. Mirrors ICON's asynchronous scheme (§6.4): "Disk I/O takes place
//! concurrently to the model integration … I/O does not appreciably
//! impact tau."
//!
//! ## `.rec` v2 framing (per record, little-endian)
//!
//! ```text
//! magic    b"RC02"
//! time     f64
//! len      u64            number of f64 payload values
//! payload  len * f64
//! crc      u32            CRC-32 of magic..payload
//! ```
//!
//! The trailing CRC makes every record self-validating: a torn append, a
//! flipped bit, or a hostile length is a typed [`OutputError`], never a
//! panic, and [`recover_records`] truncates a damaged stream back to its
//! longest intact prefix. Frame-less v1 files (raw `time | len | payload`)
//! remain readable with bounds checking.
//!
//! ## Failure policy
//!
//! Diagnostics are *expendable*; the model run is not. Under disk
//! pressure the server **sheds** rather than stalls or dies:
//!
//! * a full queue with [`FullPolicy::Shed`] drops the sample at `post`
//!   time (counted in [`OutputStats::shed_queue_full`]);
//! * a failed append is retried a bounded number of times, with the file
//!   healed back to its intact prefix between attempts; a record that
//!   still cannot be written is shed (`shed_write_failure`) and the
//!   server keeps going;
//! * the server thread never panics on I/O; if it does exit (only when
//!   [`OutputPolicy::give_up_after`] consecutive records fail), the death
//!   surfaces as a typed [`OutputError::ServerDied`] on the next `post`/
//!   `flush` and from `finish` — not as a poisoned `expect`.

use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::crc::crc32;
use crate::error::OutputError;
use crate::vfs::{RealFs, Storage};

/// Record frame magic, version 2.
const REC_MAGIC: &[u8; 4] = b"RC02";
/// Frame header bytes: magic + time + len.
const REC_HEADER: usize = 4 + 8 + 8;

/// How the server reduces a stream of samples per variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// Write every posted sample.
    Instantaneous,
    /// Accumulate and write the time mean on flush.
    TimeMean,
}

/// One posted field sample.
#[derive(Debug)]
pub struct OutputRequest {
    pub name: &'static str,
    pub time_s: f64,
    pub data: Vec<f64>,
    pub reduction: Reduction,
}

/// What `post` does when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FullPolicy {
    /// Block the model thread until the server catches up (back-pressure).
    #[default]
    Block,
    /// Drop the sample and count it — diagnostics never stall the model.
    Shed,
}

/// Retry/shed policy for the output path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputPolicy {
    /// Re-tries per record after the first failed append.
    pub write_retries: u32,
    /// Sleep before retry `i` (1-based) is `i * backoff`.
    pub backoff: Duration,
    /// Queue-full behavior at `post`.
    pub on_full: FullPolicy,
    /// Consecutive failed *records* after which the server thread gives
    /// up and exits with an error. `None` (default): shed forever.
    pub give_up_after: Option<u32>,
}

impl Default for OutputPolicy {
    fn default() -> OutputPolicy {
        OutputPolicy {
            write_retries: 2,
            backoff: Duration::from_millis(1),
            on_full: FullPolicy::Block,
            give_up_after: None,
        }
    }
}

/// Counters of everything the output path did, for `ResilienceReport`
/// roll-up and post-run assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutputStats {
    /// Samples handed to `post` (accepted or shed).
    pub posted: u64,
    /// Records that reached the file (after reduction).
    pub records_written: u64,
    /// Samples dropped at `post` because the queue was full.
    pub shed_queue_full: u64,
    /// Records dropped because every write attempt failed.
    pub shed_write_failure: u64,
    /// Failed appends that were retried.
    pub write_retries: u64,
    /// Times a damaged file was healed back to its intact prefix.
    pub recoveries: u64,
    /// Storage errors observed (appends, fsyncs), including retried ones.
    pub write_errors: u64,
}

/// Whether a `post` was queued or shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostOutcome {
    Accepted,
    Shed,
}

enum Msg {
    Sample(OutputRequest),
    Flush,
    Shutdown,
}

/// Handle owned by the model side.
pub struct OutputServer {
    tx: Sender<Msg>,
    handle: Mutex<Option<JoinHandle<Result<(), String>>>>,
    pub dir: PathBuf,
    stats: Arc<Mutex<OutputStats>>,
    deferred: Mutex<Option<String>>,
    on_full: FullPolicy,
}

/// Encode one v2 record frame.
pub fn encode_record(time_s: f64, data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(REC_HEADER + data.len() * 8 + 4);
    out.extend_from_slice(REC_MAGIC);
    out.extend_from_slice(&time_s.to_le_bytes());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// The server thread's writing state: shared storage, policy, stats.
struct Writer {
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    policy: OutputPolicy,
    stats: Arc<Mutex<OutputStats>>,
    /// Files appended since the last sync, in first-touch order.
    dirty: Vec<PathBuf>,
    consecutive_failures: u32,
}

impl Writer {
    /// Append one framed record with bounded retry and self-healing.
    /// `Err` only when the give-up threshold is crossed.
    fn write_record(&mut self, name: &str, time_s: f64, data: &[f64]) -> Result<(), String> {
        let path = self.dir.join(format!("{name}.rec"));
        let frame = encode_record(time_s, data);
        let mut attempt = 0u32;
        loop {
            match self.storage.append(&path, &frame) {
                Ok(()) => {
                    self.stats.lock().records_written += 1;
                    self.consecutive_failures = 0;
                    if !self.dirty.contains(&path) {
                        self.dirty.push(path);
                    }
                    return Ok(());
                }
                Err(e) => {
                    self.stats.lock().write_errors += 1;
                    // A torn append may have left a partial frame under
                    // the final name: heal back to the intact prefix
                    // before anything else touches the file.
                    match recover_records_with(self.storage.as_ref(), &self.dir, name) {
                        Ok(r) if r.repaired => self.stats.lock().recoveries += 1,
                        Ok(_) => {}
                        Err(_) => {
                            // Recovery itself failed (storage still down);
                            // count the error, the next attempt or reader
                            // will retry the repair.
                            self.stats.lock().write_errors += 1;
                        }
                    }
                    if attempt < self.policy.write_retries {
                        attempt += 1;
                        self.stats.lock().write_retries += 1;
                        std::thread::sleep(self.policy.backoff * attempt);
                        continue;
                    }
                    // Out of retries: shed this record, keep serving.
                    self.stats.lock().shed_write_failure += 1;
                    self.consecutive_failures += 1;
                    if let Some(limit) = self.policy.give_up_after {
                        if self.consecutive_failures >= limit {
                            return Err(format!(
                                "gave up after {limit} consecutive failed records (last: {e})"
                            ));
                        }
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Make everything appended since the last sync durable: fsync each
    /// dirty file, then the directory. Best-effort — a failed sync is
    /// counted, not fatal (the data is still readable, just volatile).
    fn sync(&mut self) {
        for path in std::mem::take(&mut self.dirty) {
            if self.storage.fsync(&path).is_err() {
                self.stats.lock().write_errors += 1;
            }
        }
        if self.storage.fsync_dir(&self.dir).is_err() {
            self.stats.lock().write_errors += 1;
        }
    }
}

impl OutputServer {
    /// Spawn a server writing to `dir` on the real file system with the
    /// default policy. `queue` bounds the in-flight samples
    /// (back-pressure if the disk cannot keep up).
    pub fn spawn(dir: PathBuf, queue: usize) -> std::io::Result<OutputServer> {
        OutputServer::spawn_with(RealFs::shared(), dir, queue, OutputPolicy::default())
            .map_err(|e| std::io::Error::other(e.to_string()))
    }

    /// [`OutputServer::spawn`] over an explicit [`Storage`] backend and
    /// failure policy.
    pub fn spawn_with(
        storage: Arc<dyn Storage>,
        dir: PathBuf,
        queue: usize,
        policy: OutputPolicy,
    ) -> Result<OutputServer, OutputError> {
        storage.create_dir_all(&dir).map_err(|e| OutputError::Io {
            path: dir.clone(),
            source: e,
        })?;
        let (tx, rx) = bounded::<Msg>(queue.max(1));
        let stats = Arc::new(Mutex::new(OutputStats::default()));
        let mut writer = Writer {
            storage,
            dir: dir.clone(),
            policy,
            stats: stats.clone(),
            dirty: Vec::new(),
            consecutive_failures: 0,
        };
        let handle = std::thread::spawn(move || -> Result<(), String> {
            let mut means: HashMap<&'static str, (Vec<f64>, u64)> = HashMap::new();
            let mut last_time = 0.0;
            for msg in rx.iter() {
                match msg {
                    Msg::Sample(s) => {
                        last_time = s.time_s;
                        match s.reduction {
                            Reduction::Instantaneous => {
                                writer.write_record(s.name, s.time_s, &s.data)?;
                            }
                            Reduction::TimeMean => {
                                let e = means
                                    .entry(s.name)
                                    .or_insert_with(|| (vec![0.0; s.data.len()], 0));
                                for (a, b) in e.0.iter_mut().zip(&s.data) {
                                    *a += b;
                                }
                                e.1 += 1;
                            }
                        }
                    }
                    Msg::Flush | Msg::Shutdown => {
                        let mut pending: Vec<(&'static str, (Vec<f64>, u64))> =
                            means.drain().collect();
                        pending.sort_by_key(|(name, _)| *name);
                        for (name, (acc, n)) in pending {
                            if n > 0 {
                                let mean: Vec<f64> =
                                    acc.iter().map(|v| v / n as f64).collect();
                                writer.write_record(name, last_time, &mean)?;
                            }
                        }
                        writer.sync();
                        if matches!(msg, Msg::Shutdown) {
                            break;
                        }
                    }
                }
            }
            Ok(())
        });
        Ok(OutputServer {
            tx,
            handle: Mutex::new(Some(handle)),
            dir,
            stats,
            deferred: Mutex::new(None),
            on_full: policy.on_full,
        })
    }

    /// Counters so far (the server updates them concurrently).
    pub fn stats(&self) -> OutputStats {
        self.stats.lock().clone()
    }

    /// Join a dead server thread and remember why it died. Every later
    /// call sees the same cause.
    fn server_died(&self) -> OutputError {
        let mut deferred = self.deferred.lock();
        if deferred.is_none() {
            let cause = match self.handle.lock().take() {
                Some(h) => match h.join() {
                    Ok(Ok(())) => "server exited cleanly but channel closed".to_string(),
                    Ok(Err(cause)) => cause,
                    Err(_) => "server thread panicked".to_string(),
                },
                None => "server already joined".to_string(),
            };
            *deferred = Some(cause);
        }
        OutputError::ServerDied {
            cause: deferred.clone().unwrap(),
        }
    }

    fn check_deferred(&self) -> Result<(), OutputError> {
        if let Some(cause) = self.deferred.lock().clone() {
            return Err(OutputError::ServerDied { cause });
        }
        Ok(())
    }

    /// Post a sample. With [`FullPolicy::Block`] this blocks while the
    /// queue is full; with [`FullPolicy::Shed`] it returns
    /// [`PostOutcome::Shed`] instead. A dead server is a typed error, not
    /// a panic — and the error that killed it is carried in the variant.
    pub fn post(&self, req: OutputRequest) -> Result<PostOutcome, OutputError> {
        self.check_deferred()?;
        self.stats.lock().posted += 1;
        match self.on_full {
            FullPolicy::Block => match self.tx.send(Msg::Sample(req)) {
                Ok(()) => Ok(PostOutcome::Accepted),
                Err(_) => Err(self.server_died()),
            },
            FullPolicy::Shed => match self.tx.try_send(Msg::Sample(req)) {
                Ok(()) => Ok(PostOutcome::Accepted),
                Err(TrySendError::Full(_)) => {
                    self.stats.lock().shed_queue_full += 1;
                    Ok(PostOutcome::Shed)
                }
                Err(TrySendError::Disconnected(_)) => Err(self.server_died()),
            },
        }
    }

    /// Flush pending time means and fsync everything written so far.
    pub fn flush(&self) -> Result<(), OutputError> {
        self.check_deferred()?;
        match self.tx.send(Msg::Flush) {
            Ok(()) => Ok(()),
            Err(_) => Err(self.server_died()),
        }
    }

    /// Shut down, make the stream durable, and return the final counters.
    /// `Err` only if the server thread died (its cause is the variant) or
    /// panicked — shed records are a *counter*, not an error.
    pub fn finish(self) -> Result<OutputStats, OutputError> {
        let _ = self.tx.send(Msg::Shutdown);
        let handle = self.handle.lock().take();
        match handle {
            Some(h) => match h.join() {
                Ok(Ok(())) => Ok(self.stats.lock().clone()),
                Ok(Err(cause)) => Err(OutputError::ServerDied { cause }),
                Err(_) => Err(OutputError::ServerDied {
                    cause: "server thread panicked".to_string(),
                }),
            },
            None => Err(self.check_deferred().expect_err("handle gone implies deferred cause")),
        }
    }
}

impl Drop for OutputServer {
    fn drop(&mut self) {
        // Best-effort shutdown for handles dropped without `finish`. Any
        // terminal error was already surfaced (or is surfaceable) through
        // the deferred-error path; there is nothing useful to do with it
        // in a destructor.
        if let Some(h) = self.handle.lock().take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = h.join();
        }
    }
}

/// Result of scanning (and possibly repairing) a `.rec` stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredRecords {
    /// Every intact record, in file order.
    pub records: Vec<(f64, Vec<f64>)>,
    /// Bytes of the longest intact prefix.
    pub intact_bytes: u64,
    /// Damaged/torn bytes beyond the intact prefix.
    pub dropped_bytes: u64,
    /// Whether the file was rewritten to drop the damaged tail.
    pub repaired: bool,
}

/// Parse one v2 frame at `off`. `Ok(None)` ends an exactly-consumed file.
fn parse_frame(
    path: &Path,
    bytes: &[u8],
    off: usize,
) -> Result<Option<(f64, Vec<f64>, usize)>, OutputError> {
    if off == bytes.len() {
        return Ok(None);
    }
    let rest = &bytes[off..];
    if rest.len() < REC_HEADER + 4 {
        return Err(OutputError::Truncated {
            path: path.to_path_buf(),
            offset: off as u64,
            context: "record header",
        });
    }
    if &rest[..4] != REC_MAGIC {
        return Err(OutputError::Corrupt {
            path: path.to_path_buf(),
            offset: off as u64,
            context: format!("bad record magic {:02x?}", &rest[..4]),
        });
    }
    let time = f64::from_le_bytes(rest[4..12].try_into().unwrap());
    let len = u64::from_le_bytes(rest[12..20].try_into().unwrap());
    let payload_bytes = match (len as usize).checked_mul(8) {
        Some(b) if REC_HEADER + b + 4 <= rest.len() => b,
        _ => {
            return Err(OutputError::Truncated {
                path: path.to_path_buf(),
                offset: off as u64,
                context: "record payload",
            })
        }
    };
    let frame_end = REC_HEADER + payload_bytes;
    let stored = u32::from_le_bytes(rest[frame_end..frame_end + 4].try_into().unwrap());
    let computed = crc32(&rest[..frame_end]);
    if stored != computed {
        return Err(OutputError::ChecksumMismatch {
            path: path.to_path_buf(),
            offset: off as u64,
            stored,
            computed,
        });
    }
    let data: Vec<f64> = rest[REC_HEADER..frame_end]
        .chunks_exact(8)
        .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
        .collect();
    Ok(Some((time, data, off + frame_end + 4)))
}

/// Parse one legacy v1 record (`time | len | payload`, no framing) with
/// bounds checks — a torn tail is a typed error, never a panic.
fn parse_v1(
    path: &Path,
    bytes: &[u8],
    off: usize,
) -> Result<Option<(f64, Vec<f64>, usize)>, OutputError> {
    if off == bytes.len() {
        return Ok(None);
    }
    let rest = &bytes[off..];
    if rest.len() < 16 {
        return Err(OutputError::Truncated {
            path: path.to_path_buf(),
            offset: off as u64,
            context: "legacy record header",
        });
    }
    let time = f64::from_le_bytes(rest[..8].try_into().unwrap());
    let len = u64::from_le_bytes(rest[8..16].try_into().unwrap());
    let payload_bytes = match (len as usize).checked_mul(8) {
        Some(b) if 16 + b <= rest.len() => b,
        _ => {
            return Err(OutputError::Truncated {
                path: path.to_path_buf(),
                offset: off as u64,
                context: "legacy record payload",
            })
        }
    };
    let data: Vec<f64> = rest[16..16 + payload_bytes]
        .chunks_exact(8)
        .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
        .collect();
    Ok(Some((time, data, off + 16 + payload_bytes)))
}

fn is_v2(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == REC_MAGIC
}

/// Read back all records of a variable: `(time, data)` pairs. Strict: any
/// damage anywhere in the stream is a typed [`OutputError`] (use
/// [`recover_records`] to salvage the intact prefix instead). Files
/// starting with the `RC02` magic parse as CRC-framed v2; anything else
/// falls back to the bounds-checked legacy v1 layout.
pub fn read_records(dir: &Path, name: &str) -> Result<Vec<(f64, Vec<f64>)>, OutputError> {
    read_records_with(&RealFs, dir, name)
}

/// [`read_records`] over an explicit [`Storage`] backend.
pub fn read_records_with(
    storage: &dyn Storage,
    dir: &Path,
    name: &str,
) -> Result<Vec<(f64, Vec<f64>)>, OutputError> {
    let path = dir.join(format!("{name}.rec"));
    let bytes = storage.read(&path).map_err(|e| OutputError::Io {
        path: path.clone(),
        source: e,
    })?;
    let v2 = is_v2(&bytes);
    let mut out = Vec::new();
    let mut off = 0;
    loop {
        let parsed = if v2 {
            parse_frame(&path, &bytes, off)?
        } else {
            parse_v1(&path, &bytes, off)?
        };
        match parsed {
            Some((time, data, next)) => {
                out.push((time, data));
                off = next;
            }
            None => return Ok(out),
        }
    }
}

/// Salvage a possibly-damaged `.rec` stream: walk records until the first
/// damage, return every intact record, and — if there was a damaged tail
/// — rewrite the file down to the intact prefix so later appends produce
/// a clean stream again. A missing file is an empty, intact stream.
pub fn recover_records(dir: &Path, name: &str) -> Result<RecoveredRecords, OutputError> {
    recover_records_with(&RealFs, dir, name)
}

/// [`recover_records`] over an explicit [`Storage`] backend.
pub fn recover_records_with(
    storage: &dyn Storage,
    dir: &Path,
    name: &str,
) -> Result<RecoveredRecords, OutputError> {
    let path = dir.join(format!("{name}.rec"));
    let bytes = match storage.read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(RecoveredRecords {
                records: Vec::new(),
                intact_bytes: 0,
                dropped_bytes: 0,
                repaired: false,
            })
        }
        Err(e) => return Err(OutputError::Io { path, source: e }),
    };
    let v2 = is_v2(&bytes);
    let mut records = Vec::new();
    let mut off = 0;
    loop {
        let parsed = if v2 {
            parse_frame(&path, &bytes, off)
        } else {
            parse_v1(&path, &bytes, off)
        };
        match parsed {
            Ok(Some((time, data, next))) => {
                records.push((time, data));
                off = next;
            }
            Ok(None) => break,
            Err(_) => break, // first damage: everything from `off` is dropped
        }
    }
    let dropped = (bytes.len() - off) as u64;
    let mut repaired = false;
    if dropped > 0 {
        storage
            .write(&path, &bytes[..off])
            .and_then(|_| storage.fsync(&path))
            .map_err(|e| OutputError::Io {
                path: path.clone(),
                source: e,
            })?;
        repaired = true;
    }
    Ok(RecoveredRecords {
        records,
        intact_bytes: off as u64,
        dropped_bytes: dropped,
        repaired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restart::scratch_dir;
    use crate::vfs::{FaultFs, StorageFault};
    use std::fs;

    #[test]
    fn instantaneous_records_roundtrip() {
        let dir = scratch_dir("out_inst");
        let srv = OutputServer::spawn(dir.clone(), 8).unwrap();
        for step in 0..5 {
            srv.post(OutputRequest {
                name: "sst",
                time_s: step as f64 * 600.0,
                data: vec![step as f64; 10],
                reduction: Reduction::Instantaneous,
            })
            .unwrap();
        }
        let stats = srv.finish().unwrap();
        assert_eq!(stats.records_written, 5);
        assert_eq!(stats.posted, 5);
        assert_eq!(stats.shed_queue_full + stats.shed_write_failure, 0);
        let recs = read_records(&dir, "sst").unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[3].0, 1800.0);
        assert_eq!(recs[3].1, vec![3.0; 10]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn time_mean_reduces_before_writing() {
        let dir = scratch_dir("out_mean");
        let srv = OutputServer::spawn(dir.clone(), 8).unwrap();
        for step in 0..4 {
            srv.post(OutputRequest {
                name: "precip",
                time_s: step as f64,
                data: vec![step as f64, 2.0 * step as f64],
                reduction: Reduction::TimeMean,
            })
            .unwrap();
        }
        let stats = srv.finish().unwrap();
        assert_eq!(stats.records_written, 1, "one mean record");
        let recs = read_records(&dir, "precip").unwrap();
        assert_eq!(recs.len(), 1);
        // Mean of 0..=3 is 1.5.
        assert_eq!(recs[0].1, vec![1.5, 3.0]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_thread_is_not_blocked_by_io() {
        // Posting is asynchronous: many posts complete quickly while the
        // server drains concurrently.
        let dir = scratch_dir("out_async");
        let srv = OutputServer::spawn(dir.clone(), 64).unwrap();
        let t0 = std::time::Instant::now();
        for step in 0..50 {
            srv.post(OutputRequest {
                name: "field",
                time_s: step as f64,
                data: vec![0.5; 4096],
                reduction: Reduction::Instantaneous,
            })
            .unwrap();
        }
        let post_time = t0.elapsed();
        let stats = srv.finish().unwrap();
        assert_eq!(stats.records_written, 50);
        // All records landed even though posting returned fast.
        let recs = read_records(&dir, "field").unwrap();
        assert_eq!(recs.len(), 50);
        assert!(post_time.as_secs_f64() < 5.0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_emits_partial_means() {
        let dir = scratch_dir("out_flush");
        let srv = OutputServer::spawn(dir.clone(), 8).unwrap();
        srv.post(OutputRequest {
            name: "x",
            time_s: 0.0,
            data: vec![2.0],
            reduction: Reduction::TimeMean,
        })
        .unwrap();
        srv.flush().unwrap();
        srv.post(OutputRequest {
            name: "x",
            time_s: 1.0,
            data: vec![6.0],
            reduction: Reduction::TimeMean,
        })
        .unwrap();
        let stats = srv.finish().unwrap();
        assert_eq!(stats.records_written, 2);
        let recs = read_records(&dir, "x").unwrap();
        assert_eq!(recs[0].1, vec![2.0]);
        assert_eq!(recs[1].1, vec![6.0]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_v2_tail_is_a_typed_error_not_a_panic() {
        let dir = scratch_dir("out_trunc2");
        fs::create_dir_all(&dir).unwrap();
        let mut bytes = encode_record(1.0, &[1.0, 2.0, 3.0]);
        bytes.extend_from_slice(&encode_record(2.0, &[4.0, 5.0, 6.0]));
        let full = bytes.len();
        for cut in [full - 1, full - 10, full / 2 + 1] {
            fs::write(dir.join("v.rec"), &bytes[..cut]).unwrap();
            let err = read_records(&dir, "v").unwrap_err();
            assert!(
                matches!(
                    err,
                    OutputError::Truncated { .. } | OutputError::ChecksumMismatch { .. }
                ),
                "cut {cut}: {err:?}"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_legacy_tail_is_a_typed_error_not_a_panic() {
        let dir = scratch_dir("out_trunc1");
        fs::create_dir_all(&dir).unwrap();
        // Legacy layout: time | len | payload, no magic, no CRC.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1.5f64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        for v in [1.0f64, 2.0, 3.0] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        // Torn tail: header claims 3 values, payload holds one.
        bytes.extend_from_slice(&2.5f64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        bytes.extend_from_slice(&9.0f64.to_le_bytes());
        fs::write(dir.join("v.rec"), &bytes).unwrap();
        // This exact input panicked before the bounds checks.
        match read_records(&dir, "v") {
            Err(OutputError::Truncated { offset, .. }) => assert_eq!(offset, 40),
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Hostile length: u64::MAX would overflow `len * 8`.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&0.0f64.to_le_bytes());
        hostile.extend_from_slice(&u64::MAX.to_le_bytes());
        fs::write(dir.join("v.rec"), &hostile).unwrap();
        assert!(matches!(
            read_records(&dir, "v"),
            Err(OutputError::Truncated { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_records_truncates_to_last_intact_record() {
        let dir = scratch_dir("out_recover");
        fs::create_dir_all(&dir).unwrap();
        let r1 = encode_record(1.0, &[1.0, 2.0]);
        let r2 = encode_record(2.0, &[3.0, 4.0]);
        let r3 = encode_record(3.0, &[5.0, 6.0]);
        let mut bytes = [r1.clone(), r2.clone(), r3.clone()].concat();
        // Tear the third record short.
        bytes.truncate(r1.len() + r2.len() + r3.len() - 5);
        fs::write(dir.join("v.rec"), &bytes).unwrap();

        let rec = recover_records(&dir, "v").unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[1], (2.0, vec![3.0, 4.0]));
        assert!(rec.repaired);
        assert_eq!(rec.intact_bytes, (r1.len() + r2.len()) as u64);
        assert_eq!(rec.dropped_bytes, (r3.len() - 5) as u64);

        // The file is clean again: strict read succeeds, a new append
        // lands as record 3.
        assert_eq!(read_records(&dir, "v").unwrap().len(), 2);
        let mut after = fs::read(dir.join("v.rec")).unwrap();
        after.extend_from_slice(&r3);
        fs::write(dir.join("v.rec"), &after).unwrap();
        assert_eq!(read_records(&dir, "v").unwrap().len(), 3);

        // Recovering an intact or missing stream is a no-op.
        let rec = recover_records(&dir, "v").unwrap();
        assert!(!rec.repaired);
        assert_eq!(rec.records.len(), 3);
        let rec = recover_records(&dir, "absent").unwrap();
        assert_eq!(rec, RecoveredRecords {
            records: Vec::new(),
            intact_bytes: 0,
            dropped_bytes: 0,
            repaired: false,
        });
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_append_is_healed_and_retried() {
        let dir = scratch_dir("out_heal");
        let storage = Arc::new(
            FaultFs::new()
                .fault(StorageFault::TornWrite { nth_write: 2, keep: 7 })
                .fault(StorageFault::TransientIo { nth_write: 4 }),
        );
        let srv = OutputServer::spawn_with(
            storage.clone(),
            dir.clone(),
            8,
            OutputPolicy {
                write_retries: 3,
                backoff: Duration::from_micros(100),
                ..OutputPolicy::default()
            },
        )
        .unwrap();
        for step in 0..4 {
            srv.post(OutputRequest {
                name: "sst",
                time_s: step as f64,
                data: vec![step as f64; 8],
                reduction: Reduction::Instantaneous,
            })
            .unwrap();
        }
        let stats = srv.finish().unwrap();
        assert_eq!(stats.records_written, 4, "both faults absorbed");
        assert_eq!(stats.shed_write_failure, 0);
        assert!(stats.write_retries >= 2, "{stats:?}");
        assert!(stats.recoveries >= 1, "torn append healed: {stats:?}");
        let recs = read_records(&dir, "sst").unwrap();
        assert_eq!(recs.len(), 4, "stream is clean despite the torn append");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sustained_disk_pressure_sheds_instead_of_dying() {
        let dir = scratch_dir("out_shed");
        // Every write fails from the first one on.
        let storage = Arc::new(FaultFs::new().fault(StorageFault::NoSpace { nth_write: 1 }));
        let srv = OutputServer::spawn_with(
            storage,
            dir.clone(),
            8,
            OutputPolicy {
                write_retries: 1,
                backoff: Duration::from_micros(100),
                ..OutputPolicy::default()
            },
        )
        .unwrap();
        for step in 0..5 {
            srv.post(OutputRequest {
                name: "sst",
                time_s: step as f64,
                data: vec![1.0],
                reduction: Reduction::Instantaneous,
            })
            .unwrap();
        }
        let stats = srv.finish().unwrap();
        assert_eq!(stats.records_written, 0);
        assert_eq!(stats.shed_write_failure, 5, "every record shed, server alive");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_server_is_a_typed_error_with_the_original_cause() {
        let dir = scratch_dir("out_dead");
        let storage = Arc::new(FaultFs::new().fault(StorageFault::NoSpace { nth_write: 1 }));
        let srv = OutputServer::spawn_with(
            storage,
            dir.clone(),
            2,
            OutputPolicy {
                write_retries: 0,
                backoff: Duration::ZERO,
                give_up_after: Some(1),
                ..OutputPolicy::default()
            },
        )
        .unwrap();
        // First post kills the server (give_up_after = 1); keep posting
        // until the death is observed — never a panic.
        let mut died = None;
        for step in 0..50 {
            match srv.post(OutputRequest {
                name: "sst",
                time_s: step as f64,
                data: vec![1.0],
                reduction: Reduction::Instantaneous,
            }) {
                Ok(_) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => {
                    died = Some(e);
                    break;
                }
            }
        }
        let err = died.expect("server death must surface through post");
        match &err {
            OutputError::ServerDied { cause } => {
                assert!(cause.contains("gave up"), "cause carries the I/O error: {cause}")
            }
            other => panic!("expected ServerDied, got {other:?}"),
        }
        // And it is sticky: flush and finish report the same death.
        assert!(matches!(srv.flush(), Err(OutputError::ServerDied { .. })));
        assert!(matches!(srv.finish(), Err(OutputError::ServerDied { .. })));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shed_policy_drops_when_queue_is_full() {
        let dir = scratch_dir("out_full");
        // A server that cannot drain: every append blocks on retry with
        // long backoff. Simpler: tiny queue + many fast posts; some must
        // shed without ever blocking the poster.
        let srv = OutputServer::spawn_with(
            RealFs::shared(),
            dir.clone(),
            1,
            OutputPolicy {
                on_full: FullPolicy::Shed,
                ..OutputPolicy::default()
            },
        )
        .unwrap();
        let mut shed = 0;
        for step in 0..200 {
            match srv
                .post(OutputRequest {
                    name: "f",
                    time_s: step as f64,
                    data: vec![0.0; 4096],
                    reduction: Reduction::Instantaneous,
                })
                .unwrap()
            {
                PostOutcome::Accepted => {}
                PostOutcome::Shed => shed += 1,
            }
        }
        let stats = srv.finish().unwrap();
        assert_eq!(stats.shed_queue_full, shed);
        assert_eq!(stats.records_written + stats.shed_queue_full, 200);
        let recs = read_records(&dir, "f").unwrap();
        assert_eq!(recs.len() as u64, stats.records_written);
        fs::remove_dir_all(&dir).ok();
    }
}
