//! Stencil-DSL mirrors of the land hot kernels, registered for static
//! dataflow verification (see `atmo/src/dsl.rs` for the scheme).
//!
//! Land kernels are column-local (no horizontal gathers — JSBach runs
//! per grid cell), so their DSL forms exercise the analyzer's vertical
//! checks: the soil heat/water columns read `k ± 1` within the declared
//! halo, and every intermediate written is consumed downstream.

/// DSL restatement of the soil-column and carbon-pool access structure
/// (see `land/src/soil.rs` and `land/src/pools.rs`).
pub const DSL_SRC: &str = r#"
# Land component access structure: per-cell soil columns over 5 levels.
kernel soil_heat over cells
  t_flux(p,k)   = (t_soil(p,k-1) - t_soil(p,k)) * inv_dz_soil(p);
  t_soil_n(p,k) = t_soil(p,k) + kappa(p) * (t_flux(p,k+1) - t_flux(p,k)) + forc_t(p,k);
end

kernel soil_water over cells
  perc(p,k)     = w_liquid(p,k) * perc_rate(p);
  w_liquid_n(p,k) = w_liquid(p,k) + perc(p,k-1) - perc(p,k) + infil(p,k);
end

kernel carbon over cells
  npp_alloc(p,k)  = npp(p,k) * alloc_frac(p,k);
  pool_n(p,k)     = pool(p,k) + npp_alloc(p,k) - pool(p,k) * turnover(p,k);
end
"#;

/// Field declarations of [`DSL_SRC`]: `(name, domain, is_3d, io, unit)`.
/// Water state is tracked as column depth (`m`), carbon pools as area
/// density (`kg m^-2`); the dimensional-analysis pass proves every
/// statement consistent under these assignments.
pub fn dsl_fields() -> Vec<(&'static str, &'static str, bool, &'static str, &'static str)> {
    vec![
        ("t_soil", "cells", true, "in", "K"),
        ("forc_t", "cells", true, "in", "K"),
        ("w_liquid", "cells", true, "in", "m"),
        ("infil", "cells", true, "in", "m"),
        ("npp", "cells", true, "in", "kg m^-2"),
        ("alloc_frac", "cells", true, "in", "1"),
        ("pool", "cells", true, "in", "kg m^-2"),
        ("turnover", "cells", true, "in", "1"),
        ("inv_dz_soil", "cells", false, "in", "m^-1"),
        ("kappa", "cells", false, "in", "m"),
        ("perc_rate", "cells", false, "in", "1"),
        ("t_flux", "cells", true, "out", "K m^-1"),
        ("t_soil_n", "cells", true, "out", "K"),
        ("perc", "cells", true, "out", "m"),
        ("w_liquid_n", "cells", true, "out", "m"),
        ("npp_alloc", "cells", true, "out", "kg m^-2"),
        ("pool_n", "cells", true, "out", "kg m^-2"),
    ]
}

/// Neighbor relations used (none — land is column-local, but the domain
/// must still be declared): `(name, source, target, arity)`.
pub fn dsl_relations() -> Vec<(&'static str, &'static str, &'static str, usize)> {
    Vec::new()
}

/// Soil columns read one level up/down (percolation, heat flux).
pub const DSL_HALO: i32 = 1;

/// Soil layers assumed by the static cost model.
pub const DSL_NLEV: usize = 5;

/// Representative horizontal extents for the static cost model:
/// `(domain, entities)` — land columns sit under the same cell grid.
pub fn dsl_sizes() -> Vec<(&'static str, usize)> {
    vec![("cells", 20_480)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarations_cover_every_identifier_in_the_source() {
        let declared: Vec<&str> = dsl_fields()
            .iter()
            .map(|(n, _, _, _, _)| *n)
            .chain(dsl_relations().iter().map(|(n, _, _, _)| *n))
            .collect();
        for line in DSL_SRC.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("kernel") || line == "end" {
                continue;
            }
            let mut ident = String::new();
            for ch in line.chars() {
                if ch.is_alphanumeric() || ch == '_' {
                    ident.push(ch);
                } else {
                    if ch == '(' && !ident.is_empty() && !ident.chars().next().unwrap().is_numeric() {
                        assert!(
                            declared.contains(&ident.as_str()),
                            "`{ident}` used in DSL but not declared"
                        );
                    }
                    ident.clear();
                }
            }
        }
    }
}
