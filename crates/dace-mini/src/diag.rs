//! Shared rustc-style diagnostic rendering.
//!
//! One place owns the textual shape of a [`Diagnostic`] — the compact
//! one-liner (`Display` of [`Diagnostic`] delegates here) and the full
//! form with a caret-annotated source snippet that `esm-lint` prints.
//! Before this module the two renderings lived separately in
//! `analysis.rs` and `crates/lint` and had already drifted; every new
//! consumer (the perf diagnostics, `--json` output) goes through here.

use crate::analysis::Diagnostic;
use crate::loc::render_snippet;
use std::fmt::Write as _;

/// Compact one-line rendering:
/// `severity[code]: message (in `state` at line:col)`.
pub fn render(d: &Diagnostic) -> String {
    format!(
        "{}[{}]: {} (in `{}` at {})",
        d.severity(),
        d.code.code(),
        d.message,
        d.state,
        d.span
    )
}

/// Full rustc-style rendering: header line plus, when the diagnostic has
/// a real span into a non-empty source, the caret snippet pointing at the
/// offending access. `source_name` labels the snippet's `-->` line.
pub fn render_with_source(source_name: &str, source: &str, d: &Diagnostic) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}[{}]: {} (state `{}`)",
        d.severity(),
        d.code.code(),
        d.message,
        d.state
    );
    if !d.span.is_synthetic() && !source.is_empty() {
        let _ = writeln!(out, "{}", render_snippet(source_name, source, d.span));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::DiagCode;
    use crate::loc::Span;

    fn diag(span: Span) -> Diagnostic {
        Diagnostic::new(DiagCode::RedundantGather, "gather repeated", span, "s0")
    }

    #[test]
    fn one_liner_matches_display() {
        let d = diag(Span::new(2, 5, 3));
        assert_eq!(render(&d), format!("{d}"));
        assert!(render(&d).starts_with("warning[W0501]: gather repeated"));
    }

    #[test]
    fn snippet_appears_only_with_a_real_span_and_source() {
        let src = "line one\nkernel a over cells\n";
        let with = render_with_source("t", src, &diag(Span::new(2, 1, 6)));
        assert!(with.contains("--> t:2:1"), "{with}");
        assert!(with.contains("^^^^^^"), "{with}");

        let synthetic = render_with_source("t", src, &diag(Span::synthetic()));
        assert!(!synthetic.contains("-->"));
        let empty_src = render_with_source("t", "", &diag(Span::new(2, 1, 6)));
        assert!(!empty_src.contains("-->"));
    }
}
