//! Property tests for the SDC fault domain (DESIGN.md §14):
//!
//! 1. **Quiescence exactness** — any single bit flip, in any element of
//!    any registered quiescent buffer, is caught and localized by the
//!    CRC detector, and repair restores the exact prior bits.
//! 2. **Detection theorem** — an in-bounds mantissa flip in any active
//!    state buffer is either detected (the audit replay compares the
//!    trajectory bitwise against an independent re-execution) or
//!    provably harmless: in both cases the finished run is bitwise
//!    identical to a fault-free run, with zero false positives.
//! 3. **Write-set soundness** — the dace-mini `field_fates` export is
//!    checked against actual execution: a flip in a buffer classified
//!    `OverwrittenBeforeRead` never changes any output, a flip in a
//!    `Live` input always does, and an `Untouched` buffer passes
//!    through execution with its (corrupted) bits unchanged — exactly
//!    the case the quiescence checksums own.

use dace_mini::{exec, parser, sdfg::Sdfg, suite, FieldFate};
use esm_core::sdc::{FlipTarget, QuiescenceReference, StateFaultPlan};
use esm_core::{CoupledEsm, EsmConfig, ResilienceConfig};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: the CRC detector is exact for single bit flips —
    /// any buffer, any element, any of the 64 bits.
    #[test]
    fn any_quiescent_bit_flip_is_caught_localized_and_repaired(
        buf_i in 0usize..CoupledEsm::QUIESCENT_BUFFERS.len(),
        elem in 0u64..1 << 32,
        bit in 0u8..64,
    ) {
        let mut esm = CoupledEsm::new(EsmConfig::tiny());
        let q = QuiescenceReference::capture(&esm);
        let name = CoupledEsm::QUIESCENT_BUFFERS[buf_i];
        let data = esm.quiescent_buffer_mut(name).expect("registered buffer");
        let i = (elem as usize) % data.len();
        let before = data[i].to_bits();
        data[i] = f64::from_bits(before ^ (1u64 << bit));
        let dirty = q.verify(&esm);
        prop_assert_eq!(dirty, vec![name], "CRC must localize the flip");
        prop_assert!(q.repair(&mut esm, name), "repair must find the buffer");
        prop_assert!(q.verify(&esm).is_empty(), "repair must restore the CRC");
        prop_assert_eq!(
            esm.quiescent_buffer(name).unwrap()[i].to_bits(),
            before,
            "repair is bit-exact"
        );
    }
}

proptest! {
    // Each case is two 4-window coupled runs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 2: the detection theorem. The flip lands in an arbitrary
    /// active state buffer before window 1; audits run every 2 windows.
    /// Either some detector fires (and rollback-replay contains it), or
    /// the flip was overwritten before the first bitwise audit — in
    /// which case nothing was ever wrong. Both branches must end
    /// bitwise identical to the fault-free run.
    #[test]
    fn any_active_mantissa_flip_is_detected_or_provably_dead(
        var in 0u64..1 << 32,
        elem in 0u64..1 << 32,
        bit in 0u8..32,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "esm_sdcprop_{}_{var}_{elem}_{bit}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let plan = Arc::new(StateFaultPlan::new().flip(1, FlipTarget::VarIndex(var), elem, bit));
        let rcfg = ResilienceConfig {
            audit_every: 2,
            sdc: Some(plan.clone()),
            ..ResilienceConfig::default()
        };
        let mut esm = CoupledEsm::new(EsmConfig::tiny());
        let report = esm.run_windows_resilient(4, false, &dir, &rcfg, None).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        prop_assert_eq!(report.sdc_injected, 1, "the planned flip fired");
        prop_assert_eq!(report.sdc_false_positives, 0);
        let detections = report.sdc_detected_bounds
            + report.sdc_detected_checksum
            + report.sdc_detected_audit;
        if detections == 0 {
            prop_assert_eq!(
                report.rollbacks, 0,
                "an undetected flip must never have disturbed the run"
            );
        }
        let mut clean = CoupledEsm::new(EsmConfig::tiny());
        clean.run_windows(4, false).unwrap();
        prop_assert_eq!(
            esm.snapshot(), clean.snapshot(),
            "detected-and-recovered or dead: either way, bitwise fault-free"
        );
    }
}

/// Two-statement kernel whose write-set facts are known exactly: `tmp`
/// and `out` are fully overwritten before any read, `inp` is a live
/// input, and `orography` is never mentioned.
const FATES_SRC: &str = "kernel t over cells\n  \
     tmp(p,k) = inp(p,k) * 2;\n  \
     out(p,k) = tmp(p,k) + inp(p,k);\n\
     end";
const FATES_NLEV: usize = 3;

fn fates_data(topo: &dace_mini::TopologyContext, seed: u64) -> dace_mini::DataContext {
    use dace_mini::exec::FieldBuf;
    let mut d = dace_mini::DataContext::new(FATES_NLEV);
    let mut state = seed.wrapping_mul(0xD1B54A32D192ED03) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 + 0.5
    };
    for name in ["inp", "tmp", "out", "orography"] {
        let mut f = FieldBuf::zeros(topo.domain_size("cells"), FATES_NLEV);
        for v in f.data.iter_mut() {
            // Strictly positive normal values: every mantissa bit of
            // every element is significant.
            *v = rnd() + 0.5;
        }
        d.add(name, f);
    }
    d
}

fn flip_in(d: &mut dace_mini::DataContext, field: &str, elem: u64, bit: u8) {
    let f = d.fields.get_mut(field).expect("field exists");
    let i = (elem as usize) % f.data.len();
    f.data[i] = f64::from_bits(f.data[i].to_bits() ^ (1u64 << bit));
}

fn out_bits(d: &dace_mini::DataContext) -> Vec<u64> {
    d.fields["out"].data.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 3: `field_fates` is sound against actual execution.
    #[test]
    fn write_set_fates_are_sound_against_execution(
        seed in 0u64..1 << 40,
        elem in 0u64..1 << 32,
        // Bits 2..52: mantissa flips big enough that `out = 3 * inp`
        // cannot round the difference away.
        bit in 2u8..52,
    ) {
        let prog = parser::parse(FATES_SRC).unwrap();
        let sdfg = Sdfg::from_program("t", &prog);
        let fates = dace_mini::field_fates(&sdfg, &["tmp", "out", "inp", "orography"]);
        prop_assert_eq!(fates[0].1, FieldFate::OverwrittenBeforeRead);
        prop_assert_eq!(fates[1].1, FieldFate::OverwrittenBeforeRead);
        prop_assert_eq!(fates[2].1, FieldFate::Live);
        prop_assert_eq!(fates[3].1, FieldFate::Untouched);

        let topo = suite::synthetic_topology(24);
        let mut clean = fates_data(&topo, seed);
        exec::run_naive(&prog, &topo, &mut clean);

        // OverwrittenBeforeRead: a pre-execution flip in `tmp` is dead —
        // no detector needs to fire, and the audit's bitwise compare
        // proves it (both executions produce identical state).
        let mut dead = fates_data(&topo, seed);
        flip_in(&mut dead, "tmp", elem, bit);
        exec::run_naive(&prog, &topo, &mut dead);
        prop_assert_eq!(out_bits(&dead), out_bits(&clean), "dead flip leaked into out");

        // Live: the same flip in `inp` must change the output — this is
        // exactly what the audit replay detects bitwise.
        let mut live = fates_data(&topo, seed);
        flip_in(&mut live, "inp", elem, bit);
        exec::run_naive(&prog, &topo, &mut live);
        prop_assert_ne!(out_bits(&live), out_bits(&clean));

        // Untouched: execution neither spreads nor heals a flip in a
        // never-mentioned buffer — the corrupted bits pass through
        // unchanged, and only a checksum (CRC over the raw bits) can
        // see them. This is the gap the quiescence detector closes.
        let mut quiet = fates_data(&topo, seed);
        let crc_before = esm_core::sdc::crc_f64(&quiet.fields["orography"].data);
        flip_in(&mut quiet, "orography", elem, bit);
        let corrupted: Vec<u64> =
            quiet.fields["orography"].data.iter().map(|v| v.to_bits()).collect();
        let crc_after = esm_core::sdc::crc_f64(&quiet.fields["orography"].data);
        prop_assert_ne!(crc_before, crc_after);
        exec::run_naive(&prog, &topo, &mut quiet);
        let after: Vec<u64> =
            quiet.fields["orography"].data.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(after, corrupted, "untouched buffer passes through bit-unchanged");
        prop_assert_eq!(out_bits(&quiet), out_bits(&clean));
    }
}
