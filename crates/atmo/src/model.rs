//! The assembled atmosphere component: dynamics + tracers + implicit
//! vertical operators + physics, stepped on one (sub)grid.

use crate::dycore::{self, Workspace};
use crate::params::AtmParams;
use crate::physics;
use crate::state::AtmState;
use crate::tracers;
use crate::vertical_solve::{implicit_vertical_diffusion, implicit_vertical_diffusion_weighted};
use icongrid::exchange::Exchange;
use icongrid::ops::CGrid;
use icongrid::{Field2, Field3};
use std::sync::Arc;

/// One atmosphere instance bound to a grid (global or per-rank subgrid).
pub struct Atmosphere<G: CGrid> {
    pub grid: Arc<G>,
    pub params: AtmParams,
    pub state: AtmState,
    pub z_surface: Field2,
    ws: Workspace,
    delta_old: Field3,
    /// Lowest-layer wind speed at cells, diagnosed each step (coupler
    /// input and physics input).
    pub wind_lowest: Field2,
    steps_taken: u64,
}

impl<G: CGrid> Atmosphere<G> {
    /// Create a new atmosphere. `z_surface` is the surface elevation (m),
    /// `is_water` marks evaporating (ocean / sea-ice-free) cells.
    pub fn new(grid: Arc<G>, params: AtmParams, z_surface: Field2, is_water: Vec<bool>) -> Self {
        let state = AtmState::initialize(grid.as_ref(), &params, is_water);
        let ws = Workspace::new(grid.as_ref(), params.nlev);
        let nc = grid.n_cells();
        let nlev = params.nlev;
        Atmosphere {
            grid,
            params,
            state,
            z_surface,
            ws,
            delta_old: Field3::zeros(nc, nlev),
            wind_lowest: Field2::zeros(nc),
            steps_taken: 0,
        }
    }

    /// Advance one full step: dynamics, consistent tracer transport,
    /// implicit vertical diffusion, column physics.
    pub fn step<X: Exchange>(&mut self, x: &X) {
        let g = self.grid.as_ref();
        let p = &self.params;

        // --- dynamics (predictor-corrector, exchanges inside).
        self.delta_old
            .as_mut_slice()
            .copy_from_slice(self.state.delta.as_slice());
        dycore::step_dynamics(g, p, &mut self.state, &self.z_surface, &mut self.ws, x);

        // --- tracers with the time-averaged mass flux.
        let dt = p.dt;
        for q in [
            &mut self.state.qv,
            &mut self.state.qc,
            &mut self.state.co2,
            &mut self.state.o3,
        ] {
            tracers::advect_tracer(
                g,
                &self.ws.mass_flux,
                &self.delta_old,
                &self.state.delta,
                dt,
                q,
                &mut self.ws.tracer_old,
            );
        }
        {
            let AtmState { qv, qc, co2, o3, .. } = &mut self.state;
            x.cells3_many(&mut [qv, qc, co2, o3]);
        }

        // --- implicit vertical mixing (column-local, halo-consistent).
        // Momentum: plain diffusion; tracers: mass-weighted so the column
        // inventories (water, carbon) are conserved exactly.
        implicit_vertical_diffusion(&mut self.state.vn, p.kv_diffusion, dt);
        implicit_vertical_diffusion_weighted(
            &mut self.state.qv,
            &self.state.delta,
            p.kv_diffusion,
            dt,
        );

        // --- lowest-layer wind for physics and coupling.
        let nlev = p.nlev;
        let kb = nlev - 1;
        for c in 0..g.n_cells() {
            let vx = self.ws.cellvec[0].at(c, kb);
            let vy = self.ws.cellvec[1].at(c, kb);
            let vz = self.ws.cellvec[2].at(c, kb);
            self.wind_lowest[c] = (vx * vx + vy * vy + vz * vz).sqrt();
        }

        // --- column physics (no exchange needed: deterministic per column).
        physics::apply_physics(g, p, &mut self.state, &self.wind_lowest);

        self.state.time_s += dt;
        self.steps_taken += 1;
    }

    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Maximum |vn| (global with the exchange's reduction) — CFL monitor.
    pub fn max_wind<X: Exchange>(&self, x: &X) -> f64 {
        x.max(self.state.vn.as_slice().iter().fold(0.0f64, |a, v| a.max(v.abs())))
    }

    /// Column-integrated water vapor (kg/m^2-equivalent) per cell.
    pub fn precipitable_water(&self, c: usize) -> f64 {
        (0..self.params.nlev)
            .map(|k| self.state.delta.at(c, k) * self.state.qv.at(c, k))
            .sum()
    }

    /// Surface pressure proxy: column mass (m).
    pub fn column_mass(&self, c: usize) -> f64 {
        self.state.delta.col(c).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icongrid::{Grid, NoExchange};

    fn small_atmosphere(nlev: usize, dt: f64) -> Atmosphere<Grid> {
        let g = Arc::new(Grid::build(2, icongrid::EARTH_RADIUS_M)); // 1280 cells
        let p = AtmParams::new(nlev, dt);
        assert!(dt <= p.max_stable_dt(g.min_dual_edge_m()) * 2.0, "test dt sane");
        let zs = Field2::zeros(g.n_cells);
        let water = vec![true; g.n_cells];
        Atmosphere::new(g, p, zs, water)
    }

    #[test]
    fn dry_mass_conserved_over_many_steps() {
        let mut atm = small_atmosphere(5, 400.0);
        let g = atm.grid.clone();
        let before = atm.state.total_mass(g.as_ref(), g.n_cells);
        for _ in 0..20 {
            atm.step(&NoExchange);
        }
        let after = atm.state.total_mass(g.as_ref(), g.n_cells);
        assert!(
            ((after - before) / before).abs() < 1e-11,
            "mass {before:e} -> {after:e}"
        );
    }

    #[test]
    fn water_inventory_closed() {
        let mut atm = small_atmosphere(5, 400.0);
        let g = atm.grid.clone();
        let before = atm.state.water_inventory(g.as_ref(), g.n_cells);
        for _ in 0..20 {
            atm.step(&NoExchange);
        }
        let after = atm.state.water_inventory(g.as_ref(), g.n_cells);
        assert!(
            ((after - before) / before).abs() < 1e-9,
            "water {before:e} -> {after:e}"
        );
    }

    #[test]
    fn flow_develops_from_baroclinic_forcing() {
        let mut atm = small_atmosphere(5, 400.0);
        assert_eq!(atm.max_wind(&NoExchange), 0.0);
        for _ in 0..40 {
            atm.step(&NoExchange);
        }
        let w = atm.max_wind(&NoExchange);
        assert!(w > 0.05, "wind should spin up, got {w}");
        assert!(w < 150.0, "wind should stay bounded, got {w}");
    }

    #[test]
    fn state_remains_physical() {
        let mut atm = small_atmosphere(6, 400.0);
        for _ in 0..30 {
            atm.step(&NoExchange);
        }
        assert!(atm.state.delta.min() > 0.0, "layers stay positive");
        assert!(atm.state.qv.min() >= -1e-12);
        assert!(atm.state.qc.min() >= -1e-12);
        assert!(atm.state.co2.min() > 0.0);
        assert!(
            atm.state.vn.as_slice().iter().all(|v| v.is_finite()),
            "no NaNs in velocity"
        );
    }

    #[test]
    fn hydrological_cycle_is_active() {
        let mut atm = small_atmosphere(5, 400.0);
        // Strong surface exchange so the boundary layer saturates within
        // the short test window (production value is 1.2e-3).
        atm.params.c_exchange = 0.05;
        for _ in 0..100 {
            atm.step(&NoExchange);
        }
        // Over an all-ocean planet with a warm surface, evaporation and
        // precipitation must both occur.
        let evap: f64 = (0..atm.grid.n_cells).map(|c| atm.state.evap_acc[c]).sum();
        let rain: f64 = (0..atm.grid.n_cells).map(|c| atm.state.precip_acc[c]).sum();
        assert!(evap > 0.0, "no evaporation");
        assert!(rain > 0.0, "no precipitation");
    }

    #[test]
    fn steps_are_deterministic() {
        let run = || {
            let mut atm = small_atmosphere(4, 400.0);
            for _ in 0..5 {
                atm.step(&NoExchange);
            }
            atm.state
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "two identical runs must agree bitwise");
    }

    #[test]
    fn co2_is_inert_without_surface_flux() {
        let mut atm = small_atmosphere(4, 400.0);
        let g = atm.grid.clone();
        let before = atm.state.co2_mass(g.as_ref(), g.n_cells);
        for _ in 0..10 {
            atm.step(&NoExchange);
        }
        let after = atm.state.co2_mass(g.as_ref(), g.n_cells);
        assert!(((after - before) / before).abs() < 1e-10);
    }
}
