//! Explore the machine model interactively: how would the 1.25 km full
//! Earth system scale on JUPITER, Alps, or your own hypothetical system?
//!
//! Reproduces the headline numbers of §7 (tau = 32.7 @ 2048 superchips,
//! 145.7 @ 20480 on JUPITER; 91.8 @ 8192 on Alps) and then answers the
//! planning questions of §8: how many chips for a given temporal
//! compression, what the energy bill looks like, and what the component
//! mapping ablation costs.
//!
//! Run with: `cargo run --release --example scaling_explorer [n_chips...]`

use icon_esm::machine::{
    config::GridConfig,
    cost::{Mapping, ThroughputModel},
    systems,
};

fn main() {
    let args: Vec<u32> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let chips = if args.is_empty() {
        vec![2048, 4096, 8192, 16384, 20480]
    } else {
        args
    };

    let cfg = GridConfig::km1p25();
    println!("=== 1.25 km full Earth system ({} dof) ===\n", fmt_e(cfg.total_dof()));

    for system in [&systems::JUPITER, &systems::ALPS] {
        let model = ThroughputModel::new(*system, cfg, Mapping::paper());
        println!(
            "--- {} ({} GH200 superchips total) ---",
            system.name,
            system.total_chips()
        );
        println!("chips  |    tau | atm step ms | oce step ms | atm waits | power MW | MWh / sim day");
        for &p in &chips {
            if p > system.total_chips() {
                continue;
            }
            let pt = model.scaling_point(p);
            println!(
                "{p:>6} | {:>6.1} | {:>11.1} | {:>11.1} | {:>9.3} | {:>8.2} | {:>8.1}",
                pt.tau,
                pt.atm_step_s * 1e3,
                pt.oce_step_s * 1e3,
                pt.atm_coupling_wait_s,
                pt.power_kw / 1e3,
                pt.energy_mj_per_sim_day / 3600.0,
            );
        }
        println!();
    }

    // Planning: chips needed for target temporal compressions.
    let jupiter = ThroughputModel::new(systems::JUPITER, cfg, Mapping::paper());
    println!("--- planning on JUPITER (Section 8) ---");
    for target in [30.0, 100.0, 150.0] {
        match jupiter.chips_for_tau(target) {
            Some(p) => println!("tau >= {target:>5.0}: {p} superchips"),
            None => println!("tau >= {target:>5.0}: beyond the full system"),
        }
    }
    println!(
        "memory floor: {} superchips (paper: 1.25 km first fits at 2048)",
        jupiter.min_chips_by_memory()
    );

    // Mapping ablation: what the heterogeneous mapping buys.
    println!("\n--- component mapping ablation @ 8192 chips ---");
    for (name, mapping) in [
        ("paper (ocean on Grace CPUs)", Mapping::paper()),
        ("all-GPU (ocean competes with atmosphere)", Mapping::all_gpu()),
    ] {
        let tau = ThroughputModel::new(systems::JUPITER, cfg, mapping)
            .scaling_point(8192)
            .tau;
        println!("{name:<45} tau = {tau:.1}");
    }

    // The paper's Section 8 projection: two 30-year scenarios, 3 members.
    let pt = jupiter.scaling_point(4096);
    let years_per_day = pt.tau / 365.25;
    let sim_years = 2.0 * 30.0 * 3.0;
    println!(
        "\nSection 8 projection at 1024 nodes (tau = {:.1}): {:.0} scenario-years need {:.2} years of wall time",
        pt.tau,
        sim_years,
        sim_years / years_per_day / 365.25
    );
}

fn fmt_e(x: f64) -> String {
    format!("{x:.2e}")
}
