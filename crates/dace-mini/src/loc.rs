//! Source locations and source-line accounting.
//!
//! Two things live here:
//!
//! 1. **Spans** ([`Span`]) — `line:col`+length source locations attached
//!    to every token, AST access, and SDFG tasklet, carried end-to-end
//!    into analysis diagnostics so `esm-lint` can print clickable
//!    rustc-style `file:line:col` output ([`render_snippet`]).
//! 2. **Line classification**, reproducing the code-complexity inventory
//!    of §5.2: ICON's dynamical core has 2728 non-empty lines of which
//!    **less than 50 % describe the computation**; the rest is OpenACC
//!    pragmas (20 %), other directives (12 %) and duplicated loop
//!    variants (6 %). Removing all of it leaves ~1400 clean lines.
//!
//! [`classify`] sorts source lines into those categories; [`annotate_legacy`]
//! reconstructs a legacy-style annotated source from a clean one (the
//! inverse of what the paper's parser throws away), so the inventory can
//! be demonstrated on real strings.

use std::fmt;

// ------------------------------------------------------------------
// Spans
// ------------------------------------------------------------------

/// A source location: 1-based line and column plus the length in
/// characters of the covered text. `line == 0` marks a *synthetic* span
/// (IR constructed programmatically, no source to point at).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
    pub len: u32,
}

impl Span {
    pub fn new(line: u32, col: u32, len: u32) -> Span {
        Span { line, col, len }
    }

    /// A span for IR with no source backing (programmatic SDFGs).
    pub fn synthetic() -> Span {
        Span::default()
    }

    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }

    /// Extend this span to cover `other` (same line: widen; different
    /// line: keep the earlier start, drop the tail length).
    pub fn to(self, other: Span) -> Span {
        if self.is_synthetic() {
            return other;
        }
        if other.is_synthetic() || other.line != self.line || other.col < self.col {
            return self;
        }
        Span {
            line: self.line,
            col: self.col,
            len: (other.col + other.len).saturating_sub(self.col),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthetic>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// Render a rustc-style snippet for a span over `src`:
///
/// ```text
///   --> name:54:16
///    |
/// 54 |   dz1(p,k)   = th(p,k+2) - th(p,k-1);
///    |                ^^^^^^^^^
/// ```
///
/// Synthetic spans render the arrow line only (no snippet).
pub fn render_snippet(name: &str, src: &str, span: Span) -> String {
    if span.is_synthetic() {
        return format!("  --> {name} (no source span: programmatic SDFG)\n");
    }
    let mut out = format!("  --> {name}:{}:{}\n", span.line, span.col);
    let Some(text) = src.lines().nth(span.line as usize - 1) else {
        return out;
    };
    let gutter = span.line.to_string();
    let pad = " ".repeat(gutter.len());
    out.push_str(&format!("{pad} |\n"));
    out.push_str(&format!("{gutter} | {text}\n"));
    let mark_col = span.col.saturating_sub(1) as usize;
    let carets = "^".repeat((span.len.max(1)) as usize);
    out.push_str(&format!("{pad} | {}{carets}\n", " ".repeat(mark_col)));
    out
}

/// Classification of one non-empty source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineClass {
    /// Actual computation (loops, assignments, declarations).
    Computation,
    /// `!$ACC` pragmas.
    OpenAcc,
    /// Other directives: `!$OMP`, vendor hints (`!DIR$`, `!$NEC`, `!CDIR`).
    OtherDirective,
    /// Lines inside the `#else` branch of a loop-exchange `#ifdef` — the
    /// duplicated loop-order copy.
    Duplicated,
    /// Preprocessor scaffolding (`#ifdef`, `#else`, `#endif`).
    Preprocessor,
    /// Plain comments.
    Comment,
}

/// Line-count report over a source text.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocReport {
    pub computation: usize,
    pub openacc: usize,
    pub other_directive: usize,
    pub duplicated: usize,
    pub preprocessor: usize,
    pub comment: usize,
}

impl LocReport {
    /// All non-empty lines.
    pub fn total(&self) -> usize {
        self.computation
            + self.openacc
            + self.other_directive
            + self.duplicated
            + self.preprocessor
            + self.comment
    }

    pub fn fraction(&self, class: LineClass) -> f64 {
        let c = match class {
            LineClass::Computation => self.computation,
            LineClass::OpenAcc => self.openacc,
            LineClass::OtherDirective => self.other_directive,
            LineClass::Duplicated => self.duplicated,
            LineClass::Preprocessor => self.preprocessor,
            LineClass::Comment => self.comment,
        };
        c as f64 / self.total().max(1) as f64
    }
}

/// Classify one trimmed, non-empty line (outside of `#else` context).
fn classify_line(t: &str) -> LineClass {
    let u = t.to_uppercase();
    if u.starts_with("!$ACC") {
        LineClass::OpenAcc
    } else if u.starts_with("!$OMP")
        || u.starts_with("!DIR$")
        || u.starts_with("!$NEC")
        || u.starts_with("!CDIR")
        || u.starts_with("!IBM")
    {
        LineClass::OtherDirective
    } else if u.starts_with("#IFDEF")
        || u.starts_with("#IFNDEF")
        || u.starts_with("#ELSE")
        || u.starts_with("#ENDIF")
    {
        LineClass::Preprocessor
    } else if u.starts_with('!') || u.starts_with('#') {
        LineClass::Comment
    } else {
        LineClass::Computation
    }
}

/// Count the non-empty lines of `src` by class. Lines between `#else` and
/// `#endif` count as [`LineClass::Duplicated`] (unless they are pragmas,
/// which keep their own class).
pub fn count(src: &str) -> LocReport {
    let mut rep = LocReport::default();
    let mut in_else = 0usize;
    for raw in src.lines() {
        let t = raw.trim();
        if t.is_empty() {
            continue;
        }
        let class = classify_line(t);
        let u = t.to_uppercase();
        if u.starts_with("#ELSE") {
            in_else += 1;
        }
        let effective = if in_else > 0
            && class == LineClass::Computation
        {
            LineClass::Duplicated
        } else {
            class
        };
        if u.starts_with("#ENDIF") && in_else > 0 {
            in_else -= 1;
        }
        match effective {
            LineClass::Computation => rep.computation += 1,
            LineClass::OpenAcc => rep.openacc += 1,
            LineClass::OtherDirective => rep.other_directive += 1,
            LineClass::Duplicated => rep.duplicated += 1,
            LineClass::Preprocessor => rep.preprocessor += 1,
            LineClass::Comment => rep.comment += 1,
        }
    }
    rep
}

/// Non-empty line count of a clean source.
pub fn nonempty_lines(src: &str) -> usize {
    src.lines().filter(|l| !l.trim().is_empty()).count()
}

/// Reconstruct a legacy-style annotated source from a clean one: every
/// kernel grows OpenACC parallel/loop/end pragmas, OpenMP and vendor
/// directives, and every fourth kernel gets a duplicated loop-exchange
/// variant behind `#ifdef _LOOP_EXCHANGE` — the structure of the paper's
/// code excerpt.
pub fn annotate_legacy(clean: &str) -> String {
    let mut out = String::new();
    let mut kernel_idx = 0usize;
    for line in clean.lines() {
        let t = line.trim();
        let lower = t.to_lowercase();
        if lower.starts_with("kernel ") {
            out.push_str("!$OMP PARALLEL DO PRIVATE(jb, jc, jk)\n");
            out.push_str("!$ACC PARALLEL DEFAULT(PRESENT) ASYNC(1)\n");
            out.push_str("!$ACC LOOP GANG VECTOR TILE(32, 4)\n");
            if kernel_idx.is_multiple_of(2) {
                out.push_str("!DIR$ IVDEP\n");
            } else {
                out.push_str("!$NEC outerloop_unroll(4)\n");
            }
            if kernel_idx.is_multiple_of(4) {
                // Duplicated loop-order variant.
                out.push_str("#ifndef _LOOP_EXCHANGE\n");
                out.push_str(line);
                out.push('\n');
                out.push_str("#else\n");
                // The duplicated copy: same loop with swapped order marker.
                out.push_str(&format!("{t}  # loop-exchanged copy\n"));
                out.push_str(&format!("{t}  # loop-exchanged body\n"));
                out.push_str("#endif\n");
            } else {
                out.push_str(line);
                out.push('\n');
            }
            kernel_idx += 1;
        } else if lower.starts_with("end") {
            out.push_str(line);
            out.push('\n');
            out.push_str("!$ACC END PARALLEL\n");
            out.push_str("!$OMP END PARALLEL DO\n");
        } else if !t.is_empty() && !t.starts_with('#') {
            // Statement lines: occasionally annotated.
            if fxhash(t).is_multiple_of(5) {
                out.push_str("!$ACC LOOP SEQ\n");
            }
            out.push_str(line);
            out.push('\n');
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::DYCORE_SRC;

    #[test]
    fn classifier_recognizes_each_class() {
        assert_eq!(classify_line("!$ACC PARALLEL"), LineClass::OpenAcc);
        assert_eq!(classify_line("!$acc loop gang"), LineClass::OpenAcc);
        assert_eq!(classify_line("!$OMP PARALLEL DO"), LineClass::OtherDirective);
        assert_eq!(classify_line("!DIR$ IVDEP"), LineClass::OtherDirective);
        assert_eq!(classify_line("!$NEC outerloop_unroll(4)"), LineClass::OtherDirective);
        assert_eq!(classify_line("#ifdef _LOOP_EXCHANGE"), LineClass::Preprocessor);
        assert_eq!(classify_line("! plain comment"), LineClass::Comment);
        assert_eq!(classify_line("x(p,k) = y(p,k);"), LineClass::Computation);
    }

    #[test]
    fn else_branches_count_as_duplicated() {
        let src = "#ifdef A\n x = 1;\n#else\n x = 2;\n y = 3;\n#endif\n";
        let rep = count(src);
        assert_eq!(rep.computation, 1);
        assert_eq!(rep.duplicated, 2);
        assert_eq!(rep.preprocessor, 3);
    }

    #[test]
    fn clean_source_is_pure_computation_and_comments() {
        let rep = count(DYCORE_SRC);
        assert_eq!(rep.openacc, 0);
        assert_eq!(rep.other_directive, 0);
        assert_eq!(rep.duplicated, 0);
        assert!(rep.computation > 20);
    }

    #[test]
    fn annotated_source_reproduces_the_papers_inventory_shape() {
        // Paper: computation < 50 %, OpenACC ~20 %, other directives
        // ~12 %, duplicated ~6 % of the annotated total; stripping the
        // annotations halves the line count (2728 -> ~1400).
        let legacy = annotate_legacy(DYCORE_SRC);
        let rep = count(&legacy);
        let comp = rep.fraction(LineClass::Computation) + rep.fraction(LineClass::Comment);
        let acc = rep.fraction(LineClass::OpenAcc);
        let other = rep.fraction(LineClass::OtherDirective);
        let dup = rep.fraction(LineClass::Duplicated) + rep.fraction(LineClass::Preprocessor);
        assert!(comp < 0.75, "computation+comments {comp:.2}");
        assert!((0.05..0.35).contains(&acc), "OpenACC fraction {acc:.2}");
        assert!((0.03..0.25).contains(&other), "other-directive fraction {other:.2}");
        assert!((0.01..0.20).contains(&dup), "duplication fraction {dup:.2}");
        // Clean / annotated line ratio ~ the paper's < 50 %... our mini
        // source is smaller, so assert the qualitative halving.
        let ratio = nonempty_lines(DYCORE_SRC) as f64 / rep.total() as f64;
        assert!(ratio < 0.8, "clean/annotated ratio {ratio:.2}");
    }

    #[test]
    fn icon_excerpt_from_the_paper_classifies_correctly() {
        // The actual code excerpt shown in §5.2 of the paper.
        let excerpt = r#"
!$ACC PARALLEL DEFAULT(PRESENT) ASYNC(1)
!$ACC LOOP GANG VECTOR TILE(32, 4)
#ifndef _LOOP_EXCHANGE
  DO jc = i_startidx, i_endidx
!DIR$ IVDEP
    DO jk = 1, nlev
      z_ekinh(jk,jc,jb) = wgt(1)*z_kin(jk,jc,1)
#else
!$NEC outerloop_unroll(4)
  DO jk = 1, nlev
    DO jc = i_startidx, i_endidx
      z_ekinh(jc,jk,jb) = wgt(1)*z_kin(jc,jk,1)
#endif
  ENDDO
!$ACC END PARALLEL
"#;
        let rep = count(excerpt);
        assert_eq!(rep.openacc, 3);
        assert_eq!(rep.other_directive, 2, "!DIR$ and !$NEC");
        assert_eq!(rep.preprocessor, 3);
        assert_eq!(rep.duplicated, 3, "the #else loop copy");
        assert_eq!(rep.computation, 4);
    }
}
