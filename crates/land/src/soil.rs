//! Soil physics: heat diffusion through five layers, freeze/thaw, and
//! bucket hydrology with runoff.

use crate::params::{LandParams, N_SOIL};
use icongrid::column::implicit_diffusion_dz;
use icongrid::Field3;
use rayon::prelude::*;

/// Latent heat of fusion over heat capacity of wet soil (K per m of water
/// frozen in a 1 m layer) — controls freeze/thaw rates.
const FREEZE_RATE: f64 = 0.05;

/// Relax the top soil layer toward the air temperature, then diffuse heat
/// implicitly through the column.
pub fn soil_temperature_step(
    p: &LandParams,
    t_soil: &mut Field3,
    t_air: &[f64],
) {
    debug_assert_eq!(t_soil.nlev(), N_SOIL);
    let w = p.dt / p.tau_surface;
    let nlev = N_SOIL;
    t_soil
        .as_mut_slice()
        .par_chunks_mut(nlev)
        .zip(t_air.par_iter())
        .for_each(|(col, &ta)| {
            col[0] += (ta - col[0]) * w.min(1.0);
        });
    implicit_diffusion_dz(t_soil, &p.soil_dz, p.soil_kappa, p.dt);
}

/// Freeze/thaw exchange between liquid and frozen soil water, limited by
/// how far the layer temperature is from 0 degC.
pub fn freeze_thaw(p: &LandParams, t_soil: &Field3, w_liquid: &mut Field3, w_ice: &mut Field3) {
    let nlev = N_SOIL;
    let rate = FREEZE_RATE * p.dt / 86_400.0;
    w_liquid
        .as_mut_slice()
        .par_chunks_mut(nlev)
        .zip(w_ice.as_mut_slice().par_chunks_mut(nlev))
        .enumerate()
        .for_each(|(c, (wl, wi))| {
            let t = t_soil.col(c);
            for k in 0..nlev {
                if t[k] < 0.0 {
                    let dz = (rate * (-t[k])).min(wl[k]);
                    wl[k] -= dz;
                    wi[k] += dz;
                } else if t[k] > 0.0 {
                    let dz = (rate * t[k]).min(wi[k]);
                    wi[k] -= dz;
                    wl[k] += dz;
                }
            }
        });
}

/// Bucket hydrology of one step: infiltrate precipitation into the top
/// layer, percolate downward over field capacity, and return surface
/// runoff + baseflow (m of water per cell this step).
pub fn hydrology_step(
    p: &LandParams,
    w_liquid: &mut Field3,
    precip_m: &[f64],
    runoff_out: &mut [f64],
) {
    let nlev = N_SOIL;
    let cap: Vec<f64> = p.soil_dz.iter().map(|dz| dz * p.field_capacity).collect();
    w_liquid
        .as_mut_slice()
        .par_chunks_mut(nlev)
        .zip(precip_m.par_iter().zip(runoff_out.par_iter_mut()))
        .for_each(|(w, (&pr, run))| {
            w[0] += pr;
            let mut overflow = 0.0;
            for k in 0..nlev {
                if w[k] > cap[k] {
                    let excess = w[k] - cap[k];
                    w[k] = cap[k];
                    if k + 1 < nlev {
                        w[k + 1] += excess;
                    } else {
                        overflow += excess; // baseflow out of the column
                    }
                }
            }
            *run = overflow;
        });
}

/// Soil water stress factor for photosynthesis (0..1) from the root-zone
/// (top three layers) relative wetness.
pub fn water_stress(p: &LandParams, w_liquid: &Field3, cell: usize) -> f64 {
    let w = w_liquid.col(cell);
    let mut have = 0.0;
    let mut cap = 0.0;
    for (k, &wk) in w.iter().enumerate().take(3) {
        have += wk;
        cap += p.soil_dz[k] * p.field_capacity;
    }
    (have / cap).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> LandParams {
        LandParams::new(1800.0)
    }

    #[test]
    fn soil_warms_toward_air_from_the_top() {
        let p = p();
        let n = 4;
        let mut t = Field3::from_fn(n, N_SOIL, |_, _| 0.0);
        let t_air = vec![20.0; n];
        for _ in 0..200 {
            soil_temperature_step(&p, &mut t, &t_air);
        }
        for c in 0..n {
            assert!(t.at(c, 0) > 15.0, "top soil {}", t.at(c, 0));
            assert!(
                t.at(c, 0) > t.at(c, N_SOIL - 1),
                "gradient must point downward"
            );
            assert!(t.at(c, N_SOIL - 1) > 0.0, "heat diffuses down eventually");
        }
    }

    #[test]
    fn freeze_thaw_conserves_water() {
        let p = p();
        let t = Field3::from_fn(2, N_SOIL, |c, k| if c == 0 { -5.0 } else { 3.0 } + k as f64 * 0.1);
        let mut wl = Field3::from_fn(2, N_SOIL, |_, _| 0.05);
        let mut wi = Field3::from_fn(2, N_SOIL, |_, _| 0.02);
        let total_before: f64 = wl.as_slice().iter().sum::<f64>() + wi.as_slice().iter().sum::<f64>();
        for _ in 0..50 {
            freeze_thaw(&p, &t, &mut wl, &mut wi);
        }
        let total_after: f64 = wl.as_slice().iter().sum::<f64>() + wi.as_slice().iter().sum::<f64>();
        assert!((total_before - total_after).abs() < 1e-12);
        // Cold column froze, warm column thawed.
        assert!(wi.at(0, 0) > 0.02);
        assert!(wi.at(1, 0) < 0.02);
        assert!(wl.min() >= 0.0 && wi.min() >= 0.0);
    }

    #[test]
    fn hydrology_conserves_water_and_produces_runoff() {
        let p = p();
        let n = 3;
        let mut w = Field3::from_fn(n, N_SOIL, |_, k| p.soil_dz[k] * p.field_capacity * 0.9);
        let before: f64 = w.as_slice().iter().sum();
        let precip = vec![0.5, 0.0, 0.05]; // heavy rain on cell 0
        let mut runoff = vec![0.0; n];
        hydrology_step(&p, &mut w, &precip, &mut runoff);
        let after: f64 = w.as_slice().iter().sum();
        let rain: f64 = precip.iter().sum();
        let run: f64 = runoff.iter().sum();
        assert!((after - before - (rain - run)).abs() < 1e-12, "water budget");
        assert!(runoff[0] > 0.0, "saturated column must shed water");
        assert_eq!(runoff[1], 0.0);
        // Capacity respected everywhere.
        for c in 0..n {
            for k in 0..N_SOIL {
                assert!(w.at(c, k) <= p.soil_dz[k] * p.field_capacity + 1e-12);
            }
        }
    }

    #[test]
    fn water_stress_ranges() {
        let p = p();
        let dry = Field3::zeros(1, N_SOIL);
        assert_eq!(water_stress(&p, &dry, 0), 0.0);
        let wet = Field3::from_fn(1, N_SOIL, |_, k| p.soil_dz[k] * p.field_capacity);
        assert!((water_stress(&p, &wet, 0) - 1.0).abs() < 1e-12);
    }
}
