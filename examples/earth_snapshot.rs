//! Reproduce Figure 5 of the paper: a snapshot of phytoplankton
//! concentration, near-surface wind, and air–sea CO2 flux from a real
//! coupled run, rendered as equirectangular PPM maps.
//!
//! The paper shows these fields at 2020-01-01 03:00 from the 1.25 km run;
//! we render the same triplet from the laptop-scale coupled model after
//! three simulated hours. Phytoplankton is drawn on a logarithmic scale
//! between 1e-9 and 1e-6 kmol P/m^3, wind from 0-20 m/s, and the carbon
//! flux on a diverging scale (green = uptake, blue = release), exactly the
//! scales of the paper's figure.
//!
//! Run with: `cargo run --release --example earth_snapshot`
//! Output: `results/fig5_{phytoplankton,wind,co2flux}.ppm`

use icon_esm::esm_core::{CoupledEsm, EsmConfig};
use icon_esm::hamocc::Tracer;
use icongrid::geom::Vec3;
use std::fs;
use std::io::Write;

const W: usize = 360;
const H: usize = 180;

fn main() {
    println!("spinning up the coupled system (3 simulated hours)...");
    let mut esm = CoupledEsm::new(EsmConfig::demo());
    let windows = (3.0 * 3600.0 / esm.cfg.coupling_s) as usize;
    esm.run_windows(windows, true).unwrap();

    // Nearest-cell lookup per pixel.
    let g = esm.grid.clone();
    println!("rendering {}x{} maps from {} cells...", W, H, g.n_cells);
    let mut pixel_cell = vec![0usize; W * H];
    for py in 0..H {
        let lat = std::f64::consts::PI * (0.5 - (py as f64 + 0.5) / H as f64);
        for px in 0..W {
            let lon = 2.0 * std::f64::consts::PI * ((px as f64 + 0.5) / W as f64) - std::f64::consts::PI;
            let p = Vec3::from_lonlat(lon, lat);
            let mut best = (f64::NEG_INFINITY, 0usize);
            for c in 0..g.n_cells {
                let d = p.dot(&g.cell_center[c]);
                if d > best.0 {
                    best = (d, c);
                }
            }
            pixel_cell[py * W + px] = best.1;
        }
    }

    fs::create_dir_all("results").expect("results dir");

    // --- phytoplankton, log scale 1e-9 .. 1e-6 kmol P/m^3 (Fig 5 left).
    let phyto = esm.hamocc.tracer(Tracer::Phytoplankton);
    render("results/fig5_phytoplankton.ppm", &pixel_cell, |c| {
        if !esm.ocean.mask.wet_cell[c] {
            return [40, 30, 20]; // land
        }
        let v = phyto.at(c, 0).max(1e-12);
        let t = ((v.log10() + 9.0) / 3.0).clamp(0.0, 1.0);
        // Dark blue -> green -> yellow.
        [
            (20.0 + 200.0 * t * t) as u8,
            (40.0 + 190.0 * t) as u8,
            (90.0 * (1.0 - t) + 30.0) as u8,
        ]
    });

    // --- near-surface wind speed 0..20 m/s (Fig 5 center).
    render("results/fig5_wind.ppm", &pixel_cell, |c| {
        let t = (esm.atm.wind_lowest[c] / 20.0).clamp(0.0, 1.0);
        let v = (255.0 * t) as u8;
        [v, v, (128.0 + 127.0 * t) as u8]
    });

    // --- air-sea/land CO2 flux, +-4e-7 kg/m^2/s, green = uptake (Fig 5
    // right; ocean values x30 for visibility as in the paper).
    render("results/fig5_co2flux.ppm", &pixel_cell, |c| {
        let flux = if esm.ocean.mask.wet_cell[c] {
            -esm.hamocc.co2_flux_up[c] * 30.0 // uptake positive, scaled
        } else if let Some(i) = esm
            .land
            .cells
            .iter()
            .position(|&lc| lc as usize == c)
        {
            -esm.land.state.nee[i]
        } else {
            0.0
        };
        let t = (flux / 4e-7).clamp(-1.0, 1.0);
        if t >= 0.0 {
            // Uptake: green.
            [
                (230.0 * (1.0 - t)) as u8,
                230,
                (230.0 * (1.0 - t)) as u8,
            ]
        } else {
            // Release: blue.
            [
                (230.0 * (1.0 + t)) as u8,
                (230.0 * (1.0 + t)) as u8,
                230,
            ]
        }
    });

    // Numbers to accompany the figure.
    let bloom_max = (0..g.n_cells)
        .filter(|&c| esm.ocean.mask.wet_cell[c])
        .map(|c| phyto.at(c, 0))
        .fold(0.0f64, f64::max);
    let wind_max = (0..g.n_cells).map(|c| esm.atm.wind_lowest[c]).fold(0.0f64, f64::max);
    println!("phytoplankton max: {bloom_max:.3e} kmol P/m^3 (paper scale: 1e-9..1e-6)");
    println!("wind max:          {wind_max:.1} m/s (paper scale: 0..20)");
    println!("wrote results/fig5_phytoplankton.ppm, fig5_wind.ppm, fig5_co2flux.ppm");
}

fn render(path: &str, pixel_cell: &[usize], color: impl Fn(usize) -> [u8; 3]) {
    let mut buf = Vec::with_capacity(W * H * 3);
    for &c in pixel_cell {
        buf.extend_from_slice(&color(c));
    }
    let mut f = fs::File::create(path).expect("create ppm");
    write!(f, "P6\n{W} {H}\n255\n").unwrap();
    f.write_all(&buf).unwrap();
}
