//! Power and energy model.
//!
//! §5.1.1 of the paper: on GH200, "CPU and GPU components share a common
//! power and thermal budget … power is dynamically distributed first to the
//! CPU and the remainder to the GPU". Because ICON is memory-bandwidth
//! bound, the GPU does not need its full compute power budget, which is
//! what makes the shared-TDP heterogeneous mapping viable.
//!
//! Fig. 2 (right) compares energy on Levante: at equal time-to-solution
//! the CPU partition draws ~4.4x the power of the GPU partition.

use crate::calib::GRACE_LOAD_POWER_FRACTION;
use crate::cost::{Device, Mapping, ThroughputModel};
use crate::systems::SystemSpec;

/// Fraction of its nominal power a GPU draws under memory-bound load
/// (compute units idle while DRAM streams).
pub const GPU_MEMBOUND_POWER_FRACTION: f64 = 0.70;

/// Idle fraction of CPU power (host CPUs of GPU nodes mostly idle).
pub const CPU_IDLE_POWER_FRACTION: f64 = 0.30;

/// Busy fraction of CPU power.
pub const CPU_BUSY_POWER_FRACTION: f64 = 0.90;

/// Power split of one superchip under the shared TDP: CPU first, GPU gets
/// the remainder (capped at its own mem-bound draw). Returns
/// `(cpu_w, gpu_w)`.
pub fn superchip_power_split(system: &SystemSpec, cpu_busy: f64) -> (f64, f64) {
    let chip = &system.chip;
    let cpu_frac = CPU_IDLE_POWER_FRACTION
        + (GRACE_LOAD_POWER_FRACTION - CPU_IDLE_POWER_FRACTION) * cpu_busy.clamp(0.0, 1.0);
    let cpu_w = chip.cpu.max_power_w * cpu_frac;
    let gpu_want = chip.gpu.max_power_w * GPU_MEMBOUND_POWER_FRACTION;
    let gpu_w = match chip.shared_tdp_w {
        Some(tdp) => gpu_want.min((tdp - cpu_w).max(0.0)),
        None => gpu_want,
    };
    (cpu_w, gpu_w)
}

/// Electrical power of one node under the given mapping and CPU busy
/// fraction (W).
pub fn node_power_under_load(system: &SystemSpec, mapping: Mapping, cpu_busy: f64) -> f64 {
    let chips = system.chips_per_node as f64;
    let (cpu_w, gpu_w) = match mapping.atm {
        // All-CPU runs draw busy CPU power and no GPU power.
        Device::Cpu => (
            system.chip.cpu.max_power_w * CPU_BUSY_POWER_FRACTION,
            0.0,
        ),
        Device::Gpu => superchip_power_split(system, cpu_busy),
    };
    chips * (cpu_w + gpu_w) + system.node_overhead_w
}

/// Fig. 2 right: power needed on `cpu_sys` vs `gpu_sys` to reach the same
/// time-to-solution on `config`. Returns `(gpu_kw, cpu_kw, ratio)`.
pub fn matched_tau_power_ratio(
    gpu_model: &ThroughputModel,
    cpu_model: &ThroughputModel,
    gpu_chips: u32,
) -> Option<(f64, f64, f64)> {
    let gpu_point = gpu_model.scaling_point(gpu_chips);
    let cpu_chips = cpu_model.chips_for_tau(gpu_point.tau)?;
    let cpu_point = cpu_model.scaling_point(cpu_chips);
    Some((
        gpu_point.power_kw,
        cpu_point.power_kw,
        cpu_point.power_kw / gpu_point.power_kw,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GridConfig;
    use crate::systems::{JUPITER, LEVANTE_CPU, LEVANTE_GPU};

    #[test]
    fn shared_tdp_caps_the_gpu() {
        // Busy Grace: GPU must fit in the remainder of 680 W.
        let (cpu_w, gpu_w) = superchip_power_split(&JUPITER, 1.0);
        assert!(cpu_w + gpu_w <= 680.0 + 1e-9);
        assert!(gpu_w < 700.0 * GPU_MEMBOUND_POWER_FRACTION + 1e-9);
        // Idle Grace leaves more for the GPU.
        let (_, gpu_idle) = superchip_power_split(&JUPITER, 0.0);
        assert!(gpu_idle >= gpu_w);
    }

    #[test]
    fn unshared_budget_ignores_cpu_load() {
        let (_, a) = superchip_power_split(&LEVANTE_GPU, 0.0);
        let (_, b) = superchip_power_split(&LEVANTE_GPU, 1.0);
        assert_eq!(a, b, "A100 draw independent of host CPU load");
    }

    #[test]
    fn anchor_energy_ratio_4p4() {
        // Fig 2 right: "time to solution demanding 4.4 times as much power
        // on CPUs".
        let gpu = ThroughputModel::new(LEVANTE_GPU, GridConfig::km10(), crate::Mapping::all_gpu());
        let cpu = ThroughputModel::new(LEVANTE_CPU, GridConfig::km10(), crate::Mapping::all_cpu());
        let (gkw, ckw, ratio) =
            matched_tau_power_ratio(&gpu, &cpu, 64).expect("CPU partition can match");
        assert!(gkw > 0.0 && ckw > gkw);
        assert!(
            (ratio / 4.4 - 1.0).abs() < 0.15,
            "power ratio {ratio:.2}, paper 4.4"
        );
    }
}
