//! Abstract syntax of the clean sequential kernel source.
//!
//! A [`Program`] is a list of kernels; each kernel loops over one grid
//! entity domain (and implicitly over vertical levels where 3-D fields
//! appear) executing its statements **sequentially per point** — exactly
//! the semantics of the original Fortran loop nests the paper parses.

use crate::loc::Span;
use crate::units::UnitDecl;

/// A whole source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub kernels: Vec<Kernel>,
    /// `unit NAME = EXPR;` declarations preceding the kernels.
    pub units: Vec<UnitDecl>,
}

/// One kernel: `kernel NAME over DOMAIN ... end`.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    pub name: String,
    /// Entity domain name (`cells`, `edges`, `vertices`, ...), resolved
    /// against the topology context at execution time.
    pub domain: String,
    pub statements: Vec<Statement>,
    /// Source span of the kernel name (synthetic for programmatic IR).
    pub span: Span,
}

/// `target = expr;`
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    pub target: FieldAccess,
    pub expr: Expr,
    /// Source span anchoring the statement (its target access).
    pub span: Span,
}

/// A field reference with a point index and a vertical index.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldAccess {
    pub field: String,
    pub point: PointIndex,
    pub level: LevelIndex,
    /// Source span of the whole access, e.g. `vn(edge(p,0), k)`.
    pub span: Span,
}

/// Horizontal index: the loop point itself, or a neighbor looked up
/// through a topology relation (`edge(p, 2)` etc.) — each such lookup is
/// an integer index load, the quantity §5.2's transformation reduces 8x.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PointIndex {
    Own,
    Lookup { relation: String, slot: usize },
}

/// Vertical index of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelIndex {
    /// 2-D field (no vertical dimension).
    Surface,
    /// The loop level `k`.
    K,
    /// `k + offset`, clamped at the column ends.
    KOffset(i32),
    /// A fixed level.
    Fixed(usize),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Num(f64),
    Access(FieldAccess),
    Neg(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary intrinsic call, e.g. `sqrt(kin(p,k))`. The span covers the
    /// intrinsic name (for units diagnostics).
    Call(Intrinsic, Box<Expr>, Span),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Unary math intrinsics the DSL recognizes. `sqrt` is dimensionally
/// transparent (halves unit exponents); the transcendentals require a
/// dimensionless argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Tanh,
}

impl Intrinsic {
    /// Look up an intrinsic by its (lowercased) source name.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sqrt" => Intrinsic::Sqrt,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "tanh" => Intrinsic::Tanh,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Tanh => "tanh",
        }
    }

    /// The one evaluation rule, shared by the naive interpreter and the
    /// compiled tape so both backends stay bitwise-identical.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Intrinsic::Sqrt => x.sqrt(),
            Intrinsic::Exp => x.exp(),
            Intrinsic::Log => x.ln(),
            Intrinsic::Sin => x.sin(),
            Intrinsic::Cos => x.cos(),
            Intrinsic::Tanh => x.tanh(),
        }
    }
}

impl Expr {
    /// All field accesses in evaluation order (the statement's memlets).
    pub fn accesses(&self) -> Vec<&FieldAccess> {
        let mut out = Vec::new();
        self.collect_accesses(&mut out);
        out
    }

    fn collect_accesses<'a>(&'a self, out: &mut Vec<&'a FieldAccess>) {
        match self {
            Expr::Num(_) => {}
            Expr::Access(a) => out.push(a),
            Expr::Neg(e) => e.collect_accesses(out),
            Expr::Bin(_, a, b) => {
                a.collect_accesses(out);
                b.collect_accesses(out);
            }
            Expr::Call(_, a, _) => a.collect_accesses(out),
        }
    }

    /// Floating-point operations one evaluation performs (each negation
    /// and binary arithmetic node is one FLOP) — the compute side of the
    /// static cost model.
    pub fn flops(&self) -> usize {
        match self {
            Expr::Num(_) | Expr::Access(_) => 0,
            Expr::Neg(e) => 1 + e.flops(),
            Expr::Bin(_, a, b) => 1 + a.flops() + b.flops(),
            Expr::Call(_, a, _) => 1 + a.flops(),
        }
    }

    /// Does the expression use any 3-D (level-indexed) access?
    pub fn uses_levels(&self) -> bool {
        self.accesses()
            .iter()
            .any(|a| a.level != LevelIndex::Surface)
    }
}

impl Statement {
    /// Integer index lookups this statement performs per (point, level):
    /// one per neighbor-relation access (the target never needs one — it
    /// is written at the loop point).
    pub fn index_lookups(&self) -> usize {
        self.expr
            .accesses()
            .iter()
            .filter(|a| matches!(a.point, PointIndex::Lookup { .. }))
            .count()
    }
}

impl Kernel {
    /// Is any statement 3-D?
    pub fn uses_levels(&self) -> bool {
        self.statements
            .iter()
            .any(|s| s.expr.uses_levels() || s.target.level != LevelIndex::Surface)
    }

    /// Total per-point index lookups of the sequential (unfused) form.
    pub fn index_lookups(&self) -> usize {
        self.statements.iter().map(|s| s.index_lookups()).sum()
    }
}

impl Program {
    /// Fields written anywhere in the program.
    pub fn written_fields(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .kernels
            .iter()
            .flat_map(|k| k.statements.iter().map(|s| s.target.field.as_str()))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Fields read anywhere (excluding ones only written).
    pub fn read_fields(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .kernels
            .iter()
            .flat_map(|k| {
                k.statements
                    .iter()
                    .flat_map(|s| s.expr.accesses().into_iter().map(|a| a.field.as_str()))
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(field: &str, point: PointIndex, level: LevelIndex) -> FieldAccess {
        FieldAccess {
            field: field.into(),
            point,
            level,
            span: Span::synthetic(),
        }
    }

    #[test]
    fn accesses_enumerate_in_order() {
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Access(acc("a", PointIndex::Own, LevelIndex::K))),
            Box::new(Expr::Neg(Box::new(Expr::Access(acc(
                "b",
                PointIndex::Lookup {
                    relation: "edge".into(),
                    slot: 1,
                },
                LevelIndex::K,
            ))))),
        );
        let list = e.accesses();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].field, "a");
        assert_eq!(list[1].field, "b");
        assert!(e.uses_levels());
    }

    #[test]
    fn index_lookup_counting() {
        let s = Statement {
            span: Span::synthetic(),
            target: acc("out", PointIndex::Own, LevelIndex::K),
            expr: Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Access(acc(
                    "vn",
                    PointIndex::Lookup {
                        relation: "edge".into(),
                        slot: 0,
                    },
                    LevelIndex::K,
                ))),
                Box::new(Expr::Access(acc("w", PointIndex::Own, LevelIndex::Surface))),
            ),
        };
        assert_eq!(s.index_lookups(), 1);
    }

    #[test]
    fn program_field_sets() {
        let k = Kernel {
            name: "t".into(),
            domain: "cells".into(),
            statements: vec![Statement {
                span: Span::synthetic(),
                target: acc("out", PointIndex::Own, LevelIndex::K),
                expr: Expr::Access(acc("inp", PointIndex::Own, LevelIndex::K)),
            }],
            span: Span::synthetic(),
        };
        let p = Program {
            kernels: vec![k],
            units: vec![],
        };
        assert_eq!(p.written_fields(), vec!["out"]);
        assert_eq!(p.read_fields(), vec!["inp"]);
    }

    #[test]
    fn intrinsic_calls_count_flops_and_collect_accesses() {
        let e = Expr::Call(
            Intrinsic::Sqrt,
            Box::new(Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Access(acc("a", PointIndex::Own, LevelIndex::K))),
                Box::new(Expr::Access(acc("a", PointIndex::Own, LevelIndex::K))),
            )),
            Span::synthetic(),
        );
        assert_eq!(e.flops(), 2, "one mul + one sqrt");
        assert_eq!(e.accesses().len(), 2);
        assert_eq!(Intrinsic::from_name("tanh"), Some(Intrinsic::Tanh));
        assert_eq!(Intrinsic::from_name("vn"), None);
        assert_eq!(Intrinsic::Sqrt.apply(4.0), 2.0);
    }
}
