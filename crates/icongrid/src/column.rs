//! Column numerics shared by the component models: the Thomas
//! (tridiagonal) solver and implicit vertical diffusion in thickness-
//! weighted (conservative) form.

use crate::field::Field3;
use rayon::prelude::*;

/// Solve a tridiagonal system in place: `a` sub-, `b` main, `c`
/// super-diagonal, `d` right-hand side (overwritten with the solution).
/// `a[0]` and `c[n-1]` are ignored.
pub fn thomas_solve(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64], scratch: &mut [f64]) {
    let n = d.len();
    debug_assert!(a.len() == n && b.len() == n && c.len() == n && scratch.len() >= n);
    scratch[0] = c[0] / b[0];
    d[0] /= b[0];
    for i in 1..n {
        let m = 1.0 / (b[i] - a[i] * scratch[i - 1]);
        scratch[i] = c[i] * m;
        d[i] = (d[i] - a[i] * d[i - 1]) * m;
    }
    for i in (0..n - 1).rev() {
        d[i] -= scratch[i] * d[i + 1];
    }
}

/// Backward-Euler vertical diffusion with fixed layer thicknesses `dz`
/// (m): solves per column
///
/// `dz_k (x_k^{n+1} - x_k^n)/dt = K [(x_{k+1}-x_k)/dz_{k+1/2} - (x_k-x_{k-1})/dz_{k-1/2}]`
///
/// with zero-flux boundaries. Conserves `sum_k dz_k x_k` exactly.
pub fn implicit_diffusion_dz(field: &mut Field3, dz: &[f64], kappa: f64, dt: f64) {
    let nlev = field.nlev();
    if nlev < 2 || kappa == 0.0 {
        return;
    }
    debug_assert_eq!(dz.len(), nlev);
    // Interface couplings K * dt / dz_{k+1/2}.
    let mut w = vec![0.0; nlev - 1];
    for k in 0..nlev - 1 {
        let dz_if = 0.5 * (dz[k] + dz[k + 1]);
        w[k] = kappa * dt / dz_if;
    }
    field.as_mut_slice().par_chunks_mut(nlev).for_each(|col| {
        let mut a = vec![0.0; nlev];
        let mut b = vec![0.0; nlev];
        let mut c = vec![0.0; nlev];
        let mut scratch = vec![0.0; nlev];
        for k in 0..nlev {
            let lower = if k > 0 { w[k - 1] } else { 0.0 };
            let upper = if k + 1 < nlev { w[k] } else { 0.0 };
            a[k] = -lower;
            c[k] = -upper;
            b[k] = dz[k] + lower + upper;
            col[k] *= dz[k];
        }
        thomas_solve(&a, &b, &c, col, &mut scratch);
    });
}

/// Like [`implicit_diffusion_dz`] but restricted to the first
/// `active[i]` levels of each column (sea-floor masking); inactive levels
/// are untouched.
pub fn implicit_diffusion_dz_masked(
    field: &mut Field3,
    dz: &[f64],
    active: &[u16],
    kappa: f64,
    dt: f64,
) {
    let nlev = field.nlev();
    if nlev < 1 || kappa == 0.0 {
        return;
    }
    debug_assert_eq!(dz.len(), nlev);
    debug_assert_eq!(active.len(), field.n());
    field
        .as_mut_slice()
        .par_chunks_mut(nlev)
        .zip(active.par_iter())
        .for_each(|(col, &na)| {
            let n = na as usize;
            if n < 2 {
                return;
            }
            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            let mut c = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            for k in 0..n {
                let lower = if k > 0 {
                    kappa * dt / (0.5 * (dz[k] + dz[k - 1]))
                } else {
                    0.0
                };
                let upper = if k + 1 < n {
                    kappa * dt / (0.5 * (dz[k] + dz[k + 1]))
                } else {
                    0.0
                };
                a[k] = -lower;
                c[k] = -upper;
                b[k] = dz[k] + lower + upper;
                col[k] *= dz[k];
            }
            thomas_solve(&a, &b, &c, &mut col[..n], &mut scratch);
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thomas_matches_dense_solution() {
        let a = [0.0, -1.0, -2.0, -1.0];
        let b = [4.0, 5.0, 6.0, 4.0];
        let c = [-1.0, -2.0, -1.0, 0.0];
        let rhs = [1.0, -2.0, 3.0, 0.5];
        let mut d = rhs;
        let mut s = [0.0; 4];
        thomas_solve(&a, &b, &c, &mut d, &mut s);
        for i in 0..4 {
            let mut acc = b[i] * d[i];
            if i > 0 {
                acc += a[i] * d[i - 1];
            }
            if i < 3 {
                acc += c[i] * d[i + 1];
            }
            assert!((acc - rhs[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn dz_diffusion_conserves_inventory() {
        let dz = [10.0, 20.0, 40.0, 80.0];
        let mut f = Field3::from_fn(3, 4, |i, k| (i + k * k) as f64);
        let inv = |f: &Field3| -> Vec<f64> {
            (0..3)
                .map(|i| f.col(i).iter().zip(&dz).map(|(x, d)| x * d).sum::<f64>())
                .collect()
        };
        let before = inv(&f);
        implicit_diffusion_dz(&mut f, &dz, 1e-3, 1e6);
        let after = inv(&f);
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-9 * b.abs().max(1.0));
        }
    }

    #[test]
    fn masked_diffusion_leaves_inactive_levels_alone() {
        let dz = [10.0, 10.0, 10.0, 10.0];
        let mut f = Field3::from_fn(2, 4, |_, k| k as f64);
        let active = [2u16, 4u16];
        let before = f.clone();
        implicit_diffusion_dz_masked(&mut f, &dz, &active, 1e-2, 1e5);
        // Column 0: levels 2,3 untouched.
        assert_eq!(f.at(0, 2), before.at(0, 2));
        assert_eq!(f.at(0, 3), before.at(0, 3));
        // Column 0 levels 0,1 mixed toward each other.
        assert!(f.at(0, 0) > before.at(0, 0));
        assert!(f.at(0, 1) < before.at(0, 1));
        // Column 1: all levels mixed.
        assert!(f.at(1, 3) < before.at(1, 3));
    }

    #[test]
    fn uniform_is_fixed_point() {
        let dz = [5.0, 15.0, 30.0];
        let mut f = Field3::from_fn(2, 3, |_, _| 3.3);
        implicit_diffusion_dz(&mut f, &dz, 1.0, 1e5);
        for v in f.as_slice() {
            assert!((v - 3.3).abs() < 1e-12);
        }
    }
}
