//! Property tests of the atmosphere's conservation and stability
//! invariants over randomized initial perturbations and parameters.

use atmo::{AtmParams, Atmosphere};
use icongrid::{Field2, Grid, NoExchange};
use proptest::prelude::*;
use std::sync::Arc;

fn atmosphere_with(seed: u64, nlev: usize, dt: f64) -> Atmosphere<Grid> {
    let g = Arc::new(Grid::build(1, icongrid::EARTH_RADIUS_M)); // 320 cells
    let params = AtmParams::new(nlev, dt);
    let zs = Field2::zeros(g.n_cells);
    let water = vec![true; g.n_cells];
    let mut atm = Atmosphere::new(g.clone(), params, zs, water);
    // Seeded perturbation of the mass field (up to +-2 %).
    let mut state = seed | 1;
    for c in 0..g.n_cells {
        for k in 0..nlev {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            *atm.state.delta.at_mut(c, k) *= 1.0 + 0.04 * r;
        }
    }
    atm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dry mass and water are conserved for arbitrary perturbed starts.
    #[test]
    fn conservation_under_random_perturbations(
        seed in 0u64..100_000,
        nlev in 3usize..7,
    ) {
        let mut atm = atmosphere_with(seed, nlev, 400.0);
        let g = atm.grid.clone();
        let m0 = atm.state.total_mass(g.as_ref(), g.n_cells);
        let w0 = atm.state.water_inventory(g.as_ref(), g.n_cells);
        for _ in 0..8 {
            atm.step(&NoExchange);
        }
        let m1 = atm.state.total_mass(g.as_ref(), g.n_cells);
        let w1 = atm.state.water_inventory(g.as_ref(), g.n_cells);
        prop_assert!(((m1 - m0) / m0).abs() < 1e-11, "mass {} -> {}", m0, m1);
        prop_assert!(((w1 - w0) / w0).abs() < 1e-9, "water {} -> {}", w0, w1);
        // Layers stay positive; fields stay finite.
        prop_assert!(atm.state.delta.min() > 0.0);
        prop_assert!(atm.state.vn.as_slice().iter().all(|v| v.is_finite()));
        prop_assert!(atm.state.qv.min() >= -1e-12);
    }

    /// Tracer mixing ratios never develop new extrema beyond the initial
    /// range (upwind monotonicity through the full step).
    #[test]
    fn co2_bounded_by_initial_range(seed in 0u64..100_000) {
        let mut atm = atmosphere_with(seed, 4, 400.0);
        let g = atm.grid.clone();
        // Give CO2 a spatial pattern.
        for c in 0..g.n_cells {
            for k in 0..4 {
                let v = 6e-4 * (1.0 + 0.3 * g.cell_center[c].x);
                atm.state.co2.set(c, k, v);
            }
        }
        let (lo, hi) = (atm.state.co2.min(), atm.state.co2.max());
        for _ in 0..6 {
            atm.step(&NoExchange);
        }
        prop_assert!(atm.state.co2.min() >= lo - 1e-12 * hi);
        prop_assert!(atm.state.co2.max() <= hi + 1e-12 * hi);
    }
}
