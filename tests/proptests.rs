//! Property-based tests over the core invariants (DESIGN.md §5) and the
//! storage fault model (DESIGN.md §11).

use dace_mini::{analysis, exec, parser, sdfg::Sdfg, suite, transforms, ExecGraph, GraphInvalid};
use icongrid::column::thomas_solve;
use icongrid::geom::Vec3;
use icongrid::{ops, Decomposition, Field3, Grid};
use proptest::prelude::*;

fn small_grid() -> Grid {
    Grid::build(2, icongrid::EARTH_RADIUS_M)
}

const RAND_NLEV: usize = 4;

/// Declarations for the random-kernel generator below: the
/// `fixtures::base_ctx` field set at the test nlev.
fn rand_kernel_ctx() -> analysis::AnalysisContext {
    use analysis::FieldIo;
    analysis::AnalysisContext::new()
        .domain("cells")
        .domain("edges")
        .relation("edge", "cells", "edges", 3)
        .relation("neighbor", "cells", "cells", 3)
        .field("inp", "cells", true, FieldIo::Input)
        .field("x", "cells", true, FieldIo::Input)
        .field("th", "cells", true, FieldIo::Input)
        .field("vn_e", "edges", true, FieldIo::Input)
        .field("out", "cells", true, FieldIo::Output)
        .field("out2", "cells", true, FieldIo::Output)
        .with_halo(1)
        .with_nlev(RAND_NLEV)
}

/// A random *certifiable* kernel: 1-2 statements writing `out`/`out2`
/// at the own point from gathers and own reads of input fields only —
/// no self-reads, no scatters — so the verifier must certify every
/// state (`ParallelSafe`, never `Sequential`).
fn rand_kernel_src(seed: u64, n_stmts: usize) -> String {
    fn rnd(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }
    fn term(buf: &mut String, state: &mut u64) {
        match rnd(state) % 8 {
            0 => buf.push_str("inp(p,k)"),
            1 => buf.push_str("x(p,k)"),
            2 => buf.push_str("th(p,k)"),
            3 => buf.push_str("inp(p,0)"),
            4 | 5 => {
                let s = rnd(state) % 3;
                buf.push_str(&format!("vn_e(edge(p,{s}),k)"));
            }
            6 => {
                let s = rnd(state) % 3;
                buf.push_str(&format!("inp(neighbor(p,{s}),k)"));
            }
            _ => {
                let c = (rnd(state) % 19) as f64 / 4.0 + 0.25;
                buf.push_str(&format!("{c:.2}"));
            }
        }
    }
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut src = String::from("kernel randk over cells\n");
    for i in 0..n_stmts {
        let target = if i == 0 { "out" } else { "out2" };
        src.push_str(&format!("  {target}(p,k) = "));
        let n_terms = 2 + (rnd(&mut state) % 3) as usize;
        for t in 0..n_terms {
            if t > 0 {
                src.push_str(match rnd(&mut state) % 3 {
                    0 => " + ",
                    1 => " * ",
                    _ => " - ",
                });
            }
            term(&mut src, &mut state);
        }
        src.push_str(";\n");
    }
    src.push_str("end");
    src
}

/// Random data for the random kernels (synthetic_data fills the dycore
/// suite's fields, not these).
fn rand_kernel_data(topo: &dace_mini::TopologyContext, seed: u64) -> dace_mini::DataContext {
    use dace_mini::exec::FieldBuf;
    let mut d = dace_mini::DataContext::new(RAND_NLEV);
    let mut state = seed.wrapping_mul(0xD1B54A32D192ED03) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    for (name, domain) in [("inp", "cells"), ("x", "cells"), ("th", "cells"), ("vn_e", "edges")] {
        let mut f = FieldBuf::zeros(topo.domain_size(domain), RAND_NLEV);
        for v in f.data.iter_mut() {
            *v = rnd() * 2.0 + 1.0;
        }
        d.add(name, f);
    }
    d.add("out", FieldBuf::zeros(topo.domain_size("cells"), RAND_NLEV));
    d.add("out2", FieldBuf::zeros(topo.domain_size("cells"), RAND_NLEV));
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The DaCe-mini backends agree bitwise for any input data seed.
    #[test]
    fn dace_backends_equivalent_on_random_data(seed in 0u64..1_000_000) {
        let prog = suite::dycore_program();
        let topo = suite::synthetic_topology(40);
        let mut d1 = suite::synthetic_data(&topo, 4, seed);
        let mut d2 = d1.clone();
        exec::run_naive(&prog, &topo, &mut d1);
        let (opt, _) = transforms::gh200_pipeline(&Sdfg::from_program("t", &prog));
        exec::compile(&opt).run(&topo, &mut d2);
        prop_assert_eq!(d1, d2);
    }

    /// Upwind flux divergence conserves tracer mass for arbitrary smooth
    /// velocity fields and tracer distributions.
    #[test]
    fn upwind_advection_conserves_for_random_flows(
        ax in -1.0f64..1.0, ay in -1.0f64..1.0, az in -1.0f64..1.0,
        amp in 0.1f64..30.0, phase in 0.0f64..std::f64::consts::TAU,
    ) {
        prop_assume!(ax * ax + ay * ay + az * az > 1e-4);
        let g = small_grid();
        let axis = Vec3::new(ax, ay, az).normalized();
        let vn = Field3::from_fn(g.n_edges, 1, |e, _| {
            axis.cross(&g.edge_midpoint[e]).scale(amp).dot(&g.edge_normal[e])
        });
        let q = Field3::from_fn(g.n_cells, 1, |c, _| {
            1.0 + (3.0 * g.cell_center[c].x + phase).sin()
        });
        let mut tend = Field3::zeros(g.n_cells, 1);
        ops::flux_divergence_upwind(&g, &vn, &q, &mut tend);
        let total = tend.weighted_sum(&g.cell_area);
        let scale = q.weighted_sum(&g.cell_area).abs() * amp / 1e5;
        prop_assert!(total.abs() < 1e-9 * scale.max(1.0), "total {}", total);
    }

    /// The Thomas solver solves every diagonally dominant system.
    #[test]
    fn thomas_solves_diagonally_dominant_systems(
        n in 2usize..40,
        seed in 0u64..10_000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let a: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { -rnd() }).collect();
        let c: Vec<f64> = (0..n).map(|i| if i == n - 1 { 0.0 } else { -rnd() }).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| a[i].abs() + c[i].abs() + 0.5 + rnd())
            .collect();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() * 4.0 - 2.0).collect();
        let mut x = rhs.clone();
        let mut scratch = vec![0.0; n];
        thomas_solve(&a, &b, &c, &mut x, &mut scratch);
        for i in 0..n {
            let mut acc = b[i] * x[i];
            if i > 0 { acc += a[i] * x[i - 1]; }
            if i + 1 < n { acc += c[i] * x[i + 1]; }
            prop_assert!((acc - rhs[i]).abs() < 1e-9, "row {} residual {}", i, acc - rhs[i]);
        }
    }

    /// Every decomposition is a disjoint cover with symmetric exchanges.
    #[test]
    fn decompositions_are_always_consistent(np in 1usize..24) {
        let g = small_grid();
        let d = Decomposition::new(&g, np);
        let mut owned = vec![false; g.n_cells];
        for pl in &d.parts {
            for &c in &pl.owned_cells {
                prop_assert!(!owned[c as usize]);
                owned[c as usize] = true;
            }
            prop_assert_eq!(pl.cell_exchange.recv_count(), pl.halo_cells.len());
        }
        prop_assert!(owned.iter().all(|&o| o));
        let total_sent: usize = d.parts.iter().map(|p| p.cell_exchange.send_count()).sum();
        let total_recv: usize = d.parts.iter().map(|p| p.cell_exchange.recv_count()).sum();
        prop_assert_eq!(total_sent, total_recv);
    }

    /// Conservative remapping preserves area integrals for random fields.
    #[test]
    fn remap_conserves_random_fields(seed in 0u64..100_000) {
        use coupler::Remapper;
        let fine = Grid::build(2, icongrid::EARTH_RADIUS_M);
        let coarse = Grid::build(1, icongrid::EARTH_RADIUS_M);
        let r = Remapper::new(&fine, &coarse);
        let mut state = seed | 1;
        let mut vals = Vec::with_capacity(fine.n_cells);
        for _ in 0..fine.n_cells {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            vals.push(((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 10.0);
        }
        let f = icongrid::Field2::from_vec(vals);
        let mut c = icongrid::Field2::zeros(coarse.n_cells);
        r.fine_to_coarse(&f, &mut c);
        let fi = f.weighted_sum(&fine.cell_area);
        let ci = c.weighted_sum(&coarse.cell_area);
        prop_assert!((fi - ci).abs() < 1e-9 * fi.abs().max(1.0), "{} vs {}", fi, ci);
    }

    /// Arbitrary damage to a `.rec` diagnostic stream — truncation at any
    /// byte, or a single flipped bit — never panics recovery and never
    /// yields a torn record: `recover_records` returns a bitwise prefix
    /// of the original stream, and after its repair a strict
    /// `read_records` agrees with it exactly.
    #[test]
    fn damaged_rec_streams_recover_to_a_bitwise_prefix(
        n_records in 1usize..5,
        max_len in 1usize..10,
        seed in 0u64..1_000_000,
        damage in 0usize..4096,
        flip in 0u8..2,
    ) {
        use iosys::output::{encode_record, read_records, recover_records};

        // Deterministic record stream from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut originals: Vec<(f64, Vec<f64>)> = Vec::new();
        let mut bytes = Vec::new();
        for i in 0..n_records {
            let len = rnd() as usize % max_len;
            let data: Vec<f64> = (0..len)
                .map(|_| (rnd() >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
                .collect();
            let t = i as f64 + 1.0;
            bytes.extend_from_slice(&encode_record(t, &data));
            originals.push((t, data));
        }

        // Damage it: truncate at an arbitrary byte, or flip one bit.
        let mut damaged = bytes.clone();
        if flip == 0 {
            damaged.truncate(damage % (bytes.len() + 1));
        } else {
            let at = damage % bytes.len();
            damaged[at] ^= 1 << (seed % 8);
        }
        let intact = damaged == bytes;

        let dir = iosys::restart::scratch_dir(&format!("rec_prop_{seed}_{damage}_{flip}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("var.rec"), &damaged).unwrap();

        let rec = recover_records(&dir, "var").expect("recovery never fails on damage");
        prop_assert!(rec.records.len() <= originals.len());
        if intact {
            prop_assert_eq!(&rec.records, &originals, "undamaged stream must survive whole");
        }
        for (i, (got, want)) in rec.records.iter().zip(&originals).enumerate() {
            prop_assert_eq!(got.0.to_bits(), want.0.to_bits(), "record {} time", i);
            prop_assert_eq!(got.1.len(), want.1.len(), "record {} length", i);
            for (a, b) in got.1.iter().zip(&want.1) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "record {} payload", i);
            }
        }
        // The repair left a clean stream: the strict reader agrees.
        let strict = read_records(&dir, "var").expect("post-repair stream is clean");
        prop_assert_eq!(&strict, &rec.records);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Any random certified kernel agrees bitwise across all three
    /// execution backends: naive interpretation, certified-parallel
    /// compilation, and recorded-graph replay (ISSUE 7).
    #[test]
    fn random_certified_kernels_agree_across_naive_parallel_and_replay(
        seed in 0u64..1_000_000,
        half_cells in 8usize..32,
        extra_stmt in 0u8..2,
    ) {
        let src = rand_kernel_src(seed, 1 + extra_stmt as usize);
        let prog = parser::parse(&src).expect("generated kernels are grammatical");
        let sdfg = Sdfg::from_program("randk", &prog);
        let report = analysis::verify_sdfg(&sdfg, &rand_kernel_ctx());
        prop_assert!(report.is_clean(), "{}:\n{:?}", src, report.errors().collect::<Vec<_>>());
        for i in 0..sdfg.states.len() {
            // Gather-only kernels must certify (never `Sequential`).
            prop_assert_ne!(report.cert(i), dace_mini::Certification::Sequential);
        }

        let topo = suite::synthetic_topology(2 * half_cells);
        let d0 = rand_kernel_data(&topo, seed);
        let mut d_naive = d0.clone();
        let mut d_cert = d0.clone();
        let mut d_replay = d0;
        // Window 0 (recording IS an eager window), then a replayed window.
        exec::run_naive(&prog, &topo, &mut d_naive);
        exec::compile_certified(&sdfg, &report).run(&topo, &mut d_cert);
        let (mut graph, _) = ExecGraph::record("randk", &sdfg, &report, &topo, &mut d_replay);
        prop_assert_eq!(&d_naive, &d_cert, "naive vs certified-parallel");
        prop_assert_eq!(&d_naive, &d_replay, "naive vs recording pass");
        exec::run_naive(&prog, &topo, &mut d_naive);
        exec::compile_certified(&sdfg, &report).run(&topo, &mut d_cert);
        graph.replay(&topo, &mut d_replay).expect("shapes unchanged");
        prop_assert_eq!(&d_naive, &d_cert, "window 2: naive vs certified-parallel");
        prop_assert_eq!(&d_naive, &d_replay, "window 2: naive vs replay");
    }

    /// Mutating any buffer's entity extent after recording must surface
    /// the typed invalidation event — never a stale replay, never a
    /// crash — and a re-record over the new shape must succeed.
    #[test]
    fn shape_mutation_after_record_forces_rerecord_not_stale_replay(
        seed in 0u64..1_000_000,
        which in 0usize..4,
        grow in 1usize..4,
    ) {
        let src = rand_kernel_src(seed, 2);
        let prog = parser::parse(&src).expect("generated kernels are grammatical");
        let sdfg = Sdfg::from_program("randk", &prog);
        let report = analysis::verify_sdfg(&sdfg, &rand_kernel_ctx());
        prop_assert!(report.is_clean());

        let topo = suite::synthetic_topology(24);
        let mut data = rand_kernel_data(&topo, seed);
        let (mut graph, _) = ExecGraph::record("randk", &sdfg, &report, &topo, &mut data);
        graph.replay(&topo, &mut data).expect("valid while shapes hold");

        // Grow one input buffer's entity extent.
        let field = ["inp", "x", "th", "vn_e"][which];
        let before = data.clone();
        {
            let f = data.fields.get_mut(field).unwrap();
            f.n += grow;
            f.data.resize(f.n * f.nlev, 1.0);
        }
        match graph.replay(&topo, &mut data) {
            Err(GraphInvalid::ShapeChanged { what, .. }) => {
                prop_assert!(what.contains(field), "diff names '{}': {}", field, what);
            }
            Ok(_) => prop_assert!(false, "stale replay executed after shape change"),
            Err(other) => prop_assert!(false, "wrong invalidation: {:?}", other),
        }
        // The refused replay executed nothing.
        {
            let f = data.fields.get_mut(field).unwrap();
            f.n -= grow;
            f.data.truncate(f.n * f.nlev);
        }
        prop_assert_eq!(&data, &before, "refused replay must not execute");

        // Re-record over the mutated shape: the invalidation's answer.
        {
            let f = data.fields.get_mut(field).unwrap();
            f.n += grow;
            f.data.resize(f.n * f.nlev, 1.0);
        }
        let (mut g2, _) = ExecGraph::record("randk", &sdfg, &report, &topo, &mut data);
        g2.replay(&topo, &mut data).expect("re-recorded graph replays");
        prop_assert!(g2.signature() != graph.signature(), "new shape, new signature");
    }

    /// Ocean sea-ice thermodynamics conserve energy for any surface state.
    #[test]
    fn seaice_updates_conserve_energy(
        t0 in -6.0f64..8.0,
        s0 in 30.0f64..37.0,
        ice in 0.0f64..1.5,
    ) {
        use ocean::params::{OceanParams, CP_OCEAN, L_FUSION, RHO0, RHO_ICE};
        use ocean::seaice::update_ice;
        let p = OceanParams::new(6, 600.0);
        let dz0 = p.dz[0];
        let u = update_ice(&p, t0, s0, ice, dz0);
        // Enthalpy closure: sensible heat gained by the water equals the
        // latent heat released by freezing (ice carries negative latent
        // enthalpy), so heat_change - L*rho_i*d(ice) = 0.
        let heat_change = RHO0 * CP_OCEAN * dz0 * (u.t_surface - t0);
        let ice_change = (u.ice_thickness - ice) * RHO_ICE * L_FUSION;
        prop_assert!(
            (heat_change - ice_change).abs() < 1e-6 * (heat_change.abs() + ice_change.abs()).max(1.0),
            "heat {} vs ice {}", heat_change, ice_change
        );
        prop_assert!(u.ice_thickness >= 0.0);
    }
}
