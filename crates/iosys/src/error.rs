//! Typed errors for the checkpoint/restart path.
//!
//! Every failure mode the reader can hit — missing files, wrong magic,
//! unsupported version, truncation, checksum mismatch, nonsense lengths —
//! maps to a dedicated [`RestartError`] variant instead of a panic, so the
//! resilience driver can distinguish "this generation is corrupt, fall
//! back" from "the directory is gone, give up".

use std::path::PathBuf;

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum RestartError {
    /// Underlying file-system failure (open/read/write/rename).
    Io(std::io::Error),
    /// No file of the requested stem/generation exists in the directory.
    NotFound { dir: PathBuf, stem: String },
    /// File does not begin with the `ESMR` magic.
    BadMagic { path: PathBuf, found: [u8; 4] },
    /// Magic is right but the version is one this reader cannot parse.
    UnsupportedVersion { path: PathBuf, version: u32 },
    /// File ends mid-record (torn write, truncation).
    Truncated { path: PathBuf, context: &'static str },
    /// Structurally invalid contents: lengths that exceed the file,
    /// non-UTF-8 variable names, trailing garbage.
    Corrupt { path: PathBuf, context: String },
    /// Stored CRC-32 does not match the recomputed one. `var` is the
    /// variable whose record failed, or `None` for the file trailer.
    ChecksumMismatch {
        path: PathBuf,
        var: Option<String>,
        stored: u32,
        computed: u32,
    },
    /// Two variables with the same name pushed into one snapshot.
    DuplicateVariable { name: String },
    /// Every generation in the ring failed to read intact.
    NoIntactGeneration {
        dir: PathBuf,
        stem: String,
        /// Generation numbers that were tried, newest first.
        tried: Vec<u64>,
    },
}

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestartError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            RestartError::NotFound { dir, stem } => {
                write!(f, "no checkpoint files for stem '{stem}' in {}", dir.display())
            }
            RestartError::BadMagic { path, found } => write!(
                f,
                "{}: bad magic {found:02x?} (expected b\"ESMR\")",
                path.display()
            ),
            RestartError::UnsupportedVersion { path, version } => {
                write!(f, "{}: unsupported checkpoint version {version}", path.display())
            }
            RestartError::Truncated { path, context } => {
                write!(f, "{}: truncated while reading {context}", path.display())
            }
            RestartError::Corrupt { path, context } => {
                write!(f, "{}: corrupt checkpoint: {context}", path.display())
            }
            RestartError::ChecksumMismatch {
                path,
                var,
                stored,
                computed,
            } => match var {
                Some(v) => write!(
                    f,
                    "{}: CRC mismatch in variable '{v}' (stored {stored:#010x}, computed {computed:#010x})",
                    path.display()
                ),
                None => write!(
                    f,
                    "{}: file trailer CRC mismatch (stored {stored:#010x}, computed {computed:#010x})",
                    path.display()
                ),
            },
            RestartError::DuplicateVariable { name } => {
                write!(f, "duplicate checkpoint variable '{name}'")
            }
            RestartError::NoIntactGeneration { dir, stem, tried } => write!(
                f,
                "no intact checkpoint generation for stem '{stem}' in {} (tried {} generation(s): {tried:?})",
                dir.display(),
                tried.len()
            ),
        }
    }
}

impl std::error::Error for RestartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestartError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RestartError {
    fn from(e: std::io::Error) -> RestartError {
        RestartError::Io(e)
    }
}

/// Corrupt data surfaces as `InvalidData` for callers that work in
/// `io::Result`; missing checkpoints keep their `NotFound` kind.
impl From<RestartError> for std::io::Error {
    fn from(e: RestartError) -> std::io::Error {
        match e {
            RestartError::Io(io) => io,
            RestartError::NotFound { .. } => {
                std::io::Error::new(std::io::ErrorKind::NotFound, e.to_string())
            }
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Why the asynchronous output path failed — the record-stream analog of
/// [`RestartError`]. The server thread never panics on these; they surface
/// through `post`/`flush`/`finish` or as typed read errors.
#[derive(Debug)]
pub enum OutputError {
    /// Underlying storage failure on a specific file.
    Io { path: PathBuf, source: std::io::Error },
    /// A `.rec` file ends mid-record (torn append, truncation).
    Truncated {
        path: PathBuf,
        /// Byte offset of the record that could not be read whole.
        offset: u64,
        context: &'static str,
    },
    /// Structurally invalid record data (bad magic, nonsense length).
    Corrupt {
        path: PathBuf,
        offset: u64,
        context: String,
    },
    /// A v2 record frame whose CRC-32 does not match its payload.
    ChecksumMismatch {
        path: PathBuf,
        offset: u64,
        stored: u32,
        computed: u32,
    },
    /// The server thread exited (I/O give-up or panic); `cause` is its
    /// final error message.
    ServerDied { cause: String },
}

impl std::fmt::Display for OutputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutputError::Io { path, source } => {
                write!(f, "{}: output I/O error: {source}", path.display())
            }
            OutputError::Truncated { path, offset, context } => write!(
                f,
                "{}: truncated record at byte {offset} ({context})",
                path.display()
            ),
            OutputError::Corrupt { path, offset, context } => {
                write!(f, "{}: corrupt record at byte {offset}: {context}", path.display())
            }
            OutputError::ChecksumMismatch {
                path,
                offset,
                stored,
                computed,
            } => write!(
                f,
                "{}: record CRC mismatch at byte {offset} (stored {stored:#010x}, computed {computed:#010x})",
                path.display()
            ),
            OutputError::ServerDied { cause } => {
                write!(f, "output server thread died: {cause}")
            }
        }
    }
}

impl std::error::Error for OutputError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OutputError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_kinds_map_sensibly() {
        let nf: std::io::Error = RestartError::NotFound {
            dir: PathBuf::from("/tmp/x"),
            stem: "restart".into(),
        }
        .into();
        assert_eq!(nf.kind(), std::io::ErrorKind::NotFound);

        let bad: std::io::Error = RestartError::BadMagic {
            path: PathBuf::from("/tmp/x/restart_000.esmr"),
            found: *b"JUNK",
        }
        .into();
        assert_eq!(bad.kind(), std::io::ErrorKind::InvalidData);

        let passthrough: std::io::Error = RestartError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "denied",
        ))
        .into();
        assert_eq!(passthrough.kind(), std::io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn display_names_the_failing_variable() {
        let e = RestartError::ChecksumMismatch {
            path: PathBuf::from("r_000.esmr"),
            var: Some("oce.temp".into()),
            stored: 1,
            computed: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("oce.temp"), "{msg}");
        assert!(msg.contains("0x00000001"), "{msg}");
    }
}
