//! `esm-lint` — static dataflow verification and performance gate.
//!
//! Default mode verifies every registered kernel suite with the
//! dace-mini analyzer, reports perf findings from the static cost
//! model, and exercises the negative fixtures. Exit code 0 only when
//! all shipped kernels lint clean AND every deliberately-broken
//! fixture is rejected with its expected diagnostic.
//!
//! Flags:
//!
//! * `--cost-report` — evaluate the static cost model on every target
//!   (naive vs fused+hoisted execution), write the full report to
//!   `results/cost_model.json`, and diff the optimized costs against
//!   the checked-in `results/cost_baseline.json`; any E0503 regression
//!   (or missing baseline entry) fails the run.
//! * `--write-baseline` — with `--cost-report`, refresh
//!   `results/cost_baseline.json` instead of diffing against it.
//! * `--json` — additionally print the machine-readable summary (lint
//!   mode) or the full cost report (cost mode) to stdout.
//! * `--deny-warnings` — lint mode: treat warnings (W0xxx) as gate
//!   failures. The shipped kernels deliberately carry W0501/W0502 perf
//!   findings on the pre-hoist graph, so CI uses the default mode; the
//!   flag exists for suites expected to be warning-free.
//!
//! Exit codes are stable: `0` clean, `1` findings (lint errors, fixture
//! failures, cost regressions, or — under `--deny-warnings` —
//! warnings), `2` usage errors (unknown or inconsistent flags).

use std::process::ExitCode;

/// Exit code for findings (distinct from usage errors).
const EXIT_FINDINGS: u8 = 1;
/// Exit code for usage errors: unknown flags, inconsistent flag sets.
const EXIT_USAGE: u8 = 2;

const COST_REPORT_PATH: &str = "results/cost_model.json";
const BASELINE_PATH: &str = "results/cost_baseline.json";

fn cost_mode(write_baseline: bool, json: bool) -> ExitCode {
    let rows = esm_lint::cost_report();
    let report = esm_lint::cost_report_json(&rows);
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(COST_REPORT_PATH, &text))
    {
        eprintln!("esm-lint: cannot write {COST_REPORT_PATH}: {e}");
        return ExitCode::from(EXIT_FINDINGS);
    }
    println!("esm-lint: static cost model ({} targets)", rows.len());
    print!("{}", esm_lint::render_cost_table(&rows));
    println!("esm-lint: wrote {COST_REPORT_PATH}");
    if json {
        println!("{text}");
    }

    if write_baseline {
        let base = serde_json::to_string_pretty(&esm_lint::baseline_json(&rows))
            .expect("baseline serializes");
        if let Err(e) = std::fs::write(BASELINE_PATH, base) {
            eprintln!("esm-lint: cannot write {BASELINE_PATH}: {e}");
            return ExitCode::from(EXIT_FINDINGS);
        }
        println!("esm-lint: wrote {BASELINE_PATH}");
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => esm_lint::parse_baseline(&text),
        Err(e) => {
            eprintln!(
                "esm-lint: cannot read {BASELINE_PATH} ({e}); \
                 run with --write-baseline to create it"
            );
            return ExitCode::from(EXIT_FINDINGS);
        }
    };
    let (out, failures) = esm_lint::diff_against_baseline(&rows, &baseline);
    print!("{out}");
    if failures == 0 {
        println!("esm-lint: cost gate PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("esm-lint: cost gate FAIL ({failures} regressions)");
        ExitCode::from(EXIT_FINDINGS)
    }
}

fn lint_mode(json: bool, deny_warnings: bool) -> ExitCode {
    let mut out = String::new();
    out.push_str("esm-lint: static dataflow verification\n");
    let summary = esm_lint::run_lint(&mut out);
    print!("{out}");
    println!(
        "esm-lint: {} targets, {} states ({} ParallelSafe), {} errors, {} warnings, {} fixture failures",
        summary.targets,
        summary.states_total,
        summary.states_parallel_safe,
        summary.errors,
        summary.warnings,
        summary.fixture_failures.len()
    );
    if json {
        let text = serde_json::to_string_pretty(&esm_lint::lint_summary_json(&summary))
            .expect("summary serializes");
        println!("{text}");
    }
    let denied = deny_warnings && summary.warnings > 0;
    if summary.clean() && !denied {
        println!("esm-lint: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &summary.fixture_failures {
            eprintln!("esm-lint: fixture failure: {f}");
        }
        if denied {
            eprintln!(
                "esm-lint: {} warnings denied by --deny-warnings",
                summary.warnings
            );
        }
        eprintln!("esm-lint: FAIL");
        ExitCode::from(EXIT_FINDINGS)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cost = false;
    let mut write_baseline = false;
    let mut json = false;
    let mut deny_warnings = false;
    for a in &args {
        match a.as_str() {
            "--cost-report" => cost = true,
            "--write-baseline" => write_baseline = true,
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            other => {
                eprintln!(
                    "esm-lint: unknown flag `{other}` (expected --cost-report, \
                     --write-baseline, --json, --deny-warnings)"
                );
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    if write_baseline && !cost {
        eprintln!("esm-lint: --write-baseline requires --cost-report");
        return ExitCode::from(EXIT_USAGE);
    }
    if deny_warnings && cost {
        eprintln!("esm-lint: --deny-warnings applies to lint mode only");
        return ExitCode::from(EXIT_USAGE);
    }
    if cost {
        cost_mode(write_baseline, json)
    } else {
        lint_mode(json, deny_warnings)
    }
}
