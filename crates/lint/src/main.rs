//! `esm-lint` — static dataflow verification and performance gate.
//!
//! Default mode verifies every registered kernel suite with the
//! dace-mini analyzer, reports perf findings from the static cost
//! model, and exercises the negative fixtures. Exit code 0 only when
//! all shipped kernels lint clean AND every deliberately-broken
//! fixture is rejected with its expected diagnostic.
//!
//! Flags:
//!
//! * `--cost-report` — evaluate the static cost model on every target
//!   (naive vs fused+hoisted execution), write the full report to
//!   `results/cost_model.json`, and diff the optimized costs against
//!   the checked-in `results/cost_baseline.json`; any E0503 regression
//!   (or missing baseline entry) fails the run.
//! * `--write-baseline` — with `--cost-report`, refresh
//!   `results/cost_baseline.json` instead of diffing against it.
//! * `--json` — additionally print the machine-readable summary (lint
//!   mode) or the full cost report (cost mode) to stdout.

use std::process::ExitCode;

const COST_REPORT_PATH: &str = "results/cost_model.json";
const BASELINE_PATH: &str = "results/cost_baseline.json";

fn cost_mode(write_baseline: bool, json: bool) -> ExitCode {
    let rows = esm_lint::cost_report();
    let report = esm_lint::cost_report_json(&rows);
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(COST_REPORT_PATH, &text))
    {
        eprintln!("esm-lint: cannot write {COST_REPORT_PATH}: {e}");
        return ExitCode::FAILURE;
    }
    println!("esm-lint: static cost model ({} targets)", rows.len());
    print!("{}", esm_lint::render_cost_table(&rows));
    println!("esm-lint: wrote {COST_REPORT_PATH}");
    if json {
        println!("{text}");
    }

    if write_baseline {
        let base = serde_json::to_string_pretty(&esm_lint::baseline_json(&rows))
            .expect("baseline serializes");
        if let Err(e) = std::fs::write(BASELINE_PATH, base) {
            eprintln!("esm-lint: cannot write {BASELINE_PATH}: {e}");
            return ExitCode::FAILURE;
        }
        println!("esm-lint: wrote {BASELINE_PATH}");
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(text) => esm_lint::parse_baseline(&text),
        Err(e) => {
            eprintln!(
                "esm-lint: cannot read {BASELINE_PATH} ({e}); \
                 run with --write-baseline to create it"
            );
            return ExitCode::FAILURE;
        }
    };
    let (out, failures) = esm_lint::diff_against_baseline(&rows, &baseline);
    print!("{out}");
    if failures == 0 {
        println!("esm-lint: cost gate PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("esm-lint: cost gate FAIL ({failures} regressions)");
        ExitCode::FAILURE
    }
}

fn lint_mode(json: bool) -> ExitCode {
    let mut out = String::new();
    out.push_str("esm-lint: static dataflow verification\n");
    let summary = esm_lint::run_lint(&mut out);
    print!("{out}");
    println!(
        "esm-lint: {} targets, {} states ({} ParallelSafe), {} errors, {} warnings, {} fixture failures",
        summary.targets,
        summary.states_total,
        summary.states_parallel_safe,
        summary.errors,
        summary.warnings,
        summary.fixture_failures.len()
    );
    if json {
        let text = serde_json::to_string_pretty(&esm_lint::lint_summary_json(&summary))
            .expect("summary serializes");
        println!("{text}");
    }
    if summary.clean() {
        println!("esm-lint: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &summary.fixture_failures {
            eprintln!("esm-lint: fixture failure: {f}");
        }
        eprintln!("esm-lint: FAIL");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cost = false;
    let mut write_baseline = false;
    let mut json = false;
    for a in &args {
        match a.as_str() {
            "--cost-report" => cost = true,
            "--write-baseline" => write_baseline = true,
            "--json" => json = true,
            other => {
                eprintln!(
                    "esm-lint: unknown flag `{other}` \
                     (expected --cost-report, --write-baseline, --json)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if write_baseline && !cost {
        eprintln!("esm-lint: --write-baseline requires --cost-report");
        return ExitCode::FAILURE;
    }
    if cost {
        cost_mode(write_baseline, json)
    } else {
        lint_mode(json)
    }
}
