//! `#[derive(Serialize)]` without syn/quote (see `shims/README.md`).
//!
//! The workspace derives `Serialize` only for
//!
//! * structs with named fields whose types contain no exotic syntax, and
//! * enums whose variants are all unit variants,
//!
//! so the derive hand-parses the token stream: it finds the item keyword,
//! the type name, and then either the field names (the identifier before
//! each top-level `:` in the braced body, tracking `<...>` nesting so
//! generic field types cannot desynchronize the comma splitting) or the
//! variant names. Output is generated as source text and re-parsed, which
//! keeps the whole macro dependency-free.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    let mut kind = None; // "struct" | "enum"
    let mut name = None;
    let mut body = None;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if kind.is_none() => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                        name = Some(n.to_string());
                    }
                }
            }
            TokenTree::Group(g)
                if kind.is_some() && g.delimiter() == Delimiter::Brace && body.is_none() =>
            {
                body = Some(g.stream());
            }
            _ => {}
        }
        i += 1;
    }

    let kind = kind.expect("derive(Serialize): expected struct or enum");
    let name = name.expect("derive(Serialize): expected type name");
    let body = body.expect("derive(Serialize): expected braced body (tuple/unit items unsupported)");

    let impl_src = if kind == "struct" {
        let fields = named_fields(body);
        assert!(
            !fields.is_empty(),
            "derive(Serialize) shim: struct {name} has no named fields"
        );
        let pushes: String = fields
            .iter()
            .map(|f| {
                format!(
                    "m.push((\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})));"
                )
            })
            .collect();
        format!(
            "impl ::serde::Serialize for {name} {{\
               fn to_content(&self) -> ::serde::Content {{\
                 let mut m: Vec<(String, ::serde::Content)> = Vec::new();\
                 {pushes}\
                 ::serde::Content::Map(m)\
               }}\
             }}"
        )
    } else {
        let variants = unit_variants(body);
        assert!(
            !variants.is_empty(),
            "derive(Serialize) shim: enum {name} has no unit variants"
        );
        let arms: String = variants
            .iter()
            .map(|v| {
                format!("{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),")
            })
            .collect();
        format!(
            "impl ::serde::Serialize for {name} {{\
               fn to_content(&self) -> ::serde::Content {{\
                 match self {{ {arms} }}\
               }}\
             }}"
        )
    };

    impl_src.parse().expect("derive(Serialize): generated impl parses")
}

/// Field names of a named-field struct body: for each chunk between
/// top-level commas, the identifier immediately before the first `:` that
/// is not part of a `::` path (field declarations place the name before
/// the first colon; attribute tokens live inside `#[...]` groups and are
/// invisible at this level).
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut last_ident: Option<String> = None;
    let mut in_type = false; // between the field's `:` and the next top-level `,`
    let mut toks = body.into_iter().peekable();
    while let Some(t) = toks.next() {
        match &t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' if in_type => angle_depth += 1,
                '>' if in_type => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    in_type = false;
                    last_ident = None;
                }
                ':' if !in_type => {
                    // Distinguish `name: Type` from a `::` path (none occur
                    // before the first colon of a field, but be safe).
                    let double = matches!(
                        toks.peek(),
                        Some(TokenTree::Punct(q)) if q.as_char() == ':'
                    );
                    if double {
                        toks.next();
                    } else if let Some(f) = last_ident.take() {
                        fields.push(f);
                        in_type = true;
                    }
                }
                _ => {}
            },
            TokenTree::Ident(id) if !in_type => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}

/// Variant names of an all-unit-variant enum body. Panics on payload
/// variants: the shim intentionally refuses shapes real serde would
/// accept but this derive would mis-serialize.
fn unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut expect_name = true;
    for t in body {
        match &t {
            TokenTree::Ident(id) if expect_name => {
                variants.push(id.to_string());
                expect_name = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => expect_name = true,
            TokenTree::Group(g) if g.delimiter() != Delimiter::Bracket => {
                panic!(
                    "derive(Serialize) shim supports only unit enum variants; \
                     found a payload near `{}`",
                    variants.last().map(String::as_str).unwrap_or("?")
                )
            }
            _ => {}
        }
    }
    variants
}
