//! Land-model stepping with and without the CUDA-graph launch structure
//! (§5.1): measures the real mini-JSBach step and reports the recorded
//! kernel counts the machine model's graph analysis consumes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icongrid::Grid;
use land::{kernels::LaunchMode, LandModel, LandParams};
use std::sync::Arc;

fn build(mode: LaunchMode) -> LandModel<Grid> {
    let g = Arc::new(Grid::build(3, icongrid::EARTH_RADIUS_M));
    let cells: Vec<u32> = (0..g.n_cells as u32)
        .filter(|&c| g.cell_center[c as usize].x > 0.0)
        .collect();
    let elev: Vec<f64> = (0..g.n_cells)
        .map(|c| g.cell_center[c].x.max(0.0) * 1500.0)
        .collect();
    let mut m = LandModel::new(g, LandParams::new(600.0), cells, &elev, mode);
    m.state.sw_down.iter_mut().for_each(|s| *s = 250.0);
    m.state.t_air.iter_mut().for_each(|t| *t = 20.0);
    m.state.precip_rate.iter_mut().for_each(|r| *r = 1e-8);
    m
}

fn bench_land(c: &mut Criterion) {
    let mut group = c.benchmark_group("land_step");
    group.sample_size(20);
    for (label, mode) in [
        ("individual_launches", LaunchMode::Individual),
        ("graph_replay", LaunchMode::Graph),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut m = build(mode);
            m.step(); // recording pass
            b.iter(|| m.step());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_land);
criterion_main!(benches);
