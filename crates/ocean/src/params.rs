//! Ocean parameters and the masked-grid auxiliary structure.

use icongrid::ops::CGrid;
use icongrid::vertical::OceanLevels;

/// Seawater freezing temperature (deg C) at surface salinity.
pub const T_FREEZE: f64 = -1.8;

/// Reference density (kg/m^3).
pub const RHO0: f64 = 1025.0;

/// Heat capacity of seawater (J/kg/K).
pub const CP_OCEAN: f64 = 3985.0;

/// Latent heat of fusion of ice (J/kg).
pub const L_FUSION: f64 = 3.34e5;

/// Density of sea ice (kg/m^3).
pub const RHO_ICE: f64 = 917.0;

#[derive(Debug, Clone)]
pub struct OceanParams {
    /// Number of depth levels (72 in the paper's configurations).
    pub nlev: usize,
    /// Time step (s); 60 s at 1.25 km, 600 s at 10 km (Table 2).
    pub dt: f64,
    /// Layer thicknesses (m).
    pub dz: Vec<f64>,
    /// Thermal expansion coefficient (1/K), linear EOS.
    pub alpha_t: f64,
    /// Haline contraction coefficient (1/psu).
    pub beta_s: f64,
    /// Reference temperature / salinity of the linear EOS.
    pub t_ref: f64,
    pub s_ref: f64,
    /// Vertical diffusivity for tracers (m^2/s).
    pub kv_tracer: f64,
    /// Vertical viscosity for momentum (m^2/s).
    pub kv_momentum: f64,
    /// Bottom drag coefficient (1/s on the bottom layer).
    pub bottom_drag: f64,
    /// CG solver tolerance (relative residual).
    pub cg_tol: f64,
    pub cg_max_iter: usize,
    /// Strength of convective adjustment mixing per step (0..1).
    pub convective_mixing: f64,
}

impl OceanParams {
    /// Default parameters for `nlev` levels and step `dt`, with the
    /// ICON-like stretched level set scaled to `nlev`.
    pub fn new(nlev: usize, dt: f64) -> OceanParams {
        let levels = if nlev == 72 {
            OceanLevels::icon_72()
        } else {
            OceanLevels::stretched(nlev, 12.0, 4000.0_f64.max(nlev as f64 * 15.0))
        };
        OceanParams {
            nlev,
            dt,
            dz: levels.dz,
            alpha_t: 2.0e-4,
            beta_s: 7.6e-4,
            t_ref: 10.0,
            s_ref: 35.0,
            kv_tracer: 1.0e-4,
            kv_momentum: 1.0e-3,
            bottom_drag: 1.0e-6,
            cg_tol: 1.0e-9,
            cg_max_iter: 400,
            convective_mixing: 0.8,
        }
    }

    pub fn total_depth(&self) -> f64 {
        self.dz.iter().sum()
    }
}

/// Wet/dry masks and per-column level counts derived from bathymetry.
#[derive(Debug, Clone)]
pub struct OceanMask {
    /// True where the cell is ocean.
    pub wet_cell: Vec<bool>,
    /// True where both adjacent cells are ocean (velocity points).
    pub wet_edge: Vec<bool>,
    /// Active levels per cell (0 for land).
    pub cell_levels: Vec<u16>,
    /// Active levels per edge (min of the adjacent cells; 0 at coasts).
    pub edge_levels: Vec<u16>,
}

impl OceanMask {
    /// Build from per-cell bathymetry (m, positive down; <= 0 means land).
    pub fn from_bathymetry<G: CGrid>(g: &G, params: &OceanParams, bathymetry: &[f64]) -> Self {
        assert_eq!(bathymetry.len(), g.n_cells());
        let mut depth_if = Vec::with_capacity(params.nlev + 1);
        depth_if.push(0.0);
        for dz in &params.dz {
            depth_if.push(depth_if.last().unwrap() + dz);
        }
        let cell_levels: Vec<u16> = bathymetry
            .iter()
            .map(|&b| {
                if b <= 0.0 {
                    0
                } else {
                    let n = depth_if[1..].iter().take_while(|&&d| d <= b).count();
                    n.max(1).min(params.nlev) as u16
                }
            })
            .collect();
        let wet_cell: Vec<bool> = cell_levels.iter().map(|&l| l > 0).collect();
        let mut wet_edge = vec![false; g.n_edges()];
        let mut edge_levels = vec![0u16; g.n_edges()];
        for e in 0..g.n_edges() {
            let [c0, c1] = g.edge_cells(e);
            let l = cell_levels[c0 as usize].min(cell_levels[c1 as usize]);
            edge_levels[e] = l;
            wet_edge[e] = l > 0;
        }
        OceanMask {
            wet_cell,
            wet_edge,
            cell_levels,
            edge_levels,
        }
    }

    pub fn n_wet_cells(&self) -> usize {
        self.wet_cell.iter().filter(|&&w| w).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icongrid::Grid;

    #[test]
    fn params_levels_sum_to_depth() {
        let p = OceanParams::new(72, 60.0);
        assert_eq!(p.dz.len(), 72);
        assert!((p.total_depth() - 6000.0).abs() < 1.0);
        let p8 = OceanParams::new(8, 600.0);
        assert_eq!(p8.dz.len(), 8);
    }

    #[test]
    fn mask_respects_bathymetry() {
        let g = Grid::build(2, icongrid::EARTH_RADIUS_M);
        let p = OceanParams::new(6, 600.0);
        // Northern hemisphere land, southern ocean of increasing depth.
        let bathy: Vec<f64> = (0..g.n_cells)
            .map(|c| {
                let z = g.cell_center[c].z;
                if z > 0.0 {
                    0.0
                } else {
                    -z * 4000.0
                }
            })
            .collect();
        let m = OceanMask::from_bathymetry(&g, &p, &bathy);
        assert!(m.n_wet_cells() > 0);
        assert!(m.n_wet_cells() < g.n_cells);
        for e in 0..g.n_edges {
            let [c0, c1] = g.edge_cells[e];
            let both_wet = m.wet_cell[c0 as usize] && m.wet_cell[c1 as usize];
            assert_eq!(m.wet_edge[e], both_wet);
            assert_eq!(
                m.edge_levels[e],
                m.cell_levels[c0 as usize].min(m.cell_levels[c1 as usize])
            );
        }
        // Deeper bathymetry has at least as many levels.
        let shallow = OceanMask::from_bathymetry(
            &g,
            &p,
            &bathy.iter().map(|b| b * 0.25).collect::<Vec<_>>(),
        );
        for c in 0..g.n_cells {
            assert!(shallow.cell_levels[c] <= m.cell_levels[c]);
        }
    }

    #[test]
    fn wet_cells_have_at_least_one_level() {
        let g = Grid::build(2, icongrid::EARTH_RADIUS_M);
        let p = OceanParams::new(6, 600.0);
        let bathy = vec![5.0; g.n_cells]; // shallower than the first layer
        let m = OceanMask::from_bathymetry(&g, &p, &bathy);
        assert!(m.cell_levels.iter().all(|&l| l == 1));
    }
}
