//! Domain decomposition for distributed-memory execution.
//!
//! Cells are assigned to parts as contiguous ranges of the subdivision-tree
//! (space-filling-curve) cell order — the same strategy ICON uses — which
//! keeps partitions spatially compact without any graph partitioner. Each
//! part gets a one-deep **vertex-ring halo** (every cell sharing a vertex
//! with an owned cell), which is sufficient for all C-grid operators used
//! by the dynamical cores: edge updates on owned edges can read adjacent
//! cell columns, vertex circulations, and cell-level diagnostics of halo
//! cells, all computed from locally present data after exchange.
//!
//! Edge ownership: `owner(e) = min(owner(c0), owner(c1))`. Exchange lists
//! for cell and edge fields are precomputed centrally (as ICON does during
//! model setup) with matching orderings on the send and receive sides.

use crate::grid::Grid;
use std::collections::{BTreeSet, HashMap};

/// Exchange lists of one part, in the part's local numbering.
#[derive(Debug, Clone, Default)]
pub struct ExchangePlan {
    /// `(peer part, local indices to pack and send)`.
    pub send: Vec<(usize, Vec<u32>)>,
    /// `(peer part, local indices to receive into)`.
    pub recv: Vec<(usize, Vec<u32>)>,
}

impl ExchangePlan {
    fn push_send(&mut self, peer: usize, idx: u32) {
        match self.send.iter_mut().find(|(p, _)| *p == peer) {
            Some((_, v)) => v.push(idx),
            None => self.send.push((peer, vec![idx])),
        }
    }

    fn push_recv(&mut self, peer: usize, idx: u32) {
        match self.recv.iter_mut().find(|(p, _)| *p == peer) {
            Some((_, v)) => v.push(idx),
            None => self.recv.push((peer, vec![idx])),
        }
    }

    /// Total number of entities received (the halo size).
    pub fn recv_count(&self) -> usize {
        self.recv.iter().map(|(_, v)| v.len()).sum()
    }

    /// Total number of entities sent.
    pub fn send_count(&self) -> usize {
        self.send.iter().map(|(_, v)| v.len()).sum()
    }
}

/// Per-part entity lists and exchange plans.
#[derive(Debug, Clone)]
pub struct PartLayout {
    pub part: usize,
    /// Owned cells, ascending global id (a contiguous SFC range).
    pub owned_cells: Vec<u32>,
    /// Halo cells (vertex ring), ascending global id.
    pub halo_cells: Vec<u32>,
    /// All local edges: edges incident to any local cell; **owned edges
    /// first** (ascending), then non-owned (ascending).
    pub edges: Vec<u32>,
    /// Number of owned edges (prefix length of `edges`).
    pub n_owned_edges: usize,
    /// All local vertices (vertices of local cells), ascending global id.
    pub vertices: Vec<u32>,
    /// Cell-field halo exchange (local cell indices; owned cells occupy
    /// `0..owned_cells.len()`, halos follow).
    pub cell_exchange: ExchangePlan,
    /// Edge-field halo exchange (local edge indices).
    pub edge_exchange: ExchangePlan,
}

impl PartLayout {
    pub fn n_local_cells(&self) -> usize {
        self.owned_cells.len() + self.halo_cells.len()
    }
}

/// A full decomposition of a [`Grid`] into `n_parts` ranks.
#[derive(Debug, Clone)]
pub struct Decomposition {
    pub n_parts: usize,
    /// Owning part of every global cell.
    pub cell_owner: Vec<u32>,
    /// Owning part of every global edge.
    pub edge_owner: Vec<u32>,
    pub parts: Vec<PartLayout>,
}

impl Decomposition {
    /// Equal-cell-count decomposition along the SFC order.
    pub fn new(grid: &Grid, n_parts: usize) -> Self {
        let w = vec![1.0; grid.n_cells];
        Self::new_weighted(grid, n_parts, &w)
    }

    /// Weighted decomposition: contiguous SFC ranges with (approximately)
    /// equal total weight. Used e.g. to balance ocean ranks by the number
    /// of wet levels per column.
    pub fn new_weighted(grid: &Grid, n_parts: usize, weight: &[f64]) -> Self {
        assert!(n_parts >= 1 && n_parts <= grid.n_cells);
        assert_eq!(weight.len(), grid.n_cells);
        let total: f64 = weight.iter().sum();
        assert!(total > 0.0);

        // Greedy prefix partition: cut when the running weight passes the
        // ideal boundary, guaranteeing every part is non-empty.
        let mut cell_owner = vec![0u32; grid.n_cells];
        let mut part = 0usize;
        let mut acc = 0.0;
        for c in 0..grid.n_cells {
            let remaining_cells = grid.n_cells - c;
            let remaining_parts = n_parts - part;
            // Force a cut if we must to keep later parts non-empty.
            let must_cut = remaining_cells == remaining_parts;
            let target = total * (part + 1) as f64 / n_parts as f64;
            if part + 1 < n_parts && (must_cut || acc >= target) {
                part += 1;
            }
            cell_owner[c] = part as u32;
            acc += weight[c];
        }

        let edge_owner: Vec<u32> = grid
            .edge_cells
            .iter()
            .map(|&[c0, c1]| cell_owner[c0 as usize].min(cell_owner[c1 as usize]))
            .collect();

        // --- per-part entity lists.
        let mut parts: Vec<PartLayout> = (0..n_parts)
            .map(|p| PartLayout {
                part: p,
                owned_cells: Vec::new(),
                halo_cells: Vec::new(),
                edges: Vec::new(),
                n_owned_edges: 0,
                vertices: Vec::new(),
                cell_exchange: ExchangePlan::default(),
                edge_exchange: ExchangePlan::default(),
            })
            .collect();
        for c in 0..grid.n_cells {
            parts[cell_owner[c] as usize].owned_cells.push(c as u32);
        }

        for pl in parts.iter_mut() {
            let p = pl.part as u32;
            // Vertex-ring halo.
            let mut halo: BTreeSet<u32> = BTreeSet::new();
            for &c in &pl.owned_cells {
                for &v in &grid.cell_vertices[c as usize] {
                    for &nc in &grid.vertex_cells[v as usize] {
                        if nc != u32::MAX && cell_owner[nc as usize] != p {
                            halo.insert(nc);
                        }
                    }
                }
            }
            pl.halo_cells = halo.into_iter().collect();

            // Local edges: all edges of local cells, owned first.
            let mut owned_e: BTreeSet<u32> = BTreeSet::new();
            let mut other_e: BTreeSet<u32> = BTreeSet::new();
            for &c in pl.owned_cells.iter().chain(&pl.halo_cells) {
                for &e in &grid.cell_edges[c as usize] {
                    if edge_owner[e as usize] == p {
                        owned_e.insert(e);
                    } else {
                        other_e.insert(e);
                    }
                }
            }
            pl.n_owned_edges = owned_e.len();
            pl.edges = owned_e.into_iter().chain(other_e).collect();

            // Local vertices.
            let mut verts: BTreeSet<u32> = BTreeSet::new();
            for &c in pl.owned_cells.iter().chain(&pl.halo_cells) {
                for &v in &grid.cell_vertices[c as usize] {
                    verts.insert(v);
                }
            }
            pl.vertices = verts.into_iter().collect();
        }

        // --- exchange plans. Local cell index: position in owned ++ halo.
        // Sender-side index of an owned entity is its position in the
        // sender's owned list; both sides are built in the same pass so the
        // per-peer orderings match element for element.
        let owned_cell_pos: Vec<HashMap<u32, u32>> = parts
            .iter()
            .map(|pl| {
                pl.owned_cells
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (c, i as u32))
                    .collect()
            })
            .collect();
        let edge_pos: Vec<HashMap<u32, u32>> = parts
            .iter()
            .map(|pl| {
                pl.edges
                    .iter()
                    .enumerate()
                    .map(|(i, &e)| (e, i as u32))
                    .collect()
            })
            .collect();

        for p in 0..n_parts {
            // Cells: receive each halo cell from its owner.
            let halos = parts[p].halo_cells.clone();
            let n_owned = parts[p].owned_cells.len();
            for (i, &c) in halos.iter().enumerate() {
                let q = cell_owner[c as usize] as usize;
                let local_here = (n_owned + i) as u32;
                let local_there = owned_cell_pos[q][&c];
                parts[p].cell_exchange.push_recv(q, local_here);
                parts[q].cell_exchange.push_send(p, local_there);
            }
            // Edges: receive every non-owned local edge from its owner.
            let edges = parts[p].edges.clone();
            for (i, &e) in edges.iter().enumerate().skip(parts[p].n_owned_edges) {
                let q = edge_owner[e as usize] as usize;
                debug_assert_ne!(q, p);
                let local_there = edge_pos[q][&e];
                parts[p].edge_exchange.push_recv(q, i as u32);
                parts[q].edge_exchange.push_send(p, local_there);
            }
        }

        Decomposition {
            n_parts,
            cell_owner,
            edge_owner,
            parts,
        }
    }

    /// Maximum over parts of (local cells / ideal cells) — the static load
    /// imbalance of the decomposition.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.parts.iter().map(|p| p.owned_cells.len()).sum();
        let ideal = total as f64 / self.n_parts as f64;
        self.parts
            .iter()
            .map(|p| p.owned_cells.len() as f64 / ideal)
            .fold(0.0, f64::max)
    }

    /// Total halo cells across all parts (communication surface).
    pub fn total_halo_cells(&self) -> usize {
        self.parts.iter().map(|p| p.halo_cells.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Grid;

    fn grid() -> Grid {
        Grid::build(3, crate::EARTH_RADIUS_M) // 1280 cells
    }

    #[test]
    fn partition_is_disjoint_cover() {
        let g = grid();
        let d = Decomposition::new(&g, 7);
        let mut seen = vec![false; g.n_cells];
        for pl in &d.parts {
            for &c in &pl.owned_cells {
                assert!(!seen[c as usize], "cell {c} owned twice");
                seen[c as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partition_balanced() {
        let g = grid();
        for np in [2, 4, 16, 60] {
            let d = Decomposition::new(&g, np);
            assert!(
                d.imbalance() < 1.05,
                "{np} parts: imbalance {}",
                d.imbalance()
            );
        }
    }

    #[test]
    fn weighted_partition_balances_weight() {
        let g = grid();
        // Weight only the "northern" half: parts should concentrate there.
        let w: Vec<f64> = (0..g.n_cells)
            .map(|c| if g.cell_center[c].z > 0.0 { 1.0 } else { 0.01 })
            .collect();
        let d = Decomposition::new_weighted(&g, 8, &w);
        let total: f64 = w.iter().sum();
        for pl in &d.parts {
            let pw: f64 = pl.owned_cells.iter().map(|&c| w[c as usize]).sum();
            assert!(
                (pw / (total / 8.0)) < 1.6,
                "part {} weight share {pw}",
                pl.part
            );
            assert!(!pl.owned_cells.is_empty());
        }
    }

    #[test]
    fn halo_contains_all_vertex_neighbors() {
        let g = grid();
        let d = Decomposition::new(&g, 5);
        for pl in &d.parts {
            let local: std::collections::HashSet<u32> = pl
                .owned_cells
                .iter()
                .chain(&pl.halo_cells)
                .cloned()
                .collect();
            for &c in &pl.owned_cells {
                for &v in &g.cell_vertices[c as usize] {
                    for &nc in &g.vertex_cells[v as usize] {
                        if nc != u32::MAX {
                            assert!(local.contains(&nc), "missing vertex neighbor {nc}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn edge_ownership_and_locality() {
        let g = grid();
        let d = Decomposition::new(&g, 5);
        // Every edge is owned by exactly one part, and local to it.
        for e in 0..g.n_edges {
            let q = d.edge_owner[e] as usize;
            assert!(d.parts[q].edges[..d.parts[q].n_owned_edges].contains(&(e as u32)));
        }
        // Owned edges of a part have at least one owned adjacent cell.
        for pl in &d.parts {
            for &e in &pl.edges[..pl.n_owned_edges] {
                let [c0, c1] = g.edge_cells[e as usize];
                assert!(
                    d.cell_owner[c0 as usize] == pl.part as u32
                        || d.cell_owner[c1 as usize] == pl.part as u32
                );
            }
        }
    }

    #[test]
    fn exchange_plans_are_symmetric() {
        let g = grid();
        let d = Decomposition::new(&g, 6);
        for p in 0..d.n_parts {
            for (q, recv) in &d.parts[p].cell_exchange.recv {
                let send = &d.parts[*q]
                    .cell_exchange
                    .send
                    .iter()
                    .find(|(peer, _)| *peer == p)
                    .expect("matching send list")
                    .1;
                assert_eq!(recv.len(), send.len());
                // Element-for-element: global ids must match.
                let n_owned = d.parts[p].owned_cells.len();
                for (r, s) in recv.iter().zip(send.iter()) {
                    let g_here = d.parts[p].halo_cells[*r as usize - n_owned];
                    let g_there = d.parts[*q].owned_cells[*s as usize];
                    assert_eq!(g_here, g_there);
                }
            }
            for (q, recv) in &d.parts[p].edge_exchange.recv {
                let send = &d.parts[*q]
                    .edge_exchange
                    .send
                    .iter()
                    .find(|(peer, _)| *peer == p)
                    .expect("matching edge send list")
                    .1;
                assert_eq!(recv.len(), send.len());
                for (r, s) in recv.iter().zip(send.iter()) {
                    assert_eq!(
                        d.parts[p].edges[*r as usize],
                        d.parts[*q].edges[*s as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn single_part_has_no_halo() {
        let g = grid();
        let d = Decomposition::new(&g, 1);
        assert!(d.parts[0].halo_cells.is_empty());
        assert_eq!(d.parts[0].owned_cells.len(), g.n_cells);
        assert_eq!(d.parts[0].n_owned_edges, g.n_edges);
        assert_eq!(d.parts[0].cell_exchange.recv_count(), 0);
        assert_eq!(d.parts[0].edge_exchange.recv_count(), 0);
    }

    #[test]
    fn sfc_partitions_are_compact() {
        // SFC contiguity: halo surface should scale like the perimeter,
        // i.e. much smaller than the owned-cell count.
        let g = Grid::build(4, crate::EARTH_RADIUS_M); // 5120 cells
        let d = Decomposition::new(&g, 8);
        for pl in &d.parts {
            let ratio = pl.halo_cells.len() as f64 / pl.owned_cells.len() as f64;
            assert!(ratio < 0.6, "part {}: halo ratio {ratio}", pl.part);
        }
    }
}
