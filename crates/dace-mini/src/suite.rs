//! The mini dynamical-core kernel suite: the clean sequential source the
//! whole §5.2 pipeline runs on, plus helpers to build topology/data
//! contexts from raw mesh tables.
//!
//! The suite mirrors the access structure of ICON's dycore hot loops: many
//! statements gathering different fields through the *same* three edge (or
//! neighbor) indices of each cell — which is exactly why deduplicating
//! index lookups wins the paper its 8x ("Some of these indices can be
//! reused by carefully reordering computations").

use crate::ast::Program;
use crate::exec::{DataContext, FieldBuf, TopologyContext};
use crate::parser::parse;

/// Clean sequential source of the mini-dycore (one fusable cell kernel,
/// one edge kernel) — the `z_ekinh` excerpt of the paper plus its
/// surrounding computations.
pub const DYCORE_SRC: &str = r#"
# --- mini ICON dynamical core, clean sequential form ---------------
# Physical units of every input field; output units are inferred by
# the dimensional-analysis pass and checked for consistency.
unit vn       = m / s;
unit kin      = 1 / s;
unit fl1      = m / s;
unit fl2      = m / s;
unit fl3      = m / s;
unit rho_e    = kg / m^3;
unit th_e     = K;
unit q1       = 1;
unit q2       = 1;
unit q3       = 1;
unit x        = 1 / s;
unit y        = 1 / s;
unit pres     = m^2 / s^2;
unit kinc     = m^2 / s^2;
unit trc      = 1;
unit th       = K;
unit buoy     = K / m;
unit geo1     = 1 / m;
unit geo2     = 1 / m;
unit geo3     = 1 / m;
unit w1       = 1;
unit w2       = 1;
unit w3       = 1;
unit cfl      = s / m;
unit nu       = 1;
unit invdz    = 1 / m;
unit inv_dual = 1 / m;
unit dt_e     = s;

# Cell pass: divergence, kinetic energy (z_ekinh), three tracer flux
# divergences, two flux products, two Laplacians. Every statement
# gathers through the same cell->edge / cell->neighbor indices.
kernel dycore_cells over cells
  div(p,k)   = geo1(p) * vn(edge(p,0),k) + geo2(p) * vn(edge(p,1),k) + geo3(p) * vn(edge(p,2),k);
  ekin(p,k)  = w1(p) * kin(edge(p,0),k) + w2(p) * kin(edge(p,1),k) + w3(p) * kin(edge(p,2),k);
  q1n(p,k)   = q1(p,k) - cfl(p) * (fl1(edge(p,0),k) + fl1(edge(p,1),k) + fl1(edge(p,2),k));
  q2n(p,k)   = q2(p,k) - cfl(p) * (fl2(edge(p,0),k) + fl2(edge(p,1),k) + fl2(edge(p,2),k));
  q3n(p,k)   = q3(p,k) - cfl(p) * (fl3(edge(p,0),k) + fl3(edge(p,1),k) + fl3(edge(p,2),k));
  mflx(p,k)  = rho_e(edge(p,0),k) * vn(edge(p,0),k) + rho_e(edge(p,1),k) * vn(edge(p,1),k) + rho_e(edge(p,2),k) * vn(edge(p,2),k);
  eflx(p,k)  = th_e(edge(p,0),k) * vn(edge(p,0),k) + th_e(edge(p,1),k) * vn(edge(p,1),k) + th_e(edge(p,2),k) * vn(edge(p,2),k);
  lap(p,k)   = x(neighbor(p,0),k) + x(neighbor(p,1),k) + x(neighbor(p,2),k) - 3 * x(p,k);
  lap2(p,k)  = y(neighbor(p,0),k) + y(neighbor(p,1),k) + y(neighbor(p,2),k) - 3 * y(p,k);
  wsum(p,k)  = w1(p) * rho_e(edge(p,0),k) + w2(p) * rho_e(edge(p,1),k) + w3(p) * rho_e(edge(p,2),k);
  vort2(p,k) = kin(edge(p,0),k) * geo1(p) - kin(edge(p,2),k) * geo3(p);
  vflx(p,k)  = th_e(edge(p,0),k) * kin(edge(p,0),k) + th_e(edge(p,1),k) * kin(edge(p,1),k) + th_e(edge(p,2),k) * kin(edge(p,2),k);
  kedge(p,k) = vn(edge(p,0),k) * kin(edge(p,0),k) + vn(edge(p,1),k) * kin(edge(p,1),k) + vn(edge(p,2),k) * kin(edge(p,2),k);
  pflx(p,k)  = fl1(edge(p,0),k) * rho_e(edge(p,0),k) + fl2(edge(p,1),k) * rho_e(edge(p,1),k) + fl3(edge(p,2),k) * rho_e(edge(p,2),k);
  wdiv(p,k)  = geo1(p) * fl1(edge(p,0),k) + geo2(p) * fl2(edge(p,1),k) + geo3(p) * fl3(edge(p,2),k);
  dtot(p,k)  = div(p,k) + lap(p,k) * nu(p) + ekin(p,k) * 0.5;
end

# Edge pass: pressure gradient and upwind value through cell->edge-cell
# lookups.
kernel dycore_edges over edges
  grad(p,k)  = (pres(ecell(p,1),k) - pres(ecell(p,0),k)) * inv_dual(p);
  gradk(p,k) = (kinc(ecell(p,1),k) - kinc(ecell(p,0),k)) * inv_dual(p);
  upw(p,k)   = 0.5 * (trc(ecell(p,0),k) + trc(ecell(p,1),k));
  div2(p,k)  = trc(ecell(p,0),k) * pres(ecell(p,0),k) - trc(ecell(p,1),k) * pres(ecell(p,1),k);
  vtend(p,k) = vn(p,k) - dt_e(p) * (grad(p,k) + gradk(p,k));
end

# Vertical pass: column derivative with level offsets (no gathers).
kernel dycore_vertical over cells
  dz1(p,k)   = th(p,k+1) - th(p,k-1);
  wten(p,k)  = dz1(p,k) * invdz(p) + buoy(p,k);
end
"#;

/// Parse the suite.
pub fn dycore_program() -> Program {
    parse(DYCORE_SRC).expect("suite source parses")
}

/// Input fields (read, never written) of the suite, with their
/// dimensionality: `(name, domain, is_3d)`.
pub fn input_fields() -> Vec<(&'static str, &'static str, bool)> {
    vec![
        ("vn", "edges", true),
        ("kin", "edges", true),
        ("fl1", "edges", true),
        ("fl2", "edges", true),
        ("fl3", "edges", true),
        ("rho_e", "edges", true),
        ("th_e", "edges", true),
        ("q1", "cells", true),
        ("q2", "cells", true),
        ("q3", "cells", true),
        ("x", "cells", true),
        ("y", "cells", true),
        ("pres", "cells", true),
        ("kinc", "cells", true),
        ("trc", "cells", true),
        ("th", "cells", true),
        ("buoy", "cells", true),
        ("geo1", "cells", false),
        ("geo2", "cells", false),
        ("geo3", "cells", false),
        ("w1", "cells", false),
        ("w2", "cells", false),
        ("w3", "cells", false),
        ("cfl", "cells", false),
        ("nu", "cells", false),
        ("invdz", "cells", false),
        ("inv_dual", "edges", false),
        ("dt_e", "edges", false),
    ]
}

/// Output fields: `(name, domain, is_3d)`.
pub fn output_fields() -> Vec<(&'static str, &'static str, bool)> {
    vec![
        ("div", "cells", true),
        ("ekin", "cells", true),
        ("q1n", "cells", true),
        ("q2n", "cells", true),
        ("q3n", "cells", true),
        ("mflx", "cells", true),
        ("eflx", "cells", true),
        ("lap", "cells", true),
        ("lap2", "cells", true),
        ("wsum", "cells", true),
        ("vort2", "cells", true),
        ("vflx", "cells", true),
        ("kedge", "cells", true),
        ("pflx", "cells", true),
        ("wdiv", "cells", true),
        ("dtot", "cells", true),
        ("grad", "edges", true),
        ("gradk", "edges", true),
        ("upw", "edges", true),
        ("div2", "edges", true),
        ("vtend", "edges", true),
        ("dz1", "cells", true),
        ("wten", "cells", true),
    ]
}

/// The analysis declarations matching [`build_topology`] and the field
/// tables above: what `esm-lint` and the property tests verify the suite
/// against.
pub fn suite_context() -> crate::analysis::AnalysisContext {
    use crate::analysis::FieldIo;
    let mut ctx = crate::analysis::AnalysisContext::new()
        .domain("cells")
        .domain("edges")
        .relation("edge", "cells", "edges", 3)
        .relation("neighbor", "cells", "cells", 3)
        .relation("ecell", "edges", "cells", 2)
        .with_halo(1);
    for (name, domain, is3d) in input_fields() {
        ctx = ctx.field(name, domain, is3d, FieldIo::Input);
    }
    for (name, domain, is3d) in output_fields() {
        ctx = ctx.field(name, domain, is3d, FieldIo::Output);
    }
    ctx
}

/// Representative extents for the static cost model: the 20k-cell
/// mini-mesh the bench figures run on (30 levels). This is what
/// `esm-lint --cost-report` scales the suite's per-point counts by.
pub fn suite_sizes() -> crate::cost::DomainSizes {
    crate::cost::DomainSizes::new(30)
        .with("cells", 20_000)
        .with("edges", 30_000)
}

/// Build the topology context from raw mesh tables:
/// `cell_edges`/`cell_neighbors` have arity 3 (icosahedral triangles),
/// `edge_cells` arity 2.
pub fn build_topology(
    n_cells: usize,
    n_edges: usize,
    cell_edges: Vec<u32>,
    cell_neighbors: Vec<u32>,
    edge_cells: Vec<u32>,
) -> TopologyContext {
    assert_eq!(cell_edges.len(), 3 * n_cells);
    assert_eq!(cell_neighbors.len(), 3 * n_cells);
    assert_eq!(edge_cells.len(), 2 * n_edges);
    let mut topo = TopologyContext::new();
    topo.add_domain("cells", n_cells);
    topo.add_domain("edges", n_edges);
    topo.add_relation("edge", 3, cell_edges);
    topo.add_relation("neighbor", 3, cell_neighbors);
    topo.add_relation("ecell", 2, edge_cells);
    topo
}

/// A deterministic synthetic topology: a twisted torus-like mesh with
/// `n_cells` cells and `3 n_cells / 2` edges (each edge shared by two
/// cells), adequate for semantics and performance tests without a real
/// sphere.
pub fn synthetic_topology(n_cells: usize) -> TopologyContext {
    assert!(n_cells >= 4 && n_cells.is_multiple_of(2));
    let n_edges = 3 * n_cells / 2;
    // Edge e connects cells (e mod n) and ((e*2+1) mod n) — every cell
    // appears in exactly 3 edges (counting both endpoints over the
    // deterministic pattern below).
    let mut cell_edges = vec![0u32; 3 * n_cells];
    let mut counts = vec![0usize; n_cells];
    let mut edge_cells = Vec::with_capacity(2 * n_edges);
    let mut e = 0u32;
    'outer: for c in 0..n_cells {
        for d in [1usize, n_cells / 2, n_cells / 2 + 1] {
            let c2 = (c + d) % n_cells;
            if counts[c] < 3 && counts[c2] < 3 && c != c2 {
                edge_cells.push(c as u32);
                edge_cells.push(c2 as u32);
                cell_edges[c * 3 + counts[c]] = e;
                cell_edges[c2 * 3 + counts[c2]] = e;
                counts[c] += 1;
                counts[c2] += 1;
                e += 1;
                if e as usize == n_edges {
                    break 'outer;
                }
            }
        }
    }
    // Fill any unfilled slots self-consistently (degenerate but valid).
    for c in 0..n_cells {
        for s in counts[c]..3 {
            cell_edges[c * 3 + s] = (c % (e as usize).max(1)) as u32;
        }
    }
    let n_edges = e as usize;
    let mut ec = edge_cells;
    ec.truncate(2 * n_edges);
    let mut cell_neighbors = vec![0u32; 3 * n_cells];
    for c in 0..n_cells {
        for s in 0..3 {
            let eid = cell_edges[c * 3 + s] as usize;
            let (a, b) = (ec[eid * 2], ec[eid * 2 + 1]);
            cell_neighbors[c * 3 + s] = if a as usize == c { b } else { a };
        }
    }
    build_topology(n_cells, n_edges, cell_edges, cell_neighbors, ec)
}

/// Fill a data context with deterministic pseudo-random values for every
/// suite field.
pub fn synthetic_data(topo: &TopologyContext, nlev: usize, seed: u64) -> DataContext {
    let mut d = DataContext::new(nlev);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    for (name, domain, is3d) in input_fields() {
        let n = topo.domain_size(domain);
        let lev = if is3d { nlev } else { 1 };
        let mut f = FieldBuf::zeros(n, lev);
        for v in f.data.iter_mut() {
            *v = rnd() * 2.0 + 1.0; // keep away from 0 for divisions
        }
        d.add(name, f);
    }
    for (name, domain, is3d) in output_fields() {
        let n = topo.domain_size(domain);
        d.add(name, FieldBuf::zeros(n, if is3d { nlev } else { 1 }));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{compile, run_naive};
    use crate::sdfg::Sdfg;
    use crate::transforms::gh200_pipeline;

    #[test]
    fn suite_parses_and_covers_all_fields() {
        let prog = dycore_program();
        assert_eq!(prog.kernels.len(), 3);
        let written = prog.written_fields();
        for (name, _, _) in output_fields() {
            assert!(written.contains(&name), "output {name} never written");
        }
        let read = prog.read_fields();
        for (name, _, _) in input_fields() {
            assert!(read.contains(&name), "input {name} never read");
        }
    }

    #[test]
    fn index_dedup_reaches_the_papers_8x() {
        // §5.2: "reduce the number of integer index lookups required per
        // grid point by an average factor of 8x".
        let prog = dycore_program();
        let sdfg = Sdfg::from_program("dycore", &prog);
        let (_, report) = gh200_pipeline(&sdfg);
        assert!(
            report.reduction_factor() >= 8.0,
            "only {:.2}x ({} -> {})",
            report.reduction_factor(),
            report.lookups_before,
            report.lookups_after
        );
    }

    #[test]
    fn suite_runs_equivalently_on_both_backends() {
        let prog = dycore_program();
        let topo = synthetic_topology(60);
        let mut d1 = synthetic_data(&topo, 5, 42);
        let mut d2 = d1.clone();
        run_naive(&prog, &topo, &mut d1);
        let (opt, _) = gh200_pipeline(&Sdfg::from_program("dycore", &prog));
        compile(&opt).run(&topo, &mut d2);
        assert_eq!(d1, d2, "backends must agree bitwise");
    }

    #[test]
    fn fusion_collapses_the_cell_pass() {
        let prog = dycore_program();
        let sdfg = Sdfg::from_program("dycore", &prog);
        let before = sdfg.n_map_launches();
        let (opt, _) = gh200_pipeline(&sdfg);
        let after = opt.n_map_launches();
        assert!(before >= 18, "one state per statement: {before}");
        assert!(
            after <= 4,
            "cell pass + edge pass + vertical should fuse to few states, got {after}"
        );
    }

    #[test]
    fn suite_verifies_clean_and_certifies_parallel_safe() {
        use crate::analysis::verify_sdfg;
        let sdfg = Sdfg::from_program("dycore", &dycore_program());
        let ctx = suite_context();
        for graph in [&sdfg, &gh200_pipeline(&sdfg).0] {
            let rep = verify_sdfg(graph, &ctx);
            assert!(
                rep.is_clean(),
                "suite must lint clean: {:#?}",
                rep.errors().collect::<Vec<_>>()
            );
            assert!(rep.all_parallel_safe(), "{:?}", rep.states);
        }
    }

    #[test]
    fn suite_units_certify_clean_at_every_phase() {
        // The dimensional-analysis pass accepts the suite at source,
        // after the gh200 pipeline, and after hoisting (where the
        // hoisted transients must inherit their inferred units).
        use crate::transforms::gh200_hoisted_pipeline;
        use crate::units::check_units;
        let sdfg = Sdfg::from_program("dycore", &dycore_program());
        let ctx = suite_context();
        for (phase, graph, pctx) in [
            ("source", sdfg.clone(), ctx.clone()),
            ("gh200", gh200_pipeline(&sdfg).0, ctx.clone()),
            {
                let (hoisted, report) = gh200_hoisted_pipeline(&sdfg);
                ("hoisted", hoisted, report.declare(&ctx))
            },
        ] {
            let rep = check_units(&graph, &pctx);
            assert!(
                rep.is_clean(),
                "{phase}: units must certify clean: {:#?}",
                rep.diagnostics
            );
        }
        // Inference lands on the physically meaningful output units.
        let rep = check_units(&sdfg, &ctx);
        for (field, want) in [
            ("div", "s^-1"),
            ("mflx", "kg m^-2 s^-1"),
            ("eflx", "m s^-1 K"),
            ("grad", "m s^-2"),
            ("vtend", "m s^-1"),
            ("wten", "m^-1 K"),
        ] {
            assert_eq!(
                rep.inferred.get(field).map(|u| u.to_string()).as_deref(),
                Some(want),
                "inferred unit of {field}"
            );
        }
    }

    #[test]
    fn certified_suite_runs_parallel_and_matches_naive() {
        use crate::analysis::verify_sdfg;
        use crate::exec::compile_certified;
        let prog = dycore_program();
        let topo = synthetic_topology(320);
        let mut d1 = synthetic_data(&topo, 6, 3);
        let mut d2 = d1.clone();
        run_naive(&prog, &topo, &mut d1);
        let (opt, _) = gh200_pipeline(&Sdfg::from_program("dycore", &prog));
        let report = verify_sdfg(&opt, &suite_context());
        let compiled = compile_certified(&opt, &report);
        assert!(compiled.n_parallel_states() > 0);
        compiled.run(&topo, &mut d2);
        assert_eq!(d1, d2, "certified parallel execution must agree bitwise");
    }

    #[test]
    fn hoisted_pipeline_reaches_8x_and_stays_bitwise_identical() {
        // The acceptance claim: >= 8x fewer per-point lookups after
        // `hoist_gathers`, with the transformed execution bitwise equal
        // to the naive one — on the full DataContext, since the elided
        // transients never materialize in memory.
        use crate::transforms::gh200_hoisted_pipeline;
        let prog = dycore_program();
        let topo = synthetic_topology(60);
        let mut d1 = synthetic_data(&topo, 5, 42);
        let mut d2 = d1.clone();
        run_naive(&prog, &topo, &mut d1);

        let sdfg = Sdfg::from_program("dycore", &prog);
        let (hoisted, report) = gh200_hoisted_pipeline(&sdfg);
        assert!(
            report.reduction_factor() >= 8.0,
            "only {:.2}x ({} -> {})",
            report.reduction_factor(),
            report.lookups_before,
            report.lookups_after
        );
        assert!(report.states_hoisted >= 2, "cells and edges passes hoist");
        assert!(!report.transients.is_empty());

        let mut compiled = compile(&hoisted);
        compiled.elide_transient_stores(&report.transient_names());
        compiled.run(&topo, &mut d2);
        assert_eq!(d1, d2, "hoisted execution must agree bitwise with naive");
    }

    #[test]
    fn hoisted_suite_verifies_clean_and_runs_certified_parallel() {
        use crate::analysis::verify_sdfg;
        use crate::exec::compile_certified;
        use crate::transforms::gh200_hoisted_pipeline;
        let prog = dycore_program();
        let sdfg = Sdfg::from_program("dycore", &prog);
        let (hoisted, report) = gh200_hoisted_pipeline(&sdfg);
        let ctx = report.declare(&suite_context());
        let rep = verify_sdfg(&hoisted, &ctx);
        assert!(
            rep.is_clean(),
            "hoisted suite must re-certify: {:#?}",
            rep.errors().collect::<Vec<_>>()
        );
        assert!(rep.all_parallel_safe(), "{:?}", rep.states);

        let topo = synthetic_topology(320);
        let mut d1 = synthetic_data(&topo, 6, 3);
        let mut d2 = d1.clone();
        run_naive(&prog, &topo, &mut d1);
        let mut compiled = compile_certified(&hoisted, &rep);
        compiled.elide_transient_stores(&report.transient_names());
        assert!(compiled.n_parallel_states() > 0);
        compiled.run(&topo, &mut d2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn static_cost_model_predicts_executor_counters_exactly() {
        // The exec-stats cross-check: both execution models' predicted
        // counters equal the measured ones bit for bit.
        use crate::cost::{self, CostInputs};
        use crate::transforms::gh200_hoisted_pipeline;
        let prog = dycore_program();
        let topo = synthetic_topology(60);
        let nlev = 5;
        let sizes = cost::DomainSizes::new(nlev)
            .with("cells", topo.domain_size("cells"))
            .with("edges", topo.domain_size("edges"));
        let ctx = suite_context();
        let roof = machine::Roofline::gh200_dace();
        let sdfg = Sdfg::from_program("dycore", &prog);

        let mut d1 = synthetic_data(&topo, nlev, 7);
        let mut d2 = d1.clone();
        let naive_measured = run_naive(&prog, &topo, &mut d1);
        let inputs = CostInputs { ctx: &ctx, sizes: &sizes, elided_stores: &[] };
        let naive_pred = cost::analyze_naive(&sdfg, &inputs, &roof);
        assert_eq!(naive_pred.stats, naive_measured, "naive model is exact");

        let (hoisted, report) = gh200_hoisted_pipeline(&sdfg);
        let names = report.transient_names();
        let mut compiled = compile(&hoisted);
        compiled.elide_transient_stores(&names);
        let measured = compiled.run(&topo, &mut d2);
        let hctx = report.declare(&ctx);
        let hinputs = CostInputs { ctx: &hctx, sizes: &sizes, elided_stores: &names };
        let pred = cost::analyze_compiled(&hoisted, &hinputs, &roof);
        assert_eq!(pred.stats, measured, "compiled model is exact");
        assert!(pred.predicted_time_s > 0.0 && pred.intensity > 0.0);
    }

    #[test]
    fn synthetic_topology_is_consistent() {
        let topo = synthetic_topology(40);
        assert_eq!(topo.domain_size("cells"), 40);
        assert!(topo.domain_size("edges") > 0);
    }

    #[test]
    fn synthetic_data_is_deterministic_per_seed() {
        let topo = synthetic_topology(20);
        let a = synthetic_data(&topo, 3, 7);
        let b = synthetic_data(&topo, 3, 7);
        assert_eq!(a, b);
        let c = synthetic_data(&topo, 3, 8);
        assert_ne!(a, c);
    }
}
