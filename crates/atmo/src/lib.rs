//! Atmosphere component: a multi-layer hydrostatic dynamical core on the
//! icosahedral C-grid with tracer transport and simplified moist physics.
//!
//! # Relation to ICON-A
//!
//! ICON's atmosphere is a nonhydrostatic compressible core (Giorgetta et
//! al. 2018). Rebuilding it verbatim is out of scope (DESIGN.md
//! substitution table); what we preserve is its computational skeleton:
//!
//! * prognostic **normal velocities at triangle edges** and mass at cell
//!   circumcenters (Arakawa C staggering, 1.5 velocity dof per cell as in
//!   Table 2 of the paper);
//! * the **two-time-level predictor-corrector** stepping (explicit
//!   horizontal dynamics, implicit vertical operators solved by per-column
//!   tridiagonal sweeps);
//! * the `z_ekinh` **kinetic-energy gather kernel** with its neighbor
//!   index lookups — the DaCe case-study kernel of §5.2;
//! * halo exchanges after every partial update, tracer transport in flux
//!   form, column physics.
//!
//! # Formulation
//!
//! Stacked-layer hydrostatic equations (isentropic-like vertical
//! coordinate): `nlev` immiscible layers of fixed density ratio, each with
//! layer thickness `delta` (mass) and edge-normal velocity `vn`, coupled
//! through the Montgomery potential. Vector-invariant momentum equation:
//!
//! ```text
//! d(delta_k)/dt = -div(delta_k v_k)
//! d(vn_k)/dt    = -grad_n(K_k + M_k) + (f + zeta_k) vt_k + D(vn)
//! M_k           = g [ z_s + sum_{j<k} (rho_j/rho_k) delta_j + sum_{j>=k} delta_j ]
//! ```
//!
//! Moisture (`qv`, `qc`), CO2 and O3 are transported in flux form with
//! first-order upwinding; condensation releases latent heat implemented as
//! cross-layer mass transfer (the isentropic-coordinate form of heating),
//! giving a closed, conservative water and energy cycle.

pub mod dsl;
pub mod dycore;
pub mod model;
pub mod params;
pub mod physics;
pub mod state;
pub mod tracers;
pub mod vertical_solve;

pub use model::Atmosphere;
pub use params::AtmParams;
pub use state::AtmState;

// The coupling-flux bounds formerly exported here (`coupling_flux_bounds`)
// live in the typed registry `coupler::fluxreg`, alongside each flux's
// physical unit and conserved class.
