//! Deliberately-broken kernels for exercising the verifier.
//!
//! Each fixture is a small SDFG (usually lowered from DSL source, so the
//! diagnostics carry real spans; the racy-scatter one is programmatic
//! because the parser — correctly — refuses lookup write targets) paired
//! with the diagnostic codes the analysis must produce. `esm-lint` runs
//! all of them and fails if any expected finding goes undetected;
//! `analysis_properties.rs` mutates clean kernels into these shapes and
//! checks rejection.

use crate::analysis::{AnalysisContext, DiagCode, FieldIo};
use crate::ast::{Expr, FieldAccess, LevelIndex, PointIndex};
use crate::loc::Span;
use crate::parser::parse;
use crate::sdfg::{MapScope, Schedule, Sdfg, State, Tasklet};

/// A negative (or warning) fixture for the whole-SDFG verifier.
pub struct Fixture {
    pub name: &'static str,
    /// DSL source when the kernel is expressible in the DSL (shown by
    /// `esm-lint` next to the diagnostics); empty for programmatic IR.
    pub source: &'static str,
    pub sdfg: Sdfg,
    pub ctx: AnalysisContext,
    /// Codes that MUST appear in the report.
    pub expect: Vec<DiagCode>,
}

/// A perf fixture for the static cost model: the fused kernel is run
/// through [`crate::cost::perf_diagnostics`] (and, when `baseline` is
/// set, [`crate::cost::check_regression`]) and must produce the
/// expected codes.
pub struct PerfFixture {
    pub name: &'static str,
    pub source: &'static str,
    pub sdfg: Sdfg,
    pub ctx: AnalysisContext,
    pub sizes: crate::cost::DomainSizes,
    /// Baseline to diff the compiled-model cost against (tampered low
    /// for the regression fixture, so the gate must fire).
    pub baseline: Option<crate::cost::BaselineEntry>,
    /// Codes that MUST appear among the perf + regression diagnostics.
    pub expect: Vec<DiagCode>,
}

/// A negative fixture for the fusion-legality check: states `pair.0`
/// and `pair.1` must refuse to fuse with the given code.
pub struct FusionFixture {
    pub name: &'static str,
    pub source: &'static str,
    pub sdfg: Sdfg,
    pub pair: (usize, usize),
    pub expect: DiagCode,
}

/// A negative (or warning) fixture for the units-inference pass
/// ([`crate::units::check_units`]): one expected code anchored at an
/// exact source position.
pub struct UnitsFixture {
    pub name: &'static str,
    pub source: &'static str,
    pub sdfg: Sdfg,
    pub ctx: AnalysisContext,
    pub expect: DiagCode,
    /// Exact `(line, col)` the diagnostic must anchor to.
    pub at: (u32, u32),
}

/// A negative fixture for the conservation-closure check
/// ([`crate::units::check_conservation`]): a broken coupler boundary.
/// Boundary findings are registry-level, not source-level, so the
/// expected span is the synthetic one.
pub struct ConservationFixture {
    pub name: &'static str,
    pub emitted: Vec<crate::units::FluxSpec>,
    pub consumed: Vec<crate::units::FluxConsumer>,
    pub ledgers: Vec<crate::units::LedgerEntry>,
    pub expect: DiagCode,
}

fn base_ctx() -> AnalysisContext {
    AnalysisContext::new()
        .domain("cells")
        .domain("edges")
        .relation("edge", "cells", "edges", 3)
        .relation("neighbor", "cells", "cells", 3)
        .field("inp", "cells", true, FieldIo::Input)
        .field("x", "cells", true, FieldIo::Input)
        .field("vn_e", "edges", true, FieldIo::Input)
        .field("th", "cells", true, FieldIo::Input)
        .field("out", "cells", true, FieldIo::Output)
        .field("out2", "cells", true, FieldIo::Output)
        .with_halo(1)
        .with_nlev(30)
}

fn lower(name: &str, src: &str) -> Sdfg {
    Sdfg::from_program(name, &parse(src).expect("fixture source must parse"))
}

fn own(field: &str, level: LevelIndex) -> FieldAccess {
    FieldAccess {
        field: field.into(),
        point: PointIndex::Own,
        level,
        span: Span::synthetic(),
    }
}

fn lookup(field: &str, relation: &str, slot: usize, level: LevelIndex) -> FieldAccess {
    FieldAccess {
        field: field.into(),
        point: PointIndex::Lookup {
            relation: relation.into(),
            slot,
        },
        level,
        span: Span::synthetic(),
    }
}

/// `out(neighbor(p,0),k) = inp(p,k)` — a scatter that is NOT an
/// accumulation: two cells sharing a neighbor race on the store. The
/// parser refuses lookup write targets, so this is programmatic IR.
fn racy_scatter() -> Fixture {
    let target = lookup("out", "neighbor", 0, LevelIndex::K);
    let read = own("inp", LevelIndex::K);
    let sdfg = Sdfg {
        name: "racy_scatter".into(),
        states: vec![State {
            label: "scatter_0".into(),
            map: MapScope {
                domain: "cells".into(),
                over_levels: true,
                schedule: Schedule::EntityOuterLevelInner,
                tasklets: vec![Tasklet {
                    write: target,
                    reads: vec![read.clone()],
                    code: Expr::Access(read),
                }],
            },
            span: Span::synthetic(),
        }],
        units: vec![],
    };
    Fixture {
        name: "racy_scatter",
        source: "",
        sdfg,
        ctx: base_ctx(),
        expect: vec![DiagCode::RacyWrite],
    }
}

/// Scatter-accumulate: `out(neighbor(p,0),k) = out(neighbor(p,0),k) +
/// inp(p,k)` — the reduction pattern. Flagged W0103, certified
/// `Reduction` (never ParallelSafe), but not an error.
fn scatter_reduction() -> Fixture {
    let target = lookup("out", "neighbor", 0, LevelIndex::K);
    let acc_read = target.clone();
    let inp_read = own("inp", LevelIndex::K);
    let sdfg = Sdfg {
        name: "scatter_reduction".into(),
        states: vec![State {
            label: "accumulate_0".into(),
            map: MapScope {
                domain: "cells".into(),
                over_levels: true,
                schedule: Schedule::EntityOuterLevelInner,
                tasklets: vec![Tasklet {
                    write: target,
                    reads: vec![acc_read.clone(), inp_read.clone()],
                    code: Expr::Bin(
                        crate::ast::BinOp::Add,
                        Box::new(Expr::Access(acc_read)),
                        Box::new(Expr::Access(inp_read)),
                    ),
                }],
            },
            span: Span::synthetic(),
        }],
        units: vec![],
    };
    Fixture {
        name: "scatter_reduction",
        source: "",
        sdfg,
        ctx: base_ctx(),
        expect: vec![DiagCode::ScatterReduction],
    }
}

const RACY_JACOBI_SRC: &str = r#"kernel jacobi over cells
  out(p,k) = 0.25 * out(neighbor(p,0),k) + 0.75 * inp(p,k);
end"#;

const HALO_OVERFLOW_SRC: &str = r#"kernel vertical over cells
  out(p,k) = th(p,k+2) - th(p,k-1);
end"#;

const FIXED_OOB_SRC: &str = r#"kernel toplevel over cells
  out(p,k) = inp(p,k) - inp(p,60);
end"#;

const DOMAIN_MISMATCH_SRC: &str = r#"kernel confused over cells
  out(p,k) = vn_e(p,k) + inp(neighbor(p,9),k);
end"#;

const READ_BEFORE_WRITE_SRC: &str = r#"kernel ghostly over cells
  out(p,k) = ghost(p,k) * 2;
  dead(p,k) = inp(p,k);
end"#;

const ILLEGAL_FUSION_ANTI_SRC: &str = r#"kernel scan over cells
  out(p,k) = x(p,k-1);
  x(p,k) = inp(p,k);
end"#;

const ILLEGAL_FUSION_FLOW_SRC: &str = r#"kernel broadcast over cells
  out(p,k) = inp(p,k);
  out2(p,k) = out(p,2);
end"#;

/// All verifier fixtures: each must produce its expected codes (and the
/// error-severity ones must make the report non-clean).
pub fn verifier_fixtures() -> Vec<Fixture> {
    vec![
        racy_scatter(),
        scatter_reduction(),
        Fixture {
            name: "racy_jacobi",
            source: RACY_JACOBI_SRC,
            sdfg: lower("racy_jacobi", RACY_JACOBI_SRC),
            ctx: base_ctx(),
            expect: vec![DiagCode::RacyRead],
        },
        Fixture {
            name: "halo_overflow",
            source: HALO_OVERFLOW_SRC,
            sdfg: lower("halo_overflow", HALO_OVERFLOW_SRC),
            ctx: base_ctx(),
            expect: vec![DiagCode::HaloOverflow],
        },
        Fixture {
            name: "fixed_level_oob",
            source: FIXED_OOB_SRC,
            sdfg: lower("fixed_level_oob", FIXED_OOB_SRC),
            ctx: base_ctx(),
            expect: vec![DiagCode::LevelOutOfBounds],
        },
        Fixture {
            name: "domain_and_slot_mismatch",
            source: DOMAIN_MISMATCH_SRC,
            sdfg: lower("domain_and_slot_mismatch", DOMAIN_MISMATCH_SRC),
            ctx: base_ctx(),
            expect: vec![DiagCode::DomainMismatch, DiagCode::SlotOutOfBounds],
        },
        Fixture {
            name: "read_before_write",
            source: READ_BEFORE_WRITE_SRC,
            sdfg: lower("read_before_write", READ_BEFORE_WRITE_SRC),
            ctx: base_ctx()
                .field("ghost", "cells", true, FieldIo::Intermediate)
                .field("dead", "cells", true, FieldIo::Intermediate),
            expect: vec![DiagCode::ReadBeforeWrite, DiagCode::DeadWrite],
        },
    ]
}

const REDUNDANT_GATHER_SRC: &str = r#"kernel wasteful over cells
  out(p,k) = vn_e(edge(p,0),k) * vn_e(edge(p,0),k) + inp(p,k);
  out2(p,k) = vn_e(edge(p,0),k) + vn_e(edge(p,1),k);
end"#;

const COST_REGRESSION_SRC: &str = r#"kernel honest over cells
  out(p,k) = vn_e(edge(p,0),k) + inp(p,k) * th(p,k);
end"#;

fn perf_sizes() -> crate::cost::DomainSizes {
    crate::cost::DomainSizes::new(30)
        .with("cells", 20_000)
        .with("edges", 30_000)
}

/// Perf fixtures for the cost-model diagnostics. The fused form of the
/// redundant-gather kernel loads `vn_e[edge(p,0), k]` three times in one
/// map body (W0501) and sits below the roofline balance point while
/// doing so (W0502); the regression fixture is clean but is diffed
/// against a baseline recorded with impossibly good numbers, so the
/// E0503 gate must fire on both the lookup count and the predicted
/// time.
pub fn perf_fixtures() -> Vec<PerfFixture> {
    vec![
        PerfFixture {
            name: "redundant_gather",
            source: REDUNDANT_GATHER_SRC,
            sdfg: lower("redundant_gather", REDUNDANT_GATHER_SRC),
            ctx: base_ctx(),
            sizes: perf_sizes(),
            baseline: None,
            expect: vec![DiagCode::RedundantGather, DiagCode::BelowRoofline],
        },
        PerfFixture {
            name: "cost_regression",
            source: COST_REGRESSION_SRC,
            sdfg: lower("cost_regression", COST_REGRESSION_SRC),
            ctx: base_ctx(),
            sizes: perf_sizes(),
            baseline: Some(crate::cost::BaselineEntry {
                name: "cost_regression".into(),
                lookups_per_point: 0,
                predicted_time_s: 1e-12,
            }),
            expect: vec![DiagCode::CostRegression],
        },
    ]
}

const UNIT_MISMATCH_ADD_SRC: &str = r#"unit vn = m / s;
unit th = K;
kernel bad_add over cells
  out(p,k) = vn(p,k) + th(p,k);
end"#;

const DIMENSIONED_EXP_SRC: &str = r#"unit th = K;
kernel bad_exp over cells
  out(p,k) = exp(th(p,k));
end"#;

const UNCONSTRAINED_LITERAL_SRC: &str = r#"kernel untethered over cells
  out(p,k) = 9.81 * 2.0;
end"#;

/// Units-inference fixtures: each must produce exactly its expected
/// code at the expected source position. The unit declarations travel
/// through the parser -> AST -> SDFG path, exercising the same plumbing
/// the dycore suite uses.
pub fn units_fixtures() -> Vec<UnitsFixture> {
    vec![
        UnitsFixture {
            name: "unit_mismatch_add",
            source: UNIT_MISMATCH_ADD_SRC,
            sdfg: lower("unit_mismatch_add", UNIT_MISMATCH_ADD_SRC),
            ctx: base_ctx().field("vn", "cells", true, FieldIo::Input),
            expect: DiagCode::UnitMismatch,
            // Anchored at the offending operand `th(p,k)`.
            at: (4, 24),
        },
        UnitsFixture {
            name: "dimensioned_exp",
            source: DIMENSIONED_EXP_SRC,
            sdfg: lower("dimensioned_exp", DIMENSIONED_EXP_SRC),
            ctx: base_ctx(),
            expect: DiagCode::DimensionlessRequired,
            // Anchored at the intrinsic name `exp`.
            at: (3, 14),
        },
        UnitsFixture {
            name: "unconstrained_literal",
            source: UNCONSTRAINED_LITERAL_SRC,
            sdfg: lower("unconstrained_literal", UNCONSTRAINED_LITERAL_SRC),
            ctx: base_ctx(),
            expect: DiagCode::UnconstrainedLiteral,
            // Anchored at the write target `out(p,k)`.
            at: (2, 3),
        },
    ]
}

/// Conservation-closure fixtures: broken coupler boundaries the check
/// must refuse.
pub fn conservation_fixtures() -> Vec<ConservationFixture> {
    use crate::units::{ConservedClass, FluxConsumer, FluxSpec, LedgerEntry};
    let heat = |conserved| FluxSpec {
        name: "heat_flux".into(),
        emitter: "atmosphere".into(),
        unit: "W m^-2".into(),
        conserved,
        positive_down: true,
    };
    vec![
        ConservationFixture {
            name: "interface_unit_mismatch",
            emitted: vec![heat(ConservedClass::None)],
            // The slow side expects a temperature, not an energy flux.
            consumed: vec![FluxConsumer {
                name: "heat_flux".into(),
                consumer: "slow".into(),
                unit: "K".into(),
                positive_down: true,
            }],
            ledgers: vec![],
            expect: DiagCode::InterfaceUnitMismatch,
        },
        ConservationFixture {
            name: "unclosed_energy_flux",
            // Declared to carry energy, consumed correctly — but no
            // budget ledger accumulates it.
            emitted: vec![heat(ConservedClass::Energy)],
            consumed: vec![FluxConsumer {
                name: "heat_flux".into(),
                consumer: "slow".into(),
                unit: "W m^-2".into(),
                positive_down: true,
            }],
            ledgers: vec![LedgerEntry {
                flux: "heat_flux".into(),
                ledger: ConservedClass::Water,
            }],
            expect: DiagCode::UnclosedConservedFlux,
        },
    ]
}

/// Fusion-legality fixtures: each pair must refuse to fuse. Both were
/// silently miscompiled by the pre-analysis `can_fuse` (the fused result
/// diverged bitwise from the naive backend).
pub fn fusion_fixtures() -> Vec<FusionFixture> {
    vec![
        FusionFixture {
            name: "illegal_fusion_anti_dep",
            source: ILLEGAL_FUSION_ANTI_SRC,
            sdfg: lower("illegal_fusion_anti_dep", ILLEGAL_FUSION_ANTI_SRC),
            pair: (0, 1),
            expect: DiagCode::FusionAntiDep,
        },
        FusionFixture {
            name: "illegal_fusion_fixed_level_flow",
            source: ILLEGAL_FUSION_FLOW_SRC,
            sdfg: lower("illegal_fusion_fixed_level_flow", ILLEGAL_FUSION_FLOW_SRC),
            pair: (0, 1),
            expect: DiagCode::FusionFlowDep,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{fusion_legality, verify_sdfg, Certification};

    #[test]
    fn every_verifier_fixture_triggers_its_codes() {
        for f in verifier_fixtures() {
            let rep = verify_sdfg(&f.sdfg, &f.ctx);
            for code in &f.expect {
                assert!(
                    rep.diagnostics.iter().any(|d| d.code == *code),
                    "fixture `{}` missing expected {:?}; got {:?}",
                    f.name,
                    code,
                    rep.diagnostics
                );
            }
        }
    }

    #[test]
    fn racy_fixtures_are_not_parallel_safe() {
        for f in verifier_fixtures() {
            let rep = verify_sdfg(&f.sdfg, &f.ctx);
            match f.name {
                "racy_scatter" | "racy_jacobi" => {
                    assert_eq!(rep.cert(0), Certification::Sequential, "{}", f.name)
                }
                "scatter_reduction" => {
                    assert_eq!(rep.cert(0), Certification::Reduction, "{}", f.name)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn every_perf_fixture_triggers_its_codes() {
        use crate::cost::{self, CostInputs};
        use crate::transforms::fuse_maps;
        let roof = machine::Roofline::gh200_dace();
        for f in perf_fixtures() {
            let fused = fuse_maps(&f.sdfg);
            let inputs = CostInputs {
                ctx: &f.ctx,
                sizes: &f.sizes,
                elided_stores: &[],
            };
            let mut diags = cost::perf_diagnostics(&fused, &inputs, &roof);
            if let Some(base) = &f.baseline {
                let cur = cost::analyze_compiled(&fused, &inputs, &roof);
                diags.extend(cost::check_regression(&cur, base));
            }
            for code in &f.expect {
                assert!(
                    diags.iter().any(|d| d.code == *code),
                    "perf fixture `{}` missing expected {:?}; got {:?}",
                    f.name,
                    code,
                    diags
                );
            }
            // Perf findings are never fabricated errors: the verifier
            // still certifies these kernels as race-free.
            let rep = verify_sdfg(&f.sdfg, &f.ctx);
            assert!(rep.is_clean(), "perf fixture `{}` must verify clean", f.name);
        }
    }

    #[test]
    fn every_fusion_fixture_is_refused_with_its_code() {
        for f in fusion_fixtures() {
            let (i, j) = f.pair;
            let d = fusion_legality(&f.sdfg.states[i], &f.sdfg.states[j])
                .expect_err(f.name);
            assert_eq!(d.code, f.expect, "fixture `{}`", f.name);
        }
    }

    #[test]
    fn every_units_fixture_triggers_its_code_at_the_exact_span() {
        use crate::units::check_units;
        for f in units_fixtures() {
            let rep = check_units(&f.sdfg, &f.ctx);
            let hit = rep
                .diagnostics
                .iter()
                .find(|d| d.code == f.expect)
                .unwrap_or_else(|| {
                    panic!(
                        "units fixture `{}` missing expected {:?}; got {:?}",
                        f.name, f.expect, rep.diagnostics
                    )
                });
            assert_eq!(
                (hit.span.line, hit.span.col),
                f.at,
                "units fixture `{}` anchored at the wrong position",
                f.name
            );
        }
    }

    #[test]
    fn every_conservation_fixture_triggers_its_code() {
        use crate::units::check_conservation;
        for f in conservation_fixtures() {
            let diags = check_conservation(&f.emitted, &f.consumed, &f.ledgers);
            assert!(
                diags.iter().any(|d| d.code == f.expect),
                "conservation fixture `{}` missing expected {:?}; got {diags:?}",
                f.name,
                f.expect
            );
            assert!(
                diags.iter().all(|d| d.span.is_synthetic()),
                "boundary findings are registry-level, not source-level"
            );
        }
    }

    #[test]
    fn dsl_fixtures_carry_real_spans() {
        for f in verifier_fixtures().iter().filter(|f| !f.source.is_empty()) {
            let rep = verify_sdfg(&f.sdfg, &f.ctx);
            let errs: Vec<_> = rep.errors().collect();
            assert!(
                errs.iter().all(|d| !d.span.is_synthetic()),
                "fixture `{}` produced a spanless error diagnostic",
                f.name
            );
        }
    }
}
