//! Land + dynamic vegetation component (JSBach-like).
//!
//! Table 2 of the paper gives the land state shape we reproduce: four
//! physical state variables on five soil levels, 21 carbon pools plus the
//! leaf area index, associated with up to 11 plant functional types, plus
//! hydrological discharge from land to ocean.
//!
//! §5.1: "the introduction of an interactive biosphere model introduced a
//! very large number of additional small GPU kernels" — the land model is
//! deliberately structured as many small per-process, per-PFT kernels
//! routed through a [`kernels::LaunchRecorder`], which is what makes the
//! CUDA-graph replay optimization measurable (machine model + the
//! `land_kernels` bench).
//!
//! Carbon discipline: every flux is an explicit transfer between pools or
//! an exchange with the atmosphere accumulated in `nee_acc`, so total
//! carbon (pools + exported NEE) is conserved to round-off. Water
//! likewise: precipitation in = soil water + river storage + discharge +
//! evapotranspiration.

pub mod dsl;
pub mod kernels;
pub mod model;
pub mod params;
pub mod pools;
pub mod rivers;
pub mod soil;
pub mod state;

pub use kernels::LaunchRecorder;
pub use model::LandModel;
pub use params::LandParams;
pub use pools::CarbonPool;
pub use state::LandState;

// The freshwater-flux bounds formerly exported here live in the typed
// registry `coupler::fluxreg`, alongside the flux's unit and its
// Water conservation class.
