//! Minimal offline stand-in for `crossbeam` (see `shims/README.md`).
//!
//! Implements the multi-producer **multi-consumer** channel API the
//! workspace uses (`channel::{bounded, unbounded, Sender, Receiver}`,
//! blocking `send`/`recv`, `recv_timeout`, `try_recv`, blocking `iter`)
//! on a mutex + condvar queue. Semantics match crossbeam where this
//! repository depends on them: cloneable endpoints, FIFO per channel,
//! `send` blocks when a bounded channel is full, `recv` errors once all
//! senders are dropped and the queue is drained.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Like crossbeam, `Debug` does not require `T: Debug` (the payload
    /// is elided so channels can carry non-Debug messages).
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]: the channel was full or
    /// every receiver is gone. The payload is handed back either way.
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Channel with capacity `cap`; `send` blocks while full. `cap == 0`
    /// is treated as capacity 1 (this shim has no rendezvous mode; the
    /// workspace never uses `bounded(0)`).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender { chan: chan.clone() },
            Receiver { chan },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap_or_else(|p| p.into_inner()).senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap_or_else(|p| p.into_inner()).receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .chan
                    .not_full
                    .wait(st)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Non-blocking send: hands the value back instead of waiting when
        /// the channel is full (the load-shedding path).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.cap.is_some_and(|c| st.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = st.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _res) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                st = g;
            }
        }

        /// Blocking iterator: yields until the channel is disconnected and
        /// drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(10u32).unwrap();
            let h = std::thread::spawn(move || {
                tx.send(20).unwrap(); // blocks until the first recv
                30
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(10));
            assert_eq!(rx.recv(), Ok(20));
            assert_eq!(h.join().unwrap(), 30);
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            tx.try_send(1u32).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!(a + b, 3);
        }

        #[test]
        fn iter_ends_on_disconnect() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }
    }
}
