//! Static dataflow verification over extracted memlets.
//!
//! This is the analysis layer that makes the transformation passes and
//! the parallel executor *provably* safe instead of safe-by-convention
//! (the paper's point about DaCe: the SDFG's explicit dataflow is what
//! lets metaprograms apply aggressive rewrites without a correctness
//! leap of faith). Four checks, all reasoning over the affine access
//! relations of [`crate::memlet`]:
//!
//! 1. **Race detection** ([`verify_sdfg`]): a map scope is certified
//!    [`Certification::ParallelSafe`] only when every write's point
//!    relation is the injective identity `p -> p` (iterations write
//!    disjoint elements) and no read of a scope-written field goes
//!    through a neighbor indirection (which would make the result
//!    depend on iteration order). Scatter-accumulations
//!    (`f(nbr(p)) = f(nbr(p)) + …`) are flagged separately as
//!    [`Certification::Reduction`]. Only certified scopes may run on
//!    the data-parallel executor path; everything else falls back to
//!    sequential execution (`exec::compile_certified`).
//! 2. **Fusion legality** ([`fusion_legality`]): flow, anti, and output
//!    dependences crossing a fusion boundary must be pointwise and
//!    level-aligned, otherwise the fused per-point schedule observes
//!    partially-updated values. `transforms::fuse_maps` refuses any
//!    fusion this check rejects.
//! 3. **Bounds checking**: every access lands inside its field's
//!    declared extent given the map ranges — domains match (directly or
//!    through the declared source/target domains of a neighbor
//!    relation), lookup slots stay below the relation arity, vertical
//!    halo offsets `k ± c` stay within the declared halo width, fixed
//!    levels stay below the declared vertical extent.
//! 4. **Liveness**: reads of never-written non-input fields
//!    (read-before-write), writes to declared inputs, dead writes
//!    (written, never read, not a declared output), unused inputs.
//!
//! Every diagnostic carries a [`Span`] from `loc.rs` end-to-end, so
//! `esm-lint` output is clickable `file:line:col`.

use crate::loc::Span;
use crate::memlet::{self, LevelRel, Memlet, PointRel, StateMemlets};
use crate::sdfg::{Sdfg, State};
use std::collections::{HashMap, HashSet};
use std::fmt;

// ------------------------------------------------------------------
// Diagnostics
// ------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// Typed diagnostic codes. Errors fail `esm-lint`; warnings print only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// E0101: write through a non-injective point relation — two map
    /// iterations may store to the same element.
    RacyWrite,
    /// E0102: neighbor-indexed read of a field the same scope writes —
    /// the value observed depends on iteration order.
    RacyRead,
    /// W0103: scatter-accumulation — legal only with an ordered or
    /// atomic combine; certified `Reduction`, never `ParallelSafe`.
    ScatterReduction,
    /// E0201: flow dependence (write-then-read) crosses the fusion
    /// boundary non-pointwise or with mismatched level windows.
    FusionFlowDep,
    /// E0202: anti dependence (read-then-write) crosses the fusion
    /// boundary — the fused schedule would read already-overwritten
    /// values.
    FusionAntiDep,
    /// E0203: output dependence with mismatched access relations — the
    /// fused schedule may change the final value of an element.
    FusionOutputDep,
    /// E0204: fusion candidates iterate different domains.
    FusionShape,
    /// E0301: vertical halo offset exceeds the declared halo width.
    HaloOverflow,
    /// E0302: fixed level outside the declared vertical extent.
    LevelOutOfBounds,
    /// E0303: access lands in a different domain than the field's.
    DomainMismatch,
    /// E0304: unknown field, domain, or neighbor relation.
    UnknownSymbol,
    /// E0305: 2-D field accessed with a level index.
    DimensionMismatch,
    /// E0306: lookup slot not below the relation arity.
    SlotOutOfBounds,
    /// E0401: read of a field that is neither a declared input nor
    /// written earlier.
    ReadBeforeWrite,
    /// E0402: write to a declared input field.
    WriteToInput,
    /// W0403: field written but never read and not a declared output.
    DeadWrite,
    /// W0404: declared input never read.
    UnusedInput,
    /// W0501: the same indirect gather (field through (relation, slot) at
    /// one level) is loaded repeatedly within a map body —
    /// `transforms::hoist_gathers` would materialize it once.
    RedundantGather,
    /// W0502: arithmetic intensity below the machine balance point while
    /// redundant gathers remain — memory-bound with a known transform
    /// available.
    BelowRoofline,
    /// E0503: per-point lookup count or predicted time regressed against
    /// the checked-in cost baseline.
    CostRegression,
    /// E0601: operands of +/- (or a declared target and its expression)
    /// have unequal physical units.
    UnitMismatch,
    /// E0602: transcendental intrinsic applied to a dimensioned argument.
    DimensionlessRequired,
    /// W0604: a written field's unit is fully unconstrained (no
    /// declaration, all-literal expression) — inference can't check it.
    UnconstrainedLiteral,
    /// E0605: a coupler-exchanged flux is emitted and consumed with
    /// mismatched units or sign conventions (or never consumed at all).
    InterfaceUnitMismatch,
    /// E0606: a flux declared to carry a conserved quantity is not
    /// accumulated into a matching `core::budgets` ledger.
    UnclosedConservedFlux,
}

impl DiagCode {
    pub fn code(&self) -> &'static str {
        match self {
            DiagCode::RacyWrite => "E0101",
            DiagCode::RacyRead => "E0102",
            DiagCode::ScatterReduction => "W0103",
            DiagCode::FusionFlowDep => "E0201",
            DiagCode::FusionAntiDep => "E0202",
            DiagCode::FusionOutputDep => "E0203",
            DiagCode::FusionShape => "E0204",
            DiagCode::HaloOverflow => "E0301",
            DiagCode::LevelOutOfBounds => "E0302",
            DiagCode::DomainMismatch => "E0303",
            DiagCode::UnknownSymbol => "E0304",
            DiagCode::DimensionMismatch => "E0305",
            DiagCode::SlotOutOfBounds => "E0306",
            DiagCode::ReadBeforeWrite => "E0401",
            DiagCode::WriteToInput => "E0402",
            DiagCode::DeadWrite => "W0403",
            DiagCode::UnusedInput => "W0404",
            DiagCode::RedundantGather => "W0501",
            DiagCode::BelowRoofline => "W0502",
            DiagCode::CostRegression => "E0503",
            DiagCode::UnitMismatch => "E0601",
            DiagCode::DimensionlessRequired => "E0602",
            DiagCode::UnconstrainedLiteral => "W0604",
            DiagCode::InterfaceUnitMismatch => "E0605",
            DiagCode::UnclosedConservedFlux => "E0606",
        }
    }

    pub fn severity(&self) -> Severity {
        match self {
            DiagCode::ScatterReduction
            | DiagCode::DeadWrite
            | DiagCode::UnusedInput
            | DiagCode::RedundantGather
            | DiagCode::BelowRoofline
            | DiagCode::UnconstrainedLiteral => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One finding, anchored to a source span and the SDFG state it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub code: DiagCode,
    pub message: String,
    pub span: Span,
    /// Label of the SDFG state (map scope) the finding is in.
    pub state: String,
}

impl Diagnostic {
    pub fn new(code: DiagCode, message: impl Into<String>, span: Span, state: &str) -> Diagnostic {
        Diagnostic {
            code,
            message: message.into(),
            span,
            state: state.to_string(),
        }
    }

    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::diag::render(self))
    }
}

/// Typed analysis failure: one or more error-severity diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisError {
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisError {
    pub fn new(diagnostics: Vec<Diagnostic>) -> AnalysisError {
        AnalysisError { diagnostics }
    }

    pub fn primary(&self) -> &Diagnostic {
        &self.diagnostics[0]
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AnalysisError {}

// ------------------------------------------------------------------
// Declarations the verifier checks against
// ------------------------------------------------------------------

/// Declared signature of a neighbor relation: maps entities of `source`
/// to entities of `target`, `arity` slots per entity.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationSig {
    pub source: String,
    pub target: String,
    pub arity: usize,
}

/// Declared shape of a field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldShape {
    pub domain: String,
    /// `true` for 3-D (vertically extended) fields.
    pub is_3d: bool,
}

/// Everything the verifier knows about the world the kernels run in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisContext {
    pub domains: HashSet<String>,
    pub relations: HashMap<String, RelationSig>,
    pub fields: HashMap<String, FieldShape>,
    pub inputs: HashSet<String>,
    pub outputs: HashSet<String>,
    /// Provable vertical halo width: `k ± c` is in bounds for `|c| <= halo`.
    pub halo: i32,
    /// Concrete vertical extent when known (bounds Fixed-level accesses).
    pub nlev: Option<usize>,
    /// Declared physical units, checked by `units::check_units`.
    pub units: HashMap<String, crate::units::Unit>,
}

impl AnalysisContext {
    pub fn new() -> AnalysisContext {
        AnalysisContext {
            halo: 1,
            ..Default::default()
        }
    }

    pub fn domain(mut self, name: &str) -> Self {
        self.domains.insert(name.to_string());
        self
    }

    pub fn relation(mut self, name: &str, source: &str, target: &str, arity: usize) -> Self {
        self.relations.insert(
            name.to_string(),
            RelationSig {
                source: source.to_string(),
                target: target.to_string(),
                arity,
            },
        );
        self
    }

    /// Declare a field; `io` marks it input (read-only), output, or
    /// intermediate.
    pub fn field(mut self, name: &str, domain: &str, is_3d: bool, io: FieldIo) -> Self {
        self.fields.insert(
            name.to_string(),
            FieldShape {
                domain: domain.to_string(),
                is_3d,
            },
        );
        match io {
            FieldIo::Input => {
                self.inputs.insert(name.to_string());
            }
            FieldIo::Output => {
                self.outputs.insert(name.to_string());
            }
            FieldIo::Intermediate => {}
        }
        self
    }

    pub fn with_halo(mut self, halo: i32) -> Self {
        self.halo = halo;
        self
    }

    pub fn with_nlev(mut self, nlev: usize) -> Self {
        self.nlev = Some(nlev);
        self
    }

    /// Declare a field's physical unit (text parsed by
    /// [`crate::units::Unit::parse`], e.g. `"W m^-2"`). Panics on an
    /// unparseable unit — declarations are static tables, so a bad one
    /// is a programming error, not an analysis finding.
    pub fn unit(mut self, name: &str, unit: &str) -> Self {
        let u = crate::units::Unit::parse(unit)
            .unwrap_or_else(|e| panic!("bad unit declaration for `{name}`: {e}"));
        self.units.insert(name.to_string(), u);
        self
    }
}

/// Role of a declared field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldIo {
    Input,
    Output,
    Intermediate,
}

// ------------------------------------------------------------------
// Certification
// ------------------------------------------------------------------

/// What the race analysis proved about one map scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certification {
    /// Writes disjoint across iterations, no order-dependent reads: the
    /// scope may run data-parallel over entities.
    ParallelSafe,
    /// Scatter-accumulation detected: parallel only with an ordered or
    /// atomic combine, which the executor does not provide — sequential.
    Reduction,
    /// A race was detected (diagnostics say where): sequential only.
    Sequential,
}

impl fmt::Display for Certification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Certification::ParallelSafe => write!(f, "ParallelSafe"),
            Certification::Reduction => write!(f, "Reduction"),
            Certification::Sequential => write!(f, "Sequential"),
        }
    }
}

/// Verdict for one state, index-aligned with `sdfg.states`.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVerdict {
    pub label: String,
    pub cert: Certification,
    /// Spans of pointwise accumulations (`acc(p) = acc(p) + …`): still
    /// ParallelSafe over entities, but flagged for reduction-aware
    /// backends.
    pub pointwise_reductions: Vec<Span>,
}

/// Full verification result of one SDFG.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    pub states: Vec<StateVerdict>,
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// No error-severity findings.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    pub fn cert(&self, state_idx: usize) -> Certification {
        self.states[state_idx].cert
    }

    /// Every state certified ParallelSafe (the whole graph may run
    /// data-parallel).
    pub fn all_parallel_safe(&self) -> bool {
        self.states
            .iter()
            .all(|s| s.cert == Certification::ParallelSafe)
    }

    /// Escalate into a typed error if any error diagnostic is present.
    pub fn into_result(self) -> Result<AnalysisReport, AnalysisError> {
        if self.is_clean() {
            Ok(self)
        } else {
            let errs = self
                .diagnostics
                .iter()
                .filter(|d| d.severity() == Severity::Error)
                .cloned()
                .collect();
            Err(AnalysisError::new(errs))
        }
    }
}

// ------------------------------------------------------------------
// Check 1: race detection / parallel certification
// ------------------------------------------------------------------

/// Race-analyze one map scope. Returns the verdict and appends findings.
pub fn certify_scope(m: &StateMemlets, diags: &mut Vec<Diagnostic>) -> StateVerdict {
    let mut cert = Certification::ParallelSafe;
    let mut pointwise_reductions = Vec::new();

    for w in &m.writes {
        if w.point.is_injective() {
            if m.is_accumulation(w.tasklet) {
                pointwise_reductions.push(w.span);
            }
            continue;
        }
        if m.is_accumulation(w.tasklet) {
            diags.push(Diagnostic::new(
                DiagCode::ScatterReduction,
                format!(
                    "scatter-accumulation into `{}` through `{}`: iterations may combine \
                     into the same element; certified Reduction, not ParallelSafe",
                    w.field, w.point
                ),
                w.span,
                &m.label,
            ));
            if cert == Certification::ParallelSafe {
                cert = Certification::Reduction;
            }
        } else {
            diags.push(Diagnostic::new(
                DiagCode::RacyWrite,
                format!(
                    "write to `{}` through non-injective `{}`: two iterations of the map \
                     over `{}` may store to the same element",
                    w.field, w.point, m.domain
                ),
                w.span,
                &m.label,
            ));
            cert = Certification::Sequential;
        }
    }

    for r in &m.reads {
        // The accumulator self-read of a scatter-reduction is covered by
        // the W0103 finding on the write; don't double-report it as a
        // racy read.
        let is_accumulator_read = m.is_accumulation(r.tasklet)
            && m
                .writes
                .iter()
                .any(|w| w.tasklet == r.tasklet && w.field == r.field
                    && w.point == r.point && w.level == r.level);
        if !r.point.is_injective() && m.writes_field(&r.field) && !is_accumulator_read {
            diags.push(Diagnostic::new(
                DiagCode::RacyRead,
                format!(
                    "neighbor read `{}` of field `{}` written in the same map scope: \
                     the value observed depends on iteration order",
                    r, r.field
                ),
                r.span,
                &m.label,
            ));
            cert = Certification::Sequential;
        }
    }

    StateVerdict {
        label: m.label.clone(),
        cert,
        pointwise_reductions,
    }
}

// ------------------------------------------------------------------
// Check 2: fusion legality
// ------------------------------------------------------------------

/// May states `a` and `b` (in that order) be fused into one map scope?
/// Returns the first violated dependence as a typed diagnostic.
pub fn fusion_legality(a: &State, b: &State) -> Result<(), Diagnostic> {
    if a.map.domain != b.map.domain {
        return Err(Diagnostic::new(
            DiagCode::FusionShape,
            format!(
                "cannot fuse maps over different domains `{}` and `{}`",
                a.map.domain, b.map.domain
            ),
            b.span,
            &b.label,
        ));
    }
    let ma = memlet::state_memlets(a);
    let mb = memlet::state_memlets(b);
    let over_levels = a.map.over_levels || b.map.over_levels;

    // Flow dependences: `a` writes f, `b` reads f.
    for r in &mb.reads {
        if !ma.writes_field(&r.field) {
            continue;
        }
        if !r.point.is_injective() {
            return Err(Diagnostic::new(
                DiagCode::FusionFlowDep,
                format!(
                    "flow dependence: `{}` reads `{}` through `{}`, but neighbor values \
                     are not yet computed when the fused body runs per point",
                    mb.label, r.field, r.point
                ),
                r.span,
                &mb.label,
            ));
        }
        for w in ma.writes_to(&r.field) {
            if r.level != w.level {
                return Err(Diagnostic::new(
                    DiagCode::FusionFlowDep,
                    format!(
                        "flow dependence: read of `{}` at level window [{}] does not match \
                         the write window [{}]; the fused schedule observes a partially \
                         updated field",
                        r.field, r.level, w.level
                    ),
                    r.span,
                    &mb.label,
                ));
            }
            if !w.level.depends_on_k()
                && over_levels
                && memlet::tasklet_is_level_dependent(&ma, w.tasklet)
            {
                return Err(Diagnostic::new(
                    DiagCode::FusionFlowDep,
                    format!(
                        "flow dependence: `{}` is written to a level-constant location with a \
                         level-dependent value; re-executed per level in the fused 3-D map, \
                         the read observes intermediate values",
                        r.field
                    ),
                    r.span,
                    &mb.label,
                ));
            }
        }
    }

    // Anti dependences: `a` reads f, `b` writes f.
    for r in &ma.reads {
        if !mb.writes_field(&r.field) {
            continue;
        }
        if !r.point.is_injective() {
            return Err(Diagnostic::new(
                DiagCode::FusionAntiDep,
                format!(
                    "anti dependence: `{}` reads `{}` through `{}` while the fused scope \
                     overwrites it; neighbor points may already hold new values",
                    ma.label, r.field, r.point
                ),
                r.span,
                &ma.label,
            ));
        }
        for w in mb.writes_to(&r.field) {
            if r.level != w.level {
                return Err(Diagnostic::new(
                    DiagCode::FusionAntiDep,
                    format!(
                        "anti dependence: read of `{}` at level window [{}] vs overwrite at \
                         [{}]; earlier levels are already overwritten when the fused body \
                         reaches level k",
                        r.field, r.level, w.level
                    ),
                    r.span,
                    &ma.label,
                ));
            }
            if !r.level.depends_on_k() && over_levels {
                return Err(Diagnostic::new(
                    DiagCode::FusionAntiDep,
                    format!(
                        "anti dependence: level-constant read of `{}` re-executed per level \
                         observes the overwritten value from the second level on",
                        r.field
                    ),
                    r.span,
                    &ma.label,
                ));
            }
        }
    }

    // Output dependences: both write f.
    for w2 in &mb.writes {
        if !ma.writes_field(&w2.field) {
            continue;
        }
        for w1 in ma.writes_to(&w2.field) {
            if !w1.point.is_injective() || !w2.point.is_injective() || w1.level != w2.level {
                return Err(Diagnostic::new(
                    DiagCode::FusionOutputDep,
                    format!(
                        "output dependence: `{}` written as [{}, {}] and [{}, {}]; the fused \
                         schedule may change which write lands last",
                        w2.field, w1.point, w1.level, w2.point, w2.level
                    ),
                    w2.span,
                    &mb.label,
                ));
            }
        }
    }

    Ok(())
}

// ------------------------------------------------------------------
// Check 3: bounds / shape checking
// ------------------------------------------------------------------

fn check_access_bounds(
    m: &Memlet,
    scope: &StateMemlets,
    ctx: &AnalysisContext,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(shape) = ctx.fields.get(&m.field) else {
        diags.push(Diagnostic::new(
            DiagCode::UnknownSymbol,
            format!("field `{}` is not declared", m.field),
            m.span,
            &scope.label,
        ));
        return;
    };

    // Horizontal: where does the point index land?
    match &m.point {
        PointRel::Identity => {
            if shape.domain != scope.domain {
                diags.push(Diagnostic::new(
                    DiagCode::DomainMismatch,
                    format!(
                        "`{}` lives on `{}` but is accessed at the loop point of a map \
                         over `{}`",
                        m.field, shape.domain, scope.domain
                    ),
                    m.span,
                    &scope.label,
                ));
            }
        }
        PointRel::Indirect { relation, slot } => match ctx.relations.get(relation) {
            None => {
                diags.push(Diagnostic::new(
                    DiagCode::UnknownSymbol,
                    format!("neighbor relation `{relation}` is not declared"),
                    m.span,
                    &scope.label,
                ));
            }
            Some(sig) => {
                if sig.source != scope.domain {
                    diags.push(Diagnostic::new(
                        DiagCode::DomainMismatch,
                        format!(
                            "relation `{relation}` maps from `{}`, but the map iterates `{}`",
                            sig.source, scope.domain
                        ),
                        m.span,
                        &scope.label,
                    ));
                }
                if sig.target != shape.domain {
                    diags.push(Diagnostic::new(
                        DiagCode::DomainMismatch,
                        format!(
                            "relation `{relation}` lands in `{}`, but `{}` lives on `{}`",
                            sig.target, m.field, shape.domain
                        ),
                        m.span,
                        &scope.label,
                    ));
                }
                if *slot >= sig.arity {
                    diags.push(Diagnostic::new(
                        DiagCode::SlotOutOfBounds,
                        format!(
                            "slot {slot} out of bounds for relation `{relation}` of arity {}",
                            sig.arity
                        ),
                        m.span,
                        &scope.label,
                    ));
                }
            }
        },
    }

    // Vertical: does the level window fit the declared extent?
    match (shape.is_3d, m.level) {
        (false, LevelRel::Surface) => {}
        (false, LevelRel::Affine { k_coef: 0, offset: 0 }) => {}
        (false, LevelRel::Affine { k_coef: 0, offset }) => {
            diags.push(Diagnostic::new(
                DiagCode::LevelOutOfBounds,
                format!("level {offset} of 2-D field `{}` (only level 0 exists)", m.field),
                m.span,
                &scope.label,
            ));
        }
        (false, LevelRel::Affine { .. }) => {
            diags.push(Diagnostic::new(
                DiagCode::DimensionMismatch,
                format!("2-D field `{}` accessed with a level index", m.field),
                m.span,
                &scope.label,
            ));
        }
        (true, LevelRel::Affine { k_coef: 1, offset }) => {
            if offset.abs() > ctx.halo {
                diags.push(Diagnostic::new(
                    DiagCode::HaloOverflow,
                    format!(
                        "halo access `k{offset:+}` to `{}` exceeds the declared halo width \
                         ±{}; the map range cannot prove it in bounds",
                        m.field, ctx.halo
                    ),
                    m.span,
                    &scope.label,
                ));
            }
        }
        (true, LevelRel::Affine { offset, .. }) => {
            if let Some(nlev) = ctx.nlev {
                if offset as usize >= nlev || offset < 0 {
                    diags.push(Diagnostic::new(
                        DiagCode::LevelOutOfBounds,
                        format!(
                            "fixed level {offset} outside the declared vertical extent {nlev} \
                             of `{}`",
                            m.field
                        ),
                        m.span,
                        &scope.label,
                    ));
                }
            }
        }
        (true, LevelRel::Surface) => {} // reads level 0: in bounds.
    }
}

// ------------------------------------------------------------------
// Check 4: liveness (read-before-write, dead writes)
// ------------------------------------------------------------------

fn check_liveness(scopes: &[StateMemlets], ctx: &AnalysisContext, diags: &mut Vec<Diagnostic>) {
    // Tasklet-granular program order: reads of tasklet t see writes of
    // strictly earlier tasklets (earlier states, or same state, lower
    // tasklet index).
    let mut written: HashSet<&str> = HashSet::new();
    let mut read_anywhere: HashSet<&str> = HashSet::new();
    let mut read_after_write: HashSet<&str> = HashSet::new();
    let mut last_write: HashMap<&str, (Span, &str)> = HashMap::new();

    for scope in scopes {
        let n_tasklets = scope.writes.iter().map(|w| w.tasklet + 1).max().unwrap_or(0);
        for t in 0..n_tasklets {
            for r in scope.reads.iter().filter(|r| r.tasklet == t) {
                read_anywhere.insert(r.field.as_str());
                if written.contains(r.field.as_str()) {
                    read_after_write.insert(r.field.as_str());
                } else if !ctx.inputs.contains(&r.field) {
                    diags.push(Diagnostic::new(
                        DiagCode::ReadBeforeWrite,
                        format!(
                            "`{}` is read before any write and is not a declared input \
                             (uninitialized data)",
                            r.field
                        ),
                        r.span,
                        &scope.label,
                    ));
                }
            }
            for w in scope.writes.iter().filter(|w| w.tasklet == t) {
                if ctx.inputs.contains(&w.field) {
                    diags.push(Diagnostic::new(
                        DiagCode::WriteToInput,
                        format!("write to declared input field `{}`", w.field),
                        w.span,
                        &scope.label,
                    ));
                }
                written.insert(w.field.as_str());
                last_write.insert(w.field.as_str(), (w.span, scope.label.as_str()));
            }
        }
    }

    let mut dead: Vec<_> = last_write
        .iter()
        .filter(|(f, _)| !ctx.outputs.contains(**f) && !read_after_write.contains(**f))
        .collect();
    dead.sort_by_key(|(f, _)| **f);
    for (f, (span, state)) in dead {
        diags.push(Diagnostic::new(
            DiagCode::DeadWrite,
            format!("`{f}` is written but never read and is not a declared output"),
            *span,
            state,
        ));
    }

    let mut unused: Vec<_> = ctx
        .inputs
        .iter()
        .filter(|f| !read_anywhere.contains(f.as_str()))
        .collect();
    unused.sort();
    for f in unused {
        diags.push(Diagnostic::new(
            DiagCode::UnusedInput,
            format!("declared input `{f}` is never read"),
            Span::synthetic(),
            "<program>",
        ));
    }
}

// ------------------------------------------------------------------
// Entry point
// ------------------------------------------------------------------

/// Verify a whole SDFG against its declared context: race-certify every
/// state, bounds-check every memlet, liveness-check the state sequence.
pub fn verify_sdfg(sdfg: &Sdfg, ctx: &AnalysisContext) -> AnalysisReport {
    let scopes = memlet::sdfg_memlets(sdfg);
    let mut diags = Vec::new();
    let mut states = Vec::with_capacity(scopes.len());

    for scope in &scopes {
        if !ctx.domains.contains(&scope.domain) {
            diags.push(Diagnostic::new(
                DiagCode::UnknownSymbol,
                format!("map iterates undeclared domain `{}`", scope.domain),
                scope.span,
                &scope.label,
            ));
        }
        for m in scope.writes.iter().chain(scope.reads.iter()) {
            check_access_bounds(m, scope, ctx, &mut diags);
        }
        states.push(certify_scope(scope, &mut diags));
    }

    check_liveness(&scopes, ctx, &mut diags);

    AnalysisReport {
        states,
        diagnostics: diags,
    }
}

/// Verify and escalate: `Err` carries every error-severity diagnostic.
pub fn verify_sdfg_strict(sdfg: &Sdfg, ctx: &AnalysisContext) -> Result<AnalysisReport, AnalysisError> {
    verify_sdfg(sdfg, ctx).into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sdfg::Sdfg;

    fn ctx_cells() -> AnalysisContext {
        AnalysisContext::new()
            .domain("cells")
            .domain("edges")
            .relation("edge", "cells", "edges", 3)
            .relation("neighbor", "cells", "cells", 3)
            .field("inp", "cells", true, FieldIo::Input)
            .field("vn_e", "edges", true, FieldIo::Input)
            .field("s2d", "cells", false, FieldIo::Input)
            .field("out", "cells", true, FieldIo::Output)
            .field("out2", "cells", true, FieldIo::Output)
    }

    fn lower(src: &str) -> Sdfg {
        Sdfg::from_program("t", &parse(src).unwrap())
    }

    #[test]
    fn clean_kernel_certifies_parallel_safe() {
        let sdfg = lower("kernel t over cells out(p,k) = inp(p,k) + vn_e(edge(p,1),k); end");
        let rep = verify_sdfg(&sdfg, &ctx_cells());
        assert!(rep.is_clean(), "{:?}", rep.diagnostics);
        assert_eq!(rep.cert(0), Certification::ParallelSafe);
        assert!(rep.all_parallel_safe());
    }

    #[test]
    fn neighbor_read_of_written_field_is_a_race() {
        // Jacobi-in-place: the classic Gauss-Seidel-vs-Jacobi race.
        let ctx = ctx_cells().field("x", "cells", true, FieldIo::Input);
        let sdfg = lower("kernel t over cells x(p,k) = 0.5 * x(neighbor(p,0),k); end");
        let rep = verify_sdfg(&sdfg, &ctx);
        assert!(!rep.is_clean());
        assert_eq!(rep.cert(0), Certification::Sequential);
        assert!(rep.errors().any(|d| d.code == DiagCode::RacyRead));
        let d = rep.errors().next().unwrap();
        assert!(!d.span.is_synthetic(), "race diagnostics carry spans");
    }

    #[test]
    fn halo_overflow_and_fixed_level_bounds() {
        let sdfg = lower("kernel t over cells out(p,k) = inp(p,k+2) + inp(p, 60); end");
        let ctx = ctx_cells().with_halo(1).with_nlev(30);
        let rep = verify_sdfg(&sdfg, &ctx);
        assert!(rep.errors().any(|d| d.code == DiagCode::HaloOverflow));
        assert!(rep.errors().any(|d| d.code == DiagCode::LevelOutOfBounds));
        // Widening the halo legalizes the k+2 access but not the level 60.
        let rep2 = verify_sdfg(&sdfg, &ctx_cells().with_halo(2).with_nlev(30));
        assert!(!rep2.errors().any(|d| d.code == DiagCode::HaloOverflow));
        assert!(rep2.errors().any(|d| d.code == DiagCode::LevelOutOfBounds));
    }

    #[test]
    fn domain_and_slot_mismatches_are_caught() {
        let sdfg = lower(
            r#"
            kernel t over cells
              out(p,k) = vn_e(p,k);
              out2(p,k) = vn_e(edge(p,7),k) + inp(edge(p,0),k);
            end
        "#,
        );
        let rep = verify_sdfg(&sdfg, &ctx_cells());
        // vn_e lives on edges, accessed at the cell loop point.
        assert!(rep.errors().any(|d| d.code == DiagCode::DomainMismatch
            && d.message.contains("vn_e")));
        // slot 7 of an arity-3 relation.
        assert!(rep.errors().any(|d| d.code == DiagCode::SlotOutOfBounds));
        // inp lives on cells but `edge` lands in edges.
        assert!(rep.errors().any(|d| d.code == DiagCode::DomainMismatch
            && d.message.contains("lands in")));
    }

    #[test]
    fn dimension_mismatch_on_2d_field() {
        let sdfg = lower("kernel t over cells out(p,k) = s2d(p,k) + s2d(p, 3); end");
        let rep = verify_sdfg(&sdfg, &ctx_cells());
        assert!(rep.errors().any(|d| d.code == DiagCode::DimensionMismatch));
        assert!(rep.errors().any(|d| d.code == DiagCode::LevelOutOfBounds));
    }

    #[test]
    fn liveness_read_before_write_and_dead_write() {
        let ctx = ctx_cells().field("tmp", "cells", true, FieldIo::Intermediate).field(
            "ghost",
            "cells",
            true,
            FieldIo::Intermediate,
        );
        let sdfg = lower(
            r#"
            kernel t over cells
              out(p,k) = ghost(p,k) * 2;
              tmp(p,k) = inp(p,k);
            end
        "#,
        );
        let rep = verify_sdfg(&sdfg, &ctx);
        assert!(rep.errors().any(|d| d.code == DiagCode::ReadBeforeWrite
            && d.message.contains("ghost")));
        assert!(rep.warnings().any(|d| d.code == DiagCode::DeadWrite
            && d.message.contains("tmp")));
    }

    #[test]
    fn intermediate_written_then_read_is_live() {
        let ctx = ctx_cells().field("tmp", "cells", true, FieldIo::Intermediate);
        let sdfg = lower(
            r#"
            kernel t over cells
              tmp(p,k) = inp(p,k);
              out(p,k) = tmp(p,k) * 2;
            end
        "#,
        );
        let rep = verify_sdfg(&sdfg, &ctx);
        assert!(rep.is_clean(), "{:?}", rep.diagnostics);
    }

    #[test]
    fn write_to_input_is_an_error() {
        let sdfg = lower("kernel t over cells inp(p,k) = inp(p,k) * 2; end");
        let rep = verify_sdfg(&sdfg, &ctx_cells());
        assert!(rep.errors().any(|d| d.code == DiagCode::WriteToInput));
    }

    #[test]
    fn unused_input_is_a_warning() {
        let ctx = ctx_cells().field("never", "cells", true, FieldIo::Input);
        let sdfg = lower("kernel t over cells out(p,k) = inp(p,k); end");
        let rep = verify_sdfg(&sdfg, &ctx);
        assert!(rep.is_clean(), "warnings only");
        assert!(rep.warnings().any(|d| d.code == DiagCode::UnusedInput
            && d.message.contains("never")));
    }

    #[test]
    fn strict_mode_escalates_to_typed_error() {
        let ctx = ctx_cells().field("x", "cells", true, FieldIo::Input);
        let sdfg = lower("kernel t over cells x(p,k) = x(neighbor(p,0),k); end");
        let err = verify_sdfg_strict(&sdfg, &ctx).unwrap_err();
        assert!(err.diagnostics.iter().all(|d| d.severity() == Severity::Error));
        assert!(err.to_string().contains("E01"), "{err}");
    }

    #[test]
    fn fusion_legality_pointwise_chain_ok() {
        let sdfg = lower(
            r#"
            kernel t over cells
              out(p,k) = inp(p,k) * 2;
              out2(p,k) = out(p,k) + 1;
            end
        "#,
        );
        assert!(fusion_legality(&sdfg.states[0], &sdfg.states[1]).is_ok());
    }

    #[test]
    fn fusion_flow_dep_neighbor_read_rejected() {
        let sdfg = lower(
            r#"
            kernel t over cells
              out(p,k) = inp(p,k) * 2;
              out2(p,k) = out(neighbor(p,0),k);
            end
        "#,
        );
        let d = fusion_legality(&sdfg.states[0], &sdfg.states[1]).unwrap_err();
        assert_eq!(d.code, DiagCode::FusionFlowDep);
        assert!(!d.span.is_synthetic());
    }

    #[test]
    fn fusion_flow_dep_fixed_level_read_rejected() {
        // Previously miscompiled: a Fixed-level read of a freshly
        // written K-level field observes stale data in the fused form.
        let sdfg = lower(
            r#"
            kernel t over cells
              out(p,k) = inp(p,k);
              out2(p,k) = out(p, 2);
            end
        "#,
        );
        let d = fusion_legality(&sdfg.states[0], &sdfg.states[1]).unwrap_err();
        assert_eq!(d.code, DiagCode::FusionFlowDep);
    }

    #[test]
    fn fusion_anti_dep_vertical_offset_rejected() {
        // Previously miscompiled: reading x(p,k-1) before x is
        // overwritten must not fuse with the overwrite.
        let ctx_src = r#"
            kernel t over cells
              out(p,k) = x(p,k-1);
              x(p,k) = inp(p,k);
            end
        "#;
        let sdfg = lower(ctx_src);
        let d = fusion_legality(&sdfg.states[0], &sdfg.states[1]).unwrap_err();
        assert_eq!(d.code, DiagCode::FusionAntiDep);
    }

    #[test]
    fn fusion_output_dep_mismatched_levels_rejected() {
        let sdfg = lower(
            r#"
            kernel t over cells
              out(p,k) = inp(p,k);
              out(p,0) = inp(p,1);
            end
        "#,
        );
        let d = fusion_legality(&sdfg.states[0], &sdfg.states[1]).unwrap_err();
        assert_eq!(d.code, DiagCode::FusionOutputDep);
    }

    #[test]
    fn fusion_cross_domain_rejected() {
        let sdfg = lower(
            r#"
            kernel a over cells out(p,k) = inp(p,k); end
            kernel b over edges vn_out(p,k) = vn_e(p,k); end
        "#,
        );
        let d = fusion_legality(&sdfg.states[0], &sdfg.states[1]).unwrap_err();
        assert_eq!(d.code, DiagCode::FusionShape);
    }
}
