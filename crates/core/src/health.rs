//! Component health monitoring: deadline-based failure detection over
//! mpisim heartbeats.
//!
//! One [`mpisim::heartbeat_round`] per coupling window gives the monitor
//! a per-rank [`BeatStatus`]; the [`FailureDetector`] turns that stream
//! of evidence into verdicts by **missed-beat accrual**: each miss bumps
//! a per-rank suspicion counter, any successful beat resets it, and a
//! rank whose suspicion reaches the configured threshold is declared
//! failed. This separates *detection* (cheap, per-window, tolerant of
//! transient drops) from *declaration* (the expensive decision that
//! triggers degraded-mode coupling and localized recovery in the
//! supervisor).
//!
//! Every observation that changes a rank's standing is appended to a
//! timeline of [`HealthEvent`]s, which the supervisor merges into the
//! [`crate::ResilienceReport`].

use mpisim::BeatStatus;
use std::time::Duration;

/// Tuning of the failure detector and its heartbeat transport.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Monitor-side deadline for one beat.
    pub beat_timeout: Duration,
    /// How long a hung rank may block one round (see
    /// [`mpisim::BeatConfig::hang_hold`]).
    pub hang_hold: Duration,
    /// Consecutive missed beats before a rank is declared failed.
    pub suspicion_threshold: u32,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            beat_timeout: Duration::from_millis(60),
            hang_hold: Duration::from_millis(90),
            suspicion_threshold: 2,
        }
    }
}

impl HealthConfig {
    /// The transport half of this config, for [`mpisim::heartbeat_round`].
    pub fn beat(&self) -> mpisim::BeatConfig {
        mpisim::BeatConfig {
            timeout: self.beat_timeout,
            hang_hold: self.hang_hold,
        }
    }
}

/// One entry of the supervision timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    pub window: u64,
    pub rank: usize,
    pub kind: HealthEventKind,
}

#[derive(Debug, Clone, PartialEq)]
pub enum HealthEventKind {
    /// A beat missed its deadline; suspicion after the miss.
    BeatMissed { suspicion: u32 },
    /// A suspected rank beat again before reaching the threshold.
    BeatResumed,
    /// A live component reported non-finite state through its health
    /// probe (the beat payload).
    UnhealthyState { var: String, value: f64 },
    /// Suspicion reached the threshold: the rank is declared failed.
    Failed,
    /// The supervisor respawned the rank from this checkpoint generation.
    Respawned { generation: u64 },
    /// Replay after a respawn caught the rank back up.
    ReplayCompleted { replayed: u64 },
    /// The rank is healthy again; normal coupling resumed.
    Recovered,
}

impl std::fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let HealthEvent { window, rank, kind } = self;
        match kind {
            HealthEventKind::BeatMissed { suspicion } => {
                write!(f, "window {window}: rank {rank} missed a beat (suspicion {suspicion})")
            }
            HealthEventKind::BeatResumed => {
                write!(f, "window {window}: rank {rank} resumed beating")
            }
            HealthEventKind::UnhealthyState { var, value } => {
                write!(f, "window {window}: rank {rank} unhealthy state {var} = {value}")
            }
            HealthEventKind::Failed => write!(f, "window {window}: rank {rank} declared failed"),
            HealthEventKind::Respawned { generation } => {
                write!(f, "window {window}: rank {rank} respawned from generation {generation}")
            }
            HealthEventKind::ReplayCompleted { replayed } => {
                write!(f, "window {window}: rank {rank} replayed {replayed} windows")
            }
            HealthEventKind::Recovered => write!(f, "window {window}: rank {rank} recovered"),
        }
    }
}

/// A health condition no localized recovery can absorb.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthError {
    /// Every supervised component group is suspected or down at once —
    /// there is no healthy side left to carry degraded coupling.
    AllComponentsDown { window: u64 },
    /// A rank kept failing past the supervisor's respawn budget.
    RespawnBudgetExhausted {
        window: u64,
        rank: usize,
        respawns: u32,
    },
}

impl std::fmt::Display for HealthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthError::AllComponentsDown { window } => {
                write!(f, "window {window}: all component groups down")
            }
            HealthError::RespawnBudgetExhausted {
                window,
                rank,
                respawns,
            } => write!(
                f,
                "window {window}: rank {rank} exhausted its respawn budget ({respawns})"
            ),
        }
    }
}

impl std::error::Error for HealthError {}

/// Per-rank standing after one observed heartbeat round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Beat in time (suspicion reset).
    Healthy,
    /// Missed, but below the threshold — hold the rank's windows, do not
    /// declare failure yet.
    Suspected,
    /// This round's miss crossed the threshold.
    NewlyFailed,
    /// Already declared failed in an earlier round.
    Down,
}

/// Deadline-based failure detector with missed-beat accrual.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    threshold: u32,
    suspicion: Vec<u32>,
    failed: Vec<bool>,
    timeline: Vec<HealthEvent>,
}

impl FailureDetector {
    pub fn new(n_ranks: usize, cfg: &HealthConfig) -> FailureDetector {
        assert!(cfg.suspicion_threshold >= 1);
        FailureDetector {
            threshold: cfg.suspicion_threshold,
            suspicion: vec![0; n_ranks],
            failed: vec![false; n_ranks],
            timeline: Vec::new(),
        }
    }

    /// Fold one round of beat statuses into the detector. Rank 0 (the
    /// monitor itself) always reads healthy.
    pub fn observe(&mut self, window: u64, statuses: &[BeatStatus]) -> Vec<Verdict> {
        statuses
            .iter()
            .enumerate()
            .map(|(rank, status)| {
                if self.failed[rank] {
                    return Verdict::Down;
                }
                if rank == 0 || status.is_ok() {
                    if self.suspicion[rank] > 0 {
                        self.timeline.push(HealthEvent {
                            window,
                            rank,
                            kind: HealthEventKind::BeatResumed,
                        });
                    }
                    self.suspicion[rank] = 0;
                    return Verdict::Healthy;
                }
                self.suspicion[rank] += 1;
                self.timeline.push(HealthEvent {
                    window,
                    rank,
                    kind: HealthEventKind::BeatMissed {
                        suspicion: self.suspicion[rank],
                    },
                });
                if self.suspicion[rank] >= self.threshold {
                    self.failed[rank] = true;
                    self.timeline.push(HealthEvent {
                        window,
                        rank,
                        kind: HealthEventKind::Failed,
                    });
                    Verdict::NewlyFailed
                } else {
                    Verdict::Suspected
                }
            })
            .collect()
    }

    pub fn is_failed(&self, rank: usize) -> bool {
        self.failed[rank]
    }

    pub fn suspicion(&self, rank: usize) -> u32 {
        self.suspicion[rank]
    }

    /// True if any supervised rank is currently suspected or failed —
    /// the supervisor suspends checkpointing under this condition so no
    /// speculative (degraded) state ever reaches the ring.
    pub fn any_unhealthy(&self) -> bool {
        self.suspicion.iter().any(|&s| s > 0) || self.failed.iter().any(|&f| f)
    }

    /// Record a respawn performed by the supervisor.
    pub fn mark_respawned(&mut self, window: u64, rank: usize, generation: u64) {
        self.timeline.push(HealthEvent {
            window,
            rank,
            kind: HealthEventKind::Respawned { generation },
        });
    }

    /// Record a completed replay and clear the rank's failed standing.
    pub fn mark_recovered(&mut self, window: u64, rank: usize, replayed: u64) {
        self.timeline.push(HealthEvent {
            window,
            rank,
            kind: HealthEventKind::ReplayCompleted { replayed },
        });
        self.timeline.push(HealthEvent {
            window,
            rank,
            kind: HealthEventKind::Recovered,
        });
        self.failed[rank] = false;
        self.suspicion[rank] = 0;
    }

    /// Record a live component's non-finite health-probe report.
    pub fn mark_unhealthy_state(&mut self, window: u64, rank: usize, var: &str, value: f64) {
        self.timeline.push(HealthEvent {
            window,
            rank,
            kind: HealthEventKind::UnhealthyState {
                var: var.to_string(),
                value,
            },
        });
    }

    /// The timeline accumulated so far.
    pub fn timeline(&self) -> &[HealthEvent] {
        &self.timeline
    }

    /// Consume the detector, yielding its timeline for the report.
    pub fn into_timeline(self) -> Vec<HealthEvent> {
        self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{heartbeat_round, CommError, FaultPlan};
    use std::sync::Arc;

    fn cfg(threshold: u32) -> HealthConfig {
        HealthConfig {
            suspicion_threshold: threshold,
            ..HealthConfig::default()
        }
    }

    fn miss() -> BeatStatus {
        BeatStatus::Missed(CommError::Timeout {
            src: 1,
            tag: 0,
            waited: Duration::from_millis(1),
            attempts: 1,
        })
    }

    fn ok() -> BeatStatus {
        BeatStatus::Ok(vec![1.0])
    }

    #[test]
    fn failure_needs_accrued_misses_and_ok_resets() {
        let mut d = FailureDetector::new(3, &cfg(2));
        assert_eq!(d.observe(1, &[ok(), miss(), ok()])[1], Verdict::Suspected);
        // The rank recovers before the threshold: suspicion resets.
        assert_eq!(d.observe(2, &[ok(), ok(), ok()])[1], Verdict::Healthy);
        assert_eq!(d.suspicion(1), 0);
        // Two consecutive misses cross the threshold exactly once.
        assert_eq!(d.observe(3, &[ok(), miss(), ok()])[1], Verdict::Suspected);
        assert_eq!(d.observe(4, &[ok(), miss(), ok()])[1], Verdict::NewlyFailed);
        assert_eq!(d.observe(5, &[ok(), miss(), ok()])[1], Verdict::Down);
        assert!(d.is_failed(1));
        assert!(!d.is_failed(2));
        // Timeline: miss, resume, miss, miss, failed.
        let kinds: Vec<_> = d.timeline().iter().map(|e| &e.kind).collect();
        assert!(matches!(kinds[1], HealthEventKind::BeatResumed));
        assert!(matches!(kinds.last().unwrap(), HealthEventKind::Failed));
    }

    #[test]
    fn recovery_clears_standing_and_is_on_the_timeline() {
        let mut d = FailureDetector::new(2, &cfg(1));
        d.observe(1, &[ok(), miss()]);
        assert!(d.is_failed(1));
        d.mark_respawned(2, 1, 7);
        d.mark_recovered(2, 1, 3);
        assert!(!d.is_failed(1));
        assert!(!d.any_unhealthy());
        let kinds: Vec<_> = d.timeline().iter().map(|e| e.kind.clone()).collect();
        assert!(kinds.contains(&HealthEventKind::Respawned { generation: 7 }));
        assert!(kinds.contains(&HealthEventKind::ReplayCompleted { replayed: 3 }));
        assert!(kinds.contains(&HealthEventKind::Recovered));
    }

    #[test]
    fn detector_drives_on_real_heartbeats_with_a_killed_rank() {
        let hc = cfg(2);
        let plan = Arc::new(FaultPlan::new().kill_rank(2, 1));
        let mut d = FailureDetector::new(3, &hc);
        let down = [false; 3];
        let payloads: Vec<Vec<f64>> = (0..3).map(|r| vec![r as f64]).collect();
        let mut declared_at = None;
        for w in 1..=3u64 {
            let statuses = heartbeat_round(3, w, &hc.beat(), Some(&plan), &down, &payloads);
            let verdicts = d.observe(w, &statuses);
            assert_eq!(verdicts[1], Verdict::Healthy);
            if verdicts[2] == Verdict::NewlyFailed {
                declared_at = Some(w);
            }
        }
        assert_eq!(
            declared_at,
            Some(2),
            "two accrued misses (threshold 2) declare at window 2"
        );
    }

    #[test]
    fn hangs_are_detected_without_killing_the_rank() {
        let hc = HealthConfig {
            beat_timeout: Duration::from_millis(40),
            hang_hold: Duration::from_millis(60),
            suspicion_threshold: 2,
        };
        let plan = Arc::new(FaultPlan::new().hang(1, 1));
        let mut d = FailureDetector::new(3, &hc);
        let payloads: Vec<Vec<f64>> = (0..3).map(|_| vec![0.0]).collect();
        for w in 1..=2u64 {
            let statuses = heartbeat_round(3, w, &hc.beat(), Some(&plan), &[false; 3], &payloads);
            d.observe(w, &statuses);
        }
        assert!(d.is_failed(1), "a persistent hang must cross the threshold");
        assert!(!plan.is_dead(1), "the hung rank was never killed");
    }

    #[test]
    fn errors_display_usefully() {
        let e = HealthError::AllComponentsDown { window: 4 };
        assert!(e.to_string().contains("window 4"));
        let e = HealthError::RespawnBudgetExhausted {
            window: 9,
            rank: 2,
            respawns: 3,
        };
        assert!(e.to_string().contains("rank 2"));
    }
}
