//! Linear equation of state and hydrostatic pressure.

use crate::params::{OceanParams, RHO0};
use icongrid::Field3;
use rayon::prelude::*;

/// Density anomaly `rho' / rho0 = -alpha (T - T_ref) + beta (S - S_ref)`
/// (dimensionless).
#[inline]
pub fn density_anomaly(p: &OceanParams, t: f64, s: f64) -> f64 {
    -p.alpha_t * (t - p.t_ref) + p.beta_s * (s - p.s_ref)
}

/// Hydrostatic pressure (divided by rho0, i.e. m^2/s^2) at every level:
/// `press[c,k] = g * (eta_c + sum_{j<=k} rho'_j/rho0 * dz_j)` with the
/// anomaly evaluated at mid-layer (trapezoid-lite).
pub fn hydrostatic_pressure(
    p: &OceanParams,
    temp: &Field3,
    salt: &Field3,
    eta: &[f64],
    out: &mut Field3,
) {
    const G: f64 = 9.80665;
    let nlev = p.nlev;
    out.as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(c, col)| {
            let t = temp.col(c);
            let s = salt.col(c);
            let mut acc = eta[c];
            for k in 0..nlev {
                acc += density_anomaly(p, t[k], s[k]) * p.dz[k] * 0.5;
                col[k] = G * acc;
                acc += density_anomaly(p, t[k], s[k]) * p.dz[k] * 0.5;
            }
        });
}

/// Is the water column statically unstable between levels `k` and `k+1`?
#[inline]
pub fn unstable(p: &OceanParams, t_up: f64, s_up: f64, t_dn: f64, s_dn: f64) -> bool {
    density_anomaly(p, t_up, s_up) > density_anomaly(p, t_dn, s_dn) + 1e-12
}

/// Potential energy release proxy; kept for diagnostics.
pub fn column_density_mean(p: &OceanParams, t: &[f64], s: &[f64]) -> f64 {
    let n = t.len() as f64;
    t.iter()
        .zip(s)
        .map(|(&tt, &ss)| RHO0 * (1.0 + density_anomaly(p, tt, ss)))
        .sum::<f64>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OceanParams {
        OceanParams::new(6, 600.0)
    }

    #[test]
    fn warm_water_is_light_salty_water_is_heavy() {
        let p = params();
        assert!(density_anomaly(&p, 20.0, 35.0) < density_anomaly(&p, 5.0, 35.0));
        assert!(density_anomaly(&p, 10.0, 36.0) > density_anomaly(&p, 10.0, 34.0));
        assert_eq!(density_anomaly(&p, p.t_ref, p.s_ref), 0.0);
    }

    #[test]
    fn pressure_matches_analytic_integral() {
        // hydrostatic_pressure returns the *perturbation* pressure
        // (anomaly-weighted column above plus the surface term); verify
        // against a direct midpoint integration.
        let p = params();
        let n = 3;
        let temp = Field3::from_fn(n, p.nlev, |_, k| 15.0 - k as f64);
        let salt = Field3::from_fn(n, p.nlev, |_, k| 34.5 + 0.1 * k as f64);
        let eta = vec![0.1, 0.0, -0.1];
        let mut press = Field3::zeros(n, p.nlev);
        hydrostatic_pressure(&p, &temp, &salt, &eta, &mut press);
        const G: f64 = 9.80665;
        for (c, &eta_c) in eta.iter().enumerate().take(n) {
            let mut acc = eta_c;
            for k in 0..p.nlev {
                acc += 0.5 * density_anomaly(&p, temp.at(c, k), salt.at(c, k)) * p.dz[k];
                assert!(
                    (press.at(c, k) - G * acc).abs() < 1e-9,
                    "cell {c} level {k}"
                );
                acc += 0.5 * density_anomaly(&p, temp.at(c, k), salt.at(c, k)) * p.dz[k];
            }
        }
        // Higher eta -> higher pressure at every level (same T/S column
        // gradient between cells is small compared to the eta term).
        for k in 0..p.nlev {
            assert!(press.at(0, k) > press.at(2, k));
        }
    }

    #[test]
    fn instability_detection() {
        let p = params();
        // Cold over warm (denser above): unstable.
        assert!(unstable(&p, 2.0, 35.0, 15.0, 35.0));
        // Warm over cold: stable.
        assert!(!unstable(&p, 15.0, 35.0, 2.0, 35.0));
        // Salty over fresh: unstable.
        assert!(unstable(&p, 10.0, 36.5, 10.0, 34.0));
    }
}
