//! Prognostic and forcing state of the ocean.

use crate::params::{OceanMask, OceanParams, T_FREEZE};
use icongrid::ops::CGrid;
use icongrid::{Field2, Field3};

/// Ocean prognostic state (Table 2: 5 prognostic variables — 1.5 velocity,
/// temperature, salinity, surface height — plus sea ice).
#[derive(Debug, Clone, PartialEq)]
pub struct OceanState {
    /// Edge-normal velocity (m/s).
    pub vn: Field3,
    /// Potential temperature (deg C).
    pub temp: Field3,
    /// Salinity (psu).
    pub salt: Field3,
    /// Surface elevation (m).
    pub eta: Field2,
    /// Sea-ice thickness (m).
    pub ice_thick: Field2,
    /// Diagnosed vertical velocity at layer interfaces (m/s), nlev+1
    /// entries per column conceptually; stored with nlev (top interface
    /// of each layer).
    pub w: Field3,

    // --- forcing from the coupler ---
    /// Surface wind stress, edge-normal component (N/m^2).
    pub wind_stress_n: Field2,
    /// Net surface heat flux into the ocean (W/m^2).
    pub heat_flux: Field2,
    /// Freshwater flux into the ocean (m/s of water; precip - evap +
    /// river discharge).
    pub fw_flux: Field2,
    /// Atmospheric CO2 partial pressure proxy (for HAMOCC's air-sea flux).
    pub pco2_atm: Field2,

    // --- accumulated budgets ---
    /// Heat added through the surface since start (J/m^2-equivalent
    /// accumulated per cell).
    pub heat_acc: Field2,
    /// Virtual salt flux accumulated (psu * m), for the salt budget.
    pub salt_acc: Field2,
    /// Freshwater from ice melt/freeze accumulated (m).
    pub ice_fw_acc: Field2,
    pub time_s: f64,
}

impl OceanState {
    /// Initialize a climatological stratified state: warm, fresh-ish
    /// surface waters at low latitudes, cold deep water, slight
    /// perturbation — the stand-in for the paper's spun-up ocean state.
    pub fn initialize<G: CGrid>(grid: &G, p: &OceanParams, mask: &OceanMask) -> OceanState {
        let n_cells = grid.n_cells();
        let n_edges = grid.n_edges();
        let nlev = p.nlev;
        let mut depth_mid = Vec::with_capacity(nlev);
        let mut acc = 0.0;
        for k in 0..nlev {
            depth_mid.push(acc + 0.5 * p.dz[k]);
            acc += p.dz[k];
        }

        let temp = Field3::from_fn(n_cells, nlev, |c, k| {
            if !mask.wet_cell[c] || k >= mask.cell_levels[c] as usize {
                return p.t_ref;
            }
            let sinlat = grid.cell_center(c).z;
            // Surface no colder than the deep water, so the thermal
            // profile alone is statically stable; polar surface cooling
            // (and eventual ice) comes from the coupled heat fluxes.
            let t_sfc = (28.0 * (1.0 - sinlat * sinlat) - 1.0).max(2.0);
            let decay = (-depth_mid[k] / 800.0).exp();
            (2.0 + (t_sfc - 2.0) * decay).max(T_FREEZE)
        });
        let salt = Field3::from_fn(n_cells, nlev, |c, k| {
            if !mask.wet_cell[c] || k >= mask.cell_levels[c] as usize {
                return p.s_ref;
            }
            let sinlat = grid.cell_center(c).z;
            // Slight haline stabilization with depth plus a subtropical
            // surface salinity maximum (kept small enough that the warm
            // thermocline dominates the density gradient there).
            34.6 + 0.2 * (1.0 - (-depth_mid[k] / 1000.0).exp())
                + 0.8 * (-((sinlat.abs() - 0.4) * (sinlat.abs() - 0.4)) / 0.05).exp()
                    * (-depth_mid[k] / 500.0).exp()
        });

        OceanState {
            vn: Field3::zeros(n_edges, nlev),
            temp,
            salt,
            eta: Field2::zeros(n_cells),
            ice_thick: Field2::zeros(n_cells),
            w: Field3::zeros(n_cells, nlev),
            wind_stress_n: Field2::zeros(n_edges),
            heat_flux: Field2::zeros(n_cells),
            fw_flux: Field2::zeros(n_cells),
            pco2_atm: Field2::from_fn(n_cells, |_| 420.0),
            heat_acc: Field2::zeros(n_cells),
            salt_acc: Field2::zeros(n_cells),
            ice_fw_acc: Field2::zeros(n_cells),
            time_s: 0.0,
        }
    }

    /// Health probe: the first non-finite value in the prognostic and
    /// forcing state, as `(variable, value)`. `None` means numerically
    /// healthy; the supervision layer sends this with each heartbeat.
    pub fn first_nonfinite(&self) -> Option<(&'static str, f64)> {
        let fields3: [(&'static str, &Field3); 4] = [
            ("oce.vn", &self.vn),
            ("oce.temp", &self.temp),
            ("oce.salt", &self.salt),
            ("oce.w", &self.w),
        ];
        for (name, f) in fields3 {
            if let Some(&v) = f.as_slice().iter().find(|v| !v.is_finite()) {
                return Some((name, v));
            }
        }
        let fields2: [(&'static str, &Field2); 9] = [
            ("oce.eta", &self.eta),
            ("oce.ice", &self.ice_thick),
            ("oce.wind_stress", &self.wind_stress_n),
            ("oce.heat_flux", &self.heat_flux),
            ("oce.fw_flux", &self.fw_flux),
            ("oce.pco2", &self.pco2_atm),
            ("oce.heat_acc", &self.heat_acc),
            ("oce.salt_acc", &self.salt_acc),
            ("oce.ice_fw_acc", &self.ice_fw_acc),
        ];
        for (name, f) in fields2 {
            if let Some(&v) = f.as_slice().iter().find(|v| !v.is_finite()) {
                return Some((name, v));
            }
        }
        None
    }

    /// Heat content of the wet ocean (deg C * m^3, scaled by rho0*cp
    /// outside if Joules are wanted), over the first `owned` cells.
    pub fn heat_content<G: CGrid>(
        &self,
        grid: &G,
        p: &OceanParams,
        mask: &OceanMask,
        owned: usize,
    ) -> f64 {
        (0..owned)
            .filter(|&c| mask.wet_cell[c])
            .map(|c| {
                let a = grid.cell_area(c);
                let n = mask.cell_levels[c] as usize;
                let t = self.temp.col(c);
                a * (0..n).map(|k| t[k] * p.dz[k]).sum::<f64>()
            })
            .sum()
    }

    /// Salt content (psu * m^3) over the first `owned` cells.
    pub fn salt_content<G: CGrid>(
        &self,
        grid: &G,
        p: &OceanParams,
        mask: &OceanMask,
        owned: usize,
    ) -> f64 {
        (0..owned)
            .filter(|&c| mask.wet_cell[c])
            .map(|c| {
                let a = grid.cell_area(c);
                let n = mask.cell_levels[c] as usize;
                let s = self.salt.col(c);
                a * (0..n).map(|k| s[k] * p.dz[k]).sum::<f64>()
            })
            .sum()
    }

    /// Area-weighted mean surface height over wet cells (volume proxy).
    pub fn mean_eta<G: CGrid>(&self, grid: &G, mask: &OceanMask, owned: usize) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for c in 0..owned {
            if mask.wet_cell[c] {
                num += self.eta[c] * grid.cell_area(c);
                den += grid.cell_area(c);
            }
        }
        num / den.max(1e-300)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icongrid::Grid;

    fn setup() -> (Grid, OceanParams, OceanMask, OceanState) {
        let g = Grid::build(2, icongrid::EARTH_RADIUS_M);
        let p = OceanParams::new(8, 600.0);
        let bathy = vec![4000.0; g.n_cells];
        let mask = OceanMask::from_bathymetry(&g, &p, &bathy);
        let s = OceanState::initialize(&g, &p, &mask);
        (g, p, mask, s)
    }

    #[test]
    fn initial_state_is_stratified_and_stable() {
        let (g, p, mask, s) = setup();
        for c in (0..g.n_cells).step_by(97) {
            let n = mask.cell_levels[c] as usize;
            for k in 1..n {
                let r_up = crate::eos::density_anomaly(&p, s.temp.at(c, k - 1), s.salt.at(c, k - 1));
                let r_dn = crate::eos::density_anomaly(&p, s.temp.at(c, k), s.salt.at(c, k));
                assert!(
                    r_up <= r_dn + 1e-6,
                    "cell {c} level {k}: unstable init ({r_up} over {r_dn})"
                );
            }
        }
    }

    #[test]
    fn tropics_warmer_than_poles_at_surface() {
        let (g, _, _, s) = setup();
        let mut trop = f64::NAN;
        let mut polar = f64::NAN;
        for c in 0..g.n_cells {
            let z = g.cell_center[c].z;
            if z.abs() < 0.1 {
                trop = s.temp.at(c, 0);
            }
            if z > 0.95 {
                polar = s.temp.at(c, 0);
            }
        }
        assert!(trop > 20.0, "tropical SST {trop}");
        assert!(polar < 5.0, "polar SST {polar}");
    }

    #[test]
    fn budgets_are_finite() {
        let (g, p, mask, s) = setup();
        assert!(s.heat_content(&g, &p, &mask, g.n_cells).is_finite());
        assert!(s.salt_content(&g, &p, &mask, g.n_cells) > 0.0);
        assert_eq!(s.mean_eta(&g, &mask, g.n_cells), 0.0);
    }
}
