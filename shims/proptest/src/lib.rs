//! Minimal offline stand-in for `proptest` (see `shims/README.md`).
//!
//! The workspace's property tests only use range strategies
//! (`0u64..1_000_000`, `-1.0f64..1.0`, …), `prop_assert!`/
//! `prop_assert_eq!`, `prop_assume!`, and
//! `ProptestConfig::with_cases(n)`. This shim runs each property as a
//! deterministic random-sampling loop: per test function a fixed seed
//! (derived from the function name) expands into `cases` independent
//! samples, so failures reproduce exactly across runs. No shrinking —
//! the failing sample's values are printed instead.

use std::ops::{Range, RangeInclusive};

/// Per-`proptest!` configuration (the shim honours `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; the shim trims to keep the suite
        // fast while still sweeping a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — skip, don't fail.
    Reject,
    /// `prop_assert*!` failed.
    Fail(String),
}

/// Deterministic per-case RNG (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash for stable per-test seeds.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf29ce484222325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x100000001b3);
        i += 1;
    }
    hash
}

/// A value generator: the shim's strategies sample uniformly, they do not
/// shrink.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// `Just`-style constant strategy, for completeness.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// The property-test harness macro. Mirrors proptest's surface grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u64..100, y in -1.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let seed0 = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases as u64 {
                    let mut __rng = $crate::TestRng::from_seed(
                        seed0 ^ case.wrapping_mul(0x2545F4914F6CDD1D),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {case} failed: {msg}\n  inputs: {}",
                                [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),*]
                                    .join(", "),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Skip the current case when its sampled inputs are invalid.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Property assertion: fails the case (with its inputs) instead of
/// panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} == {} failed: {:?} != {:?}",
                stringify!($a),
                stringify!($b),
                va,
                vb
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} == {} failed: {:?} != {:?} ({})",
                stringify!($a),
                stringify!($b),
                va,
                vb,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if !(va != vb) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} != {} failed: both {:?}",
                stringify!($a),
                stringify!($b),
                va
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Ranges produce in-range values for ints and floats.
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.5f64..2.5, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y), "y = {}", y);
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..2) {
                prop_assert!(x > 100, "x too small");
            }
        }
        always_fails();
    }
}
