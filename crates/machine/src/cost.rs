//! The throughput (cost) model: per-component step times, coupling, and
//! temporal compression tau on a modeled system.
//!
//! Structure (see crate docs and `calib`):
//!
//! ```text
//! t_step(component) = compute + launches + halo + reductions + overhead
//!   compute    = local dof x bytes/dof / (bandwidth x efficiency)
//!   launches   = n_kernels x launch latency   (GPU; graphs replace it)
//!   halo       = n_exchanges x 2 alpha + payload / injection bandwidth
//!   reductions = n_iters x alpha_coll x log2(P)   (ocean CG solver)
//! ```
//!
//! tau follows from the coupling window: atmosphere+land run `coupling/dt_a`
//! steps while ocean+BGC run `coupling/dt_o` steps, concurrently when
//! mapped to different devices (the paper's heterogeneous mapping runs the
//! ocean "for free" on the Grace CPUs), serialized otherwise.

use crate::calib::*;
use crate::config::GridConfig;
use crate::graphs::land_sequence;
use crate::power;
use crate::systems::SystemSpec;
use serde::Serialize;

/// Where a component group executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Device {
    Gpu,
    Cpu,
}

/// Component-to-device mapping plus acceleration options (§5.1, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Mapping {
    /// Atmosphere device (land always follows the atmosphere, §5.1: it
    /// "directly exchanges fluxes with the atmospheric component on the
    /// atmospheric timestep, and therefore needs to run on GPUs").
    pub atm: Device,
    /// Ocean + sea-ice device.
    pub ocean: Device,
    /// Biogeochemistry device (inline with the ocean on CPU, or
    /// concurrent on GPU as in Linardakis et al. 2022).
    pub bgc: Device,
    /// Use CUDA graphs for the land model's small kernels.
    pub land_graphs: bool,
    /// Use the DaCe-transformed dynamical core instead of OpenACC.
    pub dace_dycore: bool,
}

impl Mapping {
    /// The paper's production mapping: atmosphere+land on the Hopper GPUs
    /// (with CUDA graphs), ocean+BGC on the Grace CPUs.
    pub fn paper() -> Mapping {
        Mapping {
            atm: Device::Gpu,
            ocean: Device::Cpu,
            bgc: Device::Cpu,
            land_graphs: true,
            dace_dycore: false,
        }
    }

    /// Everything on the GPUs (the configuration most other simulations
    /// use, per §5.1).
    pub fn all_gpu() -> Mapping {
        Mapping {
            atm: Device::Gpu,
            ocean: Device::Gpu,
            bgc: Device::Gpu,
            land_graphs: true,
            dace_dycore: false,
        }
    }

    /// Everything on the CPUs (Levante CPU partition, Fig. 2).
    pub fn all_cpu() -> Mapping {
        Mapping {
            atm: Device::Cpu,
            ocean: Device::Cpu,
            bgc: Device::Cpu,
            land_graphs: false,
            dace_dycore: false,
        }
    }
}

/// Cost breakdown of one component step on one rank (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ComponentCost {
    pub compute_s: f64,
    pub launch_s: f64,
    pub halo_s: f64,
    pub reduce_s: f64,
    pub overhead_s: f64,
}

impl ComponentCost {
    pub fn total(&self) -> f64 {
        self.compute_s + self.launch_s + self.halo_s + self.reduce_s + self.overhead_s
    }
}

/// One point of a scaling curve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ScalingPoint {
    pub n_chips: u32,
    /// Temporal compression: simulated time / wall time.
    pub tau: f64,
    /// Wall time of one atmosphere step (incl. land), seconds.
    pub atm_step_s: f64,
    /// Wall time of one ocean step (incl. BGC where inline), seconds.
    pub oce_step_s: f64,
    /// Time the atmosphere waits for the ocean per coupling window (s);
    /// ~0 in a well-balanced heterogeneous setup.
    pub atm_coupling_wait_s: f64,
    /// Total electrical power of the used nodes (kW).
    pub power_kw: f64,
    /// Energy per simulated day (MJ).
    pub energy_mj_per_sim_day: f64,
    /// Aggregate sustained HBM bandwidth during dynamical-core execution
    /// (GB/s summed over chips) — the §5.2 bandwidth figure.
    pub sustained_bw_gbs: f64,
    /// Local atmosphere cells per chip.
    pub atm_cells_per_chip: f64,
}

/// The throughput model of one (system, configuration, mapping) triple.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputModel {
    pub system: SystemSpec,
    pub config: GridConfig,
    pub mapping: Mapping,
}

impl ThroughputModel {
    pub fn new(system: SystemSpec, config: GridConfig, mapping: Mapping) -> Self {
        ThroughputModel {
            system,
            config,
            mapping,
        }
    }

    /// Effective GPU memory bandwidth (B/s) at the application-average
    /// DRAM efficiency, including the system's power derate.
    fn gpu_bw_eff(&self) -> f64 {
        self.system.chip.gpu.peak_bw_gbs * 1e9 * GPU_DRAM_EFF_AVG * self.system.gpu_derate
    }

    /// Effective CPU memory bandwidth (B/s).
    fn cpu_bw_eff(&self) -> f64 {
        let eff = if self.system.chip.cpu.name == "Grace" {
            CPU_EFF_GRACE
        } else {
            CPU_EFF_AMD
        };
        self.system.chip.cpu.peak_bw_gbs * 1e9 * eff
    }

    fn bw_for(&self, dev: Device) -> f64 {
        match dev {
            Device::Gpu => self.gpu_bw_eff(),
            Device::Cpu => self.cpu_bw_eff(),
        }
    }

    /// Injection bandwidth per chip (B/s).
    fn link_bw_per_chip(&self) -> f64 {
        self.system.network.inj_bw_node_gbs * 1e9 / self.system.chips_per_node as f64
    }

    /// Halo time for one component step: latency per message plus
    /// ring-payload over the NIC.
    fn halo_time(&self, cells_local: f64, levels: f64, n_exchanges: f64) -> f64 {
        let ring_cells = HALO_RING_COEF * cells_local.sqrt();
        let bytes =
            n_exchanges * HALO_FIELDS_PER_EXCHANGE * ring_cells * levels * 8.0;
        let mut t = n_exchanges * 2.0 * ALPHA_P2P_S + bytes / self.link_bw_per_chip();
        if !self.system.network.gpudirect && self.mapping.atm == Device::Gpu {
            // Staging through the host costs an extra hop over C2C.
            t += bytes / (self.system.chip.c2c_bw_gbs * 1e9) + n_exchanges * ALPHA_P2P_S;
        }
        t
    }

    /// Atmosphere dynamical core + physics + tracers, one step.
    pub fn atm_cost(&self, n_chips: u32) -> ComponentCost {
        let cells_local = self.config.atm_cells / n_chips as f64;
        let dof = cells_local * self.config.atm_levels;
        // The DaCe-transformed dynamical core raises the dycore share of
        // the traffic (45 %) from the OpenACC efficiency to ~50 % of peak.
        let traffic = dof * ATM_BYTES_PER_DOF_STEP;
        let base_bw = self.bw_for(self.mapping.atm);
        let compute = if self.mapping.dace_dycore && self.mapping.atm == Device::Gpu {
            let dyn_frac = 0.45;
            let t_dyn_acc = traffic * dyn_frac / base_bw;
            let t_dyn_dace = t_dyn_acc * GPU_DRAM_EFF_OPENACC / GPU_DRAM_EFF_DACE;
            traffic * (1.0 - dyn_frac) / base_bw + t_dyn_dace
        } else {
            traffic / base_bw
        };
        let launch = match self.mapping.atm {
            Device::Gpu => ATM_KERNELS_PER_STEP * KERNEL_LAUNCH_S,
            Device::Cpu => 0.0,
        };
        ComponentCost {
            compute_s: compute,
            launch_s: launch,
            halo_s: self.halo_time(cells_local, self.config.atm_levels, ATM_HALO_EXCHANGES_PER_STEP),
            reduce_s: 0.0,
            overhead_s: STEP_DRIVER_OVERHEAD_S,
        }
    }

    /// Land + vegetation, one (atmosphere) step. Runs on the atmosphere's
    /// device; dominated by small-kernel launches on GPUs (§5.1).
    pub fn land_cost(&self, n_chips: u32) -> ComponentCost {
        let cells_local = self.config.land_cells / n_chips as f64;
        let dof = cells_local
            * (self.config.soil_levels * 4.0 + self.config.pft_levels * 22.0 + 1.0);
        let compute = dof * LAND_BYTES_PER_DOF_STEP / self.bw_for(self.mapping.atm);
        let launch = match self.mapping.atm {
            Device::Gpu => {
                let seq = land_sequence(cells_local, self.system.chip.gpu.peak_bw_gbs);
                if self.mapping.land_graphs {
                    seq.time_graph_replay()
                } else {
                    seq.time_individual_launches()
                }
            }
            Device::Cpu => 0.0,
        };
        ComponentCost {
            compute_s: compute,
            launch_s: launch,
            halo_s: 0.0, // land columns are independent; no halo needed
            reduce_s: 0.0,
            overhead_s: 0.0,
        }
    }

    /// Ocean + sea ice, one ocean step, including the barotropic 2-D
    /// solver's global reductions.
    pub fn ocean_cost(&self, n_chips: u32) -> ComponentCost {
        let cells_local = self.config.oce_cells / n_chips as f64;
        let dof = cells_local * self.config.oce_levels;
        let dev = self.mapping.ocean;
        let compute = dof * OCE_BYTES_PER_DOF_STEP / self.bw_for(dev);
        let p = n_chips as f64;
        // Conjugate gradient: one allreduce plus one thin halo per
        // iteration; on GPUs each iteration additionally launches kernels.
        let per_iter_launch = match dev {
            Device::Gpu => 6.0 * KERNEL_LAUNCH_S,
            Device::Cpu => 0.0,
        };
        let reduce = OCEAN_CG_ITERS
            * (ALPHA_COLL_S * p.log2().max(1.0) + 2.0 * ALPHA_P2P_S + per_iter_launch);
        let launch = match dev {
            Device::Gpu => 300.0 * KERNEL_LAUNCH_S,
            Device::Cpu => 0.0,
        };
        ComponentCost {
            compute_s: compute,
            launch_s: launch,
            halo_s: self.halo_time(cells_local, self.config.oce_levels, 8.0),
            reduce_s: reduce,
            overhead_s: 0.0,
        }
    }

    /// Ocean biogeochemistry (HAMOCC), one ocean step.
    pub fn bgc_cost(&self, n_chips: u32) -> ComponentCost {
        let cells_local = self.config.oce_cells / n_chips as f64;
        let dof = cells_local * self.config.oce_levels;
        let dev = self.mapping.bgc;
        let mut compute = dof * BGC_BYTES_PER_DOF_STEP / self.bw_for(dev);
        if dev != self.mapping.ocean {
            // Concurrent HAMOCC must exchange large 3-D fields with the
            // ocean core every ocean step (§5.1 names this the downside).
            let xfer_bytes = dof * 19.0 * 8.0;
            compute += xfer_bytes / (self.system.chip.c2c_bw_gbs * 1e9);
        }
        let launch = match dev {
            Device::Gpu => 200.0 * KERNEL_LAUNCH_S,
            Device::Cpu => 0.0,
        };
        ComponentCost {
            compute_s: compute,
            launch_s: launch,
            halo_s: 0.0,
            reduce_s: 0.0,
            overhead_s: 0.0,
        }
    }

    /// Wall time of one atmosphere step (atmosphere + land serialized on
    /// the same device).
    pub fn atm_step_s(&self, n_chips: u32) -> f64 {
        self.atm_cost(n_chips).total() + self.land_cost(n_chips).total()
    }

    /// Wall time of one ocean step (ocean + BGC; serialized when mapped to
    /// the same device, overlapped otherwise).
    pub fn oce_step_s(&self, n_chips: u32) -> f64 {
        let o = self.ocean_cost(n_chips).total();
        let b = self.bgc_cost(n_chips).total();
        if self.mapping.bgc == self.mapping.ocean {
            o + b
        } else {
            o.max(b)
        }
    }

    /// Full scaling point at `n_chips`.
    pub fn scaling_point(&self, n_chips: u32) -> ScalingPoint {
        let cfg = &self.config;
        let t_a = self.atm_step_s(n_chips);
        let t_o = self.oce_step_s(n_chips);
        let atm_window = cfg.atm_steps_per_coupling() * t_a;
        let oce_window = cfg.oce_steps_per_coupling() * t_o;
        let heterogeneous = self.mapping.ocean != self.mapping.atm;
        let (window_wall, wait_atm) = if heterogeneous {
            (
                atm_window.max(oce_window) + COUPLER_EXCHANGE_S,
                (oce_window - atm_window).max(0.0),
            )
        } else {
            (atm_window + oce_window + COUPLER_EXCHANGE_S, 0.0)
        };
        let tau = cfg.coupling_s / window_wall;

        let n_nodes = (n_chips as f64 / self.system.chips_per_node as f64).ceil();
        let cpu_busy = if heterogeneous {
            (oce_window / window_wall).min(1.0)
        } else if self.mapping.atm == Device::Cpu {
            1.0
        } else {
            0.1
        };
        let node_power_w = power::node_power_under_load(&self.system, self.mapping, cpu_busy);
        let power_kw = n_nodes * node_power_w / 1e3;
        let energy_mj_per_sim_day = power_kw * 1e3 * (86_400.0 / tau) / 1e6;

        let dyn_eff = if self.mapping.dace_dycore {
            GPU_DRAM_EFF_DACE
        } else {
            GPU_DRAM_EFF_OPENACC
        };
        let sustained_bw_gbs = match self.mapping.atm {
            Device::Gpu => n_chips as f64 * self.system.chip.gpu.peak_bw_gbs * dyn_eff,
            Device::Cpu => n_chips as f64 * self.cpu_bw_eff() / 1e9,
        };

        ScalingPoint {
            n_chips,
            tau,
            atm_step_s: t_a,
            oce_step_s: t_o,
            atm_coupling_wait_s: wait_atm,
            power_kw,
            energy_mj_per_sim_day,
            sustained_bw_gbs,
            atm_cells_per_chip: cfg.atm_cells / n_chips as f64,
        }
    }

    /// Strong-scaling curve over a list of chip counts.
    pub fn strong_scaling(&self, chips: &[u32]) -> Vec<ScalingPoint> {
        chips.iter().map(|&p| self.scaling_point(p)).collect()
    }

    /// Minimum chips on which the configuration fits in GPU memory
    /// (the paper could not fit 1.25 km below 2048 superchips).
    pub fn min_chips_by_memory(&self) -> u32 {
        // ICON's resident working set is far larger than the prognostic
        // state: diagnostic fields, tendencies, two time levels,
        // interpolation coefficients, halo/communication buffers. A factor
        // ~25 reproduces the paper's observation that 1.25 km first fits on
        // 2048 superchips (~196 TiB of HBM for a ~6 TiB prognostic state).
        let bytes_total = 25.0 * self.config.state_bytes();
        let per_chip = match self.mapping.atm {
            Device::Gpu => self.system.chip.gpu.mem_gib * 1.074e9,
            Device::Cpu => self.system.chip.cpu.mem_gib * 1.074e9,
        };
        (bytes_total / per_chip).ceil() as u32
    }

    /// Smallest chip count whose tau reaches `target`, by bisection over
    /// the monotone scaling curve; `None` if the whole system cannot.
    pub fn chips_for_tau(&self, target: f64) -> Option<u32> {
        let max = self.system.total_chips();
        if self.scaling_point(max).tau < target {
            return None;
        }
        let (mut lo, mut hi) = (1u32, max);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.scaling_point(mid).tau >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::{ALPS, JUPITER, LEVANTE_CPU, LEVANTE_GPU};

    fn jupiter_1p25() -> ThroughputModel {
        ThroughputModel::new(JUPITER, GridConfig::km1p25(), Mapping::paper())
    }

    #[test]
    fn anchor_tau_jupiter_2048() {
        let tau = jupiter_1p25().scaling_point(2048).tau;
        assert!(
            (tau / 32.7 - 1.0).abs() < 0.10,
            "tau(2048) = {tau:.1}, paper 32.7"
        );
    }

    #[test]
    fn anchor_tau_jupiter_20480() {
        let tau = jupiter_1p25().scaling_point(20_480).tau;
        assert!(
            (tau / 145.7 - 1.0).abs() < 0.10,
            "tau(20480) = {tau:.1}, paper 145.7"
        );
    }

    #[test]
    fn anchor_tau_jupiter_4096() {
        let tau = jupiter_1p25().scaling_point(4096).tau;
        assert!(
            (tau / 59.5 - 1.0).abs() < 0.10,
            "tau(4096) = {tau:.1}, paper 59.5"
        );
    }

    #[test]
    fn anchor_tau_alps_8192() {
        let m = ThroughputModel::new(ALPS, GridConfig::km1p25(), Mapping::paper());
        let tau = m.scaling_point(8192).tau;
        assert!(
            (tau / 91.8 - 1.0).abs() < 0.10,
            "tau(Alps, 8192) = {tau:.1}, paper 91.8"
        );
    }

    #[test]
    fn anchor_weak_scaling_10km_at_1p25_timestep() {
        // Gray reference of Fig 4 left: the 10 km grid with the 10 s step
        // reaches tau ~ 167 on 384 chips.
        let cfg = GridConfig::at_r2b("10 km @ 10 s", 8, 10.0, 60.0);
        let m = ThroughputModel::new(ALPS, cfg, Mapping::paper());
        let tau = m.scaling_point(384).tau;
        assert!(
            (tau / 167.0 - 1.0).abs() < 0.15,
            "tau(10km@10s, 384) = {tau:.1}, paper ~167"
        );
    }

    #[test]
    fn anchor_tau_10km_gh200() {
        // §4: strong scaling begins to decline around tau ~ 798 on 40
        // GH200 nodes (160 chips) for the coupled 10 km configuration.
        let m = ThroughputModel::new(JUPITER, GridConfig::km10(), Mapping::paper());
        let tau = m.scaling_point(160).tau;
        assert!(
            (tau / 798.0 - 1.0).abs() < 0.15,
            "tau(10km, 160 chips) = {tau:.1}, paper ~798"
        );
    }

    #[test]
    fn anchor_practical_limit_40km() {
        // §4: dialing back to dx = 40 km could reach tau ~ 3192 on ~2.5
        // nodes (10 chips).
        let cfg = GridConfig::swept(6); // ~40 km
        let m = ThroughputModel::new(JUPITER, cfg, Mapping::paper());
        let tau = m.scaling_point(10).tau;
        assert!(
            (tau / 3192.0 - 1.0).abs() < 0.15,
            "tau(40km, 10 chips) = {tau:.0}, paper ~3192"
        );
    }

    #[test]
    fn ocean_is_free_in_heterogeneous_mapping() {
        // The ocean+BGC on Grace must finish well before the atmosphere at
        // all benchmarked scales, so the atmosphere never waits.
        let m = jupiter_1p25();
        for chips in [2048, 4096, 8192, 20_480] {
            let p = m.scaling_point(chips);
            assert!(
                p.atm_coupling_wait_s == 0.0,
                "atmosphere waited {}s at {chips}",
                p.atm_coupling_wait_s
            );
        }
    }

    #[test]
    fn heterogeneous_beats_all_gpu() {
        let het = jupiter_1p25().scaling_point(8192).tau;
        let gpu = ThroughputModel::new(JUPITER, GridConfig::km1p25(), Mapping::all_gpu())
            .scaling_point(8192)
            .tau;
        assert!(het > gpu, "het {het:.1} <= all-gpu {gpu:.1}");
    }

    #[test]
    fn dace_dycore_improves_tau() {
        let base = jupiter_1p25().scaling_point(8192).tau;
        let mut mapping = Mapping::paper();
        mapping.dace_dycore = true;
        let dace = ThroughputModel::new(JUPITER, GridConfig::km1p25(), mapping)
            .scaling_point(8192)
            .tau;
        assert!(dace > base);
        assert!(dace / base < 1.2, "whole-app effect is moderate");
    }

    #[test]
    fn tau_monotone_in_chips() {
        let m = jupiter_1p25();
        let taus: Vec<f64> = [1024u32, 2048, 4096, 8192, 16384, 20480]
            .iter()
            .map(|&p| m.scaling_point(p).tau)
            .collect();
        for w in taus.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn memory_floor_near_2048_chips() {
        // Paper: the smallest chip count that fits 1.25 km is 2048.
        let m = jupiter_1p25();
        let floor = m.min_chips_by_memory();
        assert!(
            (1200..=2600).contains(&floor),
            "memory floor {floor} chips"
        );
    }

    #[test]
    fn levante_gpu_about_half_of_gh200() {
        // §4: "about a factor of 2 less throughput on the A100 nodes of
        // Levante compared to the GH200 nodes" (10 km coupled).
        let gh = ThroughputModel::new(JUPITER, GridConfig::km10(), Mapping::all_gpu());
        let lev = ThroughputModel::new(LEVANTE_GPU, GridConfig::km10(), Mapping::all_gpu());
        let ratio = gh.scaling_point(64).tau / lev.scaling_point(64).tau;
        assert!((1.6..2.6).contains(&ratio), "GH200/A100 ratio {ratio:.2}");
    }

    #[test]
    fn cpu_strong_scaling_extends_further() {
        // Fig 2: CPU scaling levels off later (no launch-latency floor) but
        // at much higher node counts for the same tau.
        let cpu = ThroughputModel::new(LEVANTE_CPU, GridConfig::km10(), Mapping::all_cpu());
        let gpu = ThroughputModel::new(LEVANTE_GPU, GridConfig::km10(), Mapping::all_gpu());
        // Efficiency at 8x the "knee" scale:
        let eff = |m: &ThroughputModel, lo: u32, hi: u32| {
            let a = m.scaling_point(lo).tau;
            let b = m.scaling_point(hi).tau;
            (b / a) / (hi as f64 / lo as f64)
        };
        let cpu_eff = eff(&cpu, 128, 1024);
        let gpu_eff = eff(&gpu, 32, 256);
        assert!(
            cpu_eff > gpu_eff,
            "cpu {cpu_eff:.2} should retain efficiency better than gpu {gpu_eff:.2}"
        );
    }

    #[test]
    fn sustained_bandwidth_matches_paper_hero_estimate() {
        // §5.2: at the hero scale the DaCe dycore would sustain >15 PiB/s,
        // about 50 % of peak.
        let mut mapping = Mapping::paper();
        mapping.dace_dycore = true;
        let m = ThroughputModel::new(ALPS, GridConfig::km1p25(), mapping);
        let p = m.scaling_point(8192);
        let pib = p.sustained_bw_gbs / 1024.0 / 1024.0; // GB -> PiB approx (GB/s to PiB/s)
        assert!(pib > 15.0, "sustained {pib:.1} PiB/s");
        let frac = p.sustained_bw_gbs / (8192.0 * 4096.0);
        assert!((frac - 0.5).abs() < 0.05);
    }

    #[test]
    fn chips_for_tau_inverts_scaling() {
        let m = jupiter_1p25();
        let p = m.chips_for_tau(100.0).unwrap();
        assert!(m.scaling_point(p).tau >= 100.0);
        assert!(m.scaling_point(p - 64).tau < 100.0);
        assert!(m.chips_for_tau(1e6).is_none());
    }
}
