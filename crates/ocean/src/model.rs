//! The assembled ocean component: baroclinic update, implicit barotropic
//! solve, tracer transport, convective adjustment, sea ice, surface
//! forcing.

use crate::barotropic::{BarotropicSolver, CgStats};
use crate::eos;
use crate::params::{OceanMask, OceanParams, CP_OCEAN, RHO0};
use crate::seaice;
use crate::state::OceanState;
use icongrid::column::implicit_diffusion_dz_masked;
use icongrid::exchange::Exchange;
use icongrid::ops::{self, CGrid};
use icongrid::{Field2, Field3};
use rayon::prelude::*;
use std::sync::Arc;

const G: f64 = 9.80665;

/// One ocean instance bound to a (sub)grid.
pub struct Ocean<Gr: CGrid> {
    pub grid: Arc<Gr>,
    pub params: OceanParams,
    pub mask: OceanMask,
    pub state: OceanState,
    solver: BarotropicSolver,
    /// Resting column depth per cell (m).
    cell_depth: Vec<f64>,
    // --- workspaces ---
    press: Field3,
    grad_p: Field3,
    cellvec: [Field3; 3],
    vt: Field3,
    zeta: Field3,
    vn_star: Field3,
    transport: Field2,
    rhs: Field2,
    div: Field3,
    tracer_old: Field3,
    /// Statistics of the last barotropic solve.
    pub last_cg: CgStats,
    steps_taken: u64,
}

impl<Gr: CGrid> Ocean<Gr> {
    /// Build from bathymetry (m, positive down, <= 0 on land).
    pub fn new(grid: Arc<Gr>, params: OceanParams, bathymetry: &[f64]) -> Self {
        let mask = OceanMask::from_bathymetry(grid.as_ref(), &params, bathymetry);
        let state = OceanState::initialize(grid.as_ref(), &params, &mask);
        let cell_depth: Vec<f64> = (0..grid.n_cells())
            .map(|c| {
                (0..mask.cell_levels[c] as usize)
                    .map(|k| params.dz[k])
                    .sum()
            })
            .collect();
        let solver = BarotropicSolver::new(
            grid.as_ref(),
            params.dt,
            &cell_depth,
            mask.wet_cell.clone(),
            params.cg_tol,
            params.cg_max_iter,
        );
        let (nc, ne, nv) = (grid.n_cells(), grid.n_edges(), grid.n_vertices());
        let nlev = params.nlev;
        Ocean {
            grid,
            params,
            mask,
            state,
            solver,
            cell_depth,
            press: Field3::zeros(nc, nlev),
            grad_p: Field3::zeros(ne, nlev),
            cellvec: [
                Field3::zeros(nc, nlev),
                Field3::zeros(nc, nlev),
                Field3::zeros(nc, nlev),
            ],
            vt: Field3::zeros(ne, nlev),
            zeta: Field3::zeros(nv, nlev),
            vn_star: Field3::zeros(ne, nlev),
            transport: Field2::zeros(ne),
            rhs: Field2::zeros(nc),
            div: Field3::zeros(nc, nlev),
            tracer_old: Field3::zeros(nc, nlev),
            last_cg: CgStats {
                iterations: 0,
                final_relative_residual: 0.0,
                converged: true,
            },
            steps_taken: 0,
        }
    }

    /// Advance one ocean step. `n_owned_cells` bounds the reduction range
    /// of the distributed CG (pass `grid.n_cells()` for serial runs).
    pub fn step<X: Exchange>(&mut self, x: &X, n_owned_cells: usize) {
        let g = self.grid.as_ref();
        let p = &self.params;
        let dt = p.dt;
        let nlev = p.nlev;

        // --- baroclinic predictor.
        eos::hydrostatic_pressure(
            p,
            &self.state.temp,
            &self.state.salt,
            self.state.eta.as_slice(),
            &mut self.press,
        );
        ops::gradient(g, &self.press, &mut self.grad_p);
        ops::reconstruct_cell_vectors(g, &self.state.vn, &mut self.cellvec);
        ops::tangential_velocity(g, &self.cellvec, &mut self.vt);
        ops::vorticity(g, &self.state.vn, &mut self.zeta);

        let mask = &self.mask;
        let state = &self.state;
        let (vt, zeta, grad_p) = (&self.vt, &self.zeta, &self.grad_p);
        let dz0 = p.dz[0];
        let drag = p.bottom_drag;
        self.vn_star
            .as_mut_slice()
            .par_chunks_mut(nlev)
            .enumerate()
            .for_each(|(e, col)| {
                let na = mask.edge_levels[e] as usize;
                let [v0, v1] = g.edge_vertices(e);
                let f_e = g.edge_coriolis(e);
                let vn = state.vn.col(e);
                let gp = grad_p.col(e);
                let vte = vt.col(e);
                let z0 = zeta.col(v0 as usize);
                let z1 = zeta.col(v1 as usize);
                for k in 0..nlev {
                    if k >= na {
                        col[k] = 0.0;
                        continue;
                    }
                    let zeta_e = 0.5 * (z0[k] + z1[k]);
                    let mut v = vn[k] + dt * (-gp[k] + (f_e + zeta_e) * vte[k]);
                    if k == 0 {
                        v += dt * state.wind_stress_n[e] / (RHO0 * dz0);
                    }
                    if k + 1 == na {
                        v -= dt * drag * vn[k] / p.dz[k].max(1.0) * 1.0e3;
                    }
                    col[k] = v;
                }
            });
        implicit_diffusion_dz_masked(
            &mut self.vn_star,
            &p.dz,
            &mask.edge_levels,
            p.kv_momentum,
            dt,
        );

        // --- barotropic transport and implicit free surface.
        for e in 0..g.n_edges() {
            let na = self.mask.edge_levels[e] as usize;
            let col = self.vn_star.col(e);
            self.transport[e] = (0..na).map(|k| col[k] * p.dz[k]).sum();
        }
        for c in 0..g.n_cells() {
            if !self.mask.wet_cell[c] {
                self.rhs[c] = 0.0;
                continue;
            }
            let mut divf = 0.0;
            let edges = g.cell_edges(c);
            let signs = g.cell_edge_sign(c);
            for i in 0..3 {
                let e = edges[i] as usize;
                divf += signs[i] * g.edge_length(e) * self.transport[e];
            }
            self.rhs[c] = g.cell_area(c) * self.state.eta[c] - dt * divf
                + g.cell_area(c) * dt * self.state.fw_flux[c];
        }
        self.last_cg = self
            .solver
            .solve(g, x, &self.rhs, &mut self.state.eta, n_owned_cells);

        // --- velocity correction with the new surface gradient.
        let eta = &self.state.eta;
        let mask = &self.mask;
        self.state
            .vn
            .as_mut_slice()
            .par_chunks_mut(nlev)
            .zip(self.vn_star.as_slice().par_chunks(nlev))
            .enumerate()
            .for_each(|(e, (col, star))| {
                let na = mask.edge_levels[e] as usize;
                let [c0, c1] = g.edge_cells(e);
                let corr = if na > 0 {
                    G * dt * (eta[c1 as usize] - eta[c0 as usize]) / g.dual_edge_length(e)
                } else {
                    0.0
                };
                for k in 0..nlev {
                    col[k] = if k < na { star[k] - corr } else { 0.0 };
                }
            });
        x.edges3(&mut self.state.vn);

        // --- vertical velocity from continuity (bottom-up integration).
        ops::divergence(g, &self.state.vn, &mut self.div);
        let div = &self.div;
        self.state
            .w
            .as_mut_slice()
            .par_chunks_mut(nlev)
            .enumerate()
            .for_each(|(c, col)| {
                let na = mask.cell_levels[c] as usize;
                let d = div.col(c);
                let mut w = 0.0; // sea floor
                for k in (0..nlev).rev() {
                    if k >= na {
                        col[k] = 0.0;
                        continue;
                    }
                    w += d[k] * p.dz[k];
                    col[k] = w; // top interface of layer k, positive up
                }
            });

        // --- tracer transport (T, S) with the corrected velocities.
        for i in 0..2 {
            let tr = if i == 0 {
                &mut self.state.temp
            } else {
                &mut self.state.salt
            };
            advect_tracer_3d(
                g,
                mask,
                p,
                &self.state.vn,
                &self.state.w,
                dt,
                tr,
                &mut self.tracer_old,
            );
        }
        {
            let OceanState { temp, salt, .. } = &mut self.state;
            x.cells3_many(&mut [temp, salt]);
        }

        // --- vertical mixing and convective adjustment.
        implicit_diffusion_dz_masked(
            &mut self.state.temp,
            &p.dz,
            &mask.cell_levels,
            p.kv_tracer,
            dt,
        );
        implicit_diffusion_dz_masked(
            &mut self.state.salt,
            &p.dz,
            &mask.cell_levels,
            p.kv_tracer,
            dt,
        );
        convective_adjustment(p, mask, &mut self.state.temp, &mut self.state.salt);

        // --- surface forcing and sea ice (column-local).
        let heat_to_temp = dt / (RHO0 * CP_OCEAN * p.dz[0]);
        for c in 0..g.n_cells() {
            if !self.mask.wet_cell[c] {
                continue;
            }
            let q = self.state.heat_flux[c];
            *self.state.temp.at_mut(c, 0) += q * heat_to_temp;
            self.state.heat_acc[c] += q * dt;
            // Virtual salt flux from freshwater exchange.
            let fw = self.state.fw_flux[c] * dt; // m of water this step
            let s0 = self.state.salt.at(c, 0);
            let ds = -s0 * fw / p.dz[0];
            *self.state.salt.at_mut(c, 0) += ds;
            self.state.salt_acc[c] += ds * p.dz[0];

            // Sea ice thermodynamics.
            let upd = seaice::update_ice(
                p,
                self.state.temp.at(c, 0),
                self.state.salt.at(c, 0),
                self.state.ice_thick[c],
                p.dz[0],
            );
            self.state.temp.set(c, 0, upd.t_surface);
            self.state.ice_thick[c] = upd.ice_thickness;
            *self.state.salt.at_mut(c, 0) += upd.salt_flux_psu_m / p.dz[0];
            self.state.salt_acc[c] += upd.salt_flux_psu_m;
            self.state.ice_fw_acc[c] += upd.freshwater_m;
        }

        self.state.time_s += dt;
        self.steps_taken += 1;
    }

    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Sea-surface temperature for the coupler (deg C).
    pub fn sst(&self, c: usize) -> f64 {
        self.state.temp.at(c, 0)
    }

    /// Sea-ice concentration for the coupler (0..1).
    pub fn ice_concentration(&self, c: usize) -> f64 {
        seaice::ice_concentration(self.state.ice_thick[c])
    }

    /// Resting column depth (m) per cell.
    pub fn cell_depth(&self) -> &[f64] {
        &self.cell_depth
    }
}

/// Horizontal (upwind, flux-form) + vertical (upwind with diagnosed `w`)
/// advection of one cell tracer on the masked grid. Conserves the global
/// tracer inventory to round-off (fluxes telescope; no flux through the
/// surface, the floor, or coasts).
#[allow(clippy::too_many_arguments)]
pub fn advect_tracer_3d<Gr: CGrid>(
    g: &Gr,
    mask: &OceanMask,
    p: &OceanParams,
    vn: &Field3,
    w: &Field3,
    dt: f64,
    tr: &mut Field3,
    tracer_old: &mut Field3,
) {
    let nlev = p.nlev;
    tracer_old.as_mut_slice().copy_from_slice(tr.as_slice());
    let old: &Field3 = tracer_old;
    tr.as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(c, col)| {
            let na = mask.cell_levels[c] as usize;
            if na == 0 {
                return;
            }
            let inv_a = 1.0 / g.cell_area(c);
            let edges = g.cell_edges(c);
            let signs = g.cell_edge_sign(c);
            let mine = old.col(c);
            // Horizontal upwind fluxes (dz cancels at fixed levels).
            let mut acc = [0.0f64; 128];
            let acc = &mut acc[..nlev];
            for i in 0..3 {
                let e = edges[i] as usize;
                let ne_lev = mask.edge_levels[e] as usize;
                let [c0, c1] = g.edge_cells(e);
                let v = vn.col(e);
                let q0 = old.col(c0 as usize);
                let q1 = old.col(c1 as usize);
                let l = g.edge_length(e);
                for k in 0..ne_lev.min(na) {
                    let qup = if v[k] >= 0.0 { q0[k] } else { q1[k] };
                    acc[k] += signs[i] * l * v[k] * qup;
                }
            }
            for k in 0..na {
                col[k] = mine[k] - dt * inv_a * acc[k];
            }
            // Vertical upwind: interface flux phi_k through the TOP of
            // layer k (positive up); phi_0 = 0 (surface), floor flux = 0.
            for k in 0..na {
                let phi_top = if k == 0 {
                    0.0
                } else {
                    let wk = w.at(c, k);
                    wk * if wk >= 0.0 { mine[k] } else { mine[k - 1] }
                };
                let phi_bottom = if k + 1 < na {
                    let wb = w.at(c, k + 1);
                    wb * if wb >= 0.0 { mine[k + 1] } else { mine[k] }
                } else {
                    0.0
                };
                col[k] += dt / p.dz[k] * (phi_bottom - phi_top);
            }
        });
}

/// Partial convective adjustment: where the column is statically unstable,
/// mix the offending pair conservatively (dz-weighted) with strength
/// `convective_mixing`.
pub fn convective_adjustment(
    p: &OceanParams,
    mask: &OceanMask,
    temp: &mut Field3,
    salt: &mut Field3,
) {
    let nlev = p.nlev;
    let gamma = p.convective_mixing;
    temp.as_mut_slice()
        .par_chunks_mut(nlev)
        .zip(salt.as_mut_slice().par_chunks_mut(nlev))
        .zip(mask.cell_levels.par_iter())
        .for_each(|((t, s), &na)| {
            let n = na as usize;
            for k in 0..n.saturating_sub(1) {
                if eos::unstable(p, t[k], s[k], t[k + 1], s[k + 1]) {
                    let w0 = p.dz[k];
                    let w1 = p.dz[k + 1];
                    let tm = (w0 * t[k] + w1 * t[k + 1]) / (w0 + w1);
                    let sm = (w0 * s[k] + w1 * s[k + 1]) / (w0 + w1);
                    t[k] += gamma * (tm - t[k]);
                    t[k + 1] += gamma * (tm - t[k + 1]);
                    s[k] += gamma * (sm - s[k]);
                    s[k + 1] += gamma * (sm - s[k + 1]);
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use icongrid::{Grid, NoExchange};

    fn small_ocean() -> Ocean<Grid> {
        let g = Arc::new(Grid::build(2, icongrid::EARTH_RADIUS_M));
        let p = OceanParams::new(6, 600.0);
        // Aqua planet with one polar continent.
        let bathy: Vec<f64> = (0..g.n_cells)
            .map(|c| {
                if g.cell_center[c].z > 0.9 {
                    0.0
                } else {
                    3500.0
                }
            })
            .collect();
        Ocean::new(g, p, &bathy)
    }

    #[test]
    fn resting_ocean_stays_near_rest_without_forcing() {
        let mut o = small_ocean();
        let g = o.grid.clone();
        for _ in 0..5 {
            o.step(&NoExchange, g.n_cells);
        }
        // Pressure gradients from stratification drive weak flow; it must
        // stay small and finite over a few steps.
        let vmax = o.state.vn.as_slice().iter().fold(0.0f64, |a, v| a.max(v.abs()));
        assert!(vmax.is_finite());
        assert!(vmax < 5.0, "spurious velocity {vmax}");
        assert!(o.last_cg.converged, "CG must converge: {:?}", o.last_cg);
    }

    #[test]
    fn wind_stress_drives_circulation() {
        let mut o = small_ocean();
        let g = o.grid.clone();
        // Zonal wind stress pattern.
        for e in 0..g.n_edges {
            let m = g.edge_midpoint[e];
            let east = icongrid::geom::local_east_north(&m).0;
            o.state.wind_stress_n[e] = 0.1 * east.dot(&g.edge_normal[e]);
        }
        for _ in 0..10 {
            o.step(&NoExchange, g.n_cells);
        }
        let vmax = o.state.vn.as_slice().iter().fold(0.0f64, |a, v| a.max(v.abs()));
        assert!(vmax > 1e-4, "wind should move water, vmax={vmax}");
        // Ekman-layer flow concentrated near the surface.
        let surf: f64 = (0..g.n_edges).map(|e| o.state.vn.at(e, 0).abs()).sum();
        let deep: f64 = (0..g.n_edges).map(|e| o.state.vn.at(e, 5).abs()).sum();
        assert!(surf > deep, "surface {surf} deep {deep}");
    }

    #[test]
    fn heat_and_salt_conserved_without_forcing() {
        let mut o = small_ocean();
        let g = o.grid.clone();
        let h0 = o.state.heat_content(g.as_ref(), &o.params, &o.mask, g.n_cells);
        let s0 = o.state.salt_content(g.as_ref(), &o.params, &o.mask, g.n_cells);
        for _ in 0..10 {
            o.step(&NoExchange, g.n_cells);
        }
        let h1 = o.state.heat_content(g.as_ref(), &o.params, &o.mask, g.n_cells);
        let s1 = o.state.salt_content(g.as_ref(), &o.params, &o.mask, g.n_cells);
        assert!(((h1 - h0) / h0.abs().max(1.0)).abs() < 1e-9, "heat {h0} -> {h1}");
        assert!(((s1 - s0) / s0).abs() < 1e-10, "salt {s0} -> {s1}");
    }

    #[test]
    fn surface_heating_warms_and_accumulates() {
        let mut o = small_ocean();
        let g = o.grid.clone();
        o.state.heat_flux.fill(200.0); // W/m^2 everywhere
        let h0 = o.state.heat_content(g.as_ref(), &o.params, &o.mask, g.n_cells);
        for _ in 0..5 {
            o.step(&NoExchange, g.n_cells);
        }
        let h1 = o.state.heat_content(g.as_ref(), &o.params, &o.mask, g.n_cells);
        assert!(h1 > h0);
        // Budget closure: dH * rho0 * cp == accumulated surface heat.
        let added_j: f64 = (0..g.n_cells)
            .filter(|&c| o.mask.wet_cell[c])
            .map(|c| o.state.heat_acc[c] * g.cell_area[c])
            .sum();
        let dh_j = (h1 - h0) * RHO0 * CP_OCEAN;
        assert!(
            ((dh_j - added_j) / added_j).abs() < 1e-6,
            "heat budget: content {dh_j:.3e} vs forcing {added_j:.3e}"
        );
    }

    #[test]
    fn polar_cooling_grows_sea_ice() {
        let mut o = small_ocean();
        let g = o.grid.clone();
        // Suppress convective heat supply from the deep so the surface
        // layer reaches the freezing point within the short test run (the
        // real polar halocline provides this stratification).
        o.params.convective_mixing = 0.0;
        o.params.kv_tracer = 0.0;
        // Very strong cooling at high southern latitudes (the initial
        // surface water starts at ~2 degC and must reach -1.8 degC within
        // the short test run; real runs cool over months).
        for c in 0..g.n_cells {
            if g.cell_center[c].z < -0.8 {
                o.state.heat_flux[c] = -5000.0;
            }
        }
        for _ in 0..120 {
            o.step(&NoExchange, g.n_cells);
        }
        let ice: f64 = (0..g.n_cells).map(|c| o.state.ice_thick[c]).sum();
        assert!(ice > 0.0, "no ice formed");
        // Ice only where it is cold.
        for c in 0..g.n_cells {
            if o.state.ice_thick[c] > 0.0 {
                assert!(g.cell_center[c].z < -0.5, "ice at cell {c}?");
            }
        }
    }

    #[test]
    fn freshwater_flux_raises_sea_level() {
        let mut o = small_ocean();
        let g = o.grid.clone();
        o.state.fw_flux.fill(1e-6); // 1 um/s everywhere wet
        let steps = 10;
        for _ in 0..steps {
            o.step(&NoExchange, g.n_cells);
        }
        let mean_eta = o.state.mean_eta(g.as_ref(), &o.mask, g.n_cells);
        let expect = 1e-6 * o.params.dt * steps as f64;
        assert!(
            (mean_eta / expect - 1.0).abs() < 0.05,
            "mean eta {mean_eta} vs {expect}"
        );
    }

    #[test]
    fn land_cells_stay_inert() {
        let mut o = small_ocean();
        let g = o.grid.clone();
        o.state.heat_flux.fill(500.0);
        for _ in 0..5 {
            o.step(&NoExchange, g.n_cells);
        }
        for c in 0..g.n_cells {
            if !o.mask.wet_cell[c] {
                assert_eq!(o.state.eta[c], 0.0);
                assert_eq!(o.state.ice_thick[c], 0.0);
            }
        }
        for e in 0..g.n_edges {
            if !o.mask.wet_edge[e] {
                for k in 0..o.params.nlev {
                    assert_eq!(o.state.vn.at(e, k), 0.0, "dry edge {e} moved");
                }
            }
        }
    }

    #[test]
    fn convective_adjustment_removes_instability() {
        let p = OceanParams::new(4, 600.0);
        let g = Grid::build(1, icongrid::EARTH_RADIUS_M);
        let mask = OceanMask::from_bathymetry(&g, &p, &vec![4000.0; g.n_cells]);
        // Cold over warm: unstable everywhere.
        let mut t = Field3::from_fn(g.n_cells, 4, |_, k| 2.0 + 3.0 * k as f64);
        let mut s = Field3::from_fn(g.n_cells, 4, |_, _| 35.0);
        let heat0: f64 = (0..g.n_cells)
            .map(|c| t.col(c).iter().zip(&p.dz).map(|(x, d)| x * d).sum::<f64>())
            .sum();
        for _ in 0..50 {
            convective_adjustment(&p, &mask, &mut t, &mut s);
        }
        let heat1: f64 = (0..g.n_cells)
            .map(|c| t.col(c).iter().zip(&p.dz).map(|(x, d)| x * d).sum::<f64>())
            .sum();
        assert!(((heat1 - heat0) / heat0).abs() < 1e-12, "mixing conserves heat");
        // Profile is (nearly) stable now.
        for c in 0..g.n_cells {
            for k in 0..3 {
                assert!(
                    t.at(c, k) >= t.at(c, k + 1) - 0.3,
                    "cell {c} still unstable at {k}"
                );
            }
        }
    }
}
