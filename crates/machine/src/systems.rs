//! The high-performance computing systems of the study (Table 3), plus
//! Levante (used for the CPU-vs-GPU comparison of Fig. 2).

use crate::chips::{Superchip, A100, AMD_7763_X2, GRACE, HOPPER};
use serde::Serialize;

/// Interconnect description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Network {
    pub name: &'static str,
    /// Injection bandwidth per node (GB/s). Table 3: 4 x 200 Gbit/s.
    pub inj_bw_node_gbs: f64,
    /// Whether GPUDirect RDMA is available (direct GPU-GPU transfers,
    /// §5.1); without it halo payloads make an extra host hop.
    pub gpudirect: bool,
}

pub const NDR200_IB: Network = Network {
    name: "InfiniBand NDR200",
    inj_bw_node_gbs: 100.0, // 4 x 200 Gbit/s per node
    gpudirect: true,
};

pub const SLINGSHOT_11: Network = Network {
    name: "Slingshot-11",
    inj_bw_node_gbs: 100.0,
    gpudirect: true,
};

pub const HDR_IB: Network = Network {
    name: "InfiniBand HDR",
    inj_bw_node_gbs: 25.0,
    gpudirect: true,
};

/// A full system: nodes of `chips_per_node` superchips.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SystemSpec {
    pub name: &'static str,
    pub n_nodes: u32,
    pub chips_per_node: u32,
    pub chip: Superchip,
    pub network: Network,
    /// Per-node power besides the chips: NICs, fans, board (W).
    pub node_overhead_w: f64,
    /// GPU throughput derate relative to the 680 W reference TDP
    /// (Alps runs at 660 W per superchip; under the shared power budget
    /// the memory subsystem clocks slightly lower).
    pub gpu_derate: f64,
}

impl SystemSpec {
    pub fn total_chips(&self) -> u32 {
        self.n_nodes * self.chips_per_node
    }

    /// Node power at full load (W).
    pub fn node_power_w(&self) -> f64 {
        let chip_w = self
            .chip
            .shared_tdp_w
            .unwrap_or_else(|| self.chip.combined_max_power_w());
        self.chips_per_node as f64 * chip_w + self.node_overhead_w
    }
}

/// JUPITER (Jülich): 5884 nodes x 4 GH200 at 680 W, NDR200.
pub const JUPITER: SystemSpec = SystemSpec {
    name: "JUPITER",
    n_nodes: 5884,
    chips_per_node: 4,
    chip: Superchip::gh200(680.0),
    network: NDR200_IB,
    node_overhead_w: 200.0,
    gpu_derate: 1.0,
};

/// Alps (CSCS): 2688 nodes x 4 GH200 at 660 W, Slingshot-11.
pub const ALPS: SystemSpec = SystemSpec {
    name: "Alps",
    n_nodes: 2688,
    chips_per_node: 4,
    chip: Superchip::gh200(660.0),
    network: SLINGSHOT_11,
    node_overhead_w: 200.0,
    gpu_derate: 0.97,
};

/// JEDI: the single-rack (48-node) JUPITER development platform.
pub const JEDI: SystemSpec = SystemSpec {
    name: "JEDI",
    n_nodes: 48,
    chips_per_node: 4,
    chip: Superchip::gh200(680.0),
    network: NDR200_IB,
    node_overhead_w: 200.0,
    gpu_derate: 1.0,
};

/// Levante GPU partition: nodes with 4 x A100, conventional host CPU.
pub const LEVANTE_GPU: SystemSpec = SystemSpec {
    name: "Levante (GPU)",
    n_nodes: 60,
    chips_per_node: 4,
    chip: Superchip {
        gpu: A100,
        cpu: AMD_7763_X2,
        c2c_bw_gbs: 64.0,
        shared_tdp_w: None,
    },
    network: HDR_IB,
    node_overhead_w: 200.0,
    gpu_derate: 1.0,
};

/// Levante CPU partition: 2x AMD 7763 nodes. Modeled as "superchips" with
/// a zero-bandwidth GPU so the same cost machinery applies.
pub const LEVANTE_CPU: SystemSpec = SystemSpec {
    name: "Levante (CPU)",
    n_nodes: 2832,
    chips_per_node: 1,
    chip: Superchip {
        gpu: crate::chips::GpuSpec {
            name: "none",
            mem_gib: 0.0,
            peak_bw_gbs: 0.0,
            peak_fp64_gflops: 0.0,
            max_power_w: 0.0,
        },
        cpu: AMD_7763_X2,
        c2c_bw_gbs: 0.0,
        shared_tdp_w: None,
    },
    network: HDR_IB,
    node_overhead_w: 440.0,
    gpu_derate: 1.0,
};

/// The ideal GH200 "hero" chip set used for per-kernel bandwidth numbers.
pub const GH200_PEAK_BW_GBS: f64 = HOPPER.peak_bw_gbs;

/// All systems of the study (for Table 3 output).
pub fn table3_systems() -> [&'static SystemSpec; 2] {
    [&JUPITER, &ALPS]
}

#[allow(unused)]
fn _assert_specs_const() {
    let _ = GRACE;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_numbers() {
        assert_eq!(JUPITER.total_chips(), 23_536);
        assert_eq!(ALPS.total_chips(), 10_752);
        assert_eq!(JUPITER.chip.shared_tdp_w, Some(680.0));
        assert_eq!(ALPS.chip.shared_tdp_w, Some(660.0));
        assert_eq!(JEDI.n_nodes, 48);
        // Both systems: 4 x 200 Gbit/s injection per node.
        assert_eq!(JUPITER.network.inj_bw_node_gbs, 100.0);
        assert_eq!(ALPS.network.inj_bw_node_gbs, 100.0);
    }

    #[test]
    fn hero_runs_fit_within_systems() {
        // Paper: 20480 chips on JUPITER (~85-87 %), 8192 on Alps (~76 %).
        assert!(20_480 <= JUPITER.total_chips());
        assert!(8_192 <= ALPS.total_chips());
        let frac = 20_480.0 / JUPITER.total_chips() as f64;
        assert!(frac > 0.8 && frac < 0.9, "JUPITER share {frac}");
    }

    #[test]
    fn node_power_includes_tdp_sharing() {
        // JUPITER node: 4 x 680 W + overhead.
        assert_eq!(JUPITER.node_power_w(), 4.0 * 680.0 + 200.0);
        // Levante GPU node has no shared budget: full GPU + CPU power.
        let lp = LEVANTE_GPU.node_power_w();
        assert!((lp - (4.0 * (400.0 + 560.0) + 200.0)).abs() < 1e-9);
    }
}
