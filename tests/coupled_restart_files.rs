//! End-to-end checkpoint/restart through real files: the coupled model's
//! snapshot goes through the multi-file writer, back through the staggered
//! reader, into a fresh model instance — and the continuation is bitwise
//! identical (§6.4's requirement for production runs).

use esm_core::{CoupledEsm, EsmConfig};
use iosys::{read_checkpoint, restart::scratch_dir, write_checkpoint};

#[test]
fn restart_through_files_is_bit_exact() {
    let mut reference = CoupledEsm::new(EsmConfig::tiny());
    reference.run_windows(2, false).unwrap();

    // Checkpoint through the multi-file restart path.
    let dir = scratch_dir("coupled_restart");
    let snap = reference.snapshot();
    write_checkpoint(&dir, "esm", &snap, 5).expect("write checkpoint");
    let loaded = read_checkpoint(&dir, "esm", 2).expect("read checkpoint");
    assert_eq!(loaded, snap, "file round-trip must be exact");

    // Continue the reference.
    reference.run_windows(2, false).unwrap();

    // Fresh instance restored from the files, continued identically.
    let mut restored = CoupledEsm::new(EsmConfig::tiny());
    restored.restore(&loaded);
    restored.run_windows(2, false).unwrap();

    assert_eq!(reference.atm.state, restored.atm.state, "atmosphere diverged");
    assert_eq!(reference.ocean.state, restored.ocean.state, "ocean diverged");
    assert_eq!(reference.land.state, restored.land.state, "land diverged");
    for (i, (a, b)) in reference
        .hamocc
        .tracers
        .iter()
        .zip(&restored.hamocc.tracers)
        .enumerate()
    {
        assert_eq!(a, b, "BGC tracer {i} diverged");
    }
    assert_eq!(
        reference.ocean_water_received_kg,
        restored.ocean_water_received_kg
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn async_output_records_coupled_diagnostics() {
    use iosys::{OutputRequest, OutputServer, Reduction};

    let mut esm = CoupledEsm::new(EsmConfig::tiny());
    let dir = scratch_dir("coupled_output");
    let srv = OutputServer::spawn(dir.clone(), 16).expect("spawn server");

    for _ in 0..3 {
        esm.run_windows(1, false).unwrap();
        srv.post(OutputRequest {
            name: "sst",
            time_s: esm.time_s(),
            data: (0..esm.grid.n_cells).map(|c| esm.ocean.sst(c)).collect(),
            reduction: Reduction::Instantaneous,
        })
        .expect("post sst");
        srv.post(OutputRequest {
            name: "precip_mean",
            time_s: esm.time_s(),
            data: esm.atm.state.precip_rate.as_slice().to_vec(),
            reduction: Reduction::TimeMean,
        })
        .expect("post precip");
    }
    let stats = srv.finish().expect("server finished");
    assert_eq!(stats.records_written, 4, "3 instantaneous + 1 time mean");
    assert_eq!(stats.shed_queue_full + stats.shed_write_failure, 0);

    let ssts = iosys::output::read_records(&dir, "sst").expect("read sst records");
    assert_eq!(ssts.len(), 3);
    assert_eq!(ssts[2].0, esm.time_s());
    assert_eq!(ssts[0].1.len(), esm.grid.n_cells);
    std::fs::remove_dir_all(&dir).ok();
}
