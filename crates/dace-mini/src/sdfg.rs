//! The Stateful Dataflow Graph (SDFG) intermediate representation.
//!
//! Following Ben-Nun et al. (SC'19): a linear sequence of **states**, each
//! containing one parallel **map** over a grid-entity domain (and
//! optionally the vertical dimension) whose **tasklets** carry explicit
//! **memlets** — every datum moved is visible in the IR, which is what
//! makes the transformation passes (`transforms`) mechanical and safe.

use crate::ast::{Expr, FieldAccess, Kernel, Program, Statement};
use crate::loc::Span;
use crate::units::UnitDecl;

/// Execution schedule of a map (set by transformation passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Entity-outer, level-inner (column-contiguous streaming; the GPU
    /// layout ICON uses).
    EntityOuterLevelInner,
    /// Level-outer, entity-inner (the `_LOOP_EXCHANGE`/vector-machine
    /// variant in the paper's code excerpt).
    LevelOuterEntityInner,
    /// Entity-outer with tiling over entities.
    Tiled(usize),
}

/// A tasklet: one assignment with explicit input memlets.
#[derive(Debug, Clone, PartialEq)]
pub struct Tasklet {
    pub write: FieldAccess,
    pub code: Expr,
    /// Explicit input memlets (one per read in `code`, in order).
    pub reads: Vec<FieldAccess>,
}

/// A map scope: parallel loop over `domain` (x levels when `over_levels`).
#[derive(Debug, Clone, PartialEq)]
pub struct MapScope {
    pub domain: String,
    pub over_levels: bool,
    pub schedule: Schedule,
    /// Tasklets execute sequentially *per point* (fused bodies).
    pub tasklets: Vec<Tasklet>,
}

/// One SDFG state.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    pub label: String,
    pub map: MapScope,
    /// Span of the originating source statement (the first one, for
    /// fused states); synthetic for programmatic IR.
    pub span: Span,
}

/// The full graph: states execute in order.
#[derive(Debug, Clone, PartialEq)]
pub struct Sdfg {
    pub name: String,
    pub states: Vec<State>,
    /// Physical-unit declarations carried from the source (`unit` lines);
    /// transformation passes preserve them untouched.
    pub units: Vec<UnitDecl>,
}

impl Sdfg {
    /// Lower a parsed program: one state per statement — the maximally
    /// explicit dataflow form (each OpenACC kernel of the baseline
    /// becomes one map), which the transformation passes then optimize.
    pub fn from_program(name: impl Into<String>, prog: &Program) -> Sdfg {
        let mut states = Vec::new();
        for k in &prog.kernels {
            for (i, st) in k.statements.iter().enumerate() {
                states.push(State {
                    label: format!("{}_{i}", k.name),
                    map: MapScope {
                        domain: k.domain.clone(),
                        over_levels: stmt_uses_levels(st) || k.uses_levels(),
                        schedule: Schedule::EntityOuterLevelInner,
                        tasklets: vec![Tasklet {
                            write: st.target.clone(),
                            reads: st.expr.accesses().into_iter().cloned().collect(),
                            code: st.expr.clone(),
                        }],
                    },
                    span: st.span,
                });
            }
        }
        Sdfg {
            name: name.into(),
            states,
            units: prog.units.clone(),
        }
    }

    /// Reconstruct a runnable [`Program`] from a (possibly transformed)
    /// graph: one kernel per state, statements in tasklet order. Tasklets
    /// execute sequentially per point in both representations, so
    /// `exec::run_naive` on the result realizes exactly this graph's
    /// semantics — the cross-check used by the transform tests.
    pub fn to_program(&self) -> Program {
        Program {
            kernels: self
                .states
                .iter()
                .map(|s| Kernel {
                    name: s.label.clone(),
                    domain: s.map.domain.clone(),
                    statements: s
                        .map
                        .tasklets
                        .iter()
                        .map(|t| Statement {
                            target: t.write.clone(),
                            expr: t.code.clone(),
                            span: s.span,
                        })
                        .collect(),
                    span: s.span,
                })
                .collect(),
            units: self.units.clone(),
        }
    }

    /// Number of map launches per execution (the kernel-launch count of
    /// the generated code).
    pub fn n_map_launches(&self) -> usize {
        self.states.len()
    }

    /// Total per-point integer index lookups if every state resolves its
    /// own lookups independently (the unoptimized execution).
    pub fn index_lookups_naive(&self) -> usize {
        self.states
            .iter()
            .map(|s| {
                s.map
                    .tasklets
                    .iter()
                    .flat_map(|t| t.reads.iter())
                    .filter(|a| matches!(a.point, crate::ast::PointIndex::Lookup { .. }))
                    .count()
            })
            .sum()
    }

    /// Per-point index lookups when each state deduplicates its lookups
    /// (after the IndexLookupDedup pass): unique `(relation, slot)` pairs
    /// per state.
    pub fn index_lookups_deduped(&self) -> usize {
        use std::collections::HashSet;
        self.states
            .iter()
            .map(|s| {
                let mut uniq: HashSet<(&str, usize)> = HashSet::new();
                for t in &s.map.tasklets {
                    for a in &t.reads {
                        if let crate::ast::PointIndex::Lookup { relation, slot } = &a.point {
                            uniq.insert((relation.as_str(), *slot));
                        }
                    }
                }
                uniq.len()
            })
            .sum()
    }

    /// All field names appearing in the graph.
    pub fn fields(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .states
            .iter()
            .flat_map(|s| {
                s.map.tasklets.iter().flat_map(|t| {
                    std::iter::once(t.write.field.clone())
                        .chain(t.reads.iter().map(|a| a.field.clone()))
                })
            })
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

fn stmt_uses_levels(st: &Statement) -> bool {
    st.expr.uses_levels() || st.target.level != crate::ast::LevelIndex::Surface
}

/// Convenience: lower a single kernel.
pub fn lower_kernel(k: &Kernel) -> Sdfg {
    Sdfg::from_program(
        k.name.clone(),
        &Program {
            kernels: vec![k.clone()],
            units: vec![],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ekinh() -> Program {
        parse(
            r#"
            kernel pre over cells
              w_all(p) = w1(p) + w2(p) + w3(p);
            end
            kernel z_ekinh over cells
              ekin(p,k) = w1(p) * kin(edge(p,0), k)
                        + w2(p) * kin(edge(p,1), k)
                        + w3(p) * kin(edge(p,2), k);
              norm(p,k) = ekin(p,k) / w_all(p);
            end
        "#,
        )
        .unwrap()
    }

    #[test]
    fn lowering_creates_one_state_per_statement() {
        let sdfg = Sdfg::from_program("dycore", &ekinh());
        assert_eq!(sdfg.states.len(), 3);
        assert_eq!(sdfg.n_map_launches(), 3);
        // First kernel is 2-D, second is 3-D.
        assert!(!sdfg.states[0].map.over_levels);
        assert!(sdfg.states[1].map.over_levels);
    }

    #[test]
    fn memlets_are_explicit() {
        let sdfg = Sdfg::from_program("dycore", &ekinh());
        let t = &sdfg.states[1].map.tasklets[0];
        assert_eq!(t.reads.len(), 6, "3 weights + 3 gathers");
        assert_eq!(
            t.reads
                .iter()
                .filter(|a| matches!(a.point, crate::ast::PointIndex::Lookup { .. }))
                .count(),
            3
        );
    }

    #[test]
    fn lookup_counts() {
        let sdfg = Sdfg::from_program("dycore", &ekinh());
        assert_eq!(sdfg.index_lookups_naive(), 3);
        assert_eq!(sdfg.index_lookups_deduped(), 3, "already unique per state");
    }

    #[test]
    fn field_inventory() {
        let sdfg = Sdfg::from_program("dycore", &ekinh());
        let f = sdfg.fields();
        for name in ["ekin", "kin", "norm", "w1", "w2", "w3", "w_all"] {
            assert!(f.contains(&name.to_string()), "missing {name}");
        }
    }
}
