//! The assembled horizontal grid: topology plus C-grid geometry.
//!
//! Entities and staggering (Arakawa C on triangles, as in ICON):
//!
//! * **cells** — triangles; scalars (mass, temperature, tracers) live at
//!   the triangle **circumcenter** so that dual edges (arcs between
//!   adjacent cell centers) cross primal edges orthogonally;
//! * **edges** — velocity component **normal** to each edge at its
//!   midpoint (1.5 prognostic values per cell, as counted in Table 2 of
//!   the paper);
//! * **vertices** — relative vorticity on the hexagonal/pentagonal dual.

use crate::geom::{self, Vec3};
use crate::refine;
use std::collections::HashMap;

/// Fully assembled icosahedral grid. All arrays are indexed by entity id;
/// topology ids are `u32` (the 1.25 km grid has 3.36e8 cells, well within
/// range), geometry is `f64`.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Number of bisections applied to the icosahedron (ICON `R2B(k)` has
    /// `bisections = k + 1`).
    pub bisections: u32,
    /// Planet radius in metres (dimensional lengths/areas scale with it).
    pub radius: f64,

    // --- topology ---
    pub n_cells: usize,
    pub n_edges: usize,
    pub n_vertices: usize,
    /// Corner vertices of each cell (counter-clockwise).
    pub cell_vertices: Vec<[u32; 3]>,
    /// The three edges of each cell; edge `i` is opposite vertex `i` — i.e.
    /// it connects `cell_vertices[(i+1)%3]` and `cell_vertices[(i+2)%3]`.
    pub cell_edges: Vec<[u32; 3]>,
    /// Edge-adjacent neighbor cells, aligned with `cell_edges`.
    pub cell_neighbors: Vec<[u32; 3]>,
    /// The two cells adjacent to each edge (`[0]` < `[1]` never guaranteed;
    /// `[0]` is the cell that first created the edge, the normal points
    /// from `[0]` towards `[1]`).
    pub edge_cells: Vec<[u32; 2]>,
    /// The two end vertices of each edge.
    pub edge_vertices: Vec<[u32; 2]>,
    /// Orientation of each cell's edges: `+1` when the edge normal points
    /// out of the cell, `-1` otherwise. Aligned with `cell_edges`.
    pub cell_edge_sign: Vec<[f64; 3]>,
    /// Edges meeting at each vertex (5 for the 12 pentagon points,
    /// otherwise 6); `u32::MAX` marks unused slots.
    pub vertex_edges: Vec<[u32; 6]>,
    /// Cells around each vertex, same layout as `vertex_edges`.
    pub vertex_cells: Vec<[u32; 6]>,
    /// Orientation of each vertex's edges for circulation integrals:
    /// `+1` when the edge normal points counter-clockwise around the
    /// vertex (seen from outside the sphere), `-1` otherwise. Aligned with
    /// `vertex_edges`; `0.0` in unused slots.
    pub vertex_edge_sign: Vec<[f64; 6]>,

    // --- geometry (unit sphere positions, dimensional lengths/areas) ---
    pub vertex_pos: Vec<Vec3>,
    /// Cell circumcenters (unit vectors).
    pub cell_center: Vec<Vec3>,
    /// Spherical cell areas in m^2.
    pub cell_area: Vec<f64>,
    /// Edge midpoints (unit vectors).
    pub edge_midpoint: Vec<Vec3>,
    /// Unit normal of each edge in the tangent plane at the edge midpoint,
    /// pointing from `edge_cells[0]` to `edge_cells[1]`.
    pub edge_normal: Vec<Vec3>,
    /// Unit tangent along each edge (normal rotated +90 degrees, i.e.
    /// `tangent = center x normal`).
    pub edge_tangent: Vec<Vec3>,
    /// Primal edge length (between the end vertices) in metres.
    pub edge_length: Vec<f64>,
    /// Dual edge length (between the adjacent cell circumcenters) in metres.
    pub dual_edge_length: Vec<f64>,
    /// Barycentric dual area around each vertex in m^2 (one third of each
    /// adjacent triangle).
    pub vertex_dual_area: Vec<f64>,
    /// Coriolis parameter `2 Omega sin(lat)` at edge midpoints (1/s).
    pub edge_coriolis: Vec<f64>,
    /// Coriolis parameter at vertices (1/s).
    pub vertex_coriolis: Vec<f64>,
}

/// Planetary rotation rate used for Coriolis terms (Earth, rad/s).
pub const EARTH_OMEGA: f64 = 7.29212e-5;

impl Grid {
    /// Build the ICON `R2B(k)` grid with Earth radius.
    pub fn r2b(k: u32) -> Grid {
        Self::build(k + 1, crate::EARTH_RADIUS_M)
    }

    /// Build a grid with `bisections` bisections of the icosahedron and the
    /// given planet radius in metres.
    pub fn build(bisections: u32, radius: f64) -> Grid {
        let mesh = refine::bisect_n(&crate::icosahedron::icosahedron(), bisections);
        Self::from_mesh(&mesh, bisections, radius)
    }

    fn from_mesh(mesh: &crate::icosahedron::TriMesh, bisections: u32, radius: f64) -> Grid {
        let n_cells = mesh.n_faces();
        let n_vertices = mesh.n_vertices();
        let cell_vertices: Vec<[u32; 3]> = mesh.faces.clone();

        // --- edges: deduplicate vertex pairs; first-seen cell is edge_cells[0].
        let mut edge_of: HashMap<(u32, u32), u32> = HashMap::with_capacity(n_cells * 3 / 2);
        let mut edge_cells: Vec<[u32; 2]> = Vec::with_capacity(n_cells * 3 / 2);
        let mut edge_vertices: Vec<[u32; 2]> = Vec::with_capacity(n_cells * 3 / 2);
        let mut cell_edges = vec![[0u32; 3]; n_cells];
        for (c, f) in cell_vertices.iter().enumerate() {
            for i in 0..3 {
                // Edge i is opposite vertex i.
                let a = f[(i + 1) % 3];
                let b = f[(i + 2) % 3];
                let key = (a.min(b), a.max(b));
                let e = *edge_of.entry(key).or_insert_with(|| {
                    edge_cells.push([c as u32, u32::MAX]);
                    edge_vertices.push([a, b]);
                    (edge_cells.len() - 1) as u32
                });
                if edge_cells[e as usize][0] != c as u32 {
                    debug_assert_eq!(edge_cells[e as usize][1], u32::MAX);
                    edge_cells[e as usize][1] = c as u32;
                }
                cell_edges[c][i] = e;
            }
        }
        let n_edges = edge_cells.len();
        debug_assert!(edge_cells.iter().all(|ec| ec[1] != u32::MAX));

        // --- neighbor cells across each edge.
        let mut cell_neighbors = vec![[u32::MAX; 3]; n_cells];
        for c in 0..n_cells {
            for i in 0..3 {
                let e = cell_edges[c][i] as usize;
                let [c0, c1] = edge_cells[e];
                cell_neighbors[c][i] = if c0 == c as u32 { c1 } else { c0 };
            }
        }

        // --- vertex fans.
        let mut vertex_edges = vec![[u32::MAX; 6]; n_vertices];
        let mut vertex_cells = vec![[u32::MAX; 6]; n_vertices];
        let mut ve_len = vec![0usize; n_vertices];
        let mut vc_len = vec![0usize; n_vertices];
        for (e, vv) in edge_vertices.iter().enumerate() {
            for &v in vv {
                let v = v as usize;
                vertex_edges[v][ve_len[v]] = e as u32;
                ve_len[v] += 1;
            }
        }
        for (c, f) in cell_vertices.iter().enumerate() {
            for &v in f {
                let v = v as usize;
                vertex_cells[v][vc_len[v]] = c as u32;
                vc_len[v] += 1;
            }
        }

        // --- geometry.
        let vertex_pos = mesh.vertices.clone();
        let mut cell_center = Vec::with_capacity(n_cells);
        let mut cell_area = Vec::with_capacity(n_cells);
        for f in &cell_vertices {
            let a = &vertex_pos[f[0] as usize];
            let b = &vertex_pos[f[1] as usize];
            let c = &vertex_pos[f[2] as usize];
            cell_center.push(geom::spherical_circumcenter(a, b, c));
            cell_area.push(geom::spherical_triangle_area(a, b, c) * radius * radius);
        }

        let mut edge_midpoint = Vec::with_capacity(n_edges);
        let mut edge_normal = Vec::with_capacity(n_edges);
        let mut edge_tangent = Vec::with_capacity(n_edges);
        let mut edge_length = Vec::with_capacity(n_edges);
        let mut dual_edge_length = Vec::with_capacity(n_edges);
        let mut edge_coriolis = Vec::with_capacity(n_edges);
        for e in 0..n_edges {
            let [va, vb] = edge_vertices[e];
            let a = vertex_pos[va as usize];
            let b = vertex_pos[vb as usize];
            let mid = a.sphere_midpoint(&b);
            let [c0, c1] = edge_cells[e];
            let p0 = cell_center[c0 as usize];
            let p1 = cell_center[c1 as usize];
            // Normal: direction from cell 0 center to cell 1 center,
            // projected onto the tangent plane at the edge midpoint. With
            // circumcenters this is orthogonal to the primal edge.
            let n = (p1 - p0).tangent_at(&mid).normalized();
            let t = mid.cross(&n); // unit: mid and n are orthonormal
            edge_length.push(a.arc_distance(&b) * radius);
            dual_edge_length.push(p0.arc_distance(&p1) * radius);
            edge_coriolis.push(2.0 * EARTH_OMEGA * mid.lat().sin());
            edge_midpoint.push(mid);
            edge_normal.push(n);
            edge_tangent.push(t);
        }

        let mut cell_edge_sign = vec![[0.0f64; 3]; n_cells];
        for c in 0..n_cells {
            for i in 0..3 {
                let e = cell_edges[c][i] as usize;
                cell_edge_sign[c][i] = if edge_cells[e][0] == c as u32 { 1.0 } else { -1.0 };
            }
        }

        let mut vertex_dual_area = vec![0.0f64; n_vertices];
        for (c, f) in cell_vertices.iter().enumerate() {
            for &v in f {
                vertex_dual_area[v as usize] += cell_area[c] / 3.0;
            }
        }
        let vertex_coriolis: Vec<f64> = vertex_pos
            .iter()
            .map(|p| 2.0 * EARTH_OMEGA * p.lat().sin())
            .collect();

        // Circulation orientation: traversing the dual cell boundary
        // counter-clockwise around vertex v, the crossing direction of
        // primal edge e is +normal or -normal. CCW direction at the edge
        // midpoint m (relative to v) is r_v x (m - r_v).
        let mut vertex_edge_sign = vec![[0.0f64; 6]; n_vertices];
        for v in 0..n_vertices {
            let rv = vertex_pos[v];
            for (slot, &e) in vertex_edges[v].iter().enumerate() {
                if e == u32::MAX {
                    continue;
                }
                let m = edge_midpoint[e as usize];
                let ccw = rv.cross(&(m - rv));
                vertex_edge_sign[v][slot] = if edge_normal[e as usize].dot(&ccw) >= 0.0 {
                    1.0
                } else {
                    -1.0
                };
            }
        }

        Grid {
            bisections,
            radius,
            n_cells,
            n_edges,
            n_vertices,
            cell_vertices,
            cell_edges,
            cell_neighbors,
            edge_cells,
            edge_vertices,
            cell_edge_sign,
            vertex_edges,
            vertex_cells,
            vertex_edge_sign,
            vertex_pos,
            cell_center,
            cell_area,
            edge_midpoint,
            edge_normal,
            edge_tangent,
            edge_length,
            dual_edge_length,
            vertex_dual_area,
            edge_coriolis,
            vertex_coriolis,
        }
    }

    /// Nominal resolution in km (sqrt of mean cell area).
    pub fn nominal_resolution_km(&self) -> f64 {
        let mean = self.total_area() / self.n_cells as f64;
        mean.sqrt() / 1000.0
    }

    /// Total surface area in m^2.
    pub fn total_area(&self) -> f64 {
        self.cell_area.iter().sum()
    }

    /// Shortest dual edge, the length that controls the CFL limit.
    pub fn min_dual_edge_m(&self) -> f64 {
        self.dual_edge_length.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn small() -> Grid {
        Grid::build(3, crate::EARTH_RADIUS_M) // R2B2: 1280 cells
    }

    #[test]
    fn euler_characteristic() {
        let g = small();
        assert_eq!(
            g.n_vertices as i64 - g.n_edges as i64 + g.n_cells as i64,
            2,
            "V - E + F = 2 for a sphere"
        );
    }

    #[test]
    fn areas_sum_to_sphere() {
        let g = small();
        let expect = 4.0 * PI * g.radius * g.radius;
        assert!((g.total_area() / expect - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vertex_dual_areas_sum_to_sphere() {
        let g = small();
        let expect = 4.0 * PI * g.radius * g.radius;
        let total: f64 = g.vertex_dual_area.iter().sum();
        assert!((total / expect - 1.0).abs() < 1e-12);
    }

    #[test]
    fn twelve_pentagons() {
        let g = small();
        let pent = g
            .vertex_edges
            .iter()
            .filter(|ve| ve.iter().filter(|&&e| e != u32::MAX).count() == 5)
            .count();
        let hex = g
            .vertex_edges
            .iter()
            .filter(|ve| ve.iter().filter(|&&e| e != u32::MAX).count() == 6)
            .count();
        assert_eq!(pent, 12);
        assert_eq!(pent + hex, g.n_vertices);
    }

    #[test]
    fn edge_normal_orthogonal_to_primal_edge() {
        // The C-grid orthogonality property delivered by circumcenters.
        let g = small();
        for e in 0..g.n_edges {
            let [va, vb] = g.edge_vertices[e];
            let along = (g.vertex_pos[vb as usize] - g.vertex_pos[va as usize]).normalized();
            let dot = along.dot(&g.edge_normal[e]).abs();
            assert!(dot < 2e-2, "edge {e}: normal not orthogonal, dot={dot}");
        }
    }

    #[test]
    fn cell_edge_sign_consistency() {
        // Every edge gets +1 from one adjacent cell and -1 from the other.
        let g = small();
        let mut sum = vec![0.0f64; g.n_edges];
        for c in 0..g.n_cells {
            for i in 0..3 {
                sum[g.cell_edges[c][i] as usize] += g.cell_edge_sign[c][i];
            }
        }
        assert!(sum.iter().all(|&s| s.abs() < 1e-15));
    }

    #[test]
    fn neighbors_are_mutual() {
        let g = small();
        for c in 0..g.n_cells {
            for i in 0..3 {
                let n = g.cell_neighbors[c][i] as usize;
                assert!(g.cell_neighbors[n].contains(&(c as u32)));
            }
        }
    }

    #[test]
    fn edge_opposite_vertex_layout() {
        // cell_edges[c][i] connects cell_vertices[c][(i+1)%3] and [(i+2)%3].
        let g = small();
        for c in 0..g.n_cells {
            for i in 0..3 {
                let e = g.cell_edges[c][i] as usize;
                let [a, b] = g.edge_vertices[e];
                let want = [
                    g.cell_vertices[c][(i + 1) % 3],
                    g.cell_vertices[c][(i + 2) % 3],
                ];
                assert!(want.contains(&a) && want.contains(&b));
            }
        }
    }

    #[test]
    fn resolution_table() {
        // R2B2 nominal resolution ~ 640 km (halving per level from R2B8=10km).
        let g = small();
        let expect = crate::r2b_nominal_resolution_km(2);
        assert!((g.nominal_resolution_km() / expect - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dual_edges_positive_and_bounded() {
        let g = small();
        for e in 0..g.n_edges {
            assert!(g.dual_edge_length[e] > 0.0);
            assert!(g.edge_length[e] > 0.0);
            // Dual and primal edges are comparable in length on this mesh.
            let ratio = g.dual_edge_length[e] / g.edge_length[e];
            assert!((0.3..3.0).contains(&ratio), "edge {e} ratio {ratio}");
        }
    }
}
