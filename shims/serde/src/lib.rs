//! Minimal offline stand-in for `serde` (see `shims/README.md`).
//!
//! The workspace only ever serializes plain-old-data structs and unit
//! enums into JSON artifacts, so the shim collapses serde's data model to
//! one self-describing [`Content`] tree. `#[derive(Serialize)]` (from the
//! sibling `serde_derive` shim) generates a `to_content` that maps named
//! fields to a JSON object and unit enum variants to their names —
//! exactly the encoding real serde+serde_json produce for these types.

pub use serde_derive::Serialize;

/// Self-describing serialized value: the shim's entire data model. The
/// `serde_json` shim re-exports this as its `Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(x) => Some(*x),
            Content::U64(n) => Some(*n as f64),
            Content::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(n) => Some(*n),
            Content::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Content::Map(_))
    }

    /// Object field lookup (`value["key"]`-style, but total).
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Missing keys index to `Null`, matching serde_json's `Value` indexing.
impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        const NULL: Content = Content::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// Types that can serialize themselves into a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_nodes() {
        assert_eq!(3u32.to_content(), Content::U64(3));
        assert_eq!((-3i64).to_content(), Content::I64(-3));
        assert_eq!(1.5f64.to_content(), Content::F64(1.5));
        assert_eq!("x".to_content(), Content::Str("x".into()));
        assert_eq!(None::<f64>.to_content(), Content::Null);
        assert_eq!(
            vec![1u8, 2].to_content(),
            Content::Seq(vec![Content::U64(1), Content::U64(2)])
        );
    }
}
