//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index).
//!
//! The `figures` binary prints each artifact as text and writes the series
//! to `results/*.json`; the criterion benches measure the real mini-kernel
//! performance that grounds the machine model's workload profile.

pub mod figures;
