//! Deterministic fault injection for the message-passing layer.
//!
//! A [`FaultPlan`] is a seeded, **one-shot** schedule of communication
//! faults: drop / delay / duplicate / bit-flip the *n*-th point-to-point
//! message on a given (source, destination) edge, and kill a rank at a
//! given coupling window. Every fault fires at most once — after a
//! rollback the replayed traffic sails through — which is exactly the
//! transient-fault model the resilience driver is built to absorb.
//!
//! The plan is shared (`Arc`) across every rank thread and every `World`
//! launched during a run: edge send counters accumulate across worlds, so
//! "the 3rd message from rank 1 to rank 0" means the 3rd such message of
//! the whole simulation, regardless of how many guard worlds were spun up.
//!
//! [`CommError`] is the typed failure surface of the fault-aware receive
//! path ([`crate::Comm::recv_timeout`]): timeouts (dropped message, dead
//! peer), payload corruption (bit flip caught by the message checksum),
//! and disconnection.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// What to do to one matched point-to-point message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Swallow the message entirely.
    Drop,
    /// Deliver late by this much (exercises timeout/backoff ride-through).
    Delay(Duration),
    /// Deliver the message twice (receiver must deduplicate by sequence
    /// number).
    Duplicate,
    /// Flip one bit of the payload after checksumming (receiver must
    /// detect the corruption).
    BitFlip { bit: usize },
}

/// One planned fault: fires on the `nth` send (1-based) over `src -> dst`,
/// then is consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    pub src: usize,
    pub dst: usize,
    pub nth: u64,
    pub action: FaultAction,
}

/// Typed failure of a fault-aware receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the deadline (message dropped or
    /// the peer is dead). `attempts` counts the exponential-backoff waits.
    Timeout {
        src: usize,
        tag: u64,
        waited: Duration,
        attempts: u32,
    },
    /// A matching message arrived but its checksum did not verify.
    Corrupt { src: usize, tag: u64, seq: u64 },
    /// The world's channels are gone (all senders dropped).
    Disconnected { src: usize, tag: u64 },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout {
                src,
                tag,
                waited,
                attempts,
            } => write!(
                f,
                "timed out waiting for message from rank {src} tag {tag} ({waited:?}, {attempts} attempts)"
            ),
            CommError::Corrupt { src, tag, seq } => write!(
                f,
                "corrupt message from rank {src} tag {tag} seq {seq} (checksum mismatch)"
            ),
            CommError::Disconnected { src, tag } => {
                write!(f, "channel disconnected waiting for rank {src} tag {tag}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Counters of faults actually injected, for post-run assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    pub dropped: u64,
    pub delayed: u64,
    pub duplicated: u64,
    pub bit_flipped: u64,
    pub killed: u64,
    /// Hangs that actually took effect (a rank went silent).
    pub hung: u64,
}

impl FaultReport {
    pub fn total(&self) -> u64 {
        self.dropped + self.delayed + self.duplicated + self.bit_flipped + self.killed + self.hung
    }
}

/// One scheduled hang: from `since_window` on, `rank` goes silent (alive
/// but unresponsive — distinct from a kill) until released.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PlannedHang {
    rank: usize,
    since_window: u64,
    fired: bool,
}

struct PlanState {
    faults: Vec<PlannedFault>,
    /// Messages sent so far per (src, dst) world-rank edge.
    edge_counts: HashMap<(usize, usize), u64>,
    kills: Vec<(usize, u64)>,
    /// Ranks whose kill has fired: they stay dead until revived by a
    /// supervisor. The legacy rollback driver never consults this — its
    /// transient-fault model treats a kill as one-shot.
    dead: Vec<usize>,
    hangs: Vec<PlannedHang>,
    report: FaultReport,
}

/// A deterministic, one-shot schedule of communication faults.
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan {
            state: Mutex::new(PlanState {
                faults: Vec::new(),
                edge_counts: HashMap::new(),
                kills: Vec::new(),
                dead: Vec::new(),
                hangs: Vec::new(),
                report: FaultReport::default(),
            }),
        }
    }

    /// Deterministically generate `n_faults` message faults over a world of
    /// `n_ranks` ranks from `seed`. The same seed always yields the same
    /// plan. Actions cycle through drop / delay / duplicate / bit-flip with
    /// randomized edges and positions.
    pub fn seeded(seed: u64, n_ranks: usize, n_faults: usize) -> FaultPlan {
        assert!(n_ranks >= 2, "faults need at least two ranks");
        let plan = FaultPlan::new();
        let mut rng = Splitmix64::new(seed);
        {
            let mut st = plan.state.lock();
            for _ in 0..n_faults {
                let src = (rng.next() % n_ranks as u64) as usize;
                let mut dst = (rng.next() % n_ranks as u64) as usize;
                if dst == src {
                    dst = (dst + 1) % n_ranks;
                }
                let nth = 1 + rng.next() % 3;
                let action = match rng.next() % 4 {
                    0 => FaultAction::Drop,
                    1 => FaultAction::Delay(Duration::from_millis(1 + rng.next() % 8)),
                    2 => FaultAction::Duplicate,
                    _ => FaultAction::BitFlip {
                        bit: (rng.next() % 512) as usize,
                    },
                };
                st.faults.push(PlannedFault { src, dst, nth, action });
            }
        }
        plan
    }

    /// Add one explicit fault (builder style).
    pub fn inject(self, src: usize, dst: usize, nth: u64, action: FaultAction) -> FaultPlan {
        self.state.lock().faults.push(PlannedFault { src, dst, nth, action });
        self
    }

    /// Schedule rank `rank` to die at coupling window `window` (1-based).
    /// Consumed by the resilience driver via [`FaultPlan::take_kill`].
    pub fn kill_rank(self, rank: usize, window: u64) -> FaultPlan {
        self.state.lock().kills.push((rank, window));
        self
    }

    /// Schedule rank `rank` to **hang** from coupling window `window` on:
    /// the rank stays alive but goes silent indefinitely — it holds its
    /// world up for a bounded grace period each round and never sends.
    /// Unlike a kill this is what a livelocked or deadlocked component
    /// looks like: only a deadline-based failure detector (missed-beat
    /// accrual), not a single `recv_timeout`, can distinguish it from a
    /// slow peer. Released by [`FaultPlan::revive`].
    pub fn hang(self, rank: usize, window: u64) -> FaultPlan {
        self.state.lock().hangs.push(PlannedHang {
            rank,
            since_window: window,
            fired: false,
        });
        self
    }

    /// Is `rank` hanging at `window`? Counts the hang as fired (once) the
    /// first time it takes effect.
    pub fn is_hung(&self, rank: usize, window: u64) -> bool {
        let mut st = self.state.lock();
        let Some(h) = st
            .hangs
            .iter()
            .position(|h| h.rank == rank && window >= h.since_window)
        else {
            return false;
        };
        if !st.hangs[h].fired {
            st.hangs[h].fired = true;
            st.report.hung += 1;
        }
        true
    }

    /// Is `rank` dead (its kill has fired and no one revived it)?
    pub fn is_dead(&self, rank: usize) -> bool {
        self.state.lock().dead.contains(&rank)
    }

    /// Bring `rank` back: clears persistent death and releases any hang.
    /// Called by a supervisor after respawning the rank from checkpoint.
    pub fn revive(&self, rank: usize) {
        let mut st = self.state.lock();
        st.dead.retain(|&r| r != rank);
        st.hangs.retain(|h| h.rank != rank);
    }

    /// The faults still pending (not yet fired), for inspection.
    pub fn pending(&self) -> Vec<PlannedFault> {
        self.state.lock().faults.clone()
    }

    /// What has been injected so far.
    pub fn report(&self) -> FaultReport {
        self.state.lock().report.clone()
    }

    /// Called by the send path for every message on `src -> dst`.
    /// Increments the edge counter and consumes a matching fault, if any.
    pub(crate) fn take_action(&self, src: usize, dst: usize) -> Option<FaultAction> {
        let mut st = self.state.lock();
        let count = st.edge_counts.entry((src, dst)).or_insert(0);
        *count += 1;
        let nth = *count;
        let idx = st
            .faults
            .iter()
            .position(|p| p.src == src && p.dst == dst && p.nth == nth)?;
        let action = st.faults.remove(idx).action;
        match &action {
            FaultAction::Drop => st.report.dropped += 1,
            FaultAction::Delay(_) => st.report.delayed += 1,
            FaultAction::Duplicate => st.report.duplicated += 1,
            FaultAction::BitFlip { .. } => st.report.bit_flipped += 1,
        }
        Some(action)
    }

    /// True exactly once if `rank` is scheduled to die at `window`. The
    /// rank is also marked persistently dead ([`FaultPlan::is_dead`])
    /// until a supervisor calls [`FaultPlan::revive`].
    pub fn take_kill(&self, rank: usize, window: u64) -> bool {
        let mut st = self.state.lock();
        if let Some(idx) = st.kills.iter().position(|&(r, w)| r == rank && w == window) {
            st.kills.remove(idx);
            st.report.killed += 1;
            if !st.dead.contains(&rank) {
                st.dead.push(rank);
            }
            true
        } else {
            false
        }
    }
}

/// Message checksum: FNV-1a over tag, sequence number, and payload bits.
/// Not cryptographic — it exists to catch injected/accidental corruption.
pub(crate) fn msg_checksum(tag: u64, seq: u64, data: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut feed = |word: u64| {
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    feed(tag);
    feed(seq);
    for v in data {
        feed(v.to_bits());
    }
    h
}

/// Small deterministic RNG for plan generation.
struct Splitmix64 {
    state: u64,
}

impl Splitmix64 {
    fn new(seed: u64) -> Splitmix64 {
        Splitmix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::seeded(42, 4, 10);
        let b = FaultPlan::seeded(42, 4, 10);
        assert_eq!(a.pending(), b.pending());
        let c = FaultPlan::seeded(43, 4, 10);
        assert_ne!(a.pending(), c.pending());
    }

    #[test]
    fn faults_are_one_shot() {
        let plan = FaultPlan::new().inject(0, 1, 2, FaultAction::Drop);
        assert_eq!(plan.take_action(0, 1), None); // 1st message: no fault
        assert_eq!(plan.take_action(0, 1), Some(FaultAction::Drop)); // 2nd: fires
        assert_eq!(plan.take_action(0, 1), None); // consumed
        assert_eq!(plan.report().dropped, 1);
    }

    #[test]
    fn kills_are_one_shot_and_targeted() {
        let plan = FaultPlan::new().kill_rank(2, 5);
        assert!(!plan.take_kill(2, 4));
        assert!(!plan.take_kill(1, 5));
        assert!(plan.take_kill(2, 5));
        assert!(!plan.take_kill(2, 5));
        assert_eq!(plan.report().killed, 1);
    }

    #[test]
    fn kills_leave_the_rank_persistently_dead_until_revived() {
        let plan = FaultPlan::new().kill_rank(1, 3);
        assert!(!plan.is_dead(1));
        assert!(plan.take_kill(1, 3));
        assert!(plan.is_dead(1), "a fired kill leaves the rank down");
        assert!(!plan.take_kill(1, 3), "the kill itself stays one-shot");
        plan.revive(1);
        assert!(!plan.is_dead(1));
    }

    #[test]
    fn hangs_persist_from_their_window_until_released() {
        let plan = FaultPlan::new().hang(2, 4);
        assert!(!plan.is_hung(2, 3), "not yet hanging before its window");
        assert!(plan.is_hung(2, 4));
        assert!(plan.is_hung(2, 7), "a hang is indefinite, not one-shot");
        assert!(!plan.is_hung(1, 7), "targeted at one rank");
        assert_eq!(plan.report().hung, 1, "counted once, not per observation");
        plan.revive(2);
        assert!(!plan.is_hung(2, 8), "revive releases the hang");
    }

    #[test]
    fn checksum_sees_every_bit() {
        let data = vec![1.0, -2.5, 3.5];
        let base = msg_checksum(7, 1, &data);
        assert_eq!(base, msg_checksum(7, 1, &data));
        assert_ne!(base, msg_checksum(8, 1, &data));
        assert_ne!(base, msg_checksum(7, 2, &data));
        let mut tweaked = data.clone();
        tweaked[2] = f64::from_bits(tweaked[2].to_bits() ^ 1);
        assert_ne!(base, msg_checksum(7, 1, &tweaked));
    }
}
