//! The 21 carbon pools of the vegetation model (Table 2: "21 additional
//! carbon pools, plus the leaf area index"), mirroring JSBach's live /
//! litter / soil organic pool structure.

/// Carbon pool identifiers. Values are indices into per-(cell, PFT) pool
/// arrays of length [`N_POOLS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CarbonPool {
    // --- live biomass ---
    Leaf = 0,
    Wood = 1,
    FineRoot = 2,
    CoarseRoot = 3,
    Reserve = 4,
    Fruit = 5,
    // --- litter ---
    LeafLitterFast = 6,
    LeafLitterSlow = 7,
    WoodLitterAbove = 8,
    WoodLitterBelow = 9,
    RootLitterFast = 10,
    RootLitterSlow = 11,
    CoarseWoodyDebris = 12,
    // --- soil organic matter ---
    SoilFast = 13,
    SoilSlow = 14,
    Humus = 15,
    HumusStable = 16,
    Charcoal = 17,
    // --- auxiliary ---
    Seed = 18,
    Exudates = 19,
    Microbial = 20,
}

/// Number of carbon pools per (cell, PFT).
pub const N_POOLS: usize = 21;

/// Live biomass pools (photosynthate allocation targets, respiring).
pub const LIVE_POOLS: [CarbonPool; 6] = [
    CarbonPool::Leaf,
    CarbonPool::Wood,
    CarbonPool::FineRoot,
    CarbonPool::CoarseRoot,
    CarbonPool::Reserve,
    CarbonPool::Fruit,
];

/// Litter pools (receive turnover, decay to soil pools + CO2).
pub const LITTER_POOLS: [CarbonPool; 7] = [
    CarbonPool::LeafLitterFast,
    CarbonPool::LeafLitterSlow,
    CarbonPool::WoodLitterAbove,
    CarbonPool::WoodLitterBelow,
    CarbonPool::RootLitterFast,
    CarbonPool::RootLitterSlow,
    CarbonPool::CoarseWoodyDebris,
];

/// Soil organic pools (slow decay to CO2).
pub const SOIL_POOLS: [CarbonPool; 5] = [
    CarbonPool::SoilFast,
    CarbonPool::SoilSlow,
    CarbonPool::Humus,
    CarbonPool::HumusStable,
    CarbonPool::Charcoal,
];

impl CarbonPool {
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Litter pool receiving this live pool's turnover.
    pub fn turnover_target(self) -> Option<CarbonPool> {
        use CarbonPool::*;
        match self {
            Leaf => Some(LeafLitterFast),
            Wood => Some(WoodLitterAbove),
            FineRoot => Some(RootLitterFast),
            CoarseRoot => Some(RootLitterSlow),
            Reserve => Some(Exudates),
            Fruit => Some(Seed),
            _ => None,
        }
    }

    /// Soil pool receiving this litter pool's humified fraction.
    pub fn decay_target(self) -> Option<CarbonPool> {
        use CarbonPool::*;
        match self {
            LeafLitterFast | RootLitterFast | Exudates | Seed => Some(SoilFast),
            LeafLitterSlow | RootLitterSlow => Some(SoilSlow),
            WoodLitterAbove | WoodLitterBelow | CoarseWoodyDebris => Some(Humus),
            SoilFast => Some(Humus),
            SoilSlow => Some(HumusStable),
            Humus => Some(HumusStable),
            Microbial => Some(SoilFast),
            _ => None,
        }
    }

    /// Decay e-folding time (s) of dead pools; `None` for live pools.
    pub fn decay_tau(self) -> Option<f64> {
        use CarbonPool::*;
        const DAY: f64 = 86_400.0;
        const YEAR: f64 = 365.0 * 86_400.0;
        match self {
            LeafLitterFast | Exudates => Some(90.0 * DAY),
            Seed => Some(180.0 * DAY),
            RootLitterFast => Some(150.0 * DAY),
            LeafLitterSlow | RootLitterSlow => Some(2.0 * YEAR),
            WoodLitterAbove | WoodLitterBelow => Some(10.0 * YEAR),
            CoarseWoodyDebris => Some(20.0 * YEAR),
            SoilFast | Microbial => Some(5.0 * YEAR),
            SoilSlow => Some(30.0 * YEAR),
            Humus => Some(100.0 * YEAR),
            HumusStable => Some(1000.0 * YEAR),
            Charcoal => Some(5000.0 * YEAR),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_indices_are_a_bijection() {
        let mut seen = [false; N_POOLS];
        for p in LIVE_POOLS.iter().chain(&LITTER_POOLS).chain(&SOIL_POOLS) {
            assert!(!seen[p.idx()], "duplicate pool {p:?}");
            seen[p.idx()] = true;
        }
        // 6 + 7 + 5 named groups + 3 auxiliary = 21.
        assert_eq!(seen.iter().filter(|&&s| s).count(), 18);
        assert_eq!(N_POOLS, 21);
    }

    #[test]
    fn turnover_goes_from_live_to_dead() {
        for p in LIVE_POOLS {
            let t = p.turnover_target().expect("live pools must shed");
            assert!(!LIVE_POOLS.contains(&t), "{p:?} -> {t:?}");
        }
    }

    #[test]
    fn decay_chains_terminate() {
        // Following decay targets from any pool must reach a pool without
        // a target (or Charcoal/HumusStable) in < N_POOLS hops.
        for start in 0..N_POOLS {
            let mut cur = unsafe { std::mem::transmute::<usize, CarbonPool>(start) };
            for _ in 0..N_POOLS {
                match cur.decay_target() {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            assert!(
                cur.decay_target().is_none()
                    || matches!(cur, CarbonPool::HumusStable | CarbonPool::Charcoal),
                "cycle from pool {start}"
            );
        }
    }

    #[test]
    fn dead_pools_have_decay_times() {
        for p in LITTER_POOLS.iter().chain(&SOIL_POOLS) {
            assert!(p.decay_tau().is_some(), "{p:?} needs a decay time");
        }
        for p in LIVE_POOLS {
            assert!(p.decay_tau().is_none(), "{p:?} is live");
        }
        // Soil pools decay slower than litter pools on average.
        let mean = |ps: &[CarbonPool]| {
            ps.iter().filter_map(|p| p.decay_tau()).sum::<f64>()
                / ps.iter().filter(|p| p.decay_tau().is_some()).count() as f64
        };
        assert!(mean(&SOIL_POOLS) > mean(&LITTER_POOLS));
    }
}
