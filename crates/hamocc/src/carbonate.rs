//! Simplified carbonate chemistry and air–sea CO2 exchange.
//!
//! Uses the carbonate-alkalinity approximation: with `CA ~ Alk` and
//! `[CO2*] ~ K * (2 DIC - Alk)^2 / (Alk - DIC)`, the ocean's CO2 partial
//! pressure follows from DIC, alkalinity, and a temperature-dependent
//! solubility. Quantitatively crude but qualitatively faithful: warm,
//! DIC-rich water outgasses; cold or biologically drawn-down water takes
//! carbon up — the behaviour Figure 5 of the paper visualizes.

/// Reference surface pCO2 (uatm) at the reference DIC/Alk/temperature.
pub const PCO2_REF: f64 = 380.0;

/// Molar mass of carbon (kg/kmol).
pub const CARBON_KG_PER_KMOL: f64 = 12.011;

/// Ocean pCO2 (uatm) from DIC (kmol C/m^3), alkalinity (kmol/m^3), and
/// temperature (deg C).
pub fn pco2_ocean(dic: f64, alk: f64, temp: f64) -> f64 {
    // Guard the approximation's pole at alk <= dic.
    let dic = dic.max(1e-6);
    let alk = alk.max(dic * 1.02);
    let co2_star = (2.0 * dic - alk).max(1e-9).powi(2) / (alk - dic);
    // Reference state: DIC 2.05e-3, Alk 2.35e-3 at 15 C.
    let ref_star = (2.0f64 * 2.05e-3 - 2.35e-3).powi(2) / (2.35e-3 - 2.05e-3);
    // Solubility falls ~4.2 %/K: warmer water holds less CO2, so the same
    // CO2* maps to a higher partial pressure.
    let t_factor = (0.0423 * (temp - 15.0)).exp();
    PCO2_REF * (co2_star / ref_star) * t_factor
}

/// Gas-transfer (piston) velocity (m/s) from wind speed (m/s),
/// Wanninkhof-style quadratic.
pub fn piston_velocity(wind: f64) -> f64 {
    let kw_cm_per_h = 0.31 * wind * wind;
    kw_cm_per_h * 0.01 / 3600.0
}

/// Air–sea CO2 flux (kmol C/m^2/s, **positive upward** = outgassing)
/// given surface DIC/Alk/temperature, wind, atmospheric pCO2 (uatm), and
/// ice cover fraction (0..1) gating the exchange.
pub fn air_sea_co2_flux(
    dic: f64,
    alk: f64,
    temp: f64,
    wind: f64,
    pco2_atm: f64,
    ice_fraction: f64,
) -> f64 {
    let dp = pco2_ocean(dic, alk, temp) - pco2_atm;
    // Henry solubility ~ 3.2e-5 kmol/m^3/uatm at 15 C, falling with T.
    let k0 = 3.2e-5 * (-0.02 * (temp - 15.0)).exp() * 1e-3;
    piston_velocity(wind) * k0 * dp * (1.0 - ice_fraction).clamp(0.0, 1.0)
}

/// Oxygen saturation (kmol/m^3) vs temperature (deg C): colder water
/// holds more oxygen.
pub fn o2_saturation(temp: f64) -> f64 {
    (3.5e-4 - 5.0e-6 * temp).max(1.2e-4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pco2_at_reference_state() {
        let p = pco2_ocean(2.05e-3, 2.35e-3, 15.0);
        assert!((p / PCO2_REF - 1.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn warming_raises_pco2() {
        let cold = pco2_ocean(2.05e-3, 2.35e-3, 2.0);
        let warm = pco2_ocean(2.05e-3, 2.35e-3, 28.0);
        assert!(warm > 1.5 * cold, "cold {cold} warm {warm}");
    }

    #[test]
    fn biological_drawdown_lowers_pco2() {
        let rich = pco2_ocean(2.10e-3, 2.35e-3, 15.0);
        let drawn = pco2_ocean(1.95e-3, 2.35e-3, 15.0);
        assert!(drawn < rich);
    }

    #[test]
    fn flux_direction_follows_gradient() {
        // Supersaturated warm water outgasses.
        let out = air_sea_co2_flux(2.15e-3, 2.35e-3, 28.0, 8.0, 420.0, 0.0);
        assert!(out > 0.0);
        // Undersaturated cold water absorbs.
        let inn = air_sea_co2_flux(1.95e-3, 2.35e-3, 2.0, 8.0, 420.0, 0.0);
        assert!(inn < 0.0);
        // No wind, no flux; full ice, no flux.
        assert_eq!(air_sea_co2_flux(2.15e-3, 2.35e-3, 28.0, 0.0, 420.0, 0.0), 0.0);
        assert_eq!(air_sea_co2_flux(2.15e-3, 2.35e-3, 28.0, 8.0, 420.0, 1.0), 0.0);
    }

    #[test]
    fn piston_velocity_quadratic_in_wind() {
        let k5 = piston_velocity(5.0);
        let k10 = piston_velocity(10.0);
        assert!((k10 / k5 - 4.0).abs() < 1e-12);
        // ~30 cm/h at 10 m/s.
        assert!((k10 * 3600.0 * 100.0 - 31.0).abs() < 1.0);
    }

    #[test]
    fn oxygen_saturation_decreases_with_warmth() {
        assert!(o2_saturation(0.0) > o2_saturation(25.0));
        assert!(o2_saturation(50.0) > 0.0);
    }
}
