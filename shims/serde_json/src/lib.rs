//! Minimal offline stand-in for `serde_json` (see `shims/README.md`).
//!
//! `Value` is the `serde` shim's [`serde::Content`] tree; the [`json!`]
//! macro supports the object/array/expression grammar the workspace uses,
//! and [`to_string_pretty`] emits standard JSON (NaN/infinities as
//! `null`, matching serde_json's lossy float policy).

pub use serde::Content as Value;

/// Serialization error (the shim's writer is infallible in practice, but
/// the signature mirrors serde_json for drop-in use).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert any `Serialize` value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent, like serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Round-trippable shortest representation; ensure a JSON
                // number (Rust prints integral floats without ".0", which
                // is still valid JSON).
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => write_seq('[', ']', items.len(), indent, depth, out, |i, out| {
            write_value(&items[i], indent, depth + 1, out)
        }),
        Value::Map(entries) => {
            write_seq('{', '}', entries.len(), indent, depth, out, |i, out| {
                write_escaped(&entries[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(&entries[i].1, indent, depth + 1, out)
            })
        }
    }
}

fn write_seq(
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut item: impl FnMut(usize, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(i, out);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Build a [`Value`] from JSON-like syntax. Supports the subset the
/// workspace uses: object literals with string-literal keys, array
/// literals, `null`, and arbitrary Rust expressions implementing
/// `serde::Serialize` in value position (including nested objects/arrays).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let items: Vec<$crate::Value> = {
            let mut items: Vec<$crate::Value> = Vec::new();
            $crate::json_items!(items; $($tt)*);
            items
        };
        $crate::Value::Seq(items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let entries: Vec<(String, $crate::Value)> = {
            let mut entries: Vec<(String, $crate::Value)> = Vec::new();
            $crate::json_entries!(entries; $($tt)*);
            entries
        };
        $crate::Value::Map(entries)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: comma-separated array elements. An element is either a
/// nested JSON form (single token tree: `{...}`, `[...]`, a literal, an
/// identifier) or a general Rust expression.
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($items:ident;) => {};
    ($items:ident; $val:tt , $($rest:tt)*) => {
        $items.push($crate::json!($val));
        $crate::json_items!($items; $($rest)*);
    };
    ($items:ident; $val:tt) => {
        $items.push($crate::json!($val));
    };
    ($items:ident; $val:expr , $($rest:tt)*) => {
        $items.push($crate::json!($val));
        $crate::json_items!($items; $($rest)*);
    };
    ($items:ident; $val:expr) => {
        $items.push($crate::json!($val));
    };
}

/// Internal: comma-separated `"key": value` object entries.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($entries:ident;) => {};
    ($entries:ident; $key:literal : $val:tt , $($rest:tt)*) => {
        $entries.push(($key.to_string(), $crate::json!($val)));
        $crate::json_entries!($entries; $($rest)*);
    };
    ($entries:ident; $key:literal : $val:tt) => {
        $entries.push(($key.to_string(), $crate::json!($val)));
    };
    ($entries:ident; $key:literal : $val:expr , $($rest:tt)*) => {
        $entries.push(($key.to_string(), $crate::json!($val)));
        $crate::json_entries!($entries; $($rest)*);
    };
    ($entries:ident; $key:literal : $val:expr) => {
        $entries.push(($key.to_string(), $crate::json!($val)));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_trees() {
        let rows = vec![json!({"a": 1.0}), json!({"a": 2.0})];
        let tau = 145.7f64;
        let v = json!({
            "name": "jupiter",
            "tau": tau,
            "expr": tau * 2.0,
            "rows": rows,
            "nested": {"km10": 1.2e10, "list": [1, 2, 3]},
            "nothing": null,
        });
        assert_eq!(v.get("name").unwrap().as_str(), Some("jupiter"));
        assert_eq!(v.get("expr").unwrap().as_f64(), Some(291.4));
        assert_eq!(v.get("rows").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("nested").unwrap().get("list").unwrap(),
            &Value::Seq(vec![Value::I64(1), Value::I64(2), Value::I64(3)])
        );
        assert_eq!(v.get("nothing"), Some(&Value::Null));
    }

    #[test]
    fn pretty_output_is_valid_json_shape() {
        let v = json!({"x": [1.5, null], "s": "a\"b"});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"x\": ["));
        assert!(s.contains("\\\"b\""));
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"x\":[1.5,null],\"s\":\"a\\\"b\"}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
