//! Flux bundles, the concurrent window runner, and degraded-mode state.
//!
//! The heterogeneous mapping of §5.1 runs {atmosphere, land} and {ocean,
//! sea ice, BGC} *concurrently* — on GPUs and CPUs of the same superchips
//! in the paper, on separate threads here — synchronizing only at coupling
//! windows. The runner measures each side's **coupling wait**, the §6.3
//! metric that must stay near zero for the expensive side when the load
//! balance is right.
//!
//! Everything at the coupling boundary fails *typed*: a missing field, a
//! peer that died mid-run, a missed exchange deadline, or an exhausted
//! degraded-mode budget all surface as [`FluxError`] instead of a panic,
//! so a supervisor can decide between degraded continuation and abort.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Typed failure at the coupling boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum FluxError {
    /// A consumer asked for a field the producer never packed. Coupling
    /// contracts are static, so this is a wiring bug — but it surfaces as
    /// a value, not a panic, and names the field.
    MissingField { field: String },
    /// A field carried a NaN/Inf and the repair policy is `Reject`.
    NonFinite {
        field: String,
        index: usize,
        value: f64,
    },
    /// A finite value violated the field's declared physical range and
    /// the repair policy is `Reject`.
    OutOfBounds {
        field: String,
        index: usize,
        value: f64,
        min: f64,
        max: f64,
    },
    /// Persistence was requested (fallback or `PersistLast` repair) but
    /// no valid previous value exists yet.
    NoLastValid { field: String },
    /// Degraded-mode coupling ran more consecutive windows on stale
    /// fluxes than the configured budget allows.
    DegradedBudgetExhausted {
        window: u64,
        consecutive: u32,
        budget: u32,
    },
    /// The peer's fluxes did not arrive before the exchange deadline.
    Deadline { window: u64, waited: Duration },
    /// The peer side is gone (its endpoint was dropped mid-run).
    PeerClosed { window: u64 },
}

impl std::fmt::Display for FluxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FluxError::MissingField { field } => {
                write!(f, "missing coupling field '{field}'")
            }
            FluxError::NonFinite {
                field,
                index,
                value,
            } => write!(f, "non-finite flux {field}[{index}] = {value}"),
            FluxError::OutOfBounds {
                field,
                index,
                value,
                min,
                max,
            } => write!(
                f,
                "flux {field}[{index}] = {value} outside physical range [{min}, {max}]"
            ),
            FluxError::NoLastValid { field } => {
                write!(f, "no last-valid value to persist for flux '{field}'")
            }
            FluxError::DegradedBudgetExhausted {
                window,
                consecutive,
                budget,
            } => write!(
                f,
                "window {window}: {consecutive} consecutive degraded windows exceed budget {budget}"
            ),
            FluxError::Deadline { window, waited } => {
                write!(f, "window {window}: coupling deadline missed after {waited:?}")
            }
            FluxError::PeerClosed { window } => {
                write!(f, "window {window}: peer coupling endpoint closed")
            }
        }
    }
}

impl std::error::Error for FluxError {}

/// A named bundle of per-cell fields exchanged at a coupling event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FluxSet {
    pub fields: Vec<(&'static str, Vec<f64>)>,
}

impl FluxSet {
    pub fn new() -> FluxSet {
        FluxSet::default()
    }

    pub fn insert(&mut self, name: &'static str, data: Vec<f64>) {
        debug_assert!(
            self.get(name).is_none(),
            "duplicate coupling field {name}"
        );
        self.fields.push((name, data));
    }

    pub fn get(&self, name: &str) -> Option<&[f64]> {
        self.fields
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| d.as_slice())
    }

    /// Field lookup with a typed error naming the missing field.
    pub fn try_get(&self, name: &str) -> Result<&[f64], FluxError> {
        self.get(name).ok_or_else(|| FluxError::MissingField {
            field: name.to_string(),
        })
    }
}

/// Wait-time accounting of one side of the coupling.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CouplerStats {
    /// Seconds this side spent blocked waiting for its peer.
    pub wait_s: f64,
    /// Completed coupling exchanges.
    pub exchanges: u64,
}

/// Bidirectional coupling endpoint.
pub struct Endpoint {
    tx: Sender<FluxSet>,
    rx: Receiver<FluxSet>,
    pub stats: CouplerStats,
}

impl Endpoint {
    /// Send this side's fluxes (non-blocking; capacity 1 pipeline). A
    /// dead peer is not an error for the sender — the failure surfaces,
    /// typed, on this side's next `recv`.
    pub fn send(&mut self, fluxes: FluxSet) {
        let _ = self.tx.send(fluxes);
    }

    /// Receive the peer's fluxes, accounting blocked time as coupling
    /// wait. Fails typed if the peer endpoint was dropped.
    pub fn recv(&mut self, window: u64) -> Result<FluxSet, FluxError> {
        let t0 = Instant::now();
        let f = self
            .rx
            .recv()
            .map_err(|_| FluxError::PeerClosed { window })?;
        self.stats.wait_s += t0.elapsed().as_secs_f64();
        self.stats.exchanges += 1;
        Ok(f)
    }

    /// Like [`Endpoint::recv`] but bounded by a coupling-window deadline:
    /// a peer that is merely slow is waited for, a peer that is hung or
    /// dead surfaces as [`FluxError::Deadline`] so the caller can degrade
    /// instead of stalling forever.
    pub fn recv_deadline(&mut self, window: u64, deadline: Duration) -> Result<FluxSet, FluxError> {
        let t0 = Instant::now();
        match self.rx.recv_timeout(deadline) {
            Ok(f) => {
                self.stats.wait_s += t0.elapsed().as_secs_f64();
                self.stats.exchanges += 1;
                Ok(f)
            }
            Err(RecvTimeoutError::Timeout) => Err(FluxError::Deadline {
                window,
                waited: t0.elapsed(),
            }),
            Err(RecvTimeoutError::Disconnected) => Err(FluxError::PeerClosed { window }),
        }
    }
}

/// Create a connected pair of coupling endpoints.
pub fn endpoint_pair() -> (Endpoint, Endpoint) {
    let (tx_a, rx_b) = bounded(1);
    let (tx_b, rx_a) = bounded(1);
    (
        Endpoint {
            tx: tx_a,
            rx: rx_a,
            stats: CouplerStats::default(),
        },
        Endpoint {
            tx: tx_b,
            rx: rx_b,
            stats: CouplerStats::default(),
        },
    )
}

/// Last-valid-flux persistence: the degraded-mode substitute for a peer
/// that missed its coupling deadline or failed validation.
///
/// Every healthy exchange [`accept`](PersistenceFallback::accept)s the
/// incoming set; when the peer goes silent,
/// [`degrade`](PersistenceFallback::degrade) re-serves the last valid set
/// instead of stalling — bounded by a max-consecutive-degraded-windows
/// budget, past which the error is no longer absorbable. Every degraded
/// window is recorded.
#[derive(Debug, Clone)]
pub struct PersistenceFallback {
    last_valid: Option<FluxSet>,
    consecutive: u32,
    budget: u32,
    degraded: Vec<u64>,
}

impl PersistenceFallback {
    pub fn new(budget: u32) -> PersistenceFallback {
        PersistenceFallback {
            last_valid: None,
            consecutive: 0,
            budget,
            degraded: Vec::new(),
        }
    }

    /// A healthy, validated flux set arrived: remember it and reset the
    /// consecutive-degraded counter.
    pub fn accept(&mut self, fluxes: &FluxSet) {
        self.last_valid = Some(fluxes.clone());
        self.consecutive = 0;
    }

    /// The peer missed `window`: serve the last valid set, or fail typed
    /// if there is none / the budget is spent.
    pub fn degrade(&mut self, window: u64) -> Result<FluxSet, FluxError> {
        let Some(last) = &self.last_valid else {
            return Err(FluxError::NoLastValid {
                field: "<whole flux set>".to_string(),
            });
        };
        if self.consecutive >= self.budget {
            return Err(FluxError::DegradedBudgetExhausted {
                window,
                consecutive: self.consecutive + 1,
                budget: self.budget,
            });
        }
        self.consecutive += 1;
        self.degraded.push(window);
        Ok(last.clone())
    }

    /// Windows that ran on stale fluxes, in order.
    pub fn degraded_windows(&self) -> &[u64] {
        &self.degraded
    }

    pub fn consecutive(&self) -> u32 {
        self.consecutive
    }

    pub fn last_valid(&self) -> Option<&FluxSet> {
        self.last_valid.as_ref()
    }
}

/// Run `windows` coupling windows with the two component groups executing
/// concurrently (scoped threads, so the closures may mutably borrow the
/// component models). Each closure receives the peer's fluxes for its
/// window and returns its own fluxes for the next exchange — or a typed
/// [`FluxError`], which tears the exchange down cleanly: the failing side
/// returns its error, the peer sees its endpoint close and exits typed
/// too, and the *originating* error wins. Returns the wait statistics
/// `(fast_side, slow_side)` on success.
pub fn run_concurrent_windows<Fa, Fo>(
    windows: usize,
    initial_to_fast: FluxSet,
    initial_to_slow: FluxSet,
    mut fast_window: Fa,
    mut slow_window: Fo,
) -> Result<(CouplerStats, CouplerStats), FluxError>
where
    Fa: FnMut(usize, &FluxSet) -> Result<FluxSet, FluxError> + Send,
    Fo: FnMut(usize, &FluxSet) -> Result<FluxSet, FluxError> + Send,
{
    let (mut end_fast, mut end_slow) = endpoint_pair();
    std::thread::scope(|s| {
        let slow_handle = s.spawn(move || -> Result<CouplerStats, FluxError> {
            let mut incoming = initial_to_slow;
            for w in 0..windows {
                let out = slow_window(w, &incoming)?;
                // The last window's output has no consumer (the peer may
                // already have exited) — the caller keeps it via its
                // closure state.
                if w + 1 < windows {
                    end_slow.send(out);
                    incoming = end_slow.recv(w as u64)?;
                }
            }
            Ok(end_slow.stats)
        });
        // `end_fast` moves into the closure so an early error drops it,
        // closing the channel the slow side may be blocked on — otherwise
        // the join below would deadlock against a peer waiting forever.
        let fast_result = (move || -> Result<CouplerStats, FluxError> {
            let mut incoming = initial_to_fast;
            for w in 0..windows {
                let out = fast_window(w, &incoming)?;
                if w + 1 < windows {
                    end_fast.send(out);
                    incoming = end_fast.recv(w as u64)?;
                }
            }
            Ok(end_fast.stats)
        })();
        // Always join: the slow side must not outlive the scope anyway,
        // and its error may be the originating one.
        let slow_result = slow_handle.join().expect("slow side panicked");
        match (fast_result, slow_result) {
            (Ok(fast), Ok(slow)) => Ok((fast, slow)),
            // A PeerClosed is the *echo* of the peer's failure; prefer
            // the originating error when both sides report.
            (Err(FluxError::PeerClosed { .. }), Err(e)) => Err(e),
            (Err(e), _) => Err(e),
            (_, Err(e)) => Err(e),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fluxset_roundtrip() {
        let mut f = FluxSet::new();
        f.insert("sst", vec![1.0, 2.0]);
        f.insert("co2", vec![3.0]);
        assert_eq!(f.try_get("sst").unwrap(), &[1.0, 2.0]);
        assert_eq!(f.get("nope"), None);
    }

    #[test]
    fn missing_field_is_a_typed_error() {
        let err = FluxSet::new().try_get("sst").unwrap_err();
        assert_eq!(
            err,
            FluxError::MissingField {
                field: "sst".to_string()
            }
        );
        assert!(err.to_string().contains("missing coupling field 'sst'"));
    }

    #[test]
    fn endpoints_exchange_both_ways() {
        let (mut a, mut b) = endpoint_pair();
        let mut fa = FluxSet::new();
        fa.insert("x", vec![1.0]);
        a.send(fa.clone());
        let got = b.recv(0).unwrap();
        assert_eq!(got, fa);
        let mut fb = FluxSet::new();
        fb.insert("y", vec![2.0]);
        b.send(fb.clone());
        assert_eq!(a.recv(0).unwrap(), fb);
        assert_eq!(a.stats.exchanges, 1);
        assert_eq!(b.stats.exchanges, 1);
    }

    #[test]
    fn recv_deadline_times_out_typed_on_a_silent_peer() {
        let (mut a, _b) = endpoint_pair();
        match a.recv_deadline(3, Duration::from_millis(20)) {
            Err(FluxError::Deadline { window: 3, waited }) => {
                assert!(waited >= Duration::from_millis(20));
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
    }

    #[test]
    fn recv_fails_typed_when_peer_endpoint_drops() {
        let (mut a, b) = endpoint_pair();
        drop(b);
        assert_eq!(a.recv(7), Err(FluxError::PeerClosed { window: 7 }));
    }

    #[test]
    fn persistence_fallback_serves_stale_within_budget() {
        let mut fb = PersistenceFallback::new(2);
        assert!(matches!(fb.degrade(1), Err(FluxError::NoLastValid { .. })));
        let mut f = FluxSet::new();
        f.insert("sst", vec![4.0]);
        fb.accept(&f);
        assert_eq!(fb.degrade(2).unwrap(), f);
        assert_eq!(fb.degrade(3).unwrap(), f);
        assert_eq!(
            fb.degrade(4),
            Err(FluxError::DegradedBudgetExhausted {
                window: 4,
                consecutive: 3,
                budget: 2
            })
        );
        assert_eq!(fb.degraded_windows(), &[2, 3]);
        // A healthy exchange resets the consecutive counter.
        fb.accept(&f);
        assert_eq!(fb.consecutive(), 0);
        assert!(fb.degrade(5).is_ok());
    }

    #[test]
    fn concurrent_windows_pipeline_and_measure_waits() {
        // Slow side sleeps; the fast side's wait should absorb most of the
        // imbalance while the slow side barely waits.
        let windows = 4;
        let (fast_stats, slow_stats) = run_concurrent_windows(
            windows,
            FluxSet::new(),
            FluxSet::new(),
            |w, incoming| {
                if w > 0 {
                    assert_eq!(incoming.try_get("slow").unwrap()[0], (w - 1) as f64);
                }
                let mut out = FluxSet::new();
                out.insert("fast", vec![w as f64]);
                Ok(out)
            },
            |w, incoming| {
                if w > 0 {
                    assert_eq!(incoming.try_get("fast").unwrap()[0], (w - 1) as f64);
                }
                std::thread::sleep(Duration::from_millis(30));
                let mut out = FluxSet::new();
                out.insert("slow", vec![w as f64]);
                Ok(out)
            },
        )
        .unwrap();
        assert_eq!(fast_stats.exchanges, (windows - 1) as u64);
        assert_eq!(slow_stats.exchanges, (windows - 1) as u64);
        assert!(
            fast_stats.wait_s > 0.05,
            "fast side should wait for the sleeper: {fast_stats:?}"
        );
        assert!(
            slow_stats.wait_s < 0.02,
            "slow side should barely wait: {slow_stats:?}"
        );
    }

    #[test]
    fn balanced_sides_wait_little() {
        let (fast, slow) = run_concurrent_windows(
            5,
            FluxSet::new(),
            FluxSet::new(),
            |_, _| {
                std::thread::sleep(Duration::from_millis(5));
                Ok(FluxSet::new())
            },
            |_, _| {
                std::thread::sleep(Duration::from_millis(5));
                Ok(FluxSet::new())
            },
        )
        .unwrap();
        assert!(fast.wait_s < 0.05);
        assert!(slow.wait_s < 0.05);
    }

    #[test]
    fn slow_side_error_propagates_and_wins_over_the_echo() {
        let err = run_concurrent_windows(
            4,
            FluxSet::new(),
            FluxSet::new(),
            |_, _| Ok(FluxSet::new()),
            |w, incoming| {
                if w == 2 {
                    incoming.try_get("never_packed")?;
                }
                Ok(FluxSet::new())
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            FluxError::MissingField {
                field: "never_packed".to_string()
            },
            "the originating error must win over the peer's PeerClosed echo"
        );
    }

    #[test]
    fn fast_side_error_propagates() {
        let err = run_concurrent_windows(
            3,
            FluxSet::new(),
            FluxSet::new(),
            |w, _| {
                if w == 1 {
                    Err(FluxError::NonFinite {
                        field: "heat_flux".to_string(),
                        index: 9,
                        value: f64::NAN,
                    })
                } else {
                    Ok(FluxSet::new())
                }
            },
            |_, _| Ok(FluxSet::new()),
        )
        .unwrap_err();
        assert!(matches!(err, FluxError::NonFinite { .. }));
    }
}
