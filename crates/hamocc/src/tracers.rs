//! The 19 biogeochemical tracers (Table 2 of the paper).

/// Tracer identifiers; values index per-tracer field arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Tracer {
    /// Dissolved inorganic carbon (kmol C/m^3).
    Dic = 0,
    /// Total alkalinity (kmol/m^3).
    Alkalinity = 1,
    /// Phosphate (kmol P/m^3) — the model's currency nutrient.
    Phosphate = 2,
    /// Nitrate (kmol N/m^3).
    Nitrate = 3,
    /// Silicate (kmol Si/m^3).
    Silicate = 4,
    /// Dissolved iron (kmol Fe/m^3).
    Iron = 5,
    /// Dissolved oxygen (kmol O2/m^3).
    Oxygen = 6,
    /// Bulk phytoplankton (kmol P/m^3).
    Phytoplankton = 7,
    /// Cyanobacteria / nitrogen fixers (kmol P/m^3).
    Cyanobacteria = 8,
    /// Zooplankton (kmol P/m^3).
    Zooplankton = 9,
    /// Dissolved organic matter (kmol P/m^3).
    Doc = 10,
    /// Sinking detritus / particulate organic matter (kmol P/m^3).
    Detritus = 11,
    /// Calcium carbonate shells (kmol C/m^3).
    Calcite = 12,
    /// Biogenic silica shells (kmol Si/m^3).
    Opal = 13,
    /// Dissolved dinitrogen from denitrification (kmol N/m^3).
    N2 = 14,
    /// Nitrous oxide (kmol N/m^3).
    N2o = 15,
    /// Dimethyl sulfide (kmol S/m^3).
    Dms = 16,
    /// Lithogenic dust (iron carrier, kg/m^3).
    Dust = 17,
    /// Terrigenous organic matter from rivers (kmol P/m^3).
    Terrigenous = 18,
}

/// Number of tracers (Table 2: 19 prognostic biogeochemistry variables).
pub const N_TRACERS: usize = 19;

/// Redfield molar ratios relative to phosphorus: C : N : P = 122 : 16 : 1,
/// O2 consumption 172 per P remineralized.
pub const REDFIELD_C: f64 = 122.0;
pub const REDFIELD_N: f64 = 16.0;
pub const REDFIELD_O2: f64 = 172.0;

impl Tracer {
    pub const ALL: [Tracer; N_TRACERS] = [
        Tracer::Dic,
        Tracer::Alkalinity,
        Tracer::Phosphate,
        Tracer::Nitrate,
        Tracer::Silicate,
        Tracer::Iron,
        Tracer::Oxygen,
        Tracer::Phytoplankton,
        Tracer::Cyanobacteria,
        Tracer::Zooplankton,
        Tracer::Doc,
        Tracer::Detritus,
        Tracer::Calcite,
        Tracer::Opal,
        Tracer::N2,
        Tracer::N2o,
        Tracer::Dms,
        Tracer::Dust,
        Tracer::Terrigenous,
    ];

    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Phosphorus-currency organic tracers whose carbon content is
    /// `REDFIELD_C` per unit.
    pub fn is_organic_p(self) -> bool {
        matches!(
            self,
            Tracer::Phytoplankton
                | Tracer::Cyanobacteria
                | Tracer::Zooplankton
                | Tracer::Doc
                | Tracer::Detritus
                | Tracer::Terrigenous
        )
    }

    /// Sinking speed (m/s) of particulate tracers; 0 for dissolved ones.
    pub fn sinking_speed(self) -> f64 {
        const PER_DAY: f64 = 1.0 / 86_400.0;
        match self {
            Tracer::Detritus => 5.0 * PER_DAY,
            Tracer::Calcite => 30.0 * PER_DAY,
            Tracer::Opal => 30.0 * PER_DAY,
            Tracer::Dust => 100.0 * PER_DAY,
            _ => 0.0,
        }
    }

    /// Surface initialization value (per unit of the tracer's own units).
    pub fn surface_init(self) -> f64 {
        match self {
            Tracer::Dic => 2.05e-3,
            Tracer::Alkalinity => 2.35e-3,
            Tracer::Phosphate => 5.0e-7,
            Tracer::Nitrate => 8.0e-6,
            Tracer::Silicate => 1.0e-5,
            Tracer::Iron => 6.0e-10,
            Tracer::Oxygen => 2.5e-4,
            Tracer::Phytoplankton => 1.0e-8,
            Tracer::Cyanobacteria => 1.0e-9,
            Tracer::Zooplankton => 3.0e-9,
            Tracer::Doc => 1.0e-7,
            Tracer::Detritus => 1.0e-8,
            Tracer::Calcite => 1.0e-8,
            Tracer::Opal => 1.0e-8,
            Tracer::N2 => 1.0e-6,
            Tracer::N2o => 1.0e-8,
            Tracer::Dms => 1.0e-9,
            Tracer::Dust => 1.0e-8,
            Tracer::Terrigenous => 1.0e-9,
        }
    }

    /// Deep-water enrichment factor (nutrients accumulate at depth).
    pub fn deep_enrichment(self) -> f64 {
        match self {
            Tracer::Phosphate | Tracer::Nitrate | Tracer::Silicate => 4.0,
            Tracer::Dic => 1.15,
            Tracer::Alkalinity => 1.05,
            Tracer::Oxygen => 0.6,
            Tracer::Phytoplankton | Tracer::Cyanobacteria | Tracer::Zooplankton => 0.01,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_19_tracers_matching_table2() {
        assert_eq!(N_TRACERS, 19);
        assert_eq!(Tracer::ALL.len(), 19);
        for (i, t) in Tracer::ALL.iter().enumerate() {
            assert_eq!(t.idx(), i, "ALL must be index-ordered");
        }
    }

    #[test]
    fn only_particles_sink() {
        for t in Tracer::ALL {
            let sinks = t.sinking_speed() > 0.0;
            let particulate = matches!(
                t,
                Tracer::Detritus | Tracer::Calcite | Tracer::Opal | Tracer::Dust
            );
            assert_eq!(sinks, particulate, "{t:?}");
        }
    }

    #[test]
    fn organic_pool_set_is_consistent() {
        let organics: Vec<Tracer> = Tracer::ALL.iter().cloned().filter(|t| t.is_organic_p()).collect();
        assert_eq!(organics.len(), 6);
        assert!(organics.contains(&Tracer::Phytoplankton));
        assert!(!Tracer::Dic.is_organic_p());
    }

    #[test]
    fn initial_profiles_are_positive() {
        for t in Tracer::ALL {
            assert!(t.surface_init() > 0.0);
            assert!(t.deep_enrichment() > 0.0);
        }
        // Oxygen depleted at depth, nutrients enriched.
        assert!(Tracer::Oxygen.deep_enrichment() < 1.0);
        assert!(Tracer::Phosphate.deep_enrichment() > 1.0);
    }
}
