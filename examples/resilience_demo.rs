//! Resilience demo: run the coupled model through a storm of injected
//! faults — dropped and duplicated guard messages, a rank killed
//! mid-window, a checkpoint generation corrupted on disk — and show the
//! driver absorbing all of it, finishing bit-exact with a fault-free run.
//!
//! ```sh
//! cargo run --release --example resilience_demo
//! ```

use esm_core::{CoupledEsm, EsmConfig, ResilienceConfig};
use mpisim::{FaultAction, FaultPlan};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let cfg = EsmConfig::tiny();
    let dir = std::env::temp_dir().join(format!("esm_resilience_demo_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    println!("=== resilience demo: 6 coupling windows under injected faults ===\n");
    println!("fault plan:");
    println!("  window 1: duplicate the rank2->rank0 guard report (dedup absorbs it)");
    println!("  window 2: delay the rank0->rank1 verdict 5 ms (backoff rides it out)");
    println!("  window 3: DROP the rank1->rank0 guard report      -> rollback");
    println!("  window 5: KILL rank 2 before it reports           -> rollback");
    println!("  plus: checkpoint generation 3 gets a flipped byte on disk,");
    println!("        so that rollback must fall back to generation 2\n");

    let plan = Arc::new(
        FaultPlan::new()
            .inject(2, 0, 1, FaultAction::Duplicate)
            .inject(0, 1, 2, FaultAction::Delay(Duration::from_millis(5)))
            .inject(1, 0, 3, FaultAction::Drop)
            .kill_rank(2, 5),
    );
    let rcfg = ResilienceConfig {
        checkpoint_every: 2,
        recv_timeout: Duration::from_millis(80),
        corrupt_generations: vec![3],
        ..ResilienceConfig::default()
    };

    let mut chaotic = CoupledEsm::new(cfg.clone());
    let report = chaotic
        .run_windows_resilient(6, false, &dir, &rcfg, Some(plan.clone()))
        .expect("every fault in this plan is absorbable");

    println!("--- run report ---");
    println!("windows completed:     {}", report.windows_run);
    println!("checkpoints written:   {}", report.checkpoints_written);
    println!("rollbacks:             {}", report.rollbacks);
    println!("windows replayed:      {}", report.replayed_windows);
    println!("generation fallbacks:  {}", report.generation_fallbacks);
    println!("final generation:      {}", report.final_generation);
    println!("faults absorbed:");
    for f in &report.faults_absorbed {
        println!("  - {f}");
    }
    let fired = plan.report();
    println!(
        "\ninjected: {} dropped, {} duplicated, {} delayed, {} bit-flipped, {} killed",
        fired.dropped, fired.duplicated, fired.delayed, fired.bit_flipped, fired.killed
    );

    print!("\nbit-exactness vs fault-free run: ");
    let mut clean = CoupledEsm::new(cfg);
    clean.run_windows(6, false).unwrap();
    if chaotic.snapshot() == clean.snapshot() {
        println!("IDENTICAL");
    } else {
        println!("DIVERGED (bug!)");
        std::process::exit(1);
    }

    println!("\ncheckpoint ring on disk ({}):", dir.display());
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    for n in names {
        println!("  {n}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
