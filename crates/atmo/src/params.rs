//! Atmosphere parameters: layer structure, physical constants, physics
//! time scales.

/// Gravitational acceleration (m/s^2).
pub const GRAVITY: f64 = 9.80665;

/// Latent heat of vaporization (J/kg).
pub const LATENT_HEAT: f64 = 2.5e6;

/// Specific heat of air at constant pressure (J/kg/K).
pub const CP_AIR: f64 = 1004.64;

/// Reference surface temperature (K) for the layer temperature ladder.
pub const T_SURFACE_REF: f64 = 288.0;

/// Parameters of one atmosphere instance.
#[derive(Debug, Clone)]
pub struct AtmParams {
    /// Number of layers (90 in the paper's configurations; tests use
    /// fewer).
    pub nlev: usize,
    /// Dynamics time step (s).
    pub dt: f64,
    /// Nominal temperature of each layer (K), index 0 = top. Fixed per
    /// layer (isentropic-like coordinate); heating moves mass, not
    /// temperature.
    pub layer_temp: Vec<f64>,
    /// Density ratio of each layer relative to the bottom layer,
    /// strictly increasing downward for static stability.
    pub rho: Vec<f64>,
    /// Reference (radiative-equilibrium) layer thickness at the equator
    /// (m); the total column is `sum(ref_thickness)`.
    pub ref_thickness: Vec<f64>,
    /// Pole-to-equator amplitude of the equilibrium thickness variation
    /// (fraction). Drives jets and baroclinic eddies.
    pub meridional_forcing: f64,
    /// Radiative relaxation time scale (s), Held–Suarez-like.
    pub tau_rad: f64,
    /// Rayleigh friction time scale in the lowest layer (s).
    pub tau_friction: f64,
    /// Rayleigh damping time scale in the top (sponge) layer (s).
    pub tau_sponge: f64,
    /// Horizontal hyperdiffusion-like damping applied via one Laplacian
    /// smoothing pass (m^2/s).
    pub kh_diffusion: f64,
    /// Vertical diffusivity for velocity and tracers (layer^2/s units in
    /// index space; small).
    pub kv_diffusion: f64,
    /// Surface exchange coefficient for evaporation/drag (dimensionless).
    pub c_exchange: f64,
    /// Fraction of condensed water converted to precipitation per step.
    pub precip_efficiency: f64,
}

impl AtmParams {
    /// Default parameter set for `nlev` layers and time step `dt`.
    ///
    /// Layers are built so the column holds ~8000 m of mass-equivalent
    /// depth with thickness growing toward the surface and density ratios
    /// giving a reduced gravity of ~1-3 % between adjacent layers.
    pub fn new(nlev: usize, dt: f64) -> AtmParams {
        assert!(nlev >= 2);
        let total_depth = 8000.0;
        // Thickness ~ uniform; temperature ladder decreasing with height.
        let ref_thickness = vec![total_depth / nlev as f64; nlev];
        let mut rho = Vec::with_capacity(nlev);
        let mut layer_temp = Vec::with_capacity(nlev);
        for k in 0..nlev {
            // Index 0 = top: lightest, coldest.
            let frac = (k as f64 + 0.5) / nlev as f64; // 0 top .. 1 bottom
            rho.push(0.7 + 0.3 * frac);
            layer_temp.push(T_SURFACE_REF - 60.0 * (1.0 - frac));
        }
        AtmParams {
            nlev,
            dt,
            layer_temp,
            rho,
            ref_thickness,
            meridional_forcing: 0.25,
            tau_rad: 15.0 * 86_400.0,
            tau_friction: 1.0 * 86_400.0,
            tau_sponge: 0.5 * 86_400.0,
            kh_diffusion: 1.0e5,
            kv_diffusion: 1.0e-6,
            c_exchange: 1.2e-3,
            precip_efficiency: 0.5,
        }
    }

    /// Total reference column depth (m).
    pub fn total_depth(&self) -> f64 {
        self.ref_thickness.iter().sum()
    }

    /// Equilibrium thickness of layer `k` at sine-latitude `sinlat`:
    /// warm columns (equator) are "thicker" in upper layers, cold ones
    /// (poles) in lower layers, creating the baroclinic gradient.
    pub fn equilibrium_thickness(&self, k: usize, sinlat: f64) -> f64 {
        let nlev = self.nlev as f64;
        // +1 at the top layer, -1 at the bottom layer.
        let vertical = 1.0 - 2.0 * (k as f64 + 0.5) / nlev;
        let merid = 1.0 - self.meridional_forcing * vertical * (sinlat * sinlat - 1.0 / 3.0) * 3.0 / 2.0;
        self.ref_thickness[k] * merid
    }

    /// Saturation specific humidity (kg/kg) at temperature `t` (K), from
    /// a Clausius–Clapeyron fit over a reference pressure.
    pub fn q_saturation(t: f64) -> f64 {
        // Tetens formula, e_s in Pa over p ~ 1e5 Pa.
        let t_c = t - 273.15;
        let e_s = 610.78 * (17.27 * t_c / (t_c + 237.3)).exp();
        0.622 * e_s / 1.0e5
    }

    /// Gravity-wave speed of the barotropic mode, for CFL checks.
    pub fn gravity_wave_speed(&self) -> f64 {
        (GRAVITY * self.total_depth()).sqrt()
    }

    /// Largest stable time step on a grid with shortest dual edge
    /// `min_edge_m` (advective + gravity-wave CFL with safety 0.5).
    pub fn max_stable_dt(&self, min_edge_m: f64) -> f64 {
        0.5 * min_edge_m / self.gravity_wave_speed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_structure_is_stable() {
        let p = AtmParams::new(8, 300.0);
        for k in 1..8 {
            assert!(p.rho[k] > p.rho[k - 1], "density must increase downward");
            assert!(p.layer_temp[k] > p.layer_temp[k - 1], "temp rises downward");
        }
        assert!((p.total_depth() - 8000.0).abs() < 1e-9);
    }

    #[test]
    fn equilibrium_forcing_tilts_the_column() {
        let p = AtmParams::new(4, 300.0);
        // Top layer: thicker at the equator than the pole.
        assert!(p.equilibrium_thickness(0, 0.0) > p.equilibrium_thickness(0, 1.0));
        // Bottom layer: opposite.
        assert!(p.equilibrium_thickness(3, 0.0) < p.equilibrium_thickness(3, 1.0));
        // Global mean is preserved layer by layer: integral of
        // (sin^2(lat) - 1/3) over the sphere vanishes.
        let n = 20_000;
        for k in [0, 3] {
            let mut acc = 0.0;
            for i in 0..n {
                // Uniform sampling in sin(lat) is area-uniform.
                let s = -1.0 + 2.0 * (i as f64 + 0.5) / n as f64;
                acc += p.equilibrium_thickness(k, s);
            }
            let mean = acc / n as f64;
            assert!(
                (mean / p.ref_thickness[k] - 1.0).abs() < 1e-6,
                "layer {k} mean {mean}"
            );
        }
    }

    #[test]
    fn saturation_humidity_increases_with_temperature() {
        let a = AtmParams::q_saturation(270.0);
        let b = AtmParams::q_saturation(290.0);
        let c = AtmParams::q_saturation(310.0);
        assert!(a < b && b < c);
        // ~0.011 kg/kg at 288 K, the textbook value at the surface.
        let q288 = AtmParams::q_saturation(288.0);
        assert!((0.008..0.014).contains(&q288), "q_sat(288K) = {q288}");
    }

    #[test]
    fn cfl_scales_with_resolution() {
        let p = AtmParams::new(8, 300.0);
        assert!((p.gravity_wave_speed() - 280.0).abs() < 5.0);
        assert!(p.max_stable_dt(100_000.0) > p.max_stable_dt(10_000.0));
    }
}
