//! Silent-data-corruption chaos harness: seeded bit flips injected
//! directly into component state buffers, and the three detectors that
//! must contain them — per-flux physics bounds, quiescence checksums
//! over never-written buffers, and the bitwise audit replay over the
//! recorded window graph (exact dual-modular redundancy).
//!
//! The containment contract is the strongest one the repo makes: a run
//! that detected and recovered from an injected flip ends **bitwise
//! identical** to a fault-free run — model state, conservation-budget
//! ledger bits, and the `.esmr` checkpoint bytes on disk. And because
//! the checksum and audit detectors are exact, `sdc_false_positives`
//! is asserted zero everywhere, including fault-free runs.
//!
//! Every scenario runs at pool widths [`THREAD_COUNTS`]; the width is
//! process-global, so tests serialize on [`WIDTH_LOCK`].

use esm_core::sdc::{FlipTarget, SdcMode, StateFaultPlan};
use esm_core::{CoupledEsm, EsmConfig, ResilienceConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

const THREAD_COUNTS: [usize; 2] = [1, 4];
const CHECKPOINT_SHARDS: usize = 3;

static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn set_width(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("shim build_global is infallible");
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esm_sdc_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Everything the containment contract covers, floats as raw bits:
/// state snapshot, both budget ledgers, and checkpoint shard bytes.
struct RunFingerprint {
    snapshot: iosys::Snapshot,
    budget_bits: [u64; 7],
    shard_bytes: Vec<Vec<u8>>,
}

fn fingerprint(esm: &CoupledEsm, tag: &str) -> RunFingerprint {
    let snapshot = esm.snapshot();
    let c = esm.carbon_budget();
    let w = esm.water_budget();
    let dir = scratch(tag);
    let shards = iosys::write_checkpoint(&dir, "sdc", &snapshot, CHECKPOINT_SHARDS)
        .expect("write checkpoint");
    let shard_bytes = shards
        .iter()
        .map(|p| fs::read(p).expect("read checkpoint shard"))
        .collect();
    fs::remove_dir_all(&dir).ok();
    RunFingerprint {
        snapshot,
        budget_bits: [
            c.atmosphere.to_bits(),
            c.land.to_bits(),
            c.ocean.to_bits(),
            c.total().to_bits(),
            w.atmosphere.to_bits(),
            w.land.to_bits(),
            w.ocean_received.to_bits(),
        ],
        shard_bytes,
    }
}

fn assert_contained(chaotic: &CoupledEsm, windows: usize, label: &str) {
    let mut clean = CoupledEsm::new(EsmConfig::tiny());
    clean.run_windows(windows, false).unwrap();
    let a = fingerprint(chaotic, "chaotic");
    let b = fingerprint(&clean, "clean");
    assert_eq!(a.snapshot, b.snapshot, "{label}: state diverged from fault-free run");
    assert_eq!(a.budget_bits, b.budget_bits, "{label}: budget ledger bits diverged");
    assert_eq!(a.shard_bytes, b.shard_bytes, "{label}: .esmr checkpoint bytes diverged");
}

/// Detector suite on, no faults: zero detections, zero false positives,
/// the exact scheduled audit count, and a state bitwise identical to the
/// plain run — at every width.
#[test]
fn fault_free_run_fires_no_detectors() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    for threads in THREAD_COUNTS {
        set_width(threads);
        let dir = scratch(&format!("clean_t{threads}"));
        let rcfg = ResilienceConfig {
            audit_every: 2,
            ..ResilienceConfig::default()
        };
        let mut esm = CoupledEsm::new(EsmConfig::tiny());
        let report = esm
            .run_windows_resilient(4, false, &dir, &rcfg, None)
            .unwrap();
        assert_eq!(report.windows_run, 4);
        assert_eq!(report.sdc_injected, 0);
        assert_eq!(report.sdc_detected_bounds, 0);
        assert_eq!(report.sdc_detected_checksum, 0);
        assert_eq!(report.sdc_detected_audit, 0);
        assert_eq!(report.sdc_false_positives, 0, "{:?}", report.faults_absorbed);
        assert_eq!(report.rollbacks, 0);
        // Both endpoints of any in-bounds flux delta lie within the
        // declared span, so with the schedule and the checkpoint cadence
        // coinciding (every 2 windows) exactly 2 audits run — suspicion
        // adds none on a clean run.
        assert_eq!(report.audit_replays, 2, "{:?}", report.faults_absorbed);
        assert_contained(&esm, 4, &format!("fault-free @ {threads} threads"));
        fs::remove_dir_all(&dir).ok();
    }
}

/// The headline scenario: an in-bounds mantissa flip in a quiescent
/// (never-written) buffer — invisible to physics bounds by construction
/// and invisible to the audit replay (both executions would read the
/// same corrupted static). The CRC detector must catch it within one
/// window, and the recovery must be bitwise perfect.
#[test]
fn quiescent_mantissa_flip_is_detected_within_one_window_and_contained() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    for threads in THREAD_COUNTS {
        set_width(threads);
        let dir = scratch(&format!("quiescent_t{threads}"));
        let sdc = Arc::new(StateFaultPlan::new().flip(
            3,
            FlipTarget::Quiescent("static.layer_temp"),
            1,
            20,
        ));
        let rcfg = ResilienceConfig {
            audit_every: 2,
            sdc: Some(sdc.clone()),
            ..ResilienceConfig::default()
        };
        let mut esm = CoupledEsm::new(EsmConfig::tiny());
        let report = esm
            .run_windows_resilient(6, false, &dir, &rcfg, None)
            .unwrap();
        let label = format!("quiescent flip @ {threads} threads");
        assert_eq!(report.windows_run, 6, "{label}");
        assert_eq!(report.sdc_injected, 1, "{label}");
        assert_eq!(
            report.sdc_detected_checksum, 1,
            "{label}: CRC must catch the static flip in its own window: {:?}",
            report.faults_absorbed
        );
        assert_eq!(report.sdc_false_positives, 0, "{label}");
        assert_eq!(report.rollbacks, 1, "{label}");
        // The injection log pins exactly what was corrupted.
        let log = sdc.injections();
        assert_eq!(log.len(), 1, "{label}");
        assert_eq!(log[0].buffer, "static.layer_temp", "{label}");
        assert_eq!(log[0].bit, 20, "{label}");
        assert!(log[0].quiescent, "{label}");
        assert_eq!(log[0].before_bits ^ log[0].after_bits, 1 << 20, "{label}");
        // Localization reached the report.
        assert!(
            report
                .faults_absorbed
                .iter()
                .any(|s| s.contains("static.layer_temp") && s.contains("fast side")),
            "{label}: {:?}",
            report.faults_absorbed
        );
        assert_contained(&esm, 6, &label);
        fs::remove_dir_all(&dir).ok();
    }
}

/// An exponent flip in active state blows the value far out of its
/// physical range: the per-flux/backstop physics guard catches it at
/// the end of the corrupted window, before any audit is needed.
#[test]
fn exponent_flip_in_active_state_is_caught_by_the_physics_guard() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    for threads in THREAD_COUNTS {
        set_width(threads);
        let dir = scratch(&format!("exponent_t{threads}"));
        // Setting a clear high exponent bit multiplies the value by
        // 2^512: far past every declared bound and the 1e30 backstop.
        let sdc = Arc::new(StateFaultPlan::new().flip(
            2,
            FlipTarget::Var("oce.temp".to_string()),
            7,
            61,
        ));
        let rcfg = ResilienceConfig {
            audit_every: 2,
            sdc: Some(sdc.clone()),
            ..ResilienceConfig::default()
        };
        let mut esm = CoupledEsm::new(EsmConfig::tiny());
        let report = esm
            .run_windows_resilient(4, false, &dir, &rcfg, None)
            .unwrap();
        let label = format!("exponent flip @ {threads} threads");
        assert_eq!(report.windows_run, 4, "{label}");
        assert_eq!(report.sdc_injected, 1, "{label}");
        assert!(
            report.sdc_detected_bounds >= 1,
            "{label}: guard must flag the blown-up value: {:?}",
            report.faults_absorbed
        );
        assert_eq!(report.sdc_false_positives, 0, "{label}");
        assert!(report.rollbacks >= 1, "{label}");
        assert_contained(&esm, 4, &label);
        fs::remove_dir_all(&dir).ok();
    }
}

/// An insidious in-bounds mantissa flip in active state: physics bounds
/// cannot see it (relative error ~1e-10), but the audit replay compares
/// the trajectory bitwise against an independent re-execution and must
/// detect it at the next audit point.
#[test]
fn mantissa_flip_in_active_state_is_caught_by_the_audit_replay() {
    let _guard = WIDTH_LOCK.lock().unwrap();
    for threads in THREAD_COUNTS {
        set_width(threads);
        let dir = scratch(&format!("mantissa_t{threads}"));
        let sdc = Arc::new(StateFaultPlan::new().flip(
            1,
            FlipTarget::Var("oce.temp".to_string()),
            5,
            20,
        ));
        let rcfg = ResilienceConfig {
            audit_every: 2,
            // Suspicion off: the detection below is purely the scheduled
            // audit, proving the DMR works without the heuristic's help.
            delta_frac: 1.0,
            sdc: Some(sdc.clone()),
            ..ResilienceConfig::default()
        };
        let mut esm = CoupledEsm::new(EsmConfig::tiny());
        let report = esm
            .run_windows_resilient(4, false, &dir, &rcfg, None)
            .unwrap();
        let label = format!("mantissa flip @ {threads} threads");
        assert_eq!(report.windows_run, 4, "{label}");
        assert_eq!(report.sdc_injected, 1, "{label}");
        assert_eq!(
            report.sdc_detected_audit, 1,
            "{label}: the window-2 audit must catch the corrupt trajectory: {:?}",
            report.faults_absorbed
        );
        assert_eq!(report.sdc_detected_bounds, 0, "{label}: invisible to bounds");
        assert_eq!(report.sdc_false_positives, 0, "{label}");
        assert_eq!(report.rollbacks, 1, "{label}");
        assert!(
            report.faults_absorbed.iter().any(|s| s.contains("audit replay diverged")),
            "{label}: {:?}",
            report.faults_absorbed
        );
        assert_contained(&esm, 4, &label);
        fs::remove_dir_all(&dir).ok();
    }
}

/// CI sdc-chaos matrix entry point: `SDC_MODE` ∈ {mantissa, exponent,
/// quiescent} and `SDC_SEED` (any u64) draw a seeded single-flip plan.
/// Whatever the draw, the theorem must hold at every width: every flip
/// is either detected (within the audit period) or provably overwritten
/// — in both cases the run ends bitwise identical to fault-free, with
/// zero false positives. Defaults (no env) exercise `quiescent`/seed 1
/// so the test is meaningful locally.
#[test]
fn sdc_chaos_from_env() {
    let mode_s = std::env::var("SDC_MODE").unwrap_or_else(|_| "quiescent".to_string());
    let mode = SdcMode::parse(&mode_s)
        .unwrap_or_else(|| panic!("SDC_MODE must be mantissa|exponent|quiescent, got {mode_s}"));
    let seed: u64 = std::env::var("SDC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let _guard = WIDTH_LOCK.lock().unwrap();
    let windows = 6;
    for threads in THREAD_COUNTS {
        set_width(threads);
        let dir = scratch(&format!("env_{mode_s}_{seed}_t{threads}"));
        // One seeded flip landing in windows 1..=4, leaving at least one
        // audit period (2 windows) of slack before the run ends.
        let sdc = Arc::new(StateFaultPlan::seeded(seed, mode, 1, 4));
        let rcfg = ResilienceConfig {
            audit_every: 2,
            sdc: Some(sdc.clone()),
            ..ResilienceConfig::default()
        };
        let mut esm = CoupledEsm::new(EsmConfig::tiny());
        let report = esm
            .run_windows_resilient(windows as u64, false, &dir, &rcfg, None)
            .unwrap_or_else(|e| panic!("{mode_s}/seed {seed} at {threads} threads: {e}"));
        let label = format!("{mode_s}/seed {seed} @ {threads} threads");
        assert_eq!(report.windows_run, windows as u64, "{label}");
        assert_eq!(report.sdc_injected, 1, "{label}: the planned flip fired");
        assert_eq!(report.sdc_false_positives, 0, "{label}");
        let detections = report.sdc_detected_bounds
            + report.sdc_detected_checksum
            + report.sdc_detected_audit;
        if detections == 0 {
            // Undetected ⟺ provably harmless: the flipped value was
            // overwritten (or bit-identical) before the next audit
            // compared the full state bitwise. The containment check
            // below *is* the proof.
            assert_eq!(report.rollbacks, 0, "{label}");
        }
        eprintln!(
            "{label}: {} detection(s) [bounds {} / checksum {} / audit {}], {} audit replays, log {:?}",
            detections,
            report.sdc_detected_bounds,
            report.sdc_detected_checksum,
            report.sdc_detected_audit,
            report.audit_replays,
            sdc.injections()
        );
        assert_contained(&esm, windows, &label);
        fs::remove_dir_all(&dir).ok();
    }
}
