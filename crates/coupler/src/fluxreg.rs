//! The typed coupling-flux registry: one source of truth for every field
//! exchanged across the coupler boundary.
//!
//! Before this module, three per-crate `coupling_flux_bounds()` string
//! tables (atmo, land, ocean) each declared `(name, min, max)` and the
//! quarantine gate was their only consumer. The registry replaces them
//! with a single typed table that also carries the **physical unit** and
//! the **conserved quantity class** of each flux, so three consumers
//! share one declaration:
//!
//! * [`crate::quarantine::QuarantineGate`] screens values against the
//!   bounds (via [`bounds_of`], which reproduces the exact tuples and
//!   declaration order of the old per-crate tables);
//! * the `esm-lint` units phase checks that every emitted flux is
//!   consumed with a matching unit and sign convention (E0605);
//! * the conservation-closure check verifies that every flux carrying a
//!   conserved class is accumulated into a matching `core::budgets`
//!   ledger (E0606).

use dace_mini::units::ConservedClass;

/// Declaration of one coupler-exchanged field: bounds for the quarantine
/// gate, unit and conservation class for the static closure checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluxDecl {
    pub name: &'static str,
    /// Component that produces the field (`"atmo"`, `"land"`, `"ocean"`).
    pub emitter: &'static str,
    /// Physical range; a violation means garbage (sign error, unit
    /// error, blow-up), not an extreme event.
    pub min: f64,
    pub max: f64,
    /// Physical unit in `dace_mini::units` syntax (`"1"` = dimensionless).
    pub unit: &'static str,
    /// Conserved quantity the flux carries across the boundary, if any.
    /// `ConservedClass::None` marks diagnostic/state exchanges and
    /// fluxes whose budget the driver does not (yet) ledger.
    pub conserved: ConservedClass,
    /// Sign convention: `true` if positive values are directed downward
    /// (atmosphere -> surface/ocean). Consumers must agree (E0605).
    pub positive_down: bool,
}

/// Every field crossing the coupler boundary, grouped by emitter. The
/// per-emitter declaration order is load-bearing: [`bounds_of`] feeds
/// `QuarantineGate::declare_all` in this order, and checkpoints recorded
/// before the consolidation must stay bitwise identical.
pub fn registry() -> &'static [FluxDecl] {
    use ConservedClass::*;
    &[
        // --- atmosphere + land -> ocean (the "fast" side's exports) ---
        // Turbulent momentum flux (N/m^2): severe-storm stresses are ~5.
        FluxDecl {
            name: "wind_stress_n",
            emitter: "atmo",
            min: -100.0,
            max: 100.0,
            unit: "N m^-2",
            conserved: None,
            positive_down: true,
        },
        // Net surface heat flux (W/m^2): extremes are a few hundred.
        // Carries energy, but `core::budgets` has no energy ledger yet,
        // so it is deliberately not classed as conserved (E0606 would
        // otherwise demand a ledger that does not exist).
        FluxDecl {
            name: "heat_flux",
            emitter: "atmo",
            min: -5000.0,
            max: 5000.0,
            unit: "W m^-2",
            conserved: None,
            positive_down: true,
        },
        // CO2 partial pressure (ppmv) — a state, not a transfer.
        FluxDecl {
            name: "pco2_atm",
            emitter: "atmo",
            min: 0.0,
            max: 10_000.0,
            unit: "1",
            conserved: None,
            positive_down: false,
        },
        // Shortwave at the surface (W/m^2): solar constant caps ~1361.
        FluxDecl {
            name: "sw_down",
            emitter: "atmo",
            min: 0.0,
            max: 1_500.0,
            unit: "W m^-2",
            conserved: None,
            positive_down: true,
        },
        // Lowest-level wind speed (m/s) — forcing state for gas exchange.
        FluxDecl {
            name: "wind",
            emitter: "atmo",
            min: -500.0,
            max: 500.0,
            unit: "m s^-1",
            conserved: None,
            positive_down: false,
        },
        // Net freshwater flux into the ocean (m/s of liquid water): 1 m/s
        // would drown the planet in minutes — any violation is garbage.
        FluxDecl {
            name: "fw_flux",
            emitter: "land",
            min: -1.0,
            max: 1.0,
            unit: "m s^-1",
            conserved: Water,
            positive_down: true,
        },
        // --- ocean + ice + BGC -> atmosphere (the "slow" side) --------
        // Sea surface temperature (deg C) — a state exchange.
        FluxDecl {
            name: "sst",
            emitter: "ocean",
            min: -10.0,
            max: 60.0,
            unit: "K",
            conserved: None,
            positive_down: false,
        },
        // Sea-ice concentration is a fraction by definition.
        FluxDecl {
            name: "ice_conc",
            emitter: "ocean",
            min: 0.0,
            max: 1.0,
            unit: "1",
            conserved: None,
            positive_down: false,
        },
        // Air-sea carbon flux (kg C / m^2 per window): global mean is
        // ~1e-8; 1.0 is already absurd.
        FluxDecl {
            name: "co2_flux_up",
            emitter: "ocean",
            min: -1.0,
            max: 1.0,
            unit: "kg m^-2",
            conserved: Carbon,
            positive_down: false,
        },
    ]
}

/// The `(name, min, max)` bounds of one emitter's fluxes, in declaration
/// order — exactly the tuples the old `<crate>::coupling_flux_bounds()`
/// tables exported, in the form `QuarantineGate::declare_all` consumes.
pub fn bounds_of(emitter: &str) -> Vec<(&'static str, f64, f64)> {
    registry()
        .iter()
        .filter(|d| d.emitter == emitter)
        .map(|d| (d.name, d.min, d.max))
        .collect()
}

/// Look up one declaration by field name.
pub fn decl(name: &str) -> Option<&'static FluxDecl> {
    registry().iter().find(|d| d.name == name)
}

/// Declared physical bounds of one flux, if registered. The driver's
/// distributed guard screens the coupler lag state against these
/// instead of a single global blow-up limit.
pub fn bounds(name: &str) -> Option<(f64, f64)> {
    decl(name).map(|d| (d.min, d.max))
}

/// Width of the declared physical range — the scale of the guard's
/// step-to-step delta-plausibility check (a flux that jumps a large
/// fraction of its whole physical range in one coupling window is
/// suspect even when both endpoints are in bounds).
pub fn span(name: &str) -> Option<f64> {
    decl(name).map(|d| d.max - d.min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_emitters_known() {
        let mut seen = std::collections::HashSet::new();
        for d in registry() {
            assert!(seen.insert(d.name), "duplicate flux `{}`", d.name);
            assert!(
                ["atmo", "land", "ocean"].contains(&d.emitter),
                "unknown emitter `{}`",
                d.emitter
            );
            assert!(d.min < d.max, "{}: empty range", d.name);
        }
    }

    #[test]
    fn bounds_and_span_join_the_declaration() {
        assert_eq!(bounds("sst"), Some((-10.0, 60.0)));
        assert_eq!(span("sst"), Some(70.0));
        assert_eq!(bounds("no_such_flux"), None);
        assert_eq!(span("no_such_flux"), None);
    }

    #[test]
    fn every_unit_parses_in_the_dsl_unit_grammar() {
        for d in registry() {
            dace_mini::Unit::parse(d.unit)
                .unwrap_or_else(|e| panic!("{}: bad unit `{}`: {e}", d.name, d.unit));
        }
    }

    #[test]
    fn bounds_reproduce_the_preconsolidation_tables_exactly() {
        // The three tables `QuarantineGate::declare_all` consumed before
        // the registry existed, values and order verbatim — checkpoint
        // compatibility depends on this.
        assert_eq!(
            bounds_of("atmo"),
            vec![
                ("wind_stress_n", -100.0, 100.0),
                ("heat_flux", -5000.0, 5000.0),
                ("pco2_atm", 0.0, 10_000.0),
                ("sw_down", 0.0, 1_500.0),
                ("wind", -500.0, 500.0),
            ]
        );
        assert_eq!(bounds_of("land"), vec![("fw_flux", -1.0, 1.0)]);
        assert_eq!(
            bounds_of("ocean"),
            vec![
                ("sst", -10.0, 60.0),
                ("ice_conc", 0.0, 1.0),
                ("co2_flux_up", -1.0, 1.0),
            ]
        );
    }

    #[test]
    fn conserved_classes_match_the_existing_ledgers() {
        // core::budgets ledgers Water and Carbon; nothing else may claim
        // a conserved class until a matching ledger exists.
        for d in registry() {
            match d.conserved {
                ConservedClass::Water => assert_eq!(d.name, "fw_flux"),
                ConservedClass::Carbon => assert_eq!(d.name, "co2_flux_up"),
                ConservedClass::None => {}
                other => panic!("{}: unledgered class {other}", d.name),
            }
        }
    }
}
