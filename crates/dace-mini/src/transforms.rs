//! Performance metaprograms: SDFG-to-SDFG transformations.
//!
//! These are the paper's "performance metaprograms that transform a piece
//! of a SDFG into a new representation targeted at specific devices" —
//! applied by the performance engineer, **invisible to the scientist's
//! source**. Passes match dataflow structure, so they keep applying when
//! the source changes shape-compatibly.

use crate::analysis::{self, AnalysisError};
use crate::sdfg::{Schedule, Sdfg, State};

/// Fuse consecutive states with the same domain whenever the dataflow
/// analysis proves it legal: [`analysis::fusion_legality`] checks that no
/// flow, anti, or output dependence crosses the fusion boundary with a
/// non-pointwise point relation or mismatched level window. Everything
/// the query cannot prove safe stays unfused — the pass can only refuse
/// an optimization, never miscompile.
pub fn fuse_maps(sdfg: &Sdfg) -> Sdfg {
    let mut out: Vec<State> = Vec::new();
    for st in &sdfg.states {
        if let Some(prev) = out.last_mut() {
            if analysis::fusion_legality(prev, st).is_ok() {
                merge_into(prev, st);
                continue;
            }
        }
        out.push(st.clone());
    }
    Sdfg {
        name: format!("{}_fused", sdfg.name),
        states: out,
    }
}

fn merge_into(prev: &mut State, st: &State) {
    prev.label = format!("{}+{}", prev.label, st.label);
    prev.map.over_levels |= st.map.over_levels;
    prev.map.tasklets.extend(st.map.tasklets.iter().cloned());
}

/// Fuse exactly one pair, or explain precisely why not: the typed
/// [`AnalysisError`] carries the violated dependence with its source
/// span. This is the API for callers that *require* fusion (rather than
/// opportunistically applying it) and want a diagnosable refusal.
pub fn try_fuse_pair(a: &State, b: &State) -> Result<State, AnalysisError> {
    analysis::fusion_legality(a, b).map_err(|d| AnalysisError::new(vec![d]))?;
    let mut merged = a.clone();
    merge_into(&mut merged, b);
    Ok(merged)
}

/// Change the execution schedule of every (3-D) map: the loop-reordering
/// the legacy code did with `#ifdef _LOOP_EXCHANGE` blocks.
pub fn set_schedule(sdfg: &Sdfg, schedule: Schedule) -> Sdfg {
    let mut out = sdfg.clone();
    for st in &mut out.states {
        st.map.schedule = schedule;
    }
    out
}

/// Report of the index-lookup deduplication pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DedupReport {
    /// Per-point lookups before (each access resolves its own index).
    pub lookups_before: usize,
    /// Per-point lookups after (unique (relation, slot) per state).
    pub lookups_after: usize,
}

impl DedupReport {
    pub fn reduction_factor(&self) -> f64 {
        self.lookups_before as f64 / self.lookups_after.max(1) as f64
    }
}

/// The IndexLookupDedup pass is realized inside the compiled executor
/// (`exec::compile`): this function reports what it achieves on a given
/// graph. Mirrors §5.2: "we can reduce the number of integer index
/// lookups required per grid point by an average factor of 8x".
pub fn index_dedup_report(sdfg: &Sdfg) -> DedupReport {
    DedupReport {
        lookups_before: sdfg.index_lookups_naive(),
        lookups_after: sdfg.index_lookups_deduped(),
    }
}

/// The full GH200-targeted metaprogram of the paper: fuse, deduplicate
/// lookups (via the compiled executor), stream columns.
pub fn gh200_pipeline(sdfg: &Sdfg) -> (Sdfg, DedupReport) {
    let fused = fuse_maps(sdfg);
    let scheduled = set_schedule(&fused, Schedule::EntityOuterLevelInner);
    let report = index_dedup_report(&scheduled);
    (scheduled, report)
}

/// A CPU/vector-machine-targeted variant (level-outer for long inner
/// entity loops, like the `!$NEC outerloop_unroll` branch of the excerpt).
pub fn cpu_pipeline(sdfg: &Sdfg) -> Sdfg {
    set_schedule(&fuse_maps(sdfg), Schedule::LevelOuterEntityInner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sdfg::Sdfg;

    fn lower(src: &str) -> Sdfg {
        Sdfg::from_program("t", &parse(src).unwrap())
    }

    #[test]
    fn fusion_merges_same_domain_states() {
        let sdfg = lower(
            r#"
            kernel a over cells
              x(p,k) = inp(p,k) * 2;
              y(p,k) = x(p,k) + 1;
              z(p,k) = y(p,k) * inp(p,k);
            end
        "#,
        );
        assert_eq!(sdfg.states.len(), 3);
        let fused = fuse_maps(&sdfg);
        assert_eq!(fused.states.len(), 1, "pointwise chain fuses fully");
        assert_eq!(fused.states[0].map.tasklets.len(), 3);
        assert_eq!(fused.n_map_launches(), 1);
    }

    #[test]
    fn fusion_blocked_by_neighbor_read_of_written_field() {
        let sdfg = lower(
            r#"
            kernel a over cells
              x(p,k) = inp(p,k) * 2;
              y(p,k) = x(neighbor(p,0), k);
            end
        "#,
        );
        let fused = fuse_maps(&sdfg);
        assert_eq!(
            fused.states.len(),
            2,
            "gather of a freshly written field must stay in a later state"
        );
    }

    #[test]
    fn fusion_blocked_across_domains() {
        let sdfg = lower(
            r#"
            kernel a over cells x(p,k) = 1; end
            kernel b over edges y(p,k) = 2; end
        "#,
        );
        assert_eq!(fuse_maps(&sdfg).states.len(), 2);
    }

    #[test]
    fn fusion_blocked_by_vertical_shift_of_written_field() {
        let sdfg = lower(
            r#"
            kernel a over cells
              x(p,k) = inp(p,k);
              y(p,k) = x(p,k+1);
            end
        "#,
        );
        assert_eq!(fuse_maps(&sdfg).states.len(), 2);
    }

    #[test]
    fn fusion_blocked_by_fixed_level_read_of_written_field() {
        // Regression: the pre-analysis `can_fuse` accepted this (Own
        // point, not KOffset) and the fused form read stale `x(p,2)` for
        // k < 2 — a silent miscompile vs the naive backend. The analysis
        // rejects it as a flow dependence with mismatched level windows.
        let sdfg = lower(
            r#"
            kernel a over cells
              x(p,k) = inp(p,k);
              y(p,k) = x(p,2);
            end
        "#,
        );
        assert_eq!(fuse_maps(&sdfg).states.len(), 2);
    }

    #[test]
    fn fusion_blocked_by_anti_dependence_on_vertical_shift() {
        // Regression: reading x(p,k-1) must complete before x is
        // overwritten; the old check only looked at flow dependences and
        // fused this, so k >= 1 read freshly-written values.
        let sdfg = lower(
            r#"
            kernel a over cells
              y(p,k) = x(p,k-1);
              x(p,k) = inp(p,k);
            end
        "#,
        );
        assert_eq!(fuse_maps(&sdfg).states.len(), 2);
    }

    #[test]
    fn try_fuse_pair_reports_the_violated_dependence() {
        use crate::analysis::DiagCode;
        let sdfg = lower(
            r#"
            kernel a over cells
              x(p,k) = inp(p,k) * 2;
              y(p,k) = x(neighbor(p,0), k);
            end
        "#,
        );
        let err = try_fuse_pair(&sdfg.states[0], &sdfg.states[1]).unwrap_err();
        assert_eq!(err.primary().code, DiagCode::FusionFlowDep);
        assert!(!err.primary().span.is_synthetic(), "refusal carries a span");

        let ok = lower(
            r#"
            kernel a over cells
              x(p,k) = inp(p,k) * 2;
              y(p,k) = x(p,k) + 1;
            end
        "#,
        );
        let merged = try_fuse_pair(&ok.states[0], &ok.states[1]).unwrap();
        assert_eq!(merged.map.tasklets.len(), 2);
    }

    #[test]
    fn dedup_reduction_on_multi_gather_body() {
        // Four statements each gathering through the same three edges:
        // naive 12 lookups/point, fused+deduped 3 -> 4x here; the full
        // dycore suite reaches >= 8x (asserted in suite tests).
        let sdfg = lower(
            r#"
            kernel a over cells
              d1(p,k) = f1(edge(p,0),k) + f1(edge(p,1),k) + f1(edge(p,2),k);
              d2(p,k) = f2(edge(p,0),k) + f2(edge(p,1),k) + f2(edge(p,2),k);
              d3(p,k) = f3(edge(p,0),k) + f3(edge(p,1),k) + f3(edge(p,2),k);
              d4(p,k) = f4(edge(p,0),k) + f4(edge(p,1),k) + f4(edge(p,2),k);
            end
        "#,
        );
        let (fused, report) = gh200_pipeline(&sdfg);
        assert_eq!(fused.states.len(), 1);
        assert_eq!(report.lookups_before, 12);
        assert_eq!(report.lookups_after, 3);
        assert!((report.reduction_factor() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn schedules_are_set_without_touching_tasklets() {
        let sdfg = lower("kernel a over cells x(p,k) = inp(p,k); end");
        let cpu = cpu_pipeline(&sdfg);
        assert_eq!(cpu.states[0].map.schedule, Schedule::LevelOuterEntityInner);
        assert_eq!(cpu.states[0].map.tasklets, sdfg.states[0].map.tasklets);
    }
}
