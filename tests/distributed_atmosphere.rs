//! Distributed-memory correctness of the atmosphere: the same model
//! stepped on N ranks (SubGrids + halo exchange over mpisim) must produce
//! **bitwise** the same owned-cell state as the single-domain run — the
//! property that makes ICON's results independent of the decomposition.

use atmo::{AtmParams, Atmosphere};
use icongrid::{Decomposition, Field2, Grid, NoExchange, SubGrid};
use mpisim::{RankExchange, World};
use std::sync::Arc;

const NLEV: usize = 4;
const DT: f64 = 400.0;
const STEPS: usize = 5;

fn reference_run(grid: &Arc<Grid>) -> Atmosphere<Grid> {
    let params = AtmParams::new(NLEV, DT);
    let zs = Field2::from_fn(grid.n_cells, |c| 500.0 * grid.cell_center[c].x.max(0.0));
    let water = (0..grid.n_cells).map(|c| grid.cell_center[c].z < 0.5).collect();
    let mut atm = Atmosphere::new(grid.clone(), params, zs, water);
    for _ in 0..STEPS {
        atm.step(&NoExchange);
    }
    atm
}

#[test]
fn distributed_atmosphere_matches_serial_bitwise() {
    let grid = Arc::new(Grid::build(2, icongrid::EARTH_RADIUS_M));
    let reference = reference_run(&grid);

    let np = 4;
    let decomp = Decomposition::new(&grid, np);
    let subs: Vec<Arc<SubGrid>> = (0..np)
        .map(|p| Arc::new(SubGrid::build(&grid, &decomp, p)))
        .collect();

    World::run(np, |comm| {
        let sub = subs[comm.rank()].clone();
        let params = AtmParams::new(NLEV, DT);
        let zs = Field2::from_fn(sub.n_cells, |lc| {
            500.0 * sub.cell_center[lc].x.max(0.0)
        });
        let water = (0..sub.n_cells).map(|lc| sub.cell_center[lc].z < 0.5).collect();
        let mut atm = Atmosphere::new(sub.clone(), params, zs, water);
        let x = RankExchange::new(&comm, &sub, 1000);
        for _ in 0..STEPS {
            atm.step(&x);
        }

        // Owned cells must match the serial run exactly.
        for lc in 0..sub.n_owned_cells {
            let gc = sub.cell_l2g[lc] as usize;
            for k in 0..NLEV {
                assert_eq!(
                    atm.state.delta.at(lc, k),
                    reference.state.delta.at(gc, k),
                    "rank {} delta at cell {gc} level {k}",
                    comm.rank()
                );
                assert_eq!(
                    atm.state.qv.at(lc, k),
                    reference.state.qv.at(gc, k),
                    "qv at cell {gc}"
                );
                assert_eq!(
                    atm.state.co2.at(lc, k),
                    reference.state.co2.at(gc, k),
                    "co2 at cell {gc}"
                );
            }
            assert_eq!(
                atm.state.precip_acc[lc], reference.state.precip_acc[gc],
                "precip at cell {gc}"
            );
        }
        // Owned edges too.
        for le in 0..sub.n_owned_edges {
            let ge = sub.edge_l2g[le] as usize;
            for k in 0..NLEV {
                assert_eq!(
                    atm.state.vn.at(le, k),
                    reference.state.vn.at(ge, k),
                    "vn at edge {ge} level {k}"
                );
            }
        }
    });
}

#[test]
fn result_is_independent_of_rank_count() {
    let grid = Arc::new(Grid::build(2, icongrid::EARTH_RADIUS_M));
    // Global mass from 2-rank and 6-rank runs must agree bitwise.
    let mass_with = |np: usize| -> f64 {
        let decomp = Decomposition::new(&grid, np);
        let subs: Vec<Arc<SubGrid>> = (0..np)
            .map(|p| Arc::new(SubGrid::build(&grid, &decomp, p)))
            .collect();
        let masses = World::run(np, |comm| {
            let sub = subs[comm.rank()].clone();
            let params = AtmParams::new(NLEV, DT);
            let zs = Field2::zeros(sub.n_cells);
            let water = vec![true; sub.n_cells];
            let mut atm = Atmosphere::new(sub.clone(), params, zs, water);
            let x = RankExchange::new(&comm, &sub, 7);
            for _ in 0..3 {
                atm.step(&x);
            }
            // Deterministic per-rank partial sums, combined in rank order.
            (0..sub.n_owned_cells)
                .map(|lc| {
                    atm.state.delta.col(lc).iter().sum::<f64>()
                        * sub.cell_area[lc]
                })
                .sum::<f64>()
        });
        masses.iter().sum()
    };
    // Partial-sum order differs between rank counts; compare to near
    // round-off of the huge total.
    let a = mass_with(2);
    let b = mass_with(6);
    assert!(
        ((a - b) / a).abs() < 1e-12,
        "mass differs across decompositions: {a} vs {b}"
    );
}
