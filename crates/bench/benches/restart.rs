//! Checkpoint/restart throughput (§6.4/§7): multi-file write and staggered
//! read of a realistic snapshot, at several writer counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iosys::{read_checkpoint, restart::scratch_dir, write_checkpoint, Snapshot};

fn snapshot() -> Snapshot {
    let mut s = Snapshot::new();
    for i in 0..32 {
        s.push(format!("field{i:02}"), vec![i as f64 * 0.5; 100_000]).unwrap();
    }
    s
}

fn bench_restart(c: &mut Criterion) {
    let snap = snapshot();
    let bytes = snap.payload_bytes() as u64;

    let mut group = c.benchmark_group("restart");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes));
    for n_files in [1usize, 4, 8] {
        group.bench_function(BenchmarkId::new("write", n_files), |b| {
            let dir = scratch_dir("bench_w");
            b.iter(|| write_checkpoint(&dir, "restart", &snap, n_files).unwrap());
            std::fs::remove_dir_all(&dir).ok();
        });
    }
    for readers in [1usize, 4] {
        group.bench_function(BenchmarkId::new("staggered_read", readers), |b| {
            let dir = scratch_dir("bench_r");
            write_checkpoint(&dir, "restart", &snap, 4).unwrap();
            b.iter(|| read_checkpoint(&dir, "restart", readers).unwrap());
            std::fs::remove_dir_all(&dir).ok();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_restart);
criterion_main!(benches);
