//! Small-kernel launch accounting — the structural hook for the paper's
//! CUDA-graph optimization (§5.1).
//!
//! Every per-process, per-PFT update in the land model dispatches through
//! a [`LaunchRecorder`]. In `Individual` mode each dispatch counts as one
//! kernel launch (what OpenACC does, paying launch latency every time).
//! In `Graph` mode the first step *records* the launch sequence and
//! subsequent steps *replay* it: the dispatch sequence is checked against
//! the recording (CUDA graphs replay "exactly the same way") and only one
//! graph-launch is counted. The measured counts drive
//! [`machine::graphs`](../machine) and the `land_kernels` bench.

/// Launch mode, mirroring OpenACC kernels vs CUDA-graph replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchMode {
    /// Every kernel pays a launch (OpenACC baseline).
    Individual,
    /// Record on first step, replay afterwards.
    Graph,
}

/// Records kernel dispatches of the land model.
#[derive(Debug)]
pub struct LaunchRecorder {
    mode: LaunchMode,
    /// Total individual kernel launches issued (Individual mode, or the
    /// recording pass of Graph mode).
    pub kernel_launches: u64,
    /// Graph replays performed.
    pub graph_replays: u64,
    /// Kernel names in recording order (first step only).
    recording: Vec<&'static str>,
    /// Cursor while replaying/verifying.
    cursor: usize,
    recorded: bool,
    in_step: bool,
}

impl LaunchRecorder {
    pub fn new(mode: LaunchMode) -> Self {
        LaunchRecorder {
            mode,
            kernel_launches: 0,
            graph_replays: 0,
            recording: Vec::new(),
            cursor: 0,
            recorded: false,
            in_step: false,
        }
    }

    pub fn mode(&self) -> LaunchMode {
        self.mode
    }

    /// Begin a model step.
    pub fn begin_step(&mut self) {
        assert!(!self.in_step, "nested steps");
        self.in_step = true;
        self.cursor = 0;
        if self.mode == LaunchMode::Graph && self.recorded {
            self.graph_replays += 1;
        }
    }

    /// Dispatch one kernel. Panics in Graph mode if the replayed sequence
    /// diverges from the recording — CUDA graphs cannot change shape
    /// between replays, and neither can the land model's call flow.
    #[inline]
    pub fn launch(&mut self, name: &'static str) {
        debug_assert!(self.in_step, "launch outside a step");
        match self.mode {
            LaunchMode::Individual => self.kernel_launches += 1,
            LaunchMode::Graph => {
                if !self.recorded {
                    self.kernel_launches += 1;
                    self.recording.push(name);
                } else {
                    assert!(
                        self.cursor < self.recording.len()
                            && self.recording[self.cursor] == name,
                        "graph replay diverged at kernel {}: expected {:?}, got {name}",
                        self.cursor,
                        self.recording.get(self.cursor)
                    );
                    self.cursor += 1;
                }
            }
        }
    }

    /// End a model step.
    pub fn end_step(&mut self) {
        assert!(self.in_step);
        self.in_step = false;
        if self.mode == LaunchMode::Graph {
            if !self.recorded {
                self.recorded = true;
            } else {
                assert_eq!(
                    self.cursor,
                    self.recording.len(),
                    "graph replay ended early"
                );
            }
        }
    }

    /// Kernels per recorded step (available after the first step in Graph
    /// mode, or as a running average in Individual mode given the step
    /// count).
    pub fn kernels_per_step(&self) -> usize {
        if self.mode == LaunchMode::Graph {
            self.recording.len()
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn individual_mode_counts_every_launch() {
        let mut r = LaunchRecorder::new(LaunchMode::Individual);
        for _ in 0..3 {
            r.begin_step();
            r.launch("a");
            r.launch("b");
            r.end_step();
        }
        assert_eq!(r.kernel_launches, 6);
        assert_eq!(r.graph_replays, 0);
    }

    #[test]
    fn graph_mode_records_once_then_replays() {
        let mut r = LaunchRecorder::new(LaunchMode::Graph);
        for _ in 0..4 {
            r.begin_step();
            r.launch("gpp");
            r.launch("resp");
            r.end_step();
        }
        assert_eq!(r.kernel_launches, 2, "only the recording pass launches");
        assert_eq!(r.graph_replays, 3);
        assert_eq!(r.kernels_per_step(), 2);
    }

    #[test]
    #[should_panic(expected = "graph replay diverged")]
    fn divergent_replay_panics() {
        let mut r = LaunchRecorder::new(LaunchMode::Graph);
        r.begin_step();
        r.launch("a");
        r.end_step();
        r.begin_step();
        r.launch("b");
    }

    #[test]
    #[should_panic(expected = "graph replay ended early")]
    fn short_replay_panics() {
        let mut r = LaunchRecorder::new(LaunchMode::Graph);
        r.begin_step();
        r.launch("a");
        r.launch("b");
        r.end_step();
        r.begin_step();
        r.launch("a");
        r.end_step();
    }
}
