//! SPMD message-passing simulation substrate.
//!
//! ICON parallelizes with MPI (point-to-point halo exchanges with
//! GPUDirect RDMA, global reductions in the ocean's barotropic solver) and
//! OpenMP. This crate provides the equivalent programming model on a single
//! machine: every MPI rank becomes a thread, point-to-point messages travel
//! over lock-free channels, collectives synchronize through a shared
//! reduction context, and all traffic is metered so the `machine` cost
//! model can be driven by *measured* communication volumes.
//!
//! The simulation is *real* parallelism (ranks genuinely run concurrently
//! and only see data they received), not a serial emulation — so races,
//! deadlocks, and ordering bugs in component code surface here just as they
//! would on a cluster.

pub mod collective;
pub mod comm;
pub mod fault;
pub mod halo;
pub mod heartbeat;
pub mod rank_exchange;
pub mod stats;

pub use comm::{Comm, World};
pub use fault::{CommError, FaultAction, FaultPlan, FaultReport, PlannedFault};
pub use halo::HaloExchanger;
pub use heartbeat::{heartbeat_round, BeatConfig, BeatStatus};
pub use rank_exchange::RankExchange;
pub use stats::{TrafficSnapshot, TrafficStats};
