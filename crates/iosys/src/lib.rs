//! I/O subsystem: checkpoint/restart and asynchronous output (§6.4 of the
//! paper).
//!
//! * [`restart`] — synchronous **multi-file** checkpointing: a
//!   configurable number of writer groups each collect a subset of the
//!   variables and write one file; reading is **staggered** across a
//!   (possibly different) number of reader groups. Round-trips are
//!   bit-exact, which the coupled restart tests rely on.
//! * [`output`] — an **asynchronous output server**: the model thread
//!   hands fields to a channel and continues integrating; a server thread
//!   applies reductions (instantaneous / time mean) and writes to disk
//!   concurrently, exactly the scheme ICON uses so that "I/O does not
//!   appreciably impact tau".
//!
//! * [`vfs`] — the **storage abstraction** both paths run on: a
//!   [`Storage`] trait with a real backend ([`RealFs`]) and a seeded
//!   fault-injecting backend ([`FaultFs`]) for crash-consistency testing
//!   (torn writes, `ENOSPC`, fsync lies, rename failures, crash points).
//!
//! Paper-scale throughput numbers (615.61 GiB/s read, 198.19 GiB/s write,
//! 9265.50 + 7030.91 GiB restart sizes) come from the `machine::iomodel`
//! file-system model; this crate provides the real, laptop-scale
//! implementation of the same architecture.

pub mod crc;
pub mod error;
pub mod output;
pub mod restart;
pub mod vfs;

pub use error::{OutputError, RestartError};
pub use output::{
    read_records, recover_records, FullPolicy, OutputPolicy, OutputRequest, OutputServer,
    OutputStats, PostOutcome, RecoveredRecords, Reduction,
};
pub use restart::{
    read_checkpoint, write_checkpoint, CheckpointRing, RetryPolicy, Snapshot,
};
pub use vfs::{FaultFs, OpKind, OpRecord, RealFs, Storage, StorageFault, StorageFaultReport};
