//! The two execution backends.
//!
//! * [`run_naive`] — the OpenACC-style baseline: **one pass (kernel
//!   launch) per statement**, re-resolving every neighbor index lookup at
//!   every (point, level) evaluation, re-reading every operand from
//!   memory.
//! * [`compile`] + [`CompiledSdfg::run`] — the DaCe-style backend: the
//!   transformed SDFG is lowered to register bytecode per state; neighbor
//!   indices are resolved **once per point** (hoisted out of the level
//!   loop), repeated loads collapse into registers, pointwise
//!   reads-of-written values are forwarded without touching memory, and
//!   fused states stream each point's data once.
//!
//! Both backends produce bitwise-identical results on the same inputs —
//! the semantic-equivalence property the paper's separation of concerns
//! rests on (tested here and by proptest in `tests/`).

use crate::analysis::{AnalysisReport, Certification};
use crate::ast::{BinOp, Expr, FieldAccess, Intrinsic, LevelIndex, PointIndex, Program};
use crate::sdfg::{Schedule, Sdfg};
use rayon::prelude::*;
use std::collections::HashMap;

/// Topology tables: named entity domains and named neighbor relations.
#[derive(Debug, Clone, Default)]
pub struct TopologyContext {
    pub(crate) domains: HashMap<String, usize>,
    pub(crate) relations: HashMap<String, Relation>,
}

#[derive(Debug, Clone)]
pub struct Relation {
    pub arity: usize,
    /// `table[entity * arity + slot]` = neighbor id.
    pub table: Vec<u32>,
}

impl TopologyContext {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_domain(&mut self, name: impl Into<String>, size: usize) {
        self.domains.insert(name.into(), size);
    }

    pub fn add_relation(&mut self, name: impl Into<String>, arity: usize, table: Vec<u32>) {
        assert_eq!(table.len() % arity, 0);
        self.relations.insert(name.into(), Relation { arity, table });
    }

    pub fn domain_size(&self, name: &str) -> usize {
        *self
            .domains
            .get(name)
            .unwrap_or_else(|| panic!("unknown domain '{name}'"))
    }

    fn relation(&self, name: &str) -> &Relation {
        self.relations
            .get(name)
            .unwrap_or_else(|| panic!("unknown relation '{name}'"))
    }

    #[inline]
    fn lookup(&self, name: &str, entity: usize, slot: usize) -> usize {
        let r = self.relation(name);
        debug_assert!(slot < r.arity, "slot {slot} out of range for '{name}'");
        r.table[entity * r.arity + slot] as usize
    }
}

/// A named field buffer: `nlev == 1` encodes a 2-D field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldBuf {
    pub data: Vec<f64>,
    pub n: usize,
    pub nlev: usize,
}

impl FieldBuf {
    pub fn zeros(n: usize, nlev: usize) -> FieldBuf {
        FieldBuf {
            data: vec![0.0; n * nlev],
            n,
            nlev,
        }
    }

    #[inline]
    fn idx(&self, e: usize, k: usize) -> usize {
        debug_assert!(e < self.n && k < self.nlev);
        e * self.nlev + k
    }
}

/// All field data of one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataContext {
    pub fields: HashMap<String, FieldBuf>,
    /// Vertical extent of 3-D fields.
    pub nlev: usize,
}

impl DataContext {
    pub fn new(nlev: usize) -> DataContext {
        DataContext {
            fields: HashMap::new(),
            nlev,
        }
    }

    pub fn add(&mut self, name: impl Into<String>, buf: FieldBuf) {
        self.fields.insert(name.into(), buf);
    }

    pub fn field(&self, name: &str) -> &FieldBuf {
        self.fields
            .get(name)
            .unwrap_or_else(|| panic!("unknown field '{name}'"))
    }

    fn field_mut(&mut self, name: &str) -> &mut FieldBuf {
        self.fields
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown field '{name}'"))
    }

    /// Resolve a level index against the clamped column.
    #[inline]
    fn level(&self, li: LevelIndex, k: usize, nlev: usize) -> usize {
        match li {
            LevelIndex::Surface => 0,
            // Clamp so 3-D statements can legally read 2-D fields.
            LevelIndex::K => k.min(nlev - 1),
            LevelIndex::KOffset(o) => (k as i64 + o as i64).clamp(0, nlev as i64 - 1) as usize,
            LevelIndex::Fixed(f) => f.min(nlev - 1),
        }
    }
}

/// Execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Map (kernel) launches.
    pub map_launches: u64,
    /// Integer neighbor-index lookups performed.
    pub index_lookups: u64,
    /// Field element loads from memory.
    pub field_reads: u64,
    /// Field element stores to memory.
    pub field_stores: u64,
    /// Dispatch decisions made by the host: one per naive statement pass,
    /// one per compiled sequential state, one per parallel task of a
    /// certified state — and exactly **one per window** when a recorded
    /// [`crate::graph::ExecGraph`] replays (plus one per node the
    /// analysis left unfrozen). This is the CPU analog of the paper's
    /// §5.1 kernel-launch count that CUDA graphs collapse.
    pub dispatched_tasks: u64,
}

// ------------------------------------------------------------------
// Naive (OpenACC-style) interpreter
// ------------------------------------------------------------------

/// Run the *source program* directly: one map launch per statement,
/// full re-resolution everywhere.
pub fn run_naive(prog: &Program, topo: &TopologyContext, data: &mut DataContext) -> ExecStats {
    let mut stats = ExecStats::default();
    for kernel in &prog.kernels {
        let n = topo.domain_size(&kernel.domain);
        for st in &kernel.statements {
            stats.map_launches += 1;
            stats.dispatched_tasks += 1;
            let levels = if st.expr.uses_levels() || st.target.level != LevelIndex::Surface {
                data.nlev
            } else {
                1
            };
            for e in 0..n {
                for k in 0..levels {
                    let v = eval_naive(&st.expr, e, k, topo, data, &mut stats);
                    let tgt_k = data.level(st.target.level, k, levels.max(1));
                    let fb = data.field_mut(&st.target.field);
                    let idx = fb.idx(e, tgt_k.min(fb.nlev - 1));
                    fb.data[idx] = v;
                    stats.field_stores += 1;
                }
            }
        }
    }
    stats
}

fn eval_naive(
    expr: &Expr,
    e: usize,
    k: usize,
    topo: &TopologyContext,
    data: &DataContext,
    stats: &mut ExecStats,
) -> f64 {
    match expr {
        Expr::Num(v) => *v,
        Expr::Neg(x) => -eval_naive(x, e, k, topo, data, stats),
        // Both backends funnel through `Intrinsic::apply` so naive and
        // compiled execution stay bitwise-identical.
        Expr::Call(intr, x, _) => intr.apply(eval_naive(x, e, k, topo, data, stats)),
        Expr::Bin(op, a, b) => {
            let x = eval_naive(a, e, k, topo, data, stats);
            let y = eval_naive(b, e, k, topo, data, stats);
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
            }
        }
        Expr::Access(a) => {
            let point = match &a.point {
                PointIndex::Own => e,
                PointIndex::Lookup { relation, slot } => {
                    stats.index_lookups += 1;
                    topo.lookup(relation, e, *slot)
                }
            };
            let fb = data.field(&a.field);
            let kk = data.level(a.level, k, fb.nlev);
            stats.field_reads += 1;
            fb.data[fb.idx(point, kk)]
        }
    }
}

// ------------------------------------------------------------------
// Compiled (DaCe-style) executor
// ------------------------------------------------------------------

/// Register-bytecode of one tasklet.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    PushConst(f64),
    /// Push a preloaded value register.
    PushReg(u16),
    Neg,
    Add,
    Sub,
    Mul,
    Div,
    Call(Intrinsic),
}

/// A preloaded value: where the point index comes from and which level.
#[derive(Debug, Clone, PartialEq)]
enum LoadSrc {
    /// The loop point.
    Own,
    /// A resolved index register.
    IdxReg(u16),
    /// Forwarded from an earlier tasklet's result register in the same
    /// state (no memory traffic).
    Forward(u16),
}

#[derive(Debug, Clone, PartialEq)]
struct LoadSlot {
    field: String,
    src: LoadSrc,
    level: LevelIndex,
    /// Does this load depend on `k` (inside the level loop) or can it be
    /// hoisted out?
    level_dependent: bool,
}

#[derive(Debug, Clone, PartialEq)]
struct CompiledTasklet {
    ops: Vec<Op>,
    write_field: String,
    write_level: LevelIndex,
    /// Result register holding the computed value (for forwarding).
    result_reg: u16,
    /// Store the result to memory. `false` only for hoisted transients
    /// whose every consumer is served by forwarding
    /// ([`CompiledSdfg::elide_transient_stores`]): the value lives in the
    /// result register alone and the field needs no buffer at all.
    store: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompiledState {
    pub(crate) domain: String,
    over_levels: bool,
    schedule: Schedule,
    /// Unique (relation, slot) pairs resolved once per point.
    idx_lookups: Vec<(String, usize)>,
    loads: Vec<LoadSlot>,
    tasklets: Vec<CompiledTasklet>,
    /// Run entity-parallel. Set ONLY by [`compile_certified`] for states
    /// the analysis certified [`Certification::ParallelSafe`]; `compile`
    /// always produces the sequential schedule.
    pub(crate) parallel: bool,
}

/// A compiled SDFG, ready to run repeatedly.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSdfg {
    pub name: String,
    pub(crate) states: Vec<CompiledState>,
}

/// Compile a (transformed) SDFG: hoist and deduplicate index lookups,
/// collapse repeated loads, forward pointwise reads of freshly written
/// values.
pub fn compile(sdfg: &Sdfg) -> CompiledSdfg {
    let states = sdfg
        .states
        .iter()
        .map(|st| {
            let mut idx_lookups: Vec<(String, usize)> = Vec::new();
            let mut loads: Vec<LoadSlot> = Vec::new();
            let mut tasklets = Vec::new();
            // (field, level) -> result register of a previous write.
            let mut written: HashMap<(String, LevelIndex), u16> = HashMap::new();
            // Value registers: loads first, then one result per tasklet.
            for t in &st.map.tasklets {
                let mut ops = Vec::new();
                compile_expr(
                    &t.code,
                    &mut ops,
                    &mut idx_lookups,
                    &mut loads,
                    &written,
                );
                let result_reg = (loads.len() + st.map.tasklets.len()) as u16; // placeholder, fixed below
                tasklets.push(CompiledTasklet {
                    ops,
                    write_field: t.write.field.clone(),
                    write_level: t.write.level,
                    result_reg,
                    store: true,
                });
                written.insert(
                    (t.write.field.clone(), t.write.level),
                    (tasklets.len() - 1) as u16, // tasklet ordinal; fixed below
                );
            }
            // Fix register numbering: loads occupy 0..L, tasklet results
            // L..L+T. Forward references recorded tasklet ordinals; shift.
            let l = loads.len() as u16;
            for (i, t) in tasklets.iter_mut().enumerate() {
                t.result_reg = l + i as u16;
            }
            for load in &mut loads {
                if let LoadSrc::Forward(ord) = load.src {
                    load.src = LoadSrc::Forward(l + ord);
                }
            }
            for t in &mut tasklets {
                for op in &mut t.ops {
                    if let Op::PushReg(r) = op {
                        if *r >= 0x8000 {
                            // Forwarded tasklet ordinal (tagged).
                            *r = l + (*r - 0x8000);
                        }
                    }
                }
            }
            CompiledState {
                domain: st.map.domain.clone(),
                over_levels: st.map.over_levels,
                schedule: st.map.schedule,
                idx_lookups,
                loads,
                tasklets,
                parallel: false,
            }
        })
        .collect();
    CompiledSdfg {
        name: sdfg.name.clone(),
        states,
    }
}

fn compile_expr(
    expr: &Expr,
    ops: &mut Vec<Op>,
    idx_lookups: &mut Vec<(String, usize)>,
    loads: &mut Vec<LoadSlot>,
    written: &HashMap<(String, LevelIndex), u16>,
) {
    match expr {
        Expr::Num(v) => ops.push(Op::PushConst(*v)),
        Expr::Neg(x) => {
            compile_expr(x, ops, idx_lookups, loads, written);
            ops.push(Op::Neg);
        }
        Expr::Bin(op, a, b) => {
            compile_expr(a, ops, idx_lookups, loads, written);
            compile_expr(b, ops, idx_lookups, loads, written);
            ops.push(match op {
                BinOp::Add => Op::Add,
                BinOp::Sub => Op::Sub,
                BinOp::Mul => Op::Mul,
                BinOp::Div => Op::Div,
            });
        }
        Expr::Access(a) => {
            ops.push(Op::PushReg(access_register(a, idx_lookups, loads, written)));
        }
        Expr::Call(intr, x, _) => {
            compile_expr(x, ops, idx_lookups, loads, written);
            ops.push(Op::Call(*intr));
        }
    }
}

fn access_register(
    a: &FieldAccess,
    idx_lookups: &mut Vec<(String, usize)>,
    loads: &mut Vec<LoadSlot>,
    written: &HashMap<(String, LevelIndex), u16>,
) -> u16 {
    // Forwarding: pointwise read of a value written earlier in the state.
    if a.point == PointIndex::Own {
        if let Some(&ord) = written.get(&(a.field.clone(), a.level)) {
            // Tag with 0x8000: resolved to a result register in `compile`.
            return 0x8000 + ord;
        }
    }
    let src = match &a.point {
        PointIndex::Own => LoadSrc::Own,
        PointIndex::Lookup { relation, slot } => {
            let pos = idx_lookups
                .iter()
                .position(|(r, s)| r == relation && *s == *slot)
                .unwrap_or_else(|| {
                    idx_lookups.push((relation.clone(), *slot));
                    idx_lookups.len() - 1
                });
            LoadSrc::IdxReg(pos as u16)
        }
    };
    let level_dependent = matches!(a.level, LevelIndex::K | LevelIndex::KOffset(_));
    let slot = LoadSlot {
        field: a.field.clone(),
        src,
        level: a.level,
        level_dependent,
    };
    if let Some(pos) = loads.iter().position(|l| *l == slot) {
        pos as u16
    } else {
        loads.push(slot);
        (loads.len() - 1) as u16
    }
}

/// Compile with the analysis report in hand: states the verifier
/// certified [`Certification::ParallelSafe`] get the entity-parallel
/// execution schedule (disjoint per-task buffer splits over the
/// deterministic `rayon::task_ranges` boundaries); everything else —
/// `Reduction`, `Sequential`, or merely parallel-*ineligible* (a memory
/// load of a field the same state writes, which the split-buffer scheme
/// cannot serve) — falls back to the sequential schedule. The report must
/// be index-aligned with `sdfg.states` (i.e. produced by
/// `analysis::verify_sdfg` on this exact graph).
pub fn compile_certified(sdfg: &Sdfg, report: &AnalysisReport) -> CompiledSdfg {
    assert_eq!(
        report.states.len(),
        sdfg.states.len(),
        "analysis report is not aligned with this SDFG"
    );
    let mut compiled = compile(sdfg);
    for (i, cs) in compiled.states.iter_mut().enumerate() {
        cs.parallel = report.cert(i) == Certification::ParallelSafe && parallel_eligible(cs);
    }
    compiled
}

/// The split-buffer parallel runner hands each task exclusive slices of
/// the *written* fields and a shared view of everything else; a memory
/// load of a written field (e.g. the self-read of `x(p,k) = x(p,k) * 2`
/// at a different level, which forwarding cannot serve) would need the
/// split-out buffer — run those states sequentially.
fn parallel_eligible(cs: &CompiledState) -> bool {
    let written: Vec<&str> = cs.tasklets.iter().map(|t| t.write_field.as_str()).collect();
    cs.loads.iter().all(|l| !written.contains(&l.field.as_str()))
}

impl CompiledSdfg {
    /// Execute over the given data, counting actual memory traffic.
    pub fn run(&self, topo: &TopologyContext, data: &mut DataContext) -> ExecStats {
        let mut stats = ExecStats::default();
        for st in &self.states {
            stats.map_launches += 1;
            if st.parallel {
                run_state_parallel(st, topo, data, &mut stats);
            } else {
                run_state(st, topo, data, &mut stats);
            }
        }
        stats
    }

    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// Demote the given fields (the transients introduced by
    /// `transforms::hoist_gathers`) to register-only values: their
    /// tasklets still execute — forwarding serves every consumer — but
    /// nothing is stored, so the fields need no [`DataContext`] buffer
    /// and the run's memory traffic matches the un-hoisted graph's.
    ///
    /// Panics if any state still *loads* one of these fields from memory
    /// (a consumer forwarding could not serve), which would change
    /// results — the hoist transform guarantees this never holds.
    pub fn elide_transient_stores(&mut self, transients: &[String]) {
        for st in &mut self.states {
            for l in &st.loads {
                assert!(
                    !transients.contains(&l.field),
                    "transient '{}' is loaded from memory; its store cannot be elided",
                    l.field
                );
            }
            for t in &mut st.tasklets {
                if transients.contains(&t.write_field) {
                    t.store = false;
                }
            }
        }
    }

    /// How many states carry the entity-parallel schedule.
    pub fn n_parallel_states(&self) -> usize {
        self.states.iter().filter(|s| s.parallel).count()
    }
}

/// Reusable per-task execution scratch of one state: the value
/// registers, the resolved neighbor indices, the expression stack, and a
/// per-task counter slot. Sized once — at compile time for the eager
/// runners, at **record** time for [`crate::graph::ExecGraph`] — and
/// reused across drives, so a replayed window allocates nothing.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StateScratch {
    regs: Vec<f64>,
    idx: Vec<usize>,
    stack: Vec<f64>,
    /// Written by the frozen parallel runner's task, summed in
    /// task-index order by the caller (width-invariant counters).
    stats: ExecStats,
}

impl StateScratch {
    pub(crate) fn for_state(st: &CompiledState) -> StateScratch {
        StateScratch {
            regs: vec![0.0; st.loads.len() + st.tasklets.len()],
            idx: vec![0; st.idx_lookups.len()],
            stack: Vec::with_capacity(16),
            stats: ExecStats::default(),
        }
    }
}

/// Entity-parallel execution of one certified state.
///
/// The eager wrapper: derives the task boundaries from the current
/// domain size, counts one dispatch decision per task, allocates fresh
/// per-task scratch, and delegates to the frozen runner.
fn run_state_parallel(
    st: &CompiledState,
    topo: &TopologyContext,
    data: &mut DataContext,
    stats: &mut ExecStats,
) {
    let n = topo.domain_size(&st.domain);
    let ranges = rayon::task_ranges(n);
    stats.dispatched_tasks += ranges.len() as u64;
    let mut scratch: Vec<StateScratch> =
        ranges.iter().map(|_| StateScratch::for_state(st)).collect();
    run_state_parallel_frozen(st, topo, data, stats, &ranges, &mut scratch);
}

/// One task's frozen unit of work: its entity range, its disjoint slices
/// of every written buffer, and its private scratch.
type TaskWork<'a> = ((usize, usize), Vec<&'a mut [f64]>, &'a mut StateScratch);

/// Entity-parallel execution over **given** task boundaries and scratch.
///
/// Written fields are taken out of the [`DataContext`] and pre-split at
/// the deterministic task boundaries (`rayon::task_ranges`, a function of
/// the entity count only), so each task owns disjoint slices — no
/// locking, no unsafe. Reads go against the remaining shared context
/// (certification + eligibility guarantee no load touches a written
/// field). Per-task [`ExecStats`] are summed in task index order, so
/// counters are bitwise invariant to thread count, like the results.
///
/// Counts **no** dispatch decisions: a recorded graph froze the
/// boundaries at record time, so a replay makes none; the eager wrapper
/// accounts for its own.
pub(crate) fn run_state_parallel_frozen(
    st: &CompiledState,
    topo: &TopologyContext,
    data: &mut DataContext,
    stats: &mut ExecStats,
    ranges: &[(usize, usize)],
    scratch: &mut [StateScratch],
) {
    assert_eq!(ranges.len(), scratch.len(), "one scratch per task");
    let nlev = if st.over_levels { data.nlev } else { 1 };

    // Take the written buffers out of the context (store-elided
    // transients have no buffer and never reach memory).
    let mut written: Vec<String> = st
        .tasklets
        .iter()
        .filter(|t| t.store)
        .map(|t| t.write_field.clone())
        .collect();
    written.sort();
    written.dedup();
    let mut bufs: Vec<(String, FieldBuf)> = written
        .iter()
        .map(|f| {
            let buf = data
                .fields
                .remove(f)
                .unwrap_or_else(|| panic!("unknown field '{f}'"));
            (f.clone(), buf)
        })
        .collect();
    // Slot order of written fields for the task body (bufs is built from
    // `written` in order, so indices agree).
    let strides: Vec<usize> = bufs.iter().map(|(_, b)| b.nlev).collect();
    let field_slot: HashMap<&str, usize> = written
        .iter()
        .enumerate()
        .map(|(i, f)| (f.as_str(), i))
        .collect();

    // Pre-split every written buffer at the fixed entity boundaries.
    let mut work: Vec<TaskWork<'_>> = ranges
        .iter()
        .zip(scratch.iter_mut())
        .map(|(&r, sc)| (r, Vec::new(), sc))
        .collect();
    for (fi, (_, buf)) in bufs.iter_mut().enumerate() {
        let stride = strides[fi];
        let mut rest: &mut [f64] = &mut buf.data;
        for ((s, e), slices, _) in work.iter_mut() {
            let (head, tail) = rest.split_at_mut((*e - *s) * stride);
            rest = tail;
            slices.push(head);
        }
    }

    let shared: &DataContext = data;
    work.par_iter_mut().for_each(|item| {
        let ((start, end), slices, sc) = item;
        let (start, end) = (*start, *end);
        let mut local = ExecStats::default();
        let regs = &mut sc.regs;
        let idx = &mut sc.idx;
        let stack = &mut sc.stack;
        for e in start..end {
            for (i, (rel, slot)) in st.idx_lookups.iter().enumerate() {
                idx[i] = topo.lookup(rel, e, *slot);
                local.index_lookups += 1;
            }
            for (i, l) in st.loads.iter().enumerate() {
                if !l.level_dependent {
                    regs[i] = load(l, e, 0, idx, shared, &mut local);
                }
            }
            for k in 0..nlev {
                for (i, l) in st.loads.iter().enumerate() {
                    if l.level_dependent {
                        regs[i] = load(l, e, k, idx, shared, &mut local);
                    }
                }
                for tl in &st.tasklets {
                    let v = eval_ops(&tl.ops, regs, stack);
                    regs[tl.result_reg as usize] = v;
                    if !tl.store {
                        continue;
                    }
                    let fi = field_slot[tl.write_field.as_str()];
                    let stride = strides[fi];
                    let kk = match tl.write_level {
                        LevelIndex::Surface => 0,
                        LevelIndex::K => k.min(stride - 1),
                        LevelIndex::KOffset(o) => {
                            (k as i64 + o as i64).clamp(0, stride as i64 - 1) as usize
                        }
                        LevelIndex::Fixed(f) => f.min(stride - 1),
                    };
                    slices[fi][(e - start) * stride + kk] = v;
                    local.field_stores += 1;
                }
            }
        }
        sc.stats = local;
    });

    // Release the split borrows before handing the buffers back.
    drop(work);

    // Task-order summation: width-invariant counters.
    for sc in scratch.iter() {
        stats.index_lookups += sc.stats.index_lookups;
        stats.field_reads += sc.stats.field_reads;
        stats.field_stores += sc.stats.field_stores;
    }

    // Hand the written buffers back.
    for (f, buf) in bufs {
        data.fields.insert(f, buf);
    }
}

/// Sequential execution of one state: the eager wrapper counts its one
/// dispatch decision and allocates fresh scratch.
fn run_state(st: &CompiledState, topo: &TopologyContext, data: &mut DataContext, stats: &mut ExecStats) {
    stats.dispatched_tasks += 1;
    let mut scratch = StateScratch::for_state(st);
    run_state_with(st, topo, data, stats, &mut scratch);
}

/// Sequential execution of one state over **given** scratch. Counts no
/// dispatch decisions (see [`run_state_parallel_frozen`]).
pub(crate) fn run_state_with(
    st: &CompiledState,
    topo: &TopologyContext,
    data: &mut DataContext,
    stats: &mut ExecStats,
    scratch: &mut StateScratch,
) {
    let n = topo.domain_size(&st.domain);
    let nlev = if st.over_levels { data.nlev } else { 1 };
    // Move the scratch vectors out (and back below): zero allocation,
    // and the body below is identical to the historical eager runner —
    // replay correctness is by construction, not by a parallel code path.
    let mut regs = std::mem::take(&mut scratch.regs);
    let mut idx = std::mem::take(&mut scratch.idx);
    let mut stack = std::mem::take(&mut scratch.stack);

    let entity_body = |e: usize,
                       regs: &mut [f64],
                       idx: &mut [usize],
                       stack: &mut Vec<f64>,
                       data: &mut DataContext,
                       stats: &mut ExecStats| {
        // Resolve the point's neighbor indices ONCE (hoisted out of the
        // level loop): this is the 8x index-lookup saving.
        for (i, (rel, slot)) in st.idx_lookups.iter().enumerate() {
            idx[i] = topo.lookup(rel, e, *slot);
            stats.index_lookups += 1;
        }
        // Hoist level-independent loads.
        for (i, l) in st.loads.iter().enumerate() {
            if !l.level_dependent {
                regs[i] = load(l, e, 0, idx, data, stats);
            }
        }
        for k in 0..nlev {
            for (i, l) in st.loads.iter().enumerate() {
                if l.level_dependent {
                    regs[i] = load(l, e, k, idx, data, stats);
                }
            }
            for t in &st.tasklets {
                let v = eval_ops(&t.ops, regs, stack);
                regs[t.result_reg as usize] = v;
                if !t.store {
                    continue;
                }
                let fb = data.field_mut(&t.write_field);
                let kk = match t.write_level {
                    LevelIndex::Surface => 0,
                    LevelIndex::K => k.min(fb.nlev - 1),
                    LevelIndex::KOffset(o) => {
                        (k as i64 + o as i64).clamp(0, fb.nlev as i64 - 1) as usize
                    }
                    LevelIndex::Fixed(f) => f.min(fb.nlev - 1),
                };
                let pos = fb.idx(e, kk);
                fb.data[pos] = v;
                stats.field_stores += 1;
            }
        }
    };

    match st.schedule {
        Schedule::EntityOuterLevelInner | Schedule::LevelOuterEntityInner => {
            // Both schedules iterate every (entity, level); the compiled
            // body is entity-outer (level-inner) — the LevelOuter variant
            // differs only in traversal order, which does not change
            // results; we keep entity-outer for the per-point hoisting.
            for e in 0..n {
                entity_body(e, &mut regs, &mut idx, &mut stack, data, stats);
            }
        }
        Schedule::Tiled(tile) => {
            let tile = tile.max(1);
            let mut start = 0;
            while start < n {
                let end = (start + tile).min(n);
                for e in start..end {
                    entity_body(e, &mut regs, &mut idx, &mut stack, data, stats);
                }
                start = end;
            }
        }
    }

    scratch.regs = regs;
    scratch.idx = idx;
    scratch.stack = stack;
}

#[inline]
fn load(
    l: &LoadSlot,
    e: usize,
    k: usize,
    idx: &[usize],
    data: &DataContext,
    stats: &mut ExecStats,
) -> f64 {
    let point = match l.src {
        LoadSrc::Own => e,
        LoadSrc::IdxReg(r) => idx[r as usize],
        LoadSrc::Forward(_) => unreachable!("forwarded loads never hit memory"),
    };
    let fb = data.field(&l.field);
    let kk = data.level(l.level, k, fb.nlev);
    stats.field_reads += 1;
    fb.data[fb.idx(point, kk)]
}

#[inline]
fn eval_ops(ops: &[Op], regs: &[f64], stack: &mut Vec<f64>) -> f64 {
    stack.clear();
    for op in ops {
        match op {
            Op::PushConst(v) => stack.push(*v),
            Op::PushReg(r) => stack.push(regs[*r as usize]),
            Op::Neg => {
                let a = stack.pop().unwrap();
                stack.push(-a);
            }
            Op::Add => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a + b);
            }
            Op::Sub => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a - b);
            }
            Op::Mul => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a * b);
            }
            Op::Div => {
                let b = stack.pop().unwrap();
                let a = stack.pop().unwrap();
                stack.push(a / b);
            }
            Op::Call(intr) => {
                let a = stack.pop().unwrap();
                stack.push(intr.apply(a));
            }
        }
    }
    debug_assert_eq!(stack.len(), 1);
    stack.pop().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::transforms::gh200_pipeline;

    /// A ring "mesh": n cells, relation edge(c, 0..2) = {c-1, c, c+1}.
    fn ring_topology(n: usize) -> TopologyContext {
        let mut topo = TopologyContext::new();
        topo.add_domain("cells", n);
        let mut table = Vec::with_capacity(n * 3);
        for c in 0..n {
            table.push(((c + n - 1) % n) as u32);
            table.push(c as u32);
            table.push(((c + 1) % n) as u32);
        }
        topo.add_relation("edge", 3, table);
        topo
    }

    fn data(n: usize, nlev: usize) -> DataContext {
        let mut d = DataContext::new(nlev);
        for (name, scale) in [("kin", 1.0), ("f1", 2.0), ("f2", 3.0)] {
            let mut f = FieldBuf::zeros(n, nlev);
            for e in 0..n {
                for k in 0..nlev {
                    f.data[e * nlev + k] = scale * (e as f64 + 0.1 * k as f64);
                }
            }
            d.add(name, f);
        }
        for name in ["w1", "w2", "w3"] {
            let mut f = FieldBuf::zeros(n, 1);
            for e in 0..n {
                f.data[e] = 0.5 + (e % 3) as f64;
            }
            d.add(name, f);
        }
        for name in ["ekin", "out", "out2", "tmp"] {
            d.add(name, FieldBuf::zeros(n, nlev));
        }
        d
    }

    const EKINH: &str = r#"
        kernel z_ekinh over cells
          ekin(p,k) = w1(p) * kin(edge(p,0), k)
                    + w2(p) * kin(edge(p,1), k)
                    + w3(p) * kin(edge(p,2), k);
          out(p,k)  = ekin(p,k) * w1(p) + f1(edge(p,0), k);
          out2(p,k) = f2(edge(p,2), k) - ekin(p,k);
        end
    "#;

    #[test]
    fn naive_and_compiled_agree_bitwise() {
        let prog = parse(EKINH).unwrap();
        let topo = ring_topology(17);
        let mut d1 = data(17, 4);
        let mut d2 = d1.clone();
        run_naive(&prog, &topo, &mut d1);
        let sdfg = Sdfg::from_program("ekinh", &prog);
        let (opt, _) = gh200_pipeline(&sdfg);
        compile(&opt).run(&topo, &mut d2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn intrinsics_agree_bitwise_between_backends() {
        let src = r#"
            kernel t over cells
              ekin(p,k) = sqrt(kin(edge(p,1),k) * kin(edge(p,1),k) + 1.0);
              out(p,k)  = exp(-ekin(p,k)) + tanh(w1(p)) * cos(f1(p,k) / (f2(p,k) + 1.0));
              out2(p,k) = log(1.0 + ekin(p,k)) + sin(w2(p));
            end
        "#;
        let prog = parse(src).unwrap();
        let topo = ring_topology(13);
        let mut d1 = data(13, 4);
        let mut d2 = d1.clone();
        run_naive(&prog, &topo, &mut d1);
        let sdfg = Sdfg::from_program("t", &prog);
        let (opt, _) = gh200_pipeline(&sdfg);
        compile(&opt).run(&topo, &mut d2);
        assert_eq!(d1, d2, "intrinsic evaluation must be bitwise-identical");
    }

    /// Repeated gathers of `kin` through edges 0 and 2 — the hoist
    /// pass materializes both into transients.
    const REPEATED: &str = r#"
        kernel a over cells
          ekin(p,k) = kin(edge(p,0),k) + kin(edge(p,2),k);
          out(p,k)  = kin(edge(p,0),k) * kin(edge(p,2),k) + f1(edge(p,0),k);
        end
    "#;

    #[test]
    fn elided_transients_are_bitwise_exact_and_add_no_traffic() {
        use crate::transforms::{fuse_maps, hoist_gathers, HoistOptions};
        let prog = parse(REPEATED).unwrap();
        let topo = ring_topology(23);
        let mut d1 = data(23, 4);
        let mut d2 = d1.clone();
        let mut d3 = d1.clone();
        run_naive(&prog, &topo, &mut d1);

        let fused = fuse_maps(&Sdfg::from_program("a", &prog));
        let plain_stats = compile(&fused).run(&topo, &mut d3);

        let (hoisted, report) = hoist_gathers(&fused, &HoistOptions::default());
        assert_eq!(report.transients.len(), 2);
        let mut compiled = compile(&hoisted);
        compiled.elide_transient_stores(&report.transient_names());
        let stats = compiled.run(&topo, &mut d2);

        // The transients never touch the DataContext, so full equality
        // with the naive run holds — no extra buffers, no extra stores.
        assert_eq!(d1, d2);
        assert_eq!(
            stats, plain_stats,
            "hoist + elision must not change measured traffic vs the \
             plain compiled run (gathers were already registers there)"
        );
    }

    #[test]
    #[should_panic(expected = "loaded from memory")]
    fn eliding_a_loaded_field_is_rejected() {
        let prog = parse(EKINH).unwrap();
        let fused = crate::transforms::fuse_maps(&Sdfg::from_program("e", &prog));
        let mut compiled = compile(&fused);
        compiled.elide_transient_stores(&["kin".to_string()]);
    }

    #[test]
    fn compiled_does_fewer_lookups_and_launches() {
        let prog = parse(EKINH).unwrap();
        let topo = ring_topology(64);
        let nlev = 8;
        let mut d1 = data(64, nlev);
        let mut d2 = d1.clone();
        let naive = run_naive(&prog, &topo, &mut d1);
        let sdfg = Sdfg::from_program("ekinh", &prog);
        let (opt, _) = gh200_pipeline(&sdfg);
        let compiled = compile(&opt);
        let fast = compiled.run(&topo, &mut d2);
        assert!(naive.map_launches > fast.map_launches);
        // Naive resolves 5 lookups per (point, level); compiled resolves
        // the 3 unique edge indices once per point.
        assert_eq!(naive.index_lookups, 64 * nlev as u64 * 5);
        assert_eq!(fast.index_lookups, 64 * 3);
        assert!(naive.field_reads > fast.field_reads, "load collapsing");
    }

    #[test]
    fn forwarding_skips_memory_for_pointwise_reuse() {
        let src = r#"
            kernel t over cells
              tmp(p,k) = f1(p,k) * 2;
              out(p,k) = tmp(p,k) + tmp(p,k);
            end
        "#;
        let prog = parse(src).unwrap();
        let topo = ring_topology(10);
        let mut d1 = data(10, 3);
        let mut d2 = d1.clone();
        run_naive(&prog, &topo, &mut d1);
        let (opt, _) = gh200_pipeline(&Sdfg::from_program("t", &prog));
        let stats = compile(&opt).run(&topo, &mut d2);
        assert_eq!(d1, d2);
        // Only f1 is loaded (once per point-level); tmp reads forwarded.
        assert_eq!(stats.field_reads, 10 * 3);
    }

    #[test]
    fn vertical_offsets_clamp_at_boundaries() {
        let src = "kernel t over cells out(p,k) = f1(p,k+1) - f1(p,k-1); end";
        let prog = parse(src).unwrap();
        let topo = ring_topology(4);
        let mut d1 = data(4, 3);
        let mut d2 = d1.clone();
        run_naive(&prog, &topo, &mut d1);
        let (opt, _) = gh200_pipeline(&Sdfg::from_program("t", &prog));
        compile(&opt).run(&topo, &mut d2);
        assert_eq!(d1, d2);
        // At k=0: f1(p,1) - f1(p,0) (clamped below).
        let f1 = d1.field("f1").clone();
        let out = d1.field("out");
        assert_eq!(out.data[1], f1.data[2] - f1.data[0]); // e=0,k=1 interior
        assert_eq!(out.data[0], f1.data[1] - f1.data[0]); // clamped
    }

    #[test]
    fn tiled_schedule_matches_untiled() {
        let prog = parse(EKINH).unwrap();
        let topo = ring_topology(23);
        let mut d1 = data(23, 4);
        let mut d2 = d1.clone();
        let (opt, _) = gh200_pipeline(&Sdfg::from_program("e", &prog));
        compile(&opt).run(&topo, &mut d1);
        let tiled = crate::transforms::set_schedule(&opt, Schedule::Tiled(7));
        compile(&tiled).run(&topo, &mut d2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn certified_parallel_run_matches_sequential_bitwise() {
        use crate::analysis::{self, AnalysisContext, FieldIo};
        let prog = parse(EKINH).unwrap();
        let topo = ring_topology(300); // enough entities to split tasks
        let mut d_seq = data(300, 5);
        let mut d_par = d_seq.clone();
        let (opt, _) = gh200_pipeline(&Sdfg::from_program("ekinh", &prog));

        let ctx = AnalysisContext::new()
            .domain("cells")
            .relation("edge", "cells", "cells", 3)
            .field("kin", "cells", true, FieldIo::Input)
            .field("f1", "cells", true, FieldIo::Input)
            .field("f2", "cells", true, FieldIo::Input)
            .field("w1", "cells", false, FieldIo::Input)
            .field("w2", "cells", false, FieldIo::Input)
            .field("w3", "cells", false, FieldIo::Input)
            .field("ekin", "cells", true, FieldIo::Output)
            .field("out", "cells", true, FieldIo::Output)
            .field("out2", "cells", true, FieldIo::Output);
        let report = analysis::verify_sdfg(&opt, &ctx);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.all_parallel_safe());

        let seq = compile(&opt);
        let par = compile_certified(&opt, &report);
        assert_eq!(seq.n_parallel_states(), 0);
        assert!(par.n_parallel_states() > 0, "certified states go parallel");

        let s1 = seq.run(&topo, &mut d_seq);
        let s2 = par.run(&topo, &mut d_par);
        assert_eq!(d_seq, d_par, "parallel schedule is bitwise identical");
        // Memory-traffic counters are summed in task order and therefore
        // width-invariant; only the dispatch count differs: the parallel
        // schedule dispatches one task per fixed range, the sequential
        // one a single task per state.
        assert_eq!(s1.map_launches, s2.map_launches);
        assert_eq!(s1.index_lookups, s2.index_lookups);
        assert_eq!(s1.field_reads, s2.field_reads);
        assert_eq!(s1.field_stores, s2.field_stores);
        assert_eq!(s1.dispatched_tasks, seq.n_states() as u64);
        assert_eq!(s2.dispatched_tasks, rayon::task_count(300) as u64);
    }

    #[test]
    fn uncertified_states_fall_back_to_sequential() {
        use crate::analysis::verify_sdfg;
        use crate::fixtures::verifier_fixtures;
        for f in verifier_fixtures() {
            let report = verify_sdfg(&f.sdfg, &f.ctx);
            let compiled = compile_certified(&f.sdfg, &report);
            for (i, v) in report.states.iter().enumerate() {
                if v.cert != crate::analysis::Certification::ParallelSafe {
                    assert!(
                        !compiled.states[i].parallel,
                        "fixture `{}` state {i} must not run parallel",
                        f.name
                    );
                }
            }
        }
    }

    #[test]
    fn self_read_state_is_parallel_ineligible_but_correct() {
        // `x(p,k) = x(p,k) * 2` is race-free (ParallelSafe) but the
        // split-buffer runner cannot serve the memory load of the split-
        // out field: eligibility forces the sequential path.
        use crate::analysis::{self, AnalysisContext, FieldIo};
        let src = "kernel t over cells f1(p,k) = f1(p,k) * 2; end";
        let prog = parse(src).unwrap();
        let sdfg = Sdfg::from_program("t", &prog);
        let ctx = AnalysisContext::new()
            .domain("cells")
            .field("f1", "cells", true, FieldIo::Output);
        // In-place update: suppress the read-before-write error by
        // declaring it input+output is not allowed (write-to-input), so
        // just certify the scope directly.
        let scopes = crate::memlet::sdfg_memlets(&sdfg);
        let mut diags = Vec::new();
        let verdict = analysis::certify_scope(&scopes[0], &mut diags);
        assert_eq!(verdict.cert, analysis::Certification::ParallelSafe);
        assert!(diags.is_empty());

        let report = analysis::verify_sdfg(&sdfg, &ctx);
        let compiled = compile_certified(&sdfg, &report);
        assert_eq!(compiled.n_parallel_states(), 0, "load of written field");

        let topo = ring_topology(40);
        let mut d1 = data(40, 3);
        let mut d2 = d1.clone();
        run_naive(&prog, &topo, &mut d1);
        compiled.run(&topo, &mut d2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn surface_loads_hoisted_out_of_level_loop() {
        let src = "kernel t over cells out(p,k) = w1(p) * f1(p,k); end";
        let prog = parse(src).unwrap();
        let topo = ring_topology(8);
        let nlev = 6;
        let mut d = data(8, nlev);
        let (opt, _) = gh200_pipeline(&Sdfg::from_program("t", &prog));
        let stats = compile(&opt).run(&topo, &mut d);
        // w1 read once per point, f1 once per (point, level).
        assert_eq!(stats.field_reads, 8 + 8 * nlev as u64);
        let mut d2 = data(8, nlev);
        let naive = run_naive(&prog, &topo, &mut d2);
        assert_eq!(naive.field_reads, 2 * 8 * nlev as u64);
    }
}
