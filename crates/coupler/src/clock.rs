//! Coupling schedule arithmetic.
//!
//! The atmosphere/land group steps with `dt_fast`, the ocean/BGC group
//! with `dt_slow`; fluxes are exchanged every `coupling_s` (600 s in the
//! paper's configurations). Both step counts must divide the window.

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingClock {
    pub dt_fast: f64,
    pub dt_slow: f64,
    pub coupling_s: f64,
}

impl CouplingClock {
    pub fn new(dt_fast: f64, dt_slow: f64, coupling_s: f64) -> CouplingClock {
        let c = CouplingClock {
            dt_fast,
            dt_slow,
            coupling_s,
        };
        assert!(
            c.is_consistent(),
            "time steps must divide the coupling interval: {c:?}"
        );
        c
    }

    /// Do the steps divide the coupling window exactly?
    pub fn is_consistent(&self) -> bool {
        let divides = |dt: f64| {
            let n = self.coupling_s / dt;
            (n - n.round()).abs() < 1e-9 && n >= 1.0 - 1e-9
        };
        divides(self.dt_fast) && divides(self.dt_slow) && self.dt_fast <= self.dt_slow
    }

    /// Fast (atmosphere+land) steps per coupling window.
    pub fn fast_steps(&self) -> usize {
        (self.coupling_s / self.dt_fast).round() as usize
    }

    /// Slow (ocean+BGC) steps per coupling window.
    pub fn slow_steps(&self) -> usize {
        (self.coupling_s / self.dt_slow).round() as usize
    }

    /// Coupling windows per simulated day.
    pub fn windows_per_day(&self) -> usize {
        (86_400.0 / self.coupling_s).round() as usize
    }

    /// The paper's 1.25 km clock: dt 10 s / 60 s, coupling 600 s.
    pub fn km1p25() -> CouplingClock {
        CouplingClock::new(10.0, 60.0, 600.0)
    }

    /// The paper's 10 km clock: dt 75 s / 600 s, coupling 600 s.
    pub fn km10() -> CouplingClock {
        CouplingClock::new(75.0, 600.0, 600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clocks() {
        let c1 = CouplingClock::km1p25();
        assert_eq!(c1.fast_steps(), 60);
        assert_eq!(c1.slow_steps(), 10);
        assert_eq!(c1.windows_per_day(), 144);
        let c10 = CouplingClock::km10();
        assert_eq!(c10.fast_steps(), 8);
        assert_eq!(c10.slow_steps(), 1);
    }

    #[test]
    #[should_panic(expected = "divide the coupling interval")]
    fn rejects_non_dividing_steps() {
        CouplingClock::new(7.0, 60.0, 600.0);
    }

    #[test]
    #[should_panic(expected = "divide the coupling interval")]
    fn rejects_slow_faster_than_fast() {
        CouplingClock::new(60.0, 10.0, 600.0);
    }
}
