//! Coupling schedule arithmetic.
//!
//! The atmosphere/land group steps with `dt_fast`, the ocean/BGC group
//! with `dt_slow`; fluxes are exchanged every `coupling_s` (600 s in the
//! paper's configurations). Both step counts must divide the window —
//! validated at construction: every constructor returns a typed
//! [`ClockError`] on an inconsistent schedule instead of handing out a
//! clock that silently misschedules steps.

/// An inconsistent coupling schedule, rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockError {
    pub dt_fast: f64,
    pub dt_slow: f64,
    pub coupling_s: f64,
}

impl std::fmt::Display for ClockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "time steps must divide the coupling interval and dt_fast <= dt_slow: \
             dt_fast={} dt_slow={} coupling_s={}",
            self.dt_fast, self.dt_slow, self.coupling_s
        )
    }
}

impl std::error::Error for ClockError {}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingClock {
    pub dt_fast: f64,
    pub dt_slow: f64,
    pub coupling_s: f64,
}

impl CouplingClock {
    pub fn new(dt_fast: f64, dt_slow: f64, coupling_s: f64) -> Result<CouplingClock, ClockError> {
        let c = CouplingClock {
            dt_fast,
            dt_slow,
            coupling_s,
        };
        if c.is_consistent() {
            Ok(c)
        } else {
            Err(ClockError {
                dt_fast,
                dt_slow,
                coupling_s,
            })
        }
    }

    /// Do the steps divide the coupling window exactly? Always true for a
    /// constructed clock; kept public for validating raw step choices.
    pub fn is_consistent(&self) -> bool {
        let divides = |dt: f64| {
            let n = self.coupling_s / dt;
            (n - n.round()).abs() < 1e-9 && n >= 1.0 - 1e-9
        };
        divides(self.dt_fast) && divides(self.dt_slow) && self.dt_fast <= self.dt_slow
    }

    /// Fast (atmosphere+land) steps per coupling window.
    pub fn fast_steps(&self) -> usize {
        (self.coupling_s / self.dt_fast).round() as usize
    }

    /// Slow (ocean+BGC) steps per coupling window.
    pub fn slow_steps(&self) -> usize {
        (self.coupling_s / self.dt_slow).round() as usize
    }

    /// Coupling windows per simulated day.
    pub fn windows_per_day(&self) -> usize {
        (86_400.0 / self.coupling_s).round() as usize
    }

    /// The paper's 1.25 km clock: dt 10 s / 60 s, coupling 600 s.
    pub fn km1p25() -> Result<CouplingClock, ClockError> {
        CouplingClock::new(10.0, 60.0, 600.0)
    }

    /// The paper's 10 km clock: dt 75 s / 600 s, coupling 600 s.
    pub fn km10() -> Result<CouplingClock, ClockError> {
        CouplingClock::new(75.0, 600.0, 600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clocks() {
        let c1 = CouplingClock::km1p25().unwrap();
        assert_eq!(c1.fast_steps(), 60);
        assert_eq!(c1.slow_steps(), 10);
        assert_eq!(c1.windows_per_day(), 144);
        let c10 = CouplingClock::km10().unwrap();
        assert_eq!(c10.fast_steps(), 8);
        assert_eq!(c10.slow_steps(), 1);
    }

    #[test]
    fn rejects_non_dividing_steps() {
        let err = CouplingClock::new(7.0, 60.0, 600.0).unwrap_err();
        assert_eq!(err.dt_fast, 7.0);
        assert!(err.to_string().contains("divide the coupling interval"));
    }

    #[test]
    fn rejects_slow_faster_than_fast() {
        assert!(CouplingClock::new(60.0, 10.0, 600.0).is_err());
    }
}
