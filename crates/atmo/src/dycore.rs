//! The dynamical core: two-time-level predictor–corrector stepping of the
//! stacked-layer hydrostatic equations, plus consistent flux-form tracer
//! transport.
//!
//! One step (`step_dynamics`):
//!
//! 1. predictor: full tendencies at time `n`, advance to provisional state;
//! 2. corrector: tendencies at the provisional state, advance with the
//!    average (Heun's method — ICON's predictor–corrector family);
//! 3. tracers: upwind flux-form transport using the **time-averaged mass
//!    flux**, so a spatially uniform tracer stays exactly uniform and
//!    tracer mass is conserved to round-off;
//! 4. divergence damping and sponge/friction Rayleigh terms stabilize
//!    gravity-wave noise exactly as in ICON (which uses a higher-order
//!    variant of the same device).
//!
//! Halo exchanges happen after every partial update through the
//! [`Exchange`] abstraction, mirroring the boundary exchanges of §5.1.

use crate::params::{AtmParams, GRAVITY};
use crate::state::AtmState;
use icongrid::exchange::Exchange;
use icongrid::ops::{self, CGrid};
use icongrid::{Field2, Field3};
use rayon::prelude::*;

/// Dimensionless divergence-damping coefficient.
pub const DIV_DAMP_COEF: f64 = 0.04;

/// Scratch space reused across steps (no per-step allocation).
pub struct Workspace {
    pub montgomery: Field3,
    pub ke: Field3,
    pub zeta: Field3,
    pub cellvec: [Field3; 3],
    pub vt: Field3,
    pub div: Field3,
    pub grad: Field3,
    pub sum_km: Field3,
    /// Edge mass flux accumulated over the two stages (l_e * vn * delta_up).
    pub mass_flux: Field3,
    pub stage_flux: Field3,
    pub d_delta: [Field3; 2],
    pub d_vn: [Field3; 2],
    pub delta_star: Field3,
    pub vn_star: Field3,
    pub tracer_old: Field3,
}

impl Workspace {
    pub fn new<G: CGrid>(g: &G, nlev: usize) -> Workspace {
        let (nc, ne, nv) = (g.n_cells(), g.n_edges(), g.n_vertices());
        Workspace {
            montgomery: Field3::zeros(nc, nlev),
            ke: Field3::zeros(nc, nlev),
            zeta: Field3::zeros(nv, nlev),
            cellvec: [
                Field3::zeros(nc, nlev),
                Field3::zeros(nc, nlev),
                Field3::zeros(nc, nlev),
            ],
            vt: Field3::zeros(ne, nlev),
            div: Field3::zeros(nc, nlev),
            grad: Field3::zeros(ne, nlev),
            sum_km: Field3::zeros(nc, nlev),
            mass_flux: Field3::zeros(ne, nlev),
            stage_flux: Field3::zeros(ne, nlev),
            d_delta: [Field3::zeros(nc, nlev), Field3::zeros(nc, nlev)],
            d_vn: [Field3::zeros(ne, nlev), Field3::zeros(ne, nlev)],
            delta_star: Field3::zeros(nc, nlev),
            vn_star: Field3::zeros(ne, nlev),
            tracer_old: Field3::zeros(nc, nlev),
        }
    }
}

/// Montgomery potential of every column:
/// `M_k = g (z_s + sum_{j<k} (rho_j/rho_k) delta_j + sum_{j>=k} delta_j)`,
/// computed in O(nlev) per column with two prefix sums.
pub fn montgomery_potential(
    params: &AtmParams,
    delta: &Field3,
    z_surface: &Field2,
    out: &mut Field3,
) {
    let nlev = params.nlev;
    let rho = &params.rho;
    out.as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(c, m)| {
            let d = delta.col(c);
            let zs = z_surface[c];
            // Suffix sum S2_k = sum_{j>=k} delta_j.
            let mut s2 = 0.0;
            let mut suffix = vec![0.0; nlev];
            for k in (0..nlev).rev() {
                s2 += d[k];
                suffix[k] = s2;
            }
            // Prefix sum of rho-weighted thickness above.
            let mut s1 = 0.0;
            for k in 0..nlev {
                m[k] = GRAVITY * (zs + s1 / rho[k] + suffix[k]);
                s1 += rho[k] * d[k];
            }
        });
}

/// Upwind edge mass flux `F_e = l_e * vn_e * delta_up` for every edge and
/// level.
fn edge_mass_flux<G: CGrid>(g: &G, vn: &Field3, delta: &Field3, out: &mut Field3) {
    let nlev = vn.nlev();
    out.as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(e, col)| {
            let [c0, c1] = g.edge_cells(e);
            let l = g.edge_length(e);
            let d0 = delta.col(c0 as usize);
            let d1 = delta.col(c1 as usize);
            let v = vn.col(e);
            for k in 0..nlev {
                let dup = if v[k] >= 0.0 { d0[k] } else { d1[k] };
                col[k] = l * v[k] * dup;
            }
        });
}

/// Full dynamics tendencies at a given state. Outputs `d_delta` (cells)
/// and `d_vn` (edges); also leaves the stage's edge mass flux in
/// `ws.stage_flux`.
pub fn tendencies<G: CGrid>(
    g: &G,
    params: &AtmParams,
    delta: &Field3,
    vn: &Field3,
    z_surface: &Field2,
    ws: &mut Workspace,
    stage: usize,
) {
    let nlev = params.nlev;

    montgomery_potential(params, delta, z_surface, &mut ws.montgomery);
    ops::kinetic_energy(g, vn, &mut ws.ke);
    ops::vorticity(g, vn, &mut ws.zeta);
    ops::reconstruct_cell_vectors(g, vn, &mut ws.cellvec);
    ops::tangential_velocity(g, &ws.cellvec, &mut ws.vt);
    ops::divergence(g, vn, &mut ws.div);

    // Split the workspace into disjoint borrows for the fused loops below.
    let Workspace {
        montgomery,
        ke,
        zeta,
        vt,
        div,
        grad,
        sum_km,
        stage_flux,
        d_delta,
        d_vn,
        ..
    } = ws;

    // K + M at cells.
    sum_km
        .as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(c, col)| {
            let ke = ke.col(c);
            let m = montgomery.col(c);
            for k in 0..nlev {
                col[k] = ke[k] + m[k];
            }
        });
    ops::gradient(g, sum_km, grad);

    // Mass flux and its divergence.
    edge_mass_flux(g, vn, delta, stage_flux);
    d_delta[stage]
        .as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(c, col)| {
            let edges = g.cell_edges(c);
            let signs = g.cell_edge_sign(c);
            let inv_a = 1.0 / g.cell_area(c);
            let f0 = stage_flux.col(edges[0] as usize);
            let f1 = stage_flux.col(edges[1] as usize);
            let f2 = stage_flux.col(edges[2] as usize);
            for k in 0..nlev {
                col[k] = -inv_a * (signs[0] * f0[k] + signs[1] * f1[k] + signs[2] * f2[k]);
            }
        });

    // Momentum tendency at edges.
    let dt = params.dt;
    let tau_spng = params.tau_sponge;
    let tau_fric = params.tau_friction;
    d_vn[stage]
        .as_mut_slice()
        .par_chunks_mut(nlev)
        .enumerate()
        .for_each(|(e, col)| {
            let [v0, v1] = g.edge_vertices(e);
            let f_e = g.edge_coriolis(e);
            let grad = grad.col(e);
            let vt = vt.col(e);
            let z0 = zeta.col(v0 as usize);
            let z1 = zeta.col(v1 as usize);
            // Divergence damping: -K_dd grad(div v), K_dd = c * l*d / dt.
            let [c0, c1] = g.edge_cells(e);
            let k_dd = DIV_DAMP_COEF * g.edge_length(e) * g.dual_edge_length(e) / dt;
            let inv_d = 1.0 / g.dual_edge_length(e);
            let div0 = div.col(c0 as usize);
            let div1 = div.col(c1 as usize);
            let v = vn.col(e);
            for k in 0..nlev {
                let zeta_e = 0.5 * (z0[k] + z1[k]);
                let damp = k_dd * (div1[k] - div0[k]) * inv_d;
                let mut t = -grad[k] + (f_e + zeta_e) * vt[k] + damp;
                if k == 0 {
                    t -= v[k] / tau_spng;
                }
                if k == nlev - 1 {
                    t -= v[k] / tau_fric;
                }
                col[k] = t;
            }
        });
}

/// Advance dynamics by one predictor–corrector step, exchanging halos as
/// needed, and leave the time-averaged mass flux in `ws.mass_flux` for the
/// tracer transport.
pub fn step_dynamics<G: CGrid, X: Exchange>(
    g: &G,
    params: &AtmParams,
    state: &mut AtmState,
    z_surface: &Field2,
    ws: &mut Workspace,
    x: &X,
) {
    let dt = params.dt;
    let nlev = params.nlev;

    // Stage 1 at time n.
    tendencies(g, params, &state.delta, &state.vn, z_surface, ws, 0);
    advance(&state.delta, &ws.d_delta[0], dt, &mut ws.delta_star);
    advance(&state.vn, &ws.d_vn[0], dt, &mut ws.vn_star);
    x.cells3(&mut ws.delta_star);
    x.edges3(&mut ws.vn_star);
    ws.mass_flux.as_mut_slice().copy_from_slice(ws.stage_flux.as_slice());

    // Stage 2 at the provisional state.
    let (delta_star, vn_star) = (ws.delta_star.clone(), ws.vn_star.clone());
    tendencies(g, params, &delta_star, &vn_star, z_surface, ws, 1);
    // Average tendencies; accumulate the averaged mass flux.
    combine_avg(&mut state.delta, &ws.d_delta[0], &ws.d_delta[1], dt);
    combine_avg(&mut state.vn, &ws.d_vn[0], &ws.d_vn[1], dt);
    let half = 0.5;
    ws.mass_flux
        .as_mut_slice()
        .par_iter_mut()
        .zip(ws.stage_flux.as_slice().par_iter())
        .for_each(|(acc, s2)| *acc = half * (*acc + s2));

    x.cells3(&mut state.delta);
    x.edges3(&mut state.vn);
    let _ = nlev;
}

#[inline]
fn advance(base: &Field3, tend: &Field3, dt: f64, out: &mut Field3) {
    out.as_mut_slice()
        .par_iter_mut()
        .zip(base.as_slice().par_iter().zip(tend.as_slice().par_iter()))
        .for_each(|(o, (b, t))| *o = b + dt * t);
}

#[inline]
fn combine_avg(state: &mut Field3, t1: &Field3, t2: &Field3, dt: f64) {
    state
        .as_mut_slice()
        .par_iter_mut()
        .zip(t1.as_slice().par_iter().zip(t2.as_slice().par_iter()))
        .for_each(|(s, (a, b))| *s += 0.5 * dt * (a + b));
}
