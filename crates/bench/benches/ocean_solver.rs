//! The barotropic conjugate-gradient solver (§5.1's global-communication
//! bottleneck): solve cost vs grid size, and the full ocean step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icongrid::{Field2, Grid, NoExchange};
use ocean::{BarotropicSolver, Ocean, OceanParams};
use std::sync::Arc;

fn bench_cg(c: &mut Criterion) {
    let mut group = c.benchmark_group("barotropic_cg");
    group.sample_size(10);
    for bisections in [3u32, 4] {
        let g = Grid::build(bisections, icongrid::EARTH_RADIUS_M);
        let depths = vec![4000.0; g.n_cells];
        let wet = vec![true; g.n_cells];
        let rhs = Field2::from_fn(g.n_cells, |c| g.cell_area[c] * g.cell_center[c].x);
        group.bench_function(BenchmarkId::new("cells", g.n_cells), |b| {
            let mut solver = BarotropicSolver::new(&g, 600.0, &depths, wet.clone(), 1e-9, 500);
            b.iter(|| {
                let mut eta = Field2::zeros(g.n_cells);
                let stats = solver.solve(&g, &NoExchange, &rhs, &mut eta, g.n_cells);
                assert!(stats.converged);
                stats.iterations
            });
        });
    }
    group.finish();
}

fn bench_ocean_step(c: &mut Criterion) {
    let g = Arc::new(Grid::build(4, icongrid::EARTH_RADIUS_M));
    let bathy = vec![3500.0; g.n_cells];
    let mut group = c.benchmark_group("ocean_step");
    group.sample_size(10);
    group.bench_function("r2b3_8lev", |b| {
        let mut o = Ocean::new(g.clone(), OceanParams::new(8, 600.0), &bathy);
        b.iter(|| o.step(&NoExchange, o.grid.n_cells));
    });
    group.finish();
}

criterion_group!(benches, bench_cg, bench_ocean_step);
criterion_main!(benches);
