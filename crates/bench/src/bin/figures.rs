//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p esm-bench --bin figures          # everything
//! cargo run --release -p esm-bench --bin figures table1   # one artifact
//! ```
//!
//! Artifacts: table1 table2 table3 fig2 fig4 dace loc cudagraphs
//! graph_replay io tau_limits mapping resilience storage sdc
//! cost_roofline.
//! Output is printed and written to `results/*.json`.

use esm_bench::figures;
use std::fs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    fs::create_dir_all("results").expect("create results dir");

    let run = |name: &str| -> Option<serde_json::Value> {
        match name {
            "table1" => Some(figures::table1()),
            "table2" => Some(figures::table2()),
            "table3" => Some(figures::table3()),
            "fig2" => Some(figures::fig2()),
            "fig4" => Some(figures::fig4()),
            "dace" => Some(figures::dace()),
            "loc" => Some(figures::loc_inventory()),
            "cudagraphs" => Some(figures::cudagraphs()),
            "graph_replay" => Some(figures::graph_replay()),
            "io" => Some(figures::io()),
            "tau_limits" => Some(figures::tau_limits()),
            "mapping" => Some(figures::mapping()),
            "resilience" => Some(figures::resilience()),
            "storage" => Some(figures::storage()),
            "sdc" => Some(figures::sdc()),
            "cost_roofline" => Some(figures::cost_roofline()),
            other => {
                eprintln!("unknown artifact '{other}'");
                None
            }
        }
    };

    let mut results = Vec::new();
    if args.is_empty() || args.iter().any(|a| a == "all") {
        results = figures::all();
    } else {
        for a in &args {
            if let Some(v) = run(a) {
                results.push((Box::leak(a.clone().into_boxed_str()) as &'static str, v));
            }
        }
    }

    for (name, value) in &results {
        let path = format!("results/{name}.json");
        fs::write(&path, serde_json::to_string_pretty(value).unwrap())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
    }
    println!("\nwrote {} JSON artifact(s) to results/", results.len());
}
