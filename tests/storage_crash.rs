//! Crash-consistency harness for the storage layer (DESIGN.md §11).
//!
//! The `FaultFs` op counter turns "the machine died at an arbitrary
//! point" into an enumerable space: a probe run records every file-system
//! operation a checkpoint generation (or an output flush) performs, then
//! the harness replays the same workload once per op index `k`, killing
//! storage after the `k`-th op. After every crash point — with and
//! without simulated power loss — readers must land on a bit-exact prior
//! or complete state, never a torn one.
//!
//! The seeded chaos scenarios drive the full resilient driver through a
//! `FaultFs` plan and require the end state to be bit-identical to a
//! fault-free run, with every retry, fallback, and shed visible in the
//! `ResilienceReport`.

use esm_core::{CoupledEsm, EsmConfig, ResilienceConfig};
use iosys::restart::scratch_dir;
use iosys::{
    recover_records, CheckpointRing, FaultFs, OpKind, OutputPolicy, OutputRequest, OutputServer,
    RetryPolicy, Snapshot, Storage, StorageFault,
};
use std::sync::Arc;
use std::time::Duration;

fn snap(tag: f64) -> Snapshot {
    let mut s = Snapshot::new();
    s.push("a", vec![tag, tag + 0.5, tag * 2.0]).unwrap();
    s.push("b", vec![tag - 1.0; 5]).unwrap();
    s
}

/// Every rename on the op log must be immediately followed by an fsync of
/// the destination's parent directory — the crash window between "entry
/// renamed" and "entry durable" must be closed before `atomic_write`
/// returns (the gap fixed in this layer's dir-fsync satellite).
fn assert_renames_are_dir_synced(log: &[iosys::OpRecord]) {
    for (i, op) in log.iter().enumerate() {
        if op.kind != OpKind::Rename {
            continue;
        }
        let dest = op.dest.as_ref().expect("rename records its destination");
        let parent = dest.parent().expect("checkpoint files live in a directory");
        let next = log
            .get(i + 1)
            .unwrap_or_else(|| panic!("rename at op {} is the last op on the log", op.index));
        assert_eq!(
            (next.kind, next.path.as_path()),
            (OpKind::FsyncDir, parent),
            "rename at op {} not followed by an fsync of its parent dir",
            op.index
        );
    }
}

/// Enumerate every crash point inside one checkpoint-generation write:
/// for each op index `k` the write fails, and `read_latest_intact` — both
/// on plain reopen and after simulated power loss — returns a bit-exact
/// complete generation, never a torn one.
#[test]
fn checkpoint_write_survives_a_crash_after_every_op() {
    let base = snap(1.0);
    let next = snap(2.0);

    // Probe: count the ops one generation write performs, fault-free.
    let dir = scratch_dir("storage_crash_probe");
    let ffs = Arc::new(FaultFs::new());
    let mut ring = CheckpointRing::new_with(ffs.clone() as Arc<dyn Storage>, &dir, "restart", 3)
        .expect("open ring");
    ring.write(&base, 2).expect("fault-free gen 1");
    let ops_before = ffs.ops();
    ring.write(&next, 2).expect("fault-free gen 2");
    let gen2_ops = ffs.ops() - ops_before;
    assert!(gen2_ops >= 9, "2 shards are at least 9 ops, got {gen2_ops}");
    assert_renames_are_dir_synced(&ffs.op_log());
    std::fs::remove_dir_all(&dir).ok();

    // Replay, crashing after each op of the gen-2 write in turn.
    for k in 0..gen2_ops {
        let dir = scratch_dir(&format!("storage_crash_k{k}"));
        let ffs = Arc::new(FaultFs::new());
        let mut ring =
            CheckpointRing::new_with(ffs.clone() as Arc<dyn Storage>, &dir, "restart", 3)
                .expect("open ring");
        ring.set_retry(RetryPolicy::none());
        ring.write(&base, 2).expect("fault-free gen 1");

        ffs.set_crash_after(Some(ffs.ops() + k));
        ring.write(&next, 2)
            .expect_err("a crash inside the write must surface as an error");
        ffs.set_crash_after(None);

        // Plain reopen (process died, disk intact): the newest readable
        // generation is complete — gen 1 always, gen 2 only if every file
        // op had finished before the crash point.
        let reader = CheckpointRing::new_with(ffs.clone() as Arc<dyn Storage>, &dir, "restart", 3)
            .expect("reopen ring");
        let (g, got) = reader
            .read_latest_intact(2)
            .unwrap_or_else(|e| panic!("crash at +{k}: no intact generation on reopen: {e}"));
        let want = if g == 1 { &base } else { &next };
        assert_eq!(&got, want, "crash at +{k}: generation {g} is not bit-exact");

        // Power loss (process AND page cache died): only fsynced bytes
        // and fsynced directory entries survive; readers must still land
        // on a complete generation.
        ffs.simulate_power_loss().expect("apply durability model");
        let (g, got) = reader
            .read_latest_intact(2)
            .unwrap_or_else(|e| panic!("crash at +{k}: no intact generation after power loss: {e}"));
        let want = if g == 1 { &base } else { &next };
        assert_eq!(
            &got, want,
            "crash at +{k}: generation {g} is not bit-exact after power loss"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Post the fixed output workload: 3 instantaneous samples of one
/// variable plus 3 accumulating samples of a time mean, then flush
/// everything via `finish`.
fn drive_output(srv: &OutputServer) {
    for i in 0..3u64 {
        let t = (i + 1) as f64;
        srv.post(OutputRequest {
            name: "inst",
            time_s: t,
            data: vec![t * 0.5, t * 0.5 + 0.125, -t],
            reduction: iosys::Reduction::Instantaneous,
        })
        .expect("post inst");
        srv.post(OutputRequest {
            name: "tmean",
            time_s: t,
            data: vec![t, 2.0 * t],
            reduction: iosys::Reduction::TimeMean,
        })
        .expect("post tmean");
    }
}

fn assert_bitwise_prefix(got: &[(f64, Vec<f64>)], full: &[(f64, Vec<f64>)], label: &str) {
    assert!(
        got.len() <= full.len(),
        "{label}: {} records recovered, only {} ever written",
        got.len(),
        full.len()
    );
    for (i, (g, f)) in got.iter().zip(full).enumerate() {
        assert_eq!(g.0.to_bits(), f.0.to_bits(), "{label}: record {i} time differs");
        assert_eq!(g.1.len(), f.1.len(), "{label}: record {i} length differs");
        for (j, (a, b)) in g.1.iter().zip(&f.1).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: record {i} value {j} differs"
            );
        }
    }
}

/// Enumerate every crash point inside an output run + flush: whatever op
/// the storage died after, `recover_records` must hand back a bit-exact
/// prefix of the fault-free record stream — torn tails are dropped, never
/// surfaced, and never a panic.
#[test]
fn output_flush_survives_a_crash_after_every_op() {
    // Probe: fault-free run, record op count and the full record streams.
    let dir = scratch_dir("output_crash_probe");
    let ffs = Arc::new(FaultFs::new());
    let srv = OutputServer::spawn_with(
        ffs.clone() as Arc<dyn Storage>,
        dir.clone(),
        16,
        OutputPolicy::default(),
    )
    .expect("spawn probe server");
    drive_output(&srv);
    let stats = srv.finish().expect("probe finish");
    assert_eq!(stats.records_written, 4, "3 inst + 1 time mean");
    let n_ops = ffs.ops();
    let clean_inst = iosys::read_records(&dir, "inst").expect("probe inst");
    let clean_tmean = iosys::read_records(&dir, "tmean").expect("probe tmean");
    assert_eq!((clean_inst.len(), clean_tmean.len()), (3, 1));
    std::fs::remove_dir_all(&dir).ok();

    for k in 0..n_ops {
        let dir = scratch_dir(&format!("output_crash_k{k}"));
        let ffs = Arc::new(FaultFs::new().crash_after(k));
        let srv = match OutputServer::spawn_with(
            ffs.clone() as Arc<dyn Storage>,
            dir.clone(),
            16,
            OutputPolicy::default(),
        ) {
            Ok(srv) => srv,
            // k = 0: storage dead before the output dir could be made.
            Err(_) => continue,
        };
        drive_output(&srv);
        // The default policy sheds on persistent failure instead of dying,
        // so the server always shuts down cleanly.
        let stats = srv.finish().expect("server sheds, never dies");
        assert_eq!(stats.posted, 6, "crash at {k}");

        ffs.set_crash_after(None);
        ffs.simulate_power_loss().expect("apply durability model");

        for (name, clean) in [("inst", &clean_inst), ("tmean", &clean_tmean)] {
            let rec = recover_records(&dir, name)
                .unwrap_or_else(|e| panic!("crash at {k}: recovery of {name} failed: {e}"));
            assert_bitwise_prefix(&rec.records, clean, &format!("crash at {k}, {name}"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Seeded absorbable storage chaos under the full resilient driver: the
/// run must end bit-identical to the fault-free run, every planned fault
/// must actually fire, and every fired write-path fault must be visible
/// in the report as a checkpoint retry/failure or an output write error.
#[test]
fn seeded_storage_chaos_resilient_run_is_bit_exact() {
    let windows = 6u64;
    let cfg = EsmConfig::tiny();
    for seed in [3u64, 11] {
        let dir = scratch_dir(&format!("storage_chaos_{seed}"));
        let ffs = Arc::new(FaultFs::seeded(seed, 6));
        let rcfg = ResilienceConfig {
            checkpoint_every: 1,
            diagnostics_every: 1,
            storage: Some(ffs.clone() as Arc<dyn Storage>),
            checkpoint_retry: RetryPolicy {
                attempts: 4,
                backoff: Duration::from_millis(1),
            },
            ..ResilienceConfig::default()
        };

        let mut chaotic = CoupledEsm::new(cfg.clone());
        let report = chaotic
            .run_windows_resilient(windows, false, &dir, &rcfg, None)
            .unwrap_or_else(|e| panic!("seed {seed}: absorbable faults killed the run: {e}"));
        assert_eq!(report.windows_run, windows, "seed {seed}");

        let mut clean = CoupledEsm::new(cfg.clone());
        clean.run_windows(windows as usize, false).unwrap();
        assert_eq!(
            chaotic.snapshot(),
            clean.snapshot(),
            "seed {seed}: chaotic run must end bit-exact with the fault-free run"
        );

        // Accounting: nothing fired silently. Each transient write, torn
        // write, and failed rename either burned a checkpoint-ring retry
        // (or exhausted one into a recorded failure) or was observed as an
        // output write error — fsync lies are absorbed by design and only
        // matter under power loss.
        let fired = ffs.report();
        assert!(fired.total() >= 1, "seed {seed}: the plan never fired");
        assert_eq!(
            fired.transient_io + fired.torn_writes + fired.rename_failures,
            report.checkpoint_retries + report.output_write_errors + report.checkpoint_failures,
            "seed {seed}: a fired fault is missing from the report: {fired:?} vs {report:?}"
        );
        assert_eq!(report.rollbacks, 0, "seed {seed}: storage faults never roll back");

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Snapshot the fault-free run after 0..=n windows; generation `g` of a
/// `checkpoint_every: 1` run must read back bit-exact to entry `g - 1`.
fn clean_window_snapshots(cfg: &EsmConfig, windows: usize) -> Vec<Snapshot> {
    let mut clean = CoupledEsm::new(cfg.clone());
    let mut snaps = vec![clean.snapshot()];
    for _ in 0..windows {
        clean.run_windows(1, false).unwrap();
        snaps.push(clean.snapshot());
    }
    snaps
}

fn run_storage_chaos(mode: &str, seed: u64) {
    let windows = 4u64;
    let cfg = EsmConfig::tiny();
    let dir = scratch_dir(&format!("storage_env_{mode}_{seed}"));

    let mut plan = FaultFs::new();
    match mode {
        // Persistent ENOSPC from the nth write on: checkpoints degrade,
        // diagnostics shed, the run itself survives. nth >= 4 so the
        // initial 3-shard generation always lands.
        "enospc" => {
            plan = plan.fault(StorageFault::NoSpace {
                nth_write: 4 + seed % 8,
            });
        }
        // One torn write: retried on the checkpoint path, healed and
        // retried on the output path.
        "torn" => {
            plan = plan.fault(StorageFault::TornWrite {
                nth_write: 4 + seed % 8,
                keep: (seed % 48) as usize,
            });
        }
        // Two fsync lies: invisible while power holds, and the durability
        // check after simulated power loss below proves a complete
        // generation still survives them.
        "fsync-lie" => {
            plan = plan
                .fault(StorageFault::FsyncLie {
                    nth_fsync: 1 + seed % 8,
                })
                .fault(StorageFault::FsyncLie {
                    nth_fsync: 9 + seed % 8,
                });
        }
        // Storage dies entirely mid-run; every later checkpoint fails
        // (recorded, not fatal) and the integration still completes.
        "crash" => {
            plan = plan.crash_after(24 + seed % 40);
        }
        other => panic!("STORAGE_CHAOS_MODE must be enospc|torn|fsync-lie|crash, got {other}"),
    }
    let ffs = Arc::new(plan);

    let rcfg = ResilienceConfig {
        checkpoint_every: 1,
        diagnostics_every: 1,
        storage: Some(ffs.clone() as Arc<dyn Storage>),
        checkpoint_retry: RetryPolicy {
            attempts: 4,
            backoff: Duration::from_millis(1),
        },
        ..ResilienceConfig::default()
    };
    let mut chaotic = CoupledEsm::new(cfg.clone());
    let report = chaotic
        .run_windows_resilient(windows, false, &dir, &rcfg, None)
        .unwrap_or_else(|e| panic!("{mode}/seed {seed}: storage chaos killed the run: {e}"));
    assert_eq!(report.windows_run, windows, "{mode}/seed {seed}");

    let clean_snaps = clean_window_snapshots(&cfg, windows as usize);
    assert_eq!(
        chaotic.snapshot(),
        *clean_snaps.last().unwrap(),
        "{mode}/seed {seed}: chaotic run must end bit-exact with the fault-free run"
    );
    match mode {
        "enospc" | "crash" => assert!(
            report.checkpoint_failures >= 1,
            "{mode}/seed {seed}: persistent storage loss must show up as checkpoint failures: {report:?}"
        ),
        "torn" => assert!(
            report.checkpoint_retries + report.output_write_errors >= 1,
            "{mode}/seed {seed}: the torn write left no trace: {report:?}"
        ),
        _ => {}
    }

    // Reboot: clear any crash point, apply the power-loss durability
    // model, and require that the newest surviving generation reads back
    // bit-exact to the fault-free state at its window.
    ffs.set_crash_after(None);
    ffs.simulate_power_loss().expect("apply durability model");
    let reader =
        CheckpointRing::new(dir.clone(), "restart", 3).expect("reopen ring on the real fs");
    let (g, got) = reader
        .read_latest_intact(2)
        .unwrap_or_else(|e| panic!("{mode}/seed {seed}: no intact generation survived: {e}"));
    assert!(
        (g as usize) <= windows as usize + 1,
        "{mode}/seed {seed}: impossible generation {g}"
    );
    assert_eq!(
        got,
        clean_snaps[(g - 1) as usize],
        "{mode}/seed {seed}: surviving generation {g} is not bit-exact"
    );

    // Diagnostics that did reach disk are a clean prefix-free record
    // stream: recovery never surfaces a torn record.
    let diag = recover_records(&dir.join("diag"), "window_means")
        .unwrap_or_else(|e| panic!("{mode}/seed {seed}: diag recovery failed: {e}"));
    for (i, (t, _)) in diag.records.iter().enumerate() {
        assert_eq!(*t, (i + 1) as f64, "{mode}/seed {seed}: diag record {i} out of order");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// CI storage-chaos entry point: `STORAGE_CHAOS_MODE` ∈ {enospc, torn,
/// fsync-lie, crash} and `STORAGE_CHAOS_SEED` (any u64) pick one storage
/// fault scenario; the resilient driver must absorb it, end bit-exact,
/// and leave a durable generation behind. Defaults (no env) exercise
/// `torn` with seed 1 so the test is meaningful locally.
#[test]
fn storage_chaos_from_env() {
    let mode = std::env::var("STORAGE_CHAOS_MODE").unwrap_or_else(|_| "torn".to_string());
    let seed: u64 = std::env::var("STORAGE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    run_storage_chaos(&mode, seed);
}

/// The non-default env modes, pinned at one seed each, so a plain `cargo
/// test` exercises all four scenarios without any environment setup.
#[test]
fn storage_chaos_all_modes_smoke() {
    for mode in ["enospc", "fsync-lie", "crash"] {
        run_storage_chaos(mode, 2);
    }
}

/// `FaultFs` power loss is pessimistic about directory entries: a file
/// written and fsynced — but whose directory entry was never fsynced —
/// does not survive. Guards the harness itself against regressing into an
/// optimistic model that would hide missing dir-fsyncs.
#[test]
fn power_loss_model_is_posix_pessimistic() {
    let dir = scratch_dir("storage_pessimism");
    let ffs = FaultFs::new();
    ffs.create_dir_all(&dir).unwrap();
    let path = dir.join("fsynced_but_volatile_entry");
    ffs.write(&path, b"payload").unwrap();
    ffs.fsync(&path).unwrap();
    // No fsync_dir: the entry itself is volatile.
    let (removed, truncated) = ffs.simulate_power_loss().unwrap();
    assert_eq!((removed, truncated), (1, 0));
    assert!(!path.exists(), "entry must not survive without a dir fsync");
    std::fs::remove_dir_all(&dir).ok();
}
