//! Calibration constants of the machine model.
//!
//! Every free parameter of the cost model lives here, with the paper
//! anchor(s) it was fitted against. The fit strategy (DESIGN.md §3):
//! structural parameters (kernel counts, bytes per degree of freedom) are
//! set from what our own mini-kernels do, scaled to ICON's kernel
//! inventory; the two efficiency parameters are then fitted so the model
//! reproduces the published throughput anchors:
//!
//! | anchor | paper value | source |
//! |---|---|---|
//! | tau, 1.25 km, JUPITER, 2048 chips | 32.7 | §7 |
//! | tau, 1.25 km, JUPITER, 20480 chips | 145.7 | §7, Table 1 |
//! | tau, 1.25 km, Alps, 8192 chips | 91.8 | §7 |
//! | tau, 1.25 km, JUPITER, 4096 chips | 59.5 | §8 |
//! | tau, 10 km @ 10 s dt, Alps, 384 chips | ~167 | §7 |
//! | tau, 10 km, "GH200", 160 chips | ~798 | §4 |
//! | CPU/GPU power ratio at equal time-to-solution | 4.4 | §4, Fig 2 |
//! | land + vegetation CUDA-graph speedup | 8–10x | §5.1 |
//! | practical limit tau ~ 3192 at dx = 40 km | §4 |

/// Average double-precision field accesses per atmosphere degree of
/// freedom per time step: ~5 sound-wave substeps x ~60 kernels x ~3
/// array accesses, plus tracer transport (H2O, CO2, O3 with limiters) and
/// physics. Structural estimate from ICON's kernel inventory.
pub const ATM_ACCESSES_PER_DOF_STEP: f64 = 1100.0;

/// Bytes per atmosphere dof per step (8 B per access).
pub const ATM_BYTES_PER_DOF_STEP: f64 = ATM_ACCESSES_PER_DOF_STEP * 8.0;

/// Average sustained DRAM fraction across *all* atmosphere kernels,
/// including index-lookup overheads and strided access on the icosahedral
/// mesh. The paper's best (DaCe-optimized) kernels reach 0.5 of peak; the
/// application-wide average is far lower. **Fitted** to the JUPITER
/// tau anchors (32.7 @ 2048 and 145.7 @ 20480).
pub const GPU_DRAM_EFF_AVG: f64 = 0.120;

/// Sustained DRAM fraction of the best, DaCe-transformed dynamical-core
/// kernels (paper: "about 50 % peak" on GH200).
pub const GPU_DRAM_EFF_DACE: f64 = 0.50;

/// Sustained DRAM fraction of the hand-tuned OpenACC dynamical-core
/// kernels (the DaCe version consistently outperforms them; fitted to the
/// §5.2 kernel-runtime figure where DaCe wins by ~1.2-1.6x).
pub const GPU_DRAM_EFF_OPENACC: f64 = 0.36;

/// GPU kernels launched per atmosphere step (dynamics substeps, tracers,
/// physics) — large kernels, not latency-bound.
pub const ATM_KERNELS_PER_STEP: f64 = 500.0;

/// Effective launch overhead per OpenACC GPU kernel (s). Includes OpenACC
/// runtime bookkeeping on top of the raw CUDA ~4 us; fitted to the fixed
/// (P-independent) part of the strong-scaling anchors.
pub const KERNEL_LAUNCH_S: f64 = 38e-6;

/// Execution-time floor of a small kernel even with perfect launch
/// pipelining (s) — wave quantization + tail effects.
pub const KERNEL_EXEC_FLOOR_S: f64 = 3e-6;

/// Small GPU kernels per land+vegetation step (the "very large number of
/// additional small GPU kernels" of §5.1: up to 11 plant functional
/// types x many process kernels x 5 soil levels).
pub const LAND_KERNELS_PER_STEP: f64 = 1200.0;

/// Bytes touched per land cell per small kernel (few variables of one
/// PFT slice).
pub const LAND_BYTES_PER_CELL_KERNEL: f64 = 1200.0;

/// CUDA-graph replay overhead per recorded kernel node (s).
pub const GRAPH_REPLAY_PER_KERNEL_S: f64 = 1.2e-6;

/// One-time launch cost of replaying a whole CUDA graph (s).
pub const GRAPH_LAUNCH_S: f64 = 20e-6;

/// Per-step driver overhead: MPI progression, synchronization skew, OS
/// noise (s). **Fitted** residual of the fixed cost after launches and
/// halos are accounted for.
pub const STEP_DRIVER_OVERHEAD_S: f64 = 16.7e-3;

/// Halo exchanges per atmosphere step (aggregated messages; several per
/// dynamics substep plus tracer/physics exchanges).
pub const ATM_HALO_EXCHANGES_PER_STEP: f64 = 24.0;

/// 3-D fields exchanged per halo message on average.
pub const HALO_FIELDS_PER_EXCHANGE: f64 = 2.0;

/// Halo ring size coefficient: halo cells ~ coef * sqrt(local cells)
/// (perimeter scaling of compact SFC partitions).
pub const HALO_RING_COEF: f64 = 4.0;

/// Point-to-point message latency, software included (s).
pub const ALPHA_P2P_S: f64 = 15e-6;

/// Per-stage latency of an allreduce (s); total = alpha * log2(P).
pub const ALPHA_COLL_S: f64 = 10e-6;

/// Conjugate-gradient iterations per barotropic solve (ocean 2-D solver,
/// the global-communication bottleneck of §5.1).
pub const OCEAN_CG_ITERS: f64 = 45.0;

/// Field accesses per ocean dynamics dof per step (baroclinic update,
/// EOS, sea ice, barotropic substepping).
pub const OCE_BYTES_PER_DOF_STEP: f64 = 2500.0;

/// Field accesses per HAMOCC (biogeochemistry) dof per ocean step —
/// 19 interacting tracers, transport plus sources/sinks.
pub const BGC_BYTES_PER_DOF_STEP: f64 = 2000.0;

/// Land field traffic per dof per step (besides the small-kernel costs).
pub const LAND_BYTES_PER_DOF_STEP: f64 = 400.0;

/// Sustained fraction of peak memory bandwidth, Grace CPU (LPDDR5X,
/// on-package; the paper calls it "a powerful resource").
pub const CPU_EFF_GRACE: f64 = 0.35;

/// Sustained fraction of peak memory bandwidth, 2x AMD 7763 Levante node.
/// **Fitted** (together with node powers) to the 4.4x CPU/GPU power ratio
/// of Fig 2.
pub const CPU_EFF_AMD: f64 = 0.20;

/// Coupler exchange cost per coupling event (remap + exchange of energy,
/// water, carbon fluxes through YAC), seconds.
pub const COUPLER_EXCHANGE_S: f64 = 3e-3;

/// Fraction of a Grace CPU's power budget drawn at full memory-bandwidth
/// load (feeds the shared-TDP derating of §5.1.1).
pub const GRACE_LOAD_POWER_FRACTION: f64 = 0.8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_physical() {
        const { assert!(GPU_DRAM_EFF_AVG > 0.0 && GPU_DRAM_EFF_AVG < GPU_DRAM_EFF_OPENACC) };
        const { assert!(GPU_DRAM_EFF_OPENACC < GPU_DRAM_EFF_DACE) };
        const { assert!(GPU_DRAM_EFF_DACE <= 1.0) };
        const { assert!(GRAPH_REPLAY_PER_KERNEL_S < KERNEL_LAUNCH_S) };
        const { assert!(ALPHA_COLL_S < ALPHA_P2P_S) };
        const { assert!(CPU_EFF_AMD < CPU_EFF_GRACE) };
    }
}
